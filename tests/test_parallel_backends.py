"""Backend v2 tests: correctness across backends, plan-cache reuse,
blocked reduction, process-worker persistence, and decomposition wiring."""

import threading

import numpy as np
import pytest

from repro.core import s3ttmc
from repro.parallel import shm as _shm
from repro.decomp import hooi, hoqri
from repro.obs.trace import TraceCollector
from repro.parallel import (
    BACKENDS,
    ParallelRunReport,
    chunk_row_block,
    get_chunk_plans,
    make_backend,
    parallel_s3ttmc,
)
from repro.parallel.partition import assign_chunks
from tests.conftest import make_random_tensor


def _counter(col, name):
    metric = col.metrics.counter(name)
    return metric.value


class TestBackendCorrectness:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("order", [3, 4, 5])
    def test_matches_serial_kernel(self, backend, order, rng):
        x = make_random_tensor(order, 10, 50, rng)
        u = rng.random((10, 3))
        serial = s3ttmc(x, u).unfolding
        got = parallel_s3ttmc(x, u, 3, backend=backend).unfolding
        assert np.allclose(got, serial, atol=1e-10), backend

    def test_tree_reduction_matches_blocked(self, rng):
        x = make_random_tensor(4, 12, 60, rng)
        u = rng.random((12, 3))
        blocked = parallel_s3ttmc(x, u, 4, backend="thread", reduction="blocked")
        tree = parallel_s3ttmc(x, u, 4, backend="thread", reduction="tree")
        assert np.allclose(blocked.unfolding, tree.unfolding, atol=1e-12)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_backend("gpu")

    def test_unknown_reduction_rejected(self, rng):
        x = make_random_tensor(3, 8, 20, rng)
        with pytest.raises(ValueError):
            parallel_s3ttmc(x, rng.random((8, 2)), 2, reduction="atomic")

    def test_backend_instance_reused(self, rng):
        x = make_random_tensor(4, 10, 40, rng)
        u1 = rng.random((10, 3))
        u2 = rng.random((10, 3))
        with make_backend("thread", 2) as backend:
            y1 = parallel_s3ttmc(x, u1, backend=backend).unfolding
            y2 = parallel_s3ttmc(x, u2, backend=backend).unfolding
        assert np.allclose(y1, s3ttmc(x, u1).unfolding, atol=1e-10)
        assert np.allclose(y2, s3ttmc(x, u2).unfolding, atol=1e-10)


class TestChunkPlanCache:
    def test_each_chunk_lattice_built_once(self, rng, monkeypatch):
        """Across repeated kernel calls, ``build_plan`` runs once per chunk."""
        import repro.parallel.executor as executor

        x = make_random_tensor(4, 10, 60, rng)
        u = rng.random((10, 3))
        calls = []
        real = executor.build_plan

        def spy(indices, memoize="global", *args, **kwargs):
            calls.append(indices.shape)
            return real(indices, memoize, *args, **kwargs)

        monkeypatch.setattr(executor, "build_plan", spy)
        report = ParallelRunReport()
        parallel_s3ttmc(x, u, 3, backend="serial", report=report)
        n_chunks = len(report.ranges)
        assert len(calls) == n_chunks
        for _ in range(3):
            parallel_s3ttmc(x, u, 3, backend="serial")
        assert len(calls) == n_chunks  # warm: zero symbolic work

    def test_cache_counters(self, rng):
        x = make_random_tensor(4, 10, 60, rng)
        u = rng.random((10, 3))
        with TraceCollector() as col:
            report = ParallelRunReport()
            parallel_s3ttmc(x, u, 2, backend="thread", report=report)
            n_chunks = len(report.ranges)
            assert _counter(col, "parallel.plan_cache.misses") == n_chunks
            warm = ParallelRunReport()
            parallel_s3ttmc(x, u, 2, backend="thread", report=warm)
            assert _counter(col, "parallel.plan_cache.hits") == n_chunks
            assert warm.plan_cache_hits == n_chunks
            assert warm.plan_cache_misses == 0
            assert _counter(col, "parallel.runs.thread") == 2
            assert len(col.find("parallel.plan_build")) == n_chunks

    def test_structure_only_upgrade(self, rng):
        """A with_lattice=False entry is upgraded in place, not rebuilt."""
        x = make_random_tensor(3, 8, 30, rng)
        mid = x.unnz // 2
        ranges = ((0, mid), (mid, x.unnz))
        bare = get_chunk_plans(x, ranges, with_lattice=False)
        assert all(cp.plan is None for cp in bare)
        full = get_chunk_plans(x, ranges, with_lattice=True)
        assert all(cp.plan is not None for cp in full)
        assert full[0].rows is bare[0].rows  # row blocks carried over

    def test_chunk_row_block_roundtrip(self, rng):
        x = make_random_tensor(4, 12, 40, rng)
        rows, row_map = chunk_row_block(x.indices[5:25], x.dim)
        assert np.array_equal(rows, np.unique(x.indices[5:25]))
        assert np.array_equal(row_map[rows], np.arange(rows.shape[0]))
        untouched = np.setdiff1d(np.arange(x.dim), rows)
        assert np.all(row_map[untouched] == -1)


class TestProcessBackend:
    def test_worker_plan_cache_persists(self, rng):
        x = make_random_tensor(4, 10, 50, rng)
        u = rng.random((10, 3))
        with make_backend("process", 2) as backend:
            cold = ParallelRunReport()
            parallel_s3ttmc(x, u, backend=backend, report=cold)
            assert cold.plan_cache_misses == len(cold.ranges)
            warm = ParallelRunReport()
            parallel_s3ttmc(x, u, backend=backend, report=warm)
            assert warm.plan_cache_misses == 0
            assert warm.plan_cache_hits == len(warm.ranges)

    def test_factor_rewrite_in_place(self, rng):
        """Changed factor values (same shape) reach workers via the shm
        rewrite; results track the new factor."""
        x = make_random_tensor(3, 9, 30, rng)
        u1 = rng.random((9, 2))
        u2 = rng.random((9, 2))
        with make_backend("process", 2) as backend:
            parallel_s3ttmc(x, u1, backend=backend)
            y2 = parallel_s3ttmc(x, u2, backend=backend).unfolding
        assert np.allclose(y2, s3ttmc(x, u2).unfolding, atol=1e-10)

    def test_report_backend_label(self, rng):
        x = make_random_tensor(3, 8, 20, rng)
        u = rng.random((8, 2))
        for name in sorted(BACKENDS):
            report = ParallelRunReport()
            parallel_s3ttmc(x, u, 2, backend=name, report=report)
            assert report.backend == name
            assert report.reduction == "blocked"
            assert report.elapsed > 0


class TestAssignChunks:
    def test_lpt_balances(self):
        assignment = assign_chunks([5.0, 4.0, 3.0, 3.0, 2.0, 1.0], 2)
        loads = [sum([5.0, 4.0, 3.0, 3.0, 2.0, 1.0][i] for i in w) for w in assignment]
        assert abs(loads[0] - loads[1]) <= 2.0
        assert sorted(i for w in assignment for i in w) == list(range(6))

    def test_one_chunk_per_worker(self):
        assignment = assign_chunks([1.0, 1.0, 1.0], 3)
        assert sorted(map(tuple, assignment)) == [(0,), (1,), (2,)]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            assign_chunks([1.0], 0)


class TestReportDefaults:
    def test_all_fields_default(self):
        report = ParallelRunReport()
        assert report.n_workers == 0
        assert report.ranges == []
        assert report.chunk_seconds == []
        assert report.elapsed == 0.0
        assert report.backend == ""
        assert report.plan_cache_hits == 0
        assert report.plan_cache_misses == 0


class TestDecompositionWiring:
    @pytest.mark.parametrize("execution", ["thread", "process"])
    def test_hooi_matches_serial(self, execution, rng):
        x = make_random_tensor(4, 12, 50, rng)
        base = hooi(x, 3, max_iters=3, seed=5)
        got = hooi(x, 3, max_iters=3, seed=5, execution=execution, n_workers=2)
        assert np.allclose(got.factor, base.factor, atol=1e-9)
        assert np.allclose(got.trace.objective, base.trace.objective, atol=1e-9)

    def test_hoqri_matches_serial(self, rng):
        x = make_random_tensor(4, 12, 50, rng)
        base = hoqri(x, 3, max_iters=3, seed=5)
        got = hoqri(x, 3, max_iters=3, seed=5, execution="thread", n_workers=2)
        assert np.allclose(got.factor, base.factor, atol=1e-9)

    def test_warmed_cache_across_iterations(self, rng):
        """5-iteration HOOI on the parallel backend builds each chunk's
        lattice exactly once — iterations 2..5 pay zero symbolic cost."""
        x = make_random_tensor(4, 12, 50, rng)
        with TraceCollector() as col:
            hooi(x, 3, max_iters=5, tol=0.0, seed=5, execution="thread", n_workers=2)
        runs = col.find("parallel.s3ttmc")
        builds = col.find("parallel.plan_build")
        assert len(runs) == 5
        n_chunks = _counter(col, "parallel.plan_cache.misses")
        assert len(builds) == n_chunks  # one build per chunk, ever
        assert _counter(col, "parallel.plan_cache.hits") == 4 * n_chunks

    def test_execution_requires_symprop(self, rng):
        x = make_random_tensor(3, 8, 20, rng)
        with pytest.raises(ValueError, match="symprop"):
            hooi(x, 2, execution="thread", kernel="css")
        with pytest.raises(ValueError, match="symprop"):
            hoqri(x, 2, execution="process", kernel="nary")

    def test_n_workers_requires_parallel_execution(self, rng):
        x = make_random_tensor(3, 8, 20, rng)
        with pytest.raises(ValueError, match="n_workers"):
            hooi(x, 2, n_workers=2)

    def test_unknown_execution(self, rng):
        x = make_random_tensor(3, 8, 20, rng)
        with pytest.raises(ValueError, match="execution"):
            hooi(x, 2, execution="cluster")


class TestShmRunTokens:
    """Satellite regression: the shm registry is thread-safe and segment
    names are namespaced per run token, so two concurrent process-backend
    runs can never collide on a name or free each other's segments."""

    def test_segment_names_namespaced(self, rng):
        token = "cafe0001"
        arr = rng.random(16)
        shm, view, spec = _shm.create_shared_array(arr, run_token=token)
        try:
            assert shm.name.startswith(f"rp{token}-")
            assert len(shm.name) <= 31  # macOS PSHMNAMLEN
            assert shm.name in _shm.live_segments(token)
            assert shm.name not in _shm.live_segments("beef0002")
        finally:
            shm.close()
        swept = _shm.sweep_run_segments(token)
        assert shm.name in swept
        assert _shm.live_segments(token) == set()

    def test_sweep_touches_only_its_own_token(self, rng):
        a, _, _ = _shm.create_shared_array(rng.random(8), run_token="aaaa0001")
        b, _, _ = _shm.create_shared_array(rng.random(8), run_token="bbbb0002")
        try:
            swept = _shm.sweep_run_segments("aaaa0001")
            assert swept == [a.name]
            assert b.name in _shm.live_segments("bbbb0002")
        finally:
            a.close()
            b.close()
            _shm.sweep_run_segments("bbbb0002")

    def test_backends_get_distinct_tokens(self):
        one = make_backend("process", 2)
        two = make_backend("process", 2)
        try:
            assert one.run_token != two.run_token
        finally:
            one.close()
            two.close()

    def test_concurrent_process_backends_no_leak_no_cross_free(self, rng):
        """Two threads each drive their own process backend over s3ttmc
        at the same time: both results match the serial kernel, and the
        registry returns to its starting state — nothing leaked, and
        neither close() freed the other run's segments."""
        before = set(_shm._LIVE_SEGMENTS)
        x1 = make_random_tensor(3, 10, 50, rng)
        x2 = make_random_tensor(4, 9, 40, rng)
        u1 = rng.random((10, 3))
        u2 = rng.random((9, 2))
        results = {}
        errors = []
        gate = threading.Barrier(2)
        # Workers spawn lazily at first execute — i.e. from the two
        # racing threads below. Pre-fix this deadlocked: a fork landing
        # inside the sibling's segment registration cloned a held
        # resource-tracker lock into the child.
        backends = {"one": make_backend("process", 2), "two": make_backend("process", 2)}

        def drive(key, x, u):
            try:
                gate.wait(timeout=60)
                # Run twice so the second call reuses segments created
                # while the sibling run is mid-flight.
                parallel_s3ttmc(x, u, backend=backends[key])
                results[key] = parallel_s3ttmc(x, u, backend=backends[key]).unfolding
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((key, exc))

        threads = [
            threading.Thread(target=drive, args=("one", x1, u1)),
            threading.Thread(target=drive, args=("two", x2, u2)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        for backend in backends.values():
            backend.close()
        assert not errors, errors
        assert np.allclose(results["one"], s3ttmc(x1, u1).unfolding, atol=1e-10)
        assert np.allclose(results["two"], s3ttmc(x2, u2).unfolding, atol=1e-10)
        assert set(_shm._LIVE_SEGMENTS) == before
