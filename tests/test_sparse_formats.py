"""Tests for UCOO, COO, CSS, CSF sparse formats and the prefix trie."""

import numpy as np
import pytest

from repro.formats._trie import build_trie
from repro.formats.coo import COOTensor
from repro.formats.csf import CSFTensor
from repro.formats.css import CSSTensor
from repro.formats.ucoo import SparseSymmetricTensor


class TestUCOO:
    def test_canonicalization(self):
        x = SparseSymmetricTensor(
            3, 6, np.array([[5, 3, 1], [0, 0, 0]]), np.array([2.0, 1.0])
        )
        assert x.indices.tolist() == [[0, 0, 0], [1, 3, 5]]

    def test_counts(self):
        x = SparseSymmetricTensor(
            3, 6, np.array([[1, 3, 5], [1, 1, 3], [2, 2, 2]]), np.ones(3)
        )
        assert x.unnz == 3
        assert x.nnz == 6 + 3 + 1
        assert x.multiplicities().tolist() == [3, 6, 1]  # lex order: (1,1,3),(1,3,5),(2,2,2)

    def test_norm_matches_dense(self, small_tensor):
        d = small_tensor.to_dense()
        assert small_tensor.norm_squared() == pytest.approx((d**2).sum())

    def test_density(self):
        x = SparseSymmetricTensor(2, 2, np.array([[0, 1]]), np.array([1.0]))
        assert x.density() == pytest.approx(2 / 4)

    def test_value_at(self):
        x = SparseSymmetricTensor(3, 6, np.array([[1, 3, 5]]), np.array([2.0]))
        assert x.value_at((5, 1, 3)) == 2.0
        assert x.value_at((5, 5, 5)) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SparseSymmetricTensor(2, 3, np.array([[0, 3]]), np.array([1.0]))
        with pytest.raises(ValueError):
            SparseSymmetricTensor(2, 3, np.array([[-1, 0]]), np.array([1.0]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SparseSymmetricTensor(3, 5, np.array([[0, 1]]), np.array([1.0]))
        with pytest.raises(ValueError):
            SparseSymmetricTensor(2, 5, np.array([[0, 1]]), np.array([1.0, 2.0]))

    def test_empty_tensor(self):
        x = SparseSymmetricTensor(3, 5, np.zeros((0, 3), dtype=int), np.zeros(0))
        assert x.unnz == 0 and x.nnz == 0 and x.norm() == 0.0

    def test_expand_matches_dense(self, small_tensor):
        coo = small_tensor.expand()
        assert coo.nnz == small_tensor.nnz
        assert np.allclose(coo.to_dense(), small_tensor.to_dense())

    def test_permute_values_keeps_pattern(self, small_tensor, rng):
        other = small_tensor.permute_values(rng)
        assert np.array_equal(other.indices, small_tensor.indices)
        assert not np.allclose(other.values, small_tensor.values)


class TestCOO:
    def test_duplicate_rejected(self):
        idx = np.array([[0, 1], [0, 1]])
        with pytest.raises(ValueError):
            COOTensor(2, 3, idx, np.ones(2))

    def test_sort_by_mode_order(self, rng):
        idx = rng.integers(0, 4, size=(10, 3))
        idx = np.unique(idx, axis=0)
        coo = COOTensor(3, 4, idx, rng.random(idx.shape[0]))
        sorted_coo = coo.sort_by_mode_order((2, 0, 1))
        cols = sorted_coo.indices[:, [2, 0, 1]]
        as_tuples = [tuple(r) for r in cols]
        assert as_tuples == sorted(as_tuples)

    def test_sort_invalid_order(self, rng):
        coo = COOTensor(3, 4, np.array([[0, 1, 2]]), np.ones(1))
        with pytest.raises(ValueError):
            coo.sort_by_mode_order((0, 0, 1))


class TestTrie:
    def test_node_counts(self):
        idx = np.array(
            [[0, 0, 1], [0, 0, 2], [0, 1, 1], [2, 0, 0]], dtype=np.int64
        )
        trie = build_trie(idx)
        assert trie.node_counts == [2, 3, 4]
        assert trie.n_entries == 4

    def test_child_ranges_cover_leaves(self):
        idx = np.array([[0, 0], [0, 1], [1, 0], [1, 2], [1, 3]], dtype=np.int64)
        trie = build_trie(idx)
        # root level: values 0,1 with children [0,2) and [2,5) at level 2
        assert trie.values[0].tolist() == [0, 1]
        assert trie.child_ptr[0].tolist() == [0, 2, 5]
        assert trie.values[1].tolist() == [0, 1, 0, 2, 3]
        assert trie.child_ptr[1].tolist() == [0, 1, 2, 3, 4, 5]

    def test_rejects_unsorted(self):
        idx = np.array([[1, 0], [0, 1]], dtype=np.int64)
        with pytest.raises(ValueError):
            build_trie(idx)

    def test_empty(self):
        trie = build_trie(np.zeros((0, 3), dtype=np.int64))
        assert trie.node_counts == [0, 0, 0]

    def test_storage_bytes_positive(self):
        idx = np.array([[0, 1], [0, 2]], dtype=np.int64)
        assert build_trie(idx).storage_bytes() > 0


class TestCSS:
    def test_delegation(self, small_tensor):
        css = CSSTensor.from_ucoo(small_tensor)
        assert css.order == small_tensor.order
        assert css.unnz == small_tensor.unnz
        assert np.array_equal(css.indices, small_tensor.indices)

    def test_prefix_sharing_at_least_one(self, small_tensor):
        css = CSSTensor.from_ucoo(small_tensor)
        assert css.prefix_sharing_ratio() >= 1.0

    def test_from_arrays(self):
        css = CSSTensor.from_arrays(
            2, 4, np.array([[1, 0], [3, 2]]), np.array([1.0, 2.0])
        )
        assert css.indices.tolist() == [[0, 1], [2, 3]]

    def test_node_counts_shared_prefixes(self):
        css = CSSTensor.from_arrays(
            3,
            5,
            np.array([[0, 1, 2], [0, 1, 3], [0, 2, 4]]),
            np.ones(3),
        )
        assert css.node_counts == [1, 2, 3]


class TestCSF:
    def test_from_symmetric_expands(self, small_tensor):
        csf = CSFTensor.from_symmetric(small_tensor)
        assert csf.nnz == small_tensor.nnz

    def test_mode_order_stored(self, small_tensor):
        coo = small_tensor.expand()
        csf = CSFTensor(coo, (1, 0, 2, 3))
        assert csf.mode_order == (1, 0, 2, 3)
        # Permuted indices are lex sorted by the mode order.
        tup = [tuple(r) for r in csf.permuted_indices]
        assert tup == sorted(tup)

    def test_root_nodes_bounded_by_dim(self, small_tensor):
        csf = CSFTensor.from_symmetric(small_tensor)
        assert csf.node_counts[0] <= small_tensor.dim
