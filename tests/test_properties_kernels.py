"""Property-based tests for kernel-level invariants (hypothesis)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import s3ttmc, s3ttmc_tc
from repro.cp import symmetric_mttkrp
from repro.formats import SparseSymmetricTensor
from repro.symmetry.combinatorics import sym_storage_size
from repro.symmetry.permutations import canonicalize

COMMON = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def tensor_and_factor(draw, max_order=4, max_dim=6, max_rank=3, max_nnz=15):
    order = draw(st.integers(2, max_order))
    dim = draw(st.integers(2, max_dim))
    rank = draw(st.integers(1, max_rank))
    n = draw(st.integers(1, max_nnz))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    idx, vals = canonicalize(
        rng.integers(0, dim, size=(n, order)),
        rng.uniform(-1, 1, n) + 0.1,
        combine="first",
    )
    tensor = SparseSymmetricTensor(order, dim, idx, vals, assume_canonical=True)
    factor = rng.uniform(-1, 1, size=(dim, rank))
    return tensor, factor


class TestKernelLinearity:
    """S³TTMc is linear in both the tensor values and the output."""

    @COMMON
    @given(tensor_and_factor(), st.floats(-3, 3))
    def test_value_scaling(self, tf, alpha):
        tensor, factor = tf
        scaled = SparseSymmetricTensor(
            tensor.order,
            tensor.dim,
            tensor.indices,
            alpha * tensor.values,
            assume_canonical=True,
        )
        base = s3ttmc(tensor, factor).unfolding
        got = s3ttmc(scaled, factor).unfolding
        assert np.allclose(got, alpha * base, atol=1e-9)

    @COMMON
    @given(tensor_and_factor())
    def test_additivity_over_nonzero_split(self, tf):
        tensor, factor = tf
        if tensor.unnz < 2:
            return
        half = tensor.unnz // 2
        a = SparseSymmetricTensor(
            tensor.order, tensor.dim, tensor.indices[:half], tensor.values[:half],
            assume_canonical=True,
        )
        b = SparseSymmetricTensor(
            tensor.order, tensor.dim, tensor.indices[half:], tensor.values[half:],
            assume_canonical=True,
        )
        total = s3ttmc(tensor, factor).unfolding
        parts = s3ttmc(a, factor).unfolding + s3ttmc(b, factor).unfolding
        assert np.allclose(total, parts, atol=1e-9)


class TestKernelShapes:
    @COMMON
    @given(tensor_and_factor())
    def test_output_shapes(self, tf):
        tensor, factor = tf
        rank = factor.shape[1]
        y = s3ttmc(tensor, factor)
        assert y.unfolding.shape == (
            tensor.dim,
            sym_storage_size(tensor.order - 1, rank),
        )
        res = s3ttmc_tc(tensor, factor)
        assert res.a.shape == (tensor.dim, rank)
        m = symmetric_mttkrp(tensor, factor)
        assert m.shape == (tensor.dim, rank)

    @COMMON
    @given(tensor_and_factor())
    def test_tc_quadratic_identity(self, tf):
        """A = Y_p M C_pᵀ implies xᵀA y is a valid bilinear form: check the
        trace identity tr(UᵀA) = ‖C‖²_F (with C = Uᵀ·Y)."""
        tensor, factor = tf
        res = s3ttmc_tc(tensor, factor)
        lhs = float(np.trace(factor.T @ res.a))
        rhs = res.core.norm_squared()
        assert np.isclose(lhs, rhs, rtol=1e-8, atol=1e-10)


class TestMTTKRPProperties:
    @COMMON
    @given(tensor_and_factor())
    def test_mttkrp_column_separability(self, tf):
        """Column r of MTTKRP depends only on column r of U."""
        tensor, factor = tf
        full = symmetric_mttkrp(tensor, factor)
        for r in range(factor.shape[1]):
            single = symmetric_mttkrp(tensor, factor[:, r : r + 1])
            assert np.allclose(single[:, 0], full[:, r], atol=1e-10)

    @COMMON
    @given(tensor_and_factor())
    def test_mttkrp_consistent_with_apply(self, tf):
        """Rank-1 MTTKRP equals the symmetric tensor-vector apply."""
        from repro.apps import symmetric_apply

        tensor, factor = tf
        v = factor[:, 0]
        m = symmetric_mttkrp(tensor, v[:, None])
        assert np.allclose(m[:, 0], symmetric_apply(tensor, v), atol=1e-10)
