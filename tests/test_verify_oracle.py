"""Tests for the repro.verify differential oracle itself."""

import numpy as np
import pytest

from repro.verify import Workload, generate, run_case, workloads_for
from repro.verify.__main__ import main as verify_main
from repro.verify.oracles import CheckResult, _compare, max_ulp_diff
from repro.verify.runner import VerifyReport


class TestWorkloadSpecs:
    def test_spec_round_trip(self):
        w = Workload(order=4, dim=9, rank=3, unnz=17, dist="skewed", seed=5)
        assert Workload.from_spec(w.spec) == w

    def test_spec_parsing_accepts_spaces(self):
        w = Workload.from_spec("order=3 dim=6 rank=2 unnz=4 dist=uniform seed=1")
        assert (w.order, w.dim, w.seed) == (3, 6, 1)

    def test_spec_missing_field_raises(self):
        with pytest.raises(ValueError, match="missing"):
            Workload.from_spec("order=3,dim=6")

    def test_unknown_dist_raises(self):
        with pytest.raises(ValueError, match="dist"):
            Workload(order=3, dim=6, rank=2, unnz=4, dist="weird")

    def test_generation_is_seed_deterministic(self):
        w = Workload(order=3, dim=8, rank=3, unnz=15, dist="skewed", seed=9)
        a, b = generate(w), generate(w)
        np.testing.assert_array_equal(a.tensor.indices, b.tensor.indices)
        np.testing.assert_array_equal(a.tensor.values, b.tensor.values)
        np.testing.assert_array_equal(a.factor, b.factor)

    def test_distinct_dist_is_all_distinct(self):
        g = generate(Workload(order=4, dim=8, rank=2, unnz=12, dist="distinct"))
        assert g.all_distinct
        assert (np.diff(g.tensor.indices, axis=1) > 0).all()

    def test_degenerate_dists(self):
        assert generate(Workload(3, 6, 2, 99, dist="empty")).tensor.unnz == 0
        assert generate(Workload(3, 6, 2, 99, dist="single")).tensor.unnz == 1
        eq = generate(Workload(3, 5, 2, 4, dist="allequal")).tensor.indices
        assert (eq == eq[:, :1]).all()

    def test_matrix_contains_degenerates(self):
        specs = workloads_for("smoke", seeds=1)
        dists = {w.dist for w in specs}
        assert {"empty", "single", "allequal", "distinct"} <= dists
        assert {w.order for w in specs} == {3, 4, 5, 6}
        assert any(w.rank == 1 for w in specs)
        assert any(w.dim == 1 for w in specs)

    def test_unknown_config_raises(self):
        with pytest.raises(ValueError, match="config"):
            workloads_for("nightly")


class TestComparisons:
    def test_max_ulp_identical_is_zero(self):
        a = np.array([1.0, -2.5, 0.0])
        assert max_ulp_diff(a, a.copy()) == 0.0

    def test_max_ulp_one_step(self):
        a = np.array([1.0])
        b = np.nextafter(a, 2.0)
        assert max_ulp_diff(a, b) == pytest.approx(1.0)

    def test_bitwise_detects_single_ulp(self):
        a = np.array([1.0, 2.0])
        b = np.array([1.0, np.nextafter(2.0, 3.0)])
        assert _compare("s", "c", "bitwise", a, a.copy()).ok
        r = _compare("s", "c", "bitwise", b, a)
        assert not r.ok and "ulp" in r.detail

    def test_allclose_tolerates_reordering_noise(self):
        a = np.array([1e3, -2e3])
        b = a + 1e-10
        assert _compare("s", "c", "allclose", b, a).ok

    def test_allclose_rejects_real_divergence(self):
        a = np.array([1.0, 2.0])
        r = _compare("s", "c", "allclose", a + 1e-3, a)
        assert not r.ok and "tol" in r.detail

    def test_shape_mismatch_fails(self):
        assert not _compare("s", "c", "allclose", np.ones(2), np.ones(3)).ok

    def test_repro_line_format(self):
        r = CheckResult("order=3,dim=6,rank=2,unnz=4,dist=uniform,seed=1",
                        "plan-reuse", "bitwise", False)
        assert r.repro == (
            'python -m repro.verify --case '
            '"order=3,dim=6,rank=2,unnz=4,dist=uniform,seed=1" '
            '--check plan-reuse'
        )


class TestRunner:
    def test_run_case_all_pass(self):
        results = run_case(Workload(order=3, dim=6, rank=3, unnz=12, seed=2))
        assert results
        bad = [r for r in results if not r.ok]
        assert not bad, "\n".join(r.repro + " " + r.detail for r in bad)
        checks = {r.check for r in results}
        assert "plan-reuse" in checks
        assert "rejects-stale-plan" in checks
        assert "budget-drained" in checks

    def test_run_case_check_filter(self):
        results = run_case(
            Workload(order=3, dim=6, rank=3, unnz=12, seed=2), check="plan-reuse"
        )
        assert [r.check for r in results] == ["plan-reuse"]

    def test_empty_tensor_case(self):
        results = run_case(Workload(order=3, dim=6, rank=3, unnz=0, dist="empty"))
        assert results and all(r.ok for r in results)

    def test_report_failure_formatting(self):
        report = VerifyReport(
            results=[
                CheckResult("spec=x", "good", "bitwise", True),
                CheckResult("spec=x", "bad", "allclose", False, "off by 1"),
            ]
        )
        assert not report.ok
        text = report.format_failures()
        assert "bad" in text and "repro:" in text and "off by 1" in text
        assert "good" not in text
        assert "1 failed" in report.summary()


class TestCli:
    def test_cli_single_case_passes(self, capsys):
        rc = verify_main(
            ["--case", "order=3,dim=6,rank=3,unnz=10,dist=uniform,seed=0"]
        )
        assert rc == 0
        assert "0 failed" in capsys.readouterr().out

    def test_cli_check_filter(self, capsys):
        rc = verify_main(
            [
                "--case",
                "order=3,dim=6,rank=3,unnz=10,dist=uniform,seed=0",
                "--check",
                "plan-reuse",
            ]
        )
        assert rc == 0
        assert "1 checks" in capsys.readouterr().out

    def test_cli_unknown_check_is_distinct_exit_code(self, capsys):
        rc = verify_main(
            [
                "--case",
                "order=3,dim=6,rank=3,unnz=10,dist=uniform,seed=0",
                "--check",
                "no-such-check",
            ]
        )
        assert rc == 2

    def test_cli_bad_spec_errors(self):
        with pytest.raises(SystemExit):
            verify_main(["--case", "order=3"])

    def test_cli_budget_preflight_only(self, capsys):
        rc = verify_main(["--config", "smoke", "--check", "budget-preflight", "-q"])
        assert rc == 0
