"""Checkpoint/resume tests: bit-for-bit continuation, atomic writes,
config fingerprinting, and survival of a SIGKILLed run."""

import json
import os
import signal
import subprocess
import sys

import numpy as np
import pytest

from repro.decomp import hooi, hoqri
from repro.obs.trace import TraceCollector
from repro.runtime.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointState,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
    tensor_fingerprint,
)
from tests.conftest import make_random_tensor


def _state(iteration=0, **overrides):
    base = dict(
        algorithm="hooi",
        iteration=iteration,
        factor=np.arange(6.0).reshape(3, 2),
        prev_objective=1.5,
        norm_x_squared=4.0,
        converged=False,
        objective=[2.0, 1.5],
        relative_error=[0.7, 0.6],
        core_norm_squared=[2.0, 2.5],
        config={"algorithm": "hooi", "rank": 2},
    )
    base.update(overrides)
    return CheckpointState(**base)


class TestCheckpointIO:
    def test_roundtrip(self, tmp_path):
        state = _state(iteration=3, a=np.ones((3, 2)), core_data=np.eye(2), core_nrows=2)
        save_checkpoint(tmp_path, state)
        loaded = load_checkpoint(tmp_path)
        assert loaded is not None
        assert loaded.algorithm == "hooi"
        assert loaded.iteration == 3
        assert np.array_equal(loaded.factor, state.factor)
        assert np.array_equal(loaded.a, state.a)
        assert np.array_equal(loaded.core_data, state.core_data)
        assert loaded.objective == state.objective
        assert loaded.config == state.config

    def test_none_fields_survive(self, tmp_path):
        save_checkpoint(tmp_path, _state())
        loaded = load_checkpoint(tmp_path)
        assert loaded.a is None
        assert loaded.core_data is None

    def test_absent_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path) is None

    def test_rolling_single_file_no_temps(self, tmp_path):
        for it in range(4):
            save_checkpoint(tmp_path, _state(iteration=it))
        assert os.listdir(tmp_path) == [CHECKPOINT_FILENAME]
        assert load_checkpoint(tmp_path).iteration == 3

    def test_failed_write_preserves_previous(self, tmp_path, monkeypatch):
        save_checkpoint(tmp_path, _state(iteration=1))
        import repro.runtime.checkpoint as cp

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(cp.os, "replace", broken_replace)
        with pytest.raises(OSError):
            save_checkpoint(tmp_path, _state(iteration=2))
        monkeypatch.undo()
        # Old checkpoint intact, temp file cleaned up.
        assert os.listdir(tmp_path) == [CHECKPOINT_FILENAME]
        assert load_checkpoint(tmp_path).iteration == 1

    def test_version_mismatch_rejected(self, tmp_path):
        save_checkpoint(tmp_path, _state())
        target = checkpoint_path(tmp_path)
        with np.load(target) as data:
            arrays = {name: data[name] for name in data.files}
        meta = json.loads(bytes(arrays["meta_json"]).decode("utf-8"))
        meta["version"] = 999
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez(target, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(tmp_path)

    def test_check_config_mismatch(self):
        state = _state()
        state.check_config({"algorithm": "hooi", "rank": 2})  # no raise
        with pytest.raises(ValueError, match="rank"):
            state.check_config({"rank": 3})
        with pytest.raises(ValueError, match="kernel"):
            state.check_config({"kernel": "symprop"})  # missing key

    def test_observability(self, tmp_path):
        with TraceCollector() as col:
            save_checkpoint(tmp_path, _state())
            load_checkpoint(tmp_path)
        assert col.metrics.counter("checkpoint.saves").value == 1
        assert col.metrics.counter("checkpoint.loads").value == 1
        assert len(col.find("checkpoint.save")) == 1
        assert len(col.find("checkpoint.load")) == 1
        assert col.metrics.gauge("checkpoint.bytes").max > 0


class TestDriverResume:
    @pytest.mark.parametrize("driver", [hooi, hoqri])
    def test_resume_bit_for_bit(self, driver, tmp_path, rng):
        x = make_random_tensor(4, 12, 50, rng)
        ref = driver(x, 3, max_iters=5, tol=0.0, seed=5)
        # "Killed" after 2 iterations, resumed for the remaining 3.
        driver(x, 3, max_iters=2, tol=0.0, seed=5, checkpoint_dir=tmp_path)
        got = driver(
            x, 3, max_iters=5, tol=0.0, seed=5,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert np.array_equal(got.factor, ref.factor)
        assert np.array_equal(got.core.data, ref.core.data)
        assert got.trace.objective == ref.trace.objective
        assert got.trace.relative_error == ref.trace.relative_error

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path, rng):
        x = make_random_tensor(3, 10, 40, rng)
        ref = hooi(x, 2, max_iters=3, tol=0.0, seed=1)
        got = hooi(
            x, 2, max_iters=3, tol=0.0, seed=1,
            checkpoint_dir=tmp_path, resume=True,  # empty dir: nothing to resume
        )
        assert np.array_equal(got.factor, ref.factor)

    def test_config_mismatch_rejected(self, tmp_path, rng):
        x = make_random_tensor(3, 10, 40, rng)
        hooi(x, 3, max_iters=2, seed=1, checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="rank"):
            hooi(x, 2, max_iters=2, seed=1, checkpoint_dir=tmp_path, resume=True)
        with pytest.raises(ValueError, match="algorithm"):
            hoqri(x, 3, max_iters=2, seed=1, checkpoint_dir=tmp_path, resume=True)

    def test_different_tensor_rejected(self, tmp_path, rng):
        x = make_random_tensor(3, 10, 40, rng)
        other = make_random_tensor(3, 10, 40, rng, distinct=True)
        hooi(x, 2, max_iters=2, seed=1, checkpoint_dir=tmp_path)
        with pytest.raises(ValueError):
            hooi(other, 2, max_iters=2, seed=1, checkpoint_dir=tmp_path, resume=True)

    def test_converged_checkpoint_short_circuits(self, tmp_path, rng):
        x = make_random_tensor(3, 10, 40, rng)
        first = hooi(x, 2, max_iters=30, tol=1e-4, seed=1, checkpoint_dir=tmp_path)
        assert first.converged
        with TraceCollector() as col:
            resumed = hooi(
                x, 2, max_iters=30, tol=1e-4, seed=1,
                checkpoint_dir=tmp_path, resume=True,
            )
        assert resumed.converged
        assert np.array_equal(resumed.factor, first.factor)
        assert np.array_equal(resumed.core.data, first.core.data)
        assert resumed.trace.objective == first.trace.objective
        assert col.find("hooi.iteration") == []  # no work re-done

    def test_checkpoint_every_still_writes_final(self, tmp_path, rng):
        x = make_random_tensor(3, 10, 40, rng)
        hooi(
            x, 2, max_iters=5, tol=0.0, seed=1,
            checkpoint_dir=tmp_path, checkpoint_every=3,
        )
        state = load_checkpoint(tmp_path)
        assert state.iteration == 4  # final iteration always checkpointed

    def test_fingerprint_fields(self, rng):
        x = make_random_tensor(3, 10, 40, rng)
        fp = tensor_fingerprint(x)
        assert fp == {
            "dim": 10,
            "order": 3,
            "unnz": x.unnz,
            "values_sum": float(np.sum(x.values)),
        }


_KILLED_CHILD = """
import importlib
import os
import signal
import sys
import numpy as np
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
# importlib, not `import repro.decomp.hooi`: the package re-exports the
# `hooi` *function* under the same name, shadowing the submodule.
hooi_mod = importlib.import_module("repro.decomp.hooi")
from tests.conftest import make_random_tensor

# SIGKILL ourselves the instant the iteration-2 checkpoint hits disk:
# no atexit, no cleanup, no warning — exactly a hard kill mid-sweep.
real_save = hooi_mod.save_checkpoint
def dying_save(directory, state, *, ctx=None):
    path = real_save(directory, state, ctx=ctx)
    if state.iteration >= 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return path
hooi_mod.save_checkpoint = dying_save

rng = np.random.default_rng(20250704)
x = make_random_tensor(4, 12, 50, rng)
hooi_mod.hooi(x, 3, max_iters=6, tol=0.0, seed=5, checkpoint_dir={ckpt!r})
"""


class TestKilledRunResume:
    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        """A checkpointing run SIGKILLed mid-sweep resumes to the exact
        result of an uninterrupted run (acceptance criterion)."""
        ckpt = tmp_path / "ckpt"
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        code = _KILLED_CHILD.format(src=src, root=root, ckpt=str(ckpt))
        proc = subprocess.run(
            [sys.executable, "-c", code],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            cwd=root,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        state = load_checkpoint(ckpt)
        assert state is not None
        assert state.iteration == 2  # died right after this checkpoint
        assert not state.converged
        local_rng = np.random.default_rng(20250704)
        x = make_random_tensor(4, 12, 50, local_rng)
        ref = hooi(x, 3, max_iters=6, tol=0.0, seed=5)
        resumed = hooi(
            x, 3, max_iters=6, tol=0.0, seed=5,
            checkpoint_dir=ckpt, resume=True,
        )
        assert np.array_equal(resumed.factor, ref.factor)
        assert np.array_equal(resumed.core.data, ref.core.data)
        assert resumed.trace.objective == ref.trace.objective
