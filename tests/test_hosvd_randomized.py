"""Tests for the randomized HOSVD extension."""

import numpy as np
import pytest

from repro.data import planted_lowrank, random_sparse_symmetric
from repro.decomp.hosvd import hosvd_init
from repro.runtime.budget import MemoryBudget, MemoryLimitError


class TestRandomizedHosvd:
    def test_matches_exact_on_lowrank(self):
        """On a (noisy) low-rank tensor the randomized subspace matches."""
        x = planted_lowrank(3, 25, 3, None, noise=0.01, seed=0)
        exact = hosvd_init(x, 3, method="gram")
        approx = hosvd_init(x, 3, method="randomized", seed=1, n_power_iters=6)
        p_exact = exact @ exact.T
        p_approx = approx @ approx.T
        assert np.linalg.norm(p_exact - p_approx) < 1e-6

    def test_orthonormal(self):
        x = random_sparse_symmetric(4, 30, 200, seed=2)
        u = hosvd_init(x, 4, method="randomized", seed=0)
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-10)

    def test_energy_close_to_exact_on_random_data(self):
        """Captured spectral energy within a few percent of exact HOSVD."""
        x = random_sparse_symmetric(3, 40, 300, seed=3)
        x1 = x.to_dense().reshape(40, -1)
        exact = hosvd_init(x, 5, method="gram")
        approx = hosvd_init(x, 5, method="randomized", seed=0, n_power_iters=8)
        e_exact = np.linalg.norm(exact.T @ x1) ** 2
        e_approx = np.linalg.norm(approx.T @ x1) ** 2
        assert e_approx >= 0.95 * e_exact

    def test_avoids_gram_memory_wall(self):
        """randomized fits a budget where the dense Gram cannot."""
        x = random_sparse_symmetric(3, 3000, 500, seed=4)
        budget = 30 * 2**20  # Gram: 3000^2 * 8 = 72 MB > 30 MB
        with MemoryBudget(limit_bytes=budget):
            with pytest.raises(MemoryLimitError):
                hosvd_init(x, 4, method="gram")
        with MemoryBudget(limit_bytes=budget):
            u = hosvd_init(x, 4, method="randomized", seed=0)
        assert u.shape == (3000, 4)

    def test_deterministic_by_seed(self):
        x = random_sparse_symmetric(3, 20, 80, seed=5)
        a = hosvd_init(x, 3, method="randomized", seed=7)
        b = hosvd_init(x, 3, method="randomized", seed=7)
        assert np.array_equal(a, b)

    def test_unknown_method(self):
        x = random_sparse_symmetric(3, 10, 20, seed=6)
        with pytest.raises(ValueError):
            hosvd_init(x, 2, method="lanczos")

    def test_used_as_decomposition_init(self):
        from repro.decomp import hoqri

        x = random_sparse_symmetric(3, 25, 120, seed=8)
        u0 = hosvd_init(x, 3, method="randomized", seed=0)
        res = hoqri(x, 3, max_iters=5, init=u0)
        assert res.iterations >= 1
