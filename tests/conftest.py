"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import SparseSymmetricTensor


#: Per-test deadline for the supervision/recovery suites. A regression in
#: hang detection or worker respawn would otherwise wedge the whole run —
#: precisely the suites where a deadlock is a plausible failure mode.
_TIMEOUT_FILES = {
    "test_faults.py",
    "test_checkpoint.py",
    "test_parallel_backends.py",
    "test_serve.py",
}
_TIMEOUT_SECONDS = 120


def pytest_collection_modifyitems(config, items):
    # pytest-timeout is an optional extra (not in every environment);
    # only attach markers when the plugin is present, so the suite runs
    # unchanged — just without deadlines — where it isn't installed.
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.path.name in _TIMEOUT_FILES and item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(_TIMEOUT_SECONDS, method="thread"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20250704)


def make_random_tensor(
    order: int,
    dim: int,
    n_draws: int,
    rng: np.random.Generator,
    *,
    distinct: bool = False,
) -> SparseSymmetricTensor:
    """Random sparse symmetric tensor for tests.

    ``distinct=True`` forces every non-zero to have all-distinct index
    values (the regime where the closed-form complexity model is exact).
    """
    if distinct:
        if dim < order:
            raise ValueError("dim must be >= order for distinct draws")
        raw = np.stack(
            [rng.choice(dim, size=order, replace=False) for _ in range(n_draws)]
        )
    else:
        raw = rng.integers(0, dim, size=(n_draws, order))
    values = rng.uniform(0.1, 1.0, size=n_draws)
    return SparseSymmetricTensor(order, dim, raw, values, combine="first")


@pytest.fixture
def small_tensor(rng) -> SparseSymmetricTensor:
    """Order-4 tensor small enough for dense reference checks."""
    return make_random_tensor(4, 6, 30, rng)
