"""Tests for the hypergraph substrate: structure, adjacency, clustering."""

import numpy as np
import pytest

from repro.hypergraph import (
    Hypergraph,
    adjacency_tensor,
    cluster_factor,
    dummy_node_count,
    kmeans,
    normalized_mutual_information,
    planted_partition_hypergraph,
    uniform_random_hypergraph,
)
from repro.symmetry.iou import is_iou


class TestHypergraph:
    def test_dedup_and_weights(self):
        hg = Hypergraph(5, [(0, 1), (1, 0), (2, 3, 4)], [1.0, 2.0, 1.5])
        assert hg.n_edges == 2
        assert hg.weights.tolist() == [3.0, 1.5]

    def test_node_range_validation(self):
        with pytest.raises(ValueError):
            Hypergraph(3, [(0, 5)])

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(3, [()])

    def test_cardinalities_and_degree(self):
        hg = Hypergraph(4, [(0, 1), (0, 1, 2), (3,)])
        assert sorted(hg.cardinalities().tolist()) == [1, 2, 3]
        assert hg.max_cardinality() == 3
        deg = hg.degree()
        assert deg[0] == 2 and deg[3] == 1

    def test_restrict_cardinality(self):
        hg = Hypergraph(5, [(0, 1), (0, 1, 2), (0, 1, 2, 3)])
        small = hg.restrict_cardinality(2)
        assert small.n_edges == 1

    def test_duplicate_nodes_in_edge_collapse(self):
        hg = Hypergraph(4, [(1, 1, 2)])
        assert hg.edges[0] == (1, 2)


class TestAdjacency:
    def test_basic_construction(self):
        hg = Hypergraph(4, [(0, 1, 2), (1, 3)])
        t = adjacency_tensor(hg, 3)
        assert t.order == 3
        # one dummy node pads the cardinality-2 edge
        assert dummy_node_count(hg, 3) == 1
        assert t.dim == 5
        assert t.unnz == 2
        assert np.all(is_iou(t.indices))

    def test_padding_uses_distinct_dummies(self):
        hg = Hypergraph(3, [(0,)])
        t = adjacency_tensor(hg, 4)
        row = t.indices[0]
        assert row.tolist() == [0, 3, 4, 5]

    def test_default_order_is_max_cardinality(self):
        hg = Hypergraph(5, [(0, 1), (0, 1, 2, 3)])
        t = adjacency_tensor(hg)
        assert t.order == 4

    def test_restrict_drops_big_edges(self):
        hg = Hypergraph(5, [(0, 1), (0, 1, 2, 3, 4)])
        t = adjacency_tensor(hg, 3)
        assert t.unnz == 1

    def test_no_restrict_raises(self):
        hg = Hypergraph(5, [(0, 1, 2, 3)])
        with pytest.raises(ValueError):
            adjacency_tensor(hg, 3, restrict=False)

    def test_weights_preserved(self):
        hg = Hypergraph(3, [(0, 1), (1, 2)], [2.0, 5.0])
        t = adjacency_tensor(hg, 2)
        assert sorted(t.values.tolist()) == [2.0, 5.0]


class TestGenerators:
    def test_planted_partition_labels(self):
        hg, labels = planted_partition_hypergraph(60, 100, 3, seed=0)
        assert labels.shape == (60,)
        assert set(np.unique(labels)) == {0, 1, 2}
        assert hg.n_edges > 50  # dedup loses a few

    def test_cardinality_bounds(self):
        hg, _ = planted_partition_hypergraph(
            50, 80, 2, min_cardinality=3, max_cardinality=5, seed=1
        )
        cards = hg.cardinalities()
        assert cards.min() >= 2  # duplicate node collapse can shrink by one
        assert cards.max() <= 5

    def test_uniform_random(self):
        hg = uniform_random_hypergraph(30, 50, seed=2)
        assert hg.n_nodes == 30
        assert hg.n_edges > 25

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            planted_partition_hypergraph(2, 10, 5)
        with pytest.raises(ValueError):
            planted_partition_hypergraph(10, 10, 2, min_cardinality=4, max_cardinality=2)


class TestKmeans:
    def test_separated_clusters(self, rng):
        a = rng.normal(0, 0.1, size=(30, 2))
        b = rng.normal(5, 0.1, size=(30, 2)) + np.array([5.0, 0.0])
        pts = np.vstack([a, b])
        labels, centers, inertia = kmeans(pts, 2, seed=0)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[-1]

    def test_k_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.random((5, 2)), 6)

    def test_k_equals_n(self, rng):
        pts = rng.random((4, 2))
        labels, _, inertia = kmeans(pts, 4, seed=0)
        assert inertia == pytest.approx(0.0, abs=1e-12)


class TestNMI:
    def test_perfect_match(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(a, a) == pytest.approx(1.0)

    def test_label_permutation_invariant(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 0])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_labels_low(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert normalized_mutual_information(a, b) < 0.02

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.zeros(3), np.zeros(4))


class TestEndToEndClustering:
    def test_tucker_recovers_communities(self):
        """The motivating application: hypergraph community detection."""
        from repro.decomp import hoqri

        hg, labels = planted_partition_hypergraph(
            80, 900, 3, min_cardinality=2, max_cardinality=3, p_intra=0.95, seed=7
        )
        tensor = adjacency_tensor(hg, 3)
        res = hoqri(tensor, 3, max_iters=60, seed=7)
        pred = cluster_factor(res.factor, 3, n_real_nodes=hg.n_nodes, seed=7)
        nmi = normalized_mutual_information(pred, labels)
        assert nmi > 0.5
