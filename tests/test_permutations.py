"""Tests for multiset permutation expansion and canonicalization."""

import itertools
import math

import numpy as np
import pytest

from repro.symmetry.permutations import (
    canonicalize,
    count_expanded,
    distinct_permutations,
    expand_iou,
)


class TestDistinctPermutations:
    def test_all_distinct(self):
        perms = list(distinct_permutations((1, 3, 5)))
        assert len(perms) == 6
        assert perms == sorted(set(itertools.permutations((1, 3, 5))))

    def test_with_repeats(self):
        perms = list(distinct_permutations((1, 1, 3)))
        assert perms == [(1, 1, 3), (1, 3, 1), (3, 1, 1)]

    def test_all_equal(self):
        assert list(distinct_permutations((2, 2, 2))) == [(2, 2, 2)]

    def test_empty(self):
        assert list(distinct_permutations(())) == [()]

    def test_unsorted_input(self):
        assert list(distinct_permutations((3, 1))) == [(1, 3), (3, 1)]

    @pytest.mark.parametrize("tup", [(0, 1, 1, 2), (4, 4, 4, 1), (0, 1, 2, 3)])
    def test_count_matches_multinomial(self, tup):
        from collections import Counter

        expected = math.factorial(len(tup))
        for c in Counter(tup).values():
            expected //= math.factorial(c)
        assert len(list(distinct_permutations(tup))) == expected


class TestExpandIou:
    def test_expansion(self):
        idx = np.array([[1, 1, 3], [0, 2, 5]])
        vals = np.array([2.0, 3.0])
        out_idx, out_vals, owner = expand_iou(idx, vals)
        assert out_idx.shape == (3 + 6, 3)
        assert np.allclose(out_vals[:3], 2.0) and np.allclose(out_vals[3:], 3.0)
        assert owner.tolist() == [0, 0, 0, 1, 1, 1, 1, 1, 1]
        # sorted rows reproduce originals (np.unique lex-sorts its output)
        assert np.array_equal(
            np.unique(np.sort(out_idx, axis=1), axis=0), np.array([[0, 2, 5], [1, 1, 3]])
        )

    def test_count(self):
        idx = np.array([[1, 1, 3], [0, 2, 5], [4, 4, 4]])
        assert count_expanded(idx) == 3 + 6 + 1

    def test_empty(self):
        out_idx, out_vals, owner = expand_iou(
            np.zeros((0, 3), dtype=int), np.zeros(0)
        )
        assert out_idx.shape == (0, 3)
        assert count_expanded(np.zeros((0, 3), dtype=int)) == 0


class TestCanonicalize:
    def test_sorts_rows_and_lex_orders(self):
        idx = np.array([[3, 1, 1], [5, 0, 2]])
        vals = np.array([2.0, 3.0])
        out_idx, out_vals = canonicalize(idx, vals)
        assert out_idx.tolist() == [[0, 2, 5], [1, 1, 3]]
        assert out_vals.tolist() == [3.0, 2.0]

    def test_duplicate_error(self):
        idx = np.array([[1, 2], [2, 1]])
        with pytest.raises(ValueError, match="duplicate"):
            canonicalize(idx, np.array([1.0, 2.0]))

    def test_duplicate_sum(self):
        idx = np.array([[1, 2], [2, 1], [0, 0]])
        out_idx, out_vals = canonicalize(idx, np.array([1.0, 2.0, 5.0]), combine="sum")
        assert out_idx.tolist() == [[0, 0], [1, 2]]
        assert out_vals.tolist() == [5.0, 3.0]

    def test_duplicate_first_last(self):
        idx = np.array([[1, 2], [2, 1]])
        _, first = canonicalize(idx, np.array([1.0, 2.0]), combine="first")
        _, last = canonicalize(idx, np.array([1.0, 2.0]), combine="last")
        assert first.tolist() == [1.0]
        assert last.tolist() == [2.0]

    def test_unknown_combine(self):
        idx = np.array([[1, 2], [2, 1]])
        with pytest.raises(ValueError, match="combine"):
            canonicalize(idx, np.array([1.0, 2.0]), combine="mean")

    def test_empty(self):
        out_idx, out_vals = canonicalize(np.zeros((0, 3), dtype=int), np.zeros(0))
        assert out_idx.shape == (0, 3)

    def test_idempotent(self, rng):
        idx = rng.integers(0, 5, size=(20, 3))
        vals = rng.random(20)
        a_idx, a_vals = canonicalize(idx, vals, combine="sum")
        b_idx, b_vals = canonicalize(a_idx, a_vals, combine="error")
        assert np.array_equal(a_idx, b_idx)
        assert np.allclose(a_vals, b_vals)
