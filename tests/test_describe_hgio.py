"""Tests for tensor statistics and hypergraph I/O."""

import io

import numpy as np
import pytest

from repro.data import describe, random_sparse_symmetric
from repro.formats import SparseSymmetricTensor
from repro.hypergraph import Hypergraph, read_hyperedges, write_hyperedges


class TestDescribe:
    def test_counts(self):
        x = SparseSymmetricTensor(
            3, 6, np.array([[1, 3, 5], [1, 1, 3], [2, 2, 2]]), np.array([1.0, 2.0, 0.5])
        )
        summary = describe(x)
        assert summary.unnz == 3
        assert summary.nnz == 10
        assert summary.expansion_factor == pytest.approx(10 / 3)
        assert summary.distinct_values_histogram == {1: 1, 2: 1, 3: 1}
        assert summary.touched_indices == 4  # {1, 2, 3, 5}
        assert summary.max_index_degree == 3  # index 1 appears 3 times
        assert summary.value_min == 0.5 and summary.value_max == 2.0

    def test_density_bounds(self):
        x = random_sparse_symmetric(4, 15, 100, seed=0)
        summary = describe(x)
        assert 0 < summary.density < 1
        assert 0 < summary.iou_density <= 1
        assert summary.density <= summary.iou_density * 1.0001 * summary.expansion_factor

    def test_empty_tensor(self):
        x = SparseSymmetricTensor(3, 5, np.zeros((0, 3), dtype=int), np.zeros(0))
        summary = describe(x)
        assert summary.unnz == 0 and summary.nnz == 0
        assert summary.expansion_factor == 0.0

    def test_str_renders(self):
        x = random_sparse_symmetric(3, 10, 20, seed=1)
        text = str(describe(x))
        assert "order=3" in text and "expansion" in text


class TestHypergraphIO:
    def test_roundtrip(self):
        hg = Hypergraph(6, [(0, 1, 2), (3, 4), (0, 5)], [1.0, 2.5, 1.0])
        buf = io.StringIO()
        write_hyperedges(hg, buf)
        buf.seek(0)
        back = read_hyperedges(buf)
        assert back.n_nodes == 6
        assert back.edges == hg.edges
        assert np.allclose(back.weights, hg.weights)

    def test_file_roundtrip(self, tmp_path):
        hg = Hypergraph(4, [(0, 1), (2, 3)])
        path = tmp_path / "edges.txt"
        write_hyperedges(hg, path)
        back = read_hyperedges(path)
        assert back.edges == hg.edges

    def test_weights_preserved_exactly(self):
        hg = Hypergraph(3, [(0, 1)], [0.123456789012345])
        buf = io.StringIO()
        write_hyperedges(hg, buf)
        buf.seek(0)
        assert read_hyperedges(buf).weights[0] == hg.weights[0]

    def test_n_nodes_inference(self):
        back = read_hyperedges(io.StringIO("1 2\n3 4 5\n"))
        assert back.n_nodes == 5

    def test_n_nodes_override(self):
        back = read_hyperedges(io.StringIO("1 2\n"), n_nodes=10)
        assert back.n_nodes == 10

    def test_bad_id_rejected(self):
        with pytest.raises(ValueError, match="bad node id"):
            read_hyperedges(io.StringIO("1 x\n"))

    def test_comments_skipped(self):
        back = read_hyperedges(io.StringIO("# a comment\n\n1 2\n"))
        assert back.n_edges == 1

    def test_roundtrip_through_adjacency(self):
        """File → hypergraph → adjacency tensor pipeline."""
        from repro.hypergraph import adjacency_tensor

        text = "# nodes: 5\n1 2 3\n4 5\n"
        hg = read_hyperedges(io.StringIO(text))
        t = adjacency_tensor(hg, 3)
        assert t.unnz == 2
