"""Tests for partitioning, the threaded executor, and the scaling simulator."""

import numpy as np
import pytest

from repro.core import s3ttmc
from repro.parallel import (
    ParallelRunReport,
    balanced_partition,
    block_partition,
    contention_factor,
    estimate_nonzero_costs,
    lpt_makespan,
    measure_chunk_costs,
    parallel_s3ttmc,
    simulate_curve,
    simulate_time,
)
from tests.conftest import make_random_tensor


class TestPartition:
    def test_block_covers_range(self):
        parts = block_partition(10, 3)
        assert parts[0][0] == 0 and parts[-1][1] == 10
        assert all(a <= b for a, b in parts)
        assert sum(b - a for a, b in parts) == 10

    def test_block_more_parts_than_items(self):
        parts = block_partition(2, 5)
        assert sum(b - a for a, b in parts) == 2

    def test_balanced_equalizes_cost(self, rng):
        costs = np.ones(100)
        costs[:10] = 50.0  # heavy head
        parts = balanced_partition(costs, 4)
        totals = [costs[a:b].sum() for a, b in parts]
        assert max(totals) <= costs.sum() / 4 + 50.0 + 1e-9

    def test_balanced_covers_all(self, rng):
        costs = rng.random(57)
        parts = balanced_partition(costs, 8)
        assert parts[0][0] == 0 and parts[-1][1] == 57
        for (a1, b1), (a2, b2) in zip(parts, parts[1:]):
            assert b1 == a2

    def test_empty_costs(self):
        assert balanced_partition(np.zeros(0), 3) == [(0, 0)] * 3

    def test_cost_estimate_monotone_in_distinct_values(self):
        idx = np.array([[0, 1, 2, 3], [0, 0, 1, 2], [0, 0, 0, 0]])
        costs = estimate_nonzero_costs(idx, rank=3)
        assert costs[0] > costs[1] > costs[2]


class TestParallelExecutor:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial(self, workers, rng):
        x = make_random_tensor(4, 10, 60, rng)
        u = rng.random((10, 3))
        serial = s3ttmc(x, u).unfolding
        parallel = parallel_s3ttmc(x, u, workers).unfolding
        assert np.allclose(parallel, serial, atol=1e-10)

    def test_report_filled(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        u = rng.random((8, 2))
        report = ParallelRunReport(0, [], [], 0.0)
        parallel_s3ttmc(x, u, 3, report=report)
        assert report.n_workers == 3
        assert len(report.ranges) <= 3
        assert all(t >= 0 for t in report.chunk_seconds)

    def test_measure_chunk_costs(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        u = rng.random((8, 2))
        costs = measure_chunk_costs(x, u, 4)
        assert len(costs) <= 4
        assert all(c > 0 for c in costs)


class TestSimulator:
    def test_lpt_single_worker_is_sum(self):
        costs = [3.0, 1.0, 2.0]
        assert lpt_makespan(costs, 1) == pytest.approx(6.0)

    def test_lpt_perfect_split(self):
        assert lpt_makespan([1.0] * 8, 4) == pytest.approx(2.0)

    def test_lpt_bounded_below_by_max(self):
        assert lpt_makespan([5.0, 1.0, 1.0], 4) == pytest.approx(5.0)

    def test_contention_grows_with_threads(self):
        assert contention_factor(32, 100) > contention_factor(2, 100)

    def test_contention_shrinks_with_width(self):
        assert contention_factor(32, 10_000) < contention_factor(32, 10)

    def test_calibration_endpoints(self):
        """The model reproduces the two published Fig. 6 endpoints."""
        costs = [1.0] * 256  # abundant, perfectly divisible work
        wide = simulate_curve(costs, [32], row_width=11_440)  # walmart r10
        narrow = simulate_curve(costs, [32], row_width=28)  # 7D r3
        assert wide.speedups[0] == pytest.approx(27.6, abs=0.5)
        assert narrow.speedups[0] == pytest.approx(18.6, abs=0.5)

    def test_speedup_monotone(self):
        costs = list(np.random.default_rng(0).random(128) + 0.5)
        curve = simulate_curve(costs, [1, 2, 4, 8, 16, 32], row_width=500)
        assert curve.speedups[0] == pytest.approx(1.0, abs=0.02)
        for a, b in zip(curve.speedups, curve.speedups[1:]):
            assert b >= a - 1e-9

    def test_serial_fraction_limits_speedup(self):
        costs = [1.0] * 64
        free = simulate_time(costs, 32, 10_000)
        with_serial = simulate_time(costs, 32, 10_000, serial_seconds=10.0)
        assert with_serial >= free + 10.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            lpt_makespan([1.0], 0)
