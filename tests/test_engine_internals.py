"""Targeted tests for the evaluation engine's internal code paths."""

import numpy as np
import pytest

from repro.baselines.css_ttmc import css_s3ttmc
from repro.baselines.dense_ref import dense_s3ttmc_matrix
from repro.core import s3ttmc
from repro.core._segment import scatter_add_rows, segment_sum_by_ptr
from repro.core.engine import lattice_ttmc
from tests.conftest import make_random_tensor


class TestSegmentHelpers:
    def test_segment_sum_basic(self):
        data = np.arange(12, dtype=float).reshape(6, 2)
        ptr = np.array([0, 2, 5, 6])
        out = segment_sum_by_ptr(data, ptr)
        assert np.allclose(out[0], data[0:2].sum(axis=0))
        assert np.allclose(out[1], data[2:5].sum(axis=0))
        assert np.allclose(out[2], data[5:6].sum(axis=0))

    def test_segment_sum_empty_segment(self):
        data = np.ones((3, 2))
        ptr = np.array([0, 1, 1, 3])
        out = segment_sum_by_ptr(data, ptr)
        assert np.allclose(out[0], [1, 1])
        assert np.allclose(out[1], [0, 0])
        assert np.allclose(out[2], [2, 2])

    def test_segment_sum_no_segments(self):
        out = segment_sum_by_ptr(np.ones((0, 3)), np.array([0]))
        assert out.shape == (0, 3)

    def test_scatter_add_duplicates(self):
        out = np.zeros((4, 2))
        rows = np.array([1, 1, 3, 0, 1])
        contrib = np.arange(10, dtype=float).reshape(5, 2)
        scatter_add_rows(out, rows, contrib)
        expected = np.zeros((4, 2))
        for r, c in zip(rows, contrib):
            expected[r] += c
        assert np.allclose(out, expected)

    def test_scatter_add_empty(self):
        out = np.ones((2, 2))
        scatter_add_rows(out, np.zeros(0, dtype=int), np.zeros((0, 2)))
        assert np.allclose(out, 1.0)

    def test_scatter_accumulates_into_existing(self):
        out = np.ones((3, 1))
        scatter_add_rows(out, np.array([2]), np.array([[5.0]]))
        assert out[2, 0] == 6.0


class TestEngineChunking:
    @pytest.mark.parametrize("block_bytes", [64, 1024, 65536])
    def test_tiny_blocks_exact(self, block_bytes, rng):
        """Node-chunking at absurdly small block sizes stays exact."""
        x = make_random_tensor(5, 8, 40, rng)
        u = rng.random((8, 3))
        ref = dense_s3ttmc_matrix(x, u)
        got = s3ttmc(x, u, block_bytes=block_bytes).to_full_unfolding()
        assert np.allclose(got, ref, atol=1e-10)

    def test_full_layout_hoist_fallback(self, rng):
        """Tiny block_bytes forces the non-hoisted 2-D gather path for the
        full layout (hoist tables would exceed 2x block budget)."""
        x = make_random_tensor(4, 10, 30, rng)
        u = rng.random((10, 4))
        ref = dense_s3ttmc_matrix(x, u)
        got = css_s3ttmc(x, u, block_bytes=2048)
        assert np.allclose(got, ref, atol=1e-10)

    def test_out_accumulation(self, rng):
        """Passing `out=` accumulates into the given buffer."""
        x = make_random_tensor(3, 6, 15, rng)
        u = rng.random((6, 2))
        y1 = s3ttmc(x, u).unfolding
        out = y1.copy()
        lattice_ttmc(x.indices, x.values, x.dim, u, out=out)
        assert np.allclose(out, 2 * y1)

    def test_out_shape_validation(self, rng):
        x = make_random_tensor(3, 6, 15, rng)
        u = rng.random((6, 2))
        with pytest.raises(ValueError):
            lattice_ttmc(x.indices, x.values, x.dim, u, out=np.zeros((6, 5)))

    def test_plan_order_mismatch(self, rng):
        from repro.core.plan import build_plan

        x3 = make_random_tensor(3, 6, 10, rng)
        x4 = make_random_tensor(4, 6, 10, rng)
        plan3 = build_plan(x3.indices)
        u = rng.random((6, 2))
        with pytest.raises(ValueError):
            lattice_ttmc(x4.indices, x4.values, 6, u, plan=plan3)

    def test_unknown_layout(self, rng):
        x = make_random_tensor(3, 6, 10, rng)
        with pytest.raises(ValueError):
            lattice_ttmc(x.indices, x.values, 6, rng.random((6, 2)), intermediate="banded")


class TestOutRowMap:
    def test_compact_row_block_matches_full(self, rng):
        """out_row_map writes each global row into its local slot."""
        from repro.parallel import chunk_row_block

        x = make_random_tensor(4, 12, 50, rng)
        u = rng.random((12, 3))
        start, stop = 5, min(30, x.unnz)
        full = lattice_ttmc(x.indices[start:stop], x.values[start:stop], x.dim, u)
        rows, row_map = chunk_row_block(x.indices[start:stop], x.dim)
        out = np.zeros((rows.shape[0], full.shape[1]))
        lattice_ttmc(
            x.indices[start:stop],
            x.values[start:stop],
            x.dim,
            u,
            out=out,
            out_row_map=row_map,
        )
        assert np.allclose(out, full[rows], atol=1e-12)
        untouched = np.setdiff1d(np.arange(x.dim), rows)
        assert np.allclose(full[untouched], 0.0)

    def test_row_map_requires_out(self, rng):
        x = make_random_tensor(3, 6, 15, rng)
        u = rng.random((6, 2))
        row_map = np.arange(6, dtype=np.int64)
        with pytest.raises(ValueError):
            lattice_ttmc(x.indices, x.values, x.dim, u, out_row_map=row_map)

    def test_row_map_shape_validation(self, rng):
        x = make_random_tensor(3, 6, 15, rng)
        u = rng.random((6, 2))
        out = np.zeros((6, 3))
        with pytest.raises(ValueError):
            lattice_ttmc(
                x.indices,
                x.values,
                x.dim,
                u,
                out=out,
                out_row_map=np.arange(4, dtype=np.int64),
            )


class TestBudgetLifecycle:
    def test_in_use_returns_to_baseline(self, rng):
        """The kernel releases every byte it requested — including the Y it
        returns (release-on-handoff: ownership transfers to the caller at
        return, so repeated calls must not drift the accounting)."""
        from repro.runtime.budget import MemoryBudget

        x = make_random_tensor(4, 10, 40, rng)
        u = rng.random((10, 3))
        with MemoryBudget() as budget:
            s3ttmc(x, u)
            # Lattice structure bytes stay (cached plan); all transient
            # K-levels, gather tables and the handed-off Y are released.
            leftovers = {
                k: v
                for k, v in budget.allocations.items()
                if k.startswith("K level") or "gather" in k or k.startswith("Y (")
            }
            assert leftovers == {}, leftovers
            baseline = budget.in_use
            for _ in range(3):
                s3ttmc(x, u)
            assert budget.in_use == baseline
