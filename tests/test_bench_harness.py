"""Tests for the benchmark harness and reporting types."""

import numpy as np
import pytest

from repro.bench.harness import guarded_kernel_measurement, preferred_batch, timed_measurement
from repro.bench.records import Measurement, SeriesTable, format_seconds, geometric_mean


class TestMeasurement:
    def test_render(self):
        assert Measurement.from_seconds(2.5).render() == "2.50 s"
        assert Measurement.from_seconds(0.0021).render() == "2.10 ms"
        assert Measurement.from_seconds(3e-6).render() == "3.0 µs"
        assert Measurement.from_seconds(123.0).render() == "123 s"
        assert Measurement.out_of_memory().render() == "OOM"
        assert Measurement().render() == "-"

    def test_ok_flag(self):
        assert Measurement.from_seconds(1.0).ok
        assert not Measurement.out_of_memory().ok

    def test_format_seconds(self):
        assert format_seconds(0.05) == "50.00 ms"


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_empty_nan(self):
        assert np.isnan(geometric_mean([]))


class TestSeriesTable:
    def test_set_get_render(self):
        table = SeriesTable("Fig X", "dataset")
        table.set("SP", "L6", Measurement.from_seconds(0.5))
        table.set("CSS", "L6", Measurement.out_of_memory())
        table.set("SP", "L7", Measurement.from_seconds(1.0))
        text = table.render()
        assert "Fig X" in text and "OOM" in text and "500.00 ms" in text
        assert table.rows == ["L6", "L7"]
        assert table.series == ["SP", "CSS"]

    def test_speedup(self):
        table = SeriesTable("t", "row")
        table.set("base", "a", Measurement.from_seconds(4.0))
        table.set("fast", "a", Measurement.from_seconds(2.0))
        assert table.speedup("base", "fast", "a") == pytest.approx(2.0)

    def test_speedup_none_on_oom(self):
        table = SeriesTable("t", "row")
        table.set("base", "a", Measurement.out_of_memory())
        table.set("fast", "a", Measurement.from_seconds(2.0))
        assert table.speedup("base", "fast", "a") is None

    def test_non_measurement_cells(self):
        table = SeriesTable("Table III", "dataset")
        table.set("order", "L6", 6)
        table.set("unnz", "L6", 5000)
        assert "5000" in table.render()


class TestTimedMeasurement:
    def test_times_callable(self):
        m = timed_measurement(lambda: sum(range(1000)), repeats=2, budget_gb=1.0)
        assert m.ok and m.seconds >= 0

    def test_oom_reported(self):
        from repro.runtime.budget import request_bytes

        m = timed_measurement(
            lambda: request_bytes(10**12, "huge"), repeats=1, budget_gb=0.001
        )
        assert m.oom

    def test_guarded_preflight_oom(self):
        """Hopeless configurations are rejected without running."""
        calls = []
        m = guarded_kernel_measurement(
            "splatt",
            lambda: calls.append(1),
            dim=400,
            order=12,
            rank=4,
            unnz=10_000,
            budget_gb=1.0,
        )
        assert m.oom
        assert not calls

    def test_guarded_runs_when_fits(self):
        m = guarded_kernel_measurement(
            "symprop",
            lambda: None,
            dim=50,
            order=3,
            rank=2,
            unnz=100,
            repeats=1,
            budget_gb=1.0,
        )
        assert m.ok

    def test_preferred_batch(self):
        assert preferred_batch("splatt", 8, 4, 2**30) is None
        batch = preferred_batch("css", 10, 5, 4 * 2**30)
        assert batch is not None and batch >= 1
