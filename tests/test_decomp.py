"""Tests for HOOI (Alg. 3) and HOQRI (Alg. 4) decompositions."""

import numpy as np
import pytest

from repro.data import planted_lowrank
from repro.decomp import hooi, hoqri, hosvd_init, random_init
from repro.decomp.objective import fit, relative_error, tucker_objective
from tests.conftest import make_random_tensor


@pytest.fixture
def tensor4(rng):
    return make_random_tensor(4, 12, 60, rng)


class TestHooi:
    def test_runs_and_orthonormal(self, tensor4):
        res = hooi(tensor4, 3, max_iters=10, seed=0)
        assert res.factor.shape == (12, 3)
        assert res.orthonormality_defect() < 1e-8
        assert res.iterations <= 10
        assert res.algorithm.startswith("hooi")

    def test_objective_monotone_decreasing(self, tensor4):
        res = hooi(tensor4, 3, max_iters=20, seed=1)
        obj = res.trace.objective
        for a, b in zip(obj, obj[1:]):
            assert b <= a + 1e-9 * max(abs(a), 1.0)

    def test_objective_bounds(self, tensor4):
        res = hooi(tensor4, 3, max_iters=5, seed=0)
        assert 0.0 <= res.relative_error <= 1.0 + 1e-12
        assert res.trace.objective[-1] <= res.norm_x_squared + 1e-9

    def test_gram_svd_matches_expand(self, tensor4, rng):
        u0 = random_init(12, 3, rng)
        a = hooi(tensor4, 3, max_iters=5, init=u0)
        b = hooi(tensor4, 3, max_iters=5, init=u0, svd_method="gram")
        assert np.allclose(a.trace.objective, b.trace.objective, atol=1e-6)

    def test_css_kernel_matches_symprop(self, tensor4, rng):
        u0 = random_init(12, 3, rng)
        a = hooi(tensor4, 3, max_iters=4, init=u0)
        b = hooi(tensor4, 3, max_iters=4, init=u0, kernel="css")
        assert np.allclose(a.trace.objective, b.trace.objective, atol=1e-6)

    def test_full_rank_near_exact_on_matrix(self, rng):
        """Order-2, full rank: Tucker reproduces the matrix exactly."""
        x = make_random_tensor(2, 6, 12, rng)
        res = hooi(x, 6, max_iters=8, seed=0)
        assert res.relative_error < 1e-6

    def test_rank_validation(self, tensor4):
        with pytest.raises(ValueError):
            hooi(tensor4, 0)
        with pytest.raises(ValueError):
            hooi(tensor4, 13)

    def test_invalid_options(self, tensor4):
        with pytest.raises(ValueError):
            hooi(tensor4, 2, kernel="splatt")
        with pytest.raises(ValueError):
            hooi(tensor4, 2, svd_method="power")

    def test_timer_phases(self, tensor4):
        res = hooi(tensor4, 2, max_iters=3, seed=0)
        assert {"init", "s3ttmc", "svd", "core", "objective"} <= set(res.timer.totals)


class TestHoqri:
    def test_runs_and_orthonormal(self, tensor4):
        res = hoqri(tensor4, 3, max_iters=30, seed=0)
        assert res.orthonormality_defect() < 1e-8
        assert res.algorithm == "hoqri[symprop]"

    def test_converges_to_hooi_error_level(self, rng):
        """Fig. 9: both algorithms reach the same error level.

        Uses a fully sampled planted low-rank tensor (a genuinely low-rank
        target); on unstructured random tensors the two methods may settle
        in different local optima.
        """
        x = planted_lowrank(3, 14, 3, None, noise=0.05, seed=11)
        u0 = random_init(14, 3, np.random.default_rng(11))
        a = hooi(x, 3, max_iters=60, init=u0, tol=1e-12)
        b = hoqri(x, 3, max_iters=300, init=u0, tol=1e-12)
        assert abs(a.relative_error - b.relative_error) < 0.02

    def test_nary_kernel_matches_symprop(self, tensor4, rng):
        u0 = random_init(12, 3, rng)
        a = hoqri(tensor4, 3, max_iters=5, init=u0)
        b = hoqri(tensor4, 3, max_iters=5, init=u0, kernel="nary")
        assert np.allclose(a.trace.objective, b.trace.objective, atol=1e-6)

    def test_final_core_consistent_with_factor(self, tensor4):
        """The returned (factor, core) pair belongs to the same iterate."""
        res = hoqri(tensor4, 3, max_iters=10, seed=3)
        from repro.core import s3ttmc_tc

        recomputed = s3ttmc_tc(tensor4, res.factor).core
        assert np.allclose(recomputed.data, res.core.data, atol=1e-9)

    def test_recovers_planted_structure(self):
        """Fully sampled noise-free planted model: near-exact recovery."""
        x = planted_lowrank(3, 14, 3, None, noise=0.0, seed=5)
        res = hoqri(x, 3, max_iters=400, init="hosvd", tol=1e-14)
        assert res.relative_error < 1e-4

    def test_invalid_kernel(self, tensor4):
        with pytest.raises(ValueError):
            hoqri(tensor4, 2, kernel="css")

    def test_timer_phases(self, tensor4):
        res = hoqri(tensor4, 2, max_iters=3, seed=0)
        assert {"init", "s3ttmc", "times_core", "qr", "objective"} <= set(
            res.timer.totals
        )


class TestInits:
    def test_random_init_orthonormal(self, rng):
        u = random_init(10, 4, rng)
        assert np.allclose(u.T @ u, np.eye(4), atol=1e-12)

    def test_random_init_deterministic(self):
        a = random_init(8, 3, np.random.default_rng(7))
        b = random_init(8, 3, np.random.default_rng(7))
        assert np.allclose(a, b)

    def test_random_init_rank_validation(self, rng):
        with pytest.raises(ValueError):
            random_init(3, 4, rng)

    def test_hosvd_init_matches_svd_of_unfolding(self, small_tensor):
        u = hosvd_init(small_tensor, 3)
        assert np.allclose(u.T @ u, np.eye(3), atol=1e-10)
        dense = small_tensor.to_dense().reshape(small_tensor.dim, -1)
        u_ref, _s, _vt = np.linalg.svd(dense, full_matrices=False)
        # Compare subspaces (signs/rotations within equal singular values may
        # differ): projector distance.
        p1 = u @ u.T
        p2 = u_ref[:, :3] @ u_ref[:, :3].T
        assert np.allclose(p1, p2, atol=1e-8)

    def test_hosvd_better_start_than_random(self, rng):
        x = planted_lowrank(3, 25, 3, 300, noise=0.01, seed=9)
        res_h = hooi(x, 3, max_iters=1, init="hosvd")
        res_r = hooi(x, 3, max_iters=1, init="random", seed=123)
        assert res_h.trace.objective[0] <= res_r.trace.objective[0] + 1e-9

    def test_explicit_init_array(self, small_tensor, rng):
        u0 = random_init(small_tensor.dim, 2, rng)
        res = hooi(small_tensor, 2, max_iters=2, init=u0)
        assert res.iterations >= 1

    def test_init_shape_validation(self, small_tensor, rng):
        with pytest.raises(ValueError):
            hooi(small_tensor, 2, init=rng.random((3, 2)))

    def test_unknown_init(self, small_tensor):
        with pytest.raises(ValueError):
            hooi(small_tensor, 2, init="zeros")


class TestObjectiveHelpers:
    def test_fit_plus_error_is_one(self, small_tensor, rng):
        res = hooi(small_tensor, 2, max_iters=3, seed=0)
        assert fit(res.norm_x_squared, res.core) + relative_error(
            res.norm_x_squared, res.core
        ) == pytest.approx(1.0)

    def test_objective_formula(self, small_tensor, rng):
        """f == ||X||² − ||C||² == ||X − X̂||² for a consistent (U, C) pair.

        HOQRI returns factor and core from the same iterate (HOOI's
        Algorithm-3 core mixes the pre- and post-SVD factor by design), so
        the residual identity is checked on HOQRI's output.
        """
        from repro.formats.dense import ttm

        res = hoqri(small_tensor, 3, max_iters=4, seed=1)
        f = tucker_objective(res.norm_x_squared, res.core)
        c_full = res.core.to_full_tensor()
        u = res.factor
        recon = c_full
        for mode in range(small_tensor.order):
            recon = ttm(recon, u.T, mode)
        resid = small_tensor.to_dense() - recon
        assert f == pytest.approx((resid**2).sum(), rel=1e-6)
