"""Tests for the repro.obs observability layer.

Covers the span tracer (ambient collector, nesting, threads, disabled
no-op path and its overhead), the metrics registry, JSONL export/import,
the summarize rollup + CLI, and the end-to-end wiring through kernels,
decompositions, the budget, the parallel executor and the bench harness.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro import hooi, hoqri, random_sparse_symmetric, s3ttmc
from repro.obs import (
    MetricsRegistry,
    TraceCollector,
    active_collector,
    read_trace,
    render_summary,
    span,
    summarize,
    tracing_enabled,
    write_trace,
)
from repro.obs import trace as trace_mod
from repro.obs.__main__ import main as obs_main
from tests.conftest import make_random_tensor


class TestTracer:
    def test_disabled_is_noop_singleton(self):
        assert active_collector() is None
        assert not tracing_enabled()
        a = span("anything", foo=1)
        b = span("else")
        assert a is b  # shared null span: no allocation when disabled
        with a as s:
            s.set_attr("ignored", True)
        assert s.attrs == {}

    def test_collector_records_span(self):
        with TraceCollector() as col:
            assert active_collector() is col
            with span("work", items=3) as s:
                assert s.attrs["items"] == 3
        assert active_collector() is None
        assert len(col.spans) == 1
        rec = col.spans[0]
        assert rec.name == "work"
        assert rec.parent_id is None
        assert rec.seconds >= 0.0

    def test_nesting_parent_ids(self):
        with TraceCollector() as col:
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        assert inner.parent_id == outer.span_id
        assert col.children(outer.span_id) == [inner]
        assert col.roots() == [outer]

    def test_collectors_nest_like_budgets(self):
        with TraceCollector() as outer:
            with span("a"):
                pass
            with TraceCollector() as inner:
                with span("b"):
                    pass
            with span("c"):
                pass
        assert [s.name for s in outer.spans] == ["a", "c"]
        assert [s.name for s in inner.spans] == ["b"]

    def test_thread_local_stacks(self):
        """Worker spans don't inherit the driving thread's stack; explicit
        parent ids carry the link across threads."""
        recorded = {}

        def worker(parent_id):
            with span("chunk", parent_id=parent_id) as s:
                recorded["implicit_parent"] = trace_mod.current_span_id()
            recorded["span"] = s

        with TraceCollector():
            with span("driver") as driver:
                t = threading.Thread(
                    target=worker, args=(trace_mod.current_span_id(),)
                )
                t.start()
                t.join()
        assert recorded["span"].parent_id == driver.span_id
        # inside the worker, its own span was the innermost
        assert recorded["implicit_parent"] == recorded["span"].span_id
        assert recorded["span"].thread != driver.thread

    def test_events_attach_to_open_span(self):
        with TraceCollector() as col:
            with span("scope") as s:
                trace_mod.event("tick", n=1)
        assert len(col.events) == 1
        assert col.events[0].parent_id == s.span_id
        assert col.events[0].attrs == {"n": 1}

    def test_begin_finish_shared_clock(self):
        with TraceCollector() as col:
            live = trace_mod.begin_span("manual")
            end = time.perf_counter()
            trace_mod.finish_span(live, end)
        assert col.spans[0].end == end

    def test_exception_still_records(self):
        with TraceCollector() as col:
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
        assert col.spans[0].name == "failing"
        assert col.spans[0].end >= col.spans[0].start


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        assert reg.as_dict()["c"] == 5
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_tracks_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(10)
        g.set(3)
        g.update_max(7)
        flat = reg.as_dict()
        assert flat["g"] == 3
        assert flat["g.max"] == 10

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[10, 100, 1000])
        for v in (1, 10, 11, 5000):
            h.observe(v)
        flat = reg.as_dict()
        assert flat["h.count"] == 4
        assert flat["h.sum"] == 5022
        assert flat["h.le_10"] == 2
        assert flat["h.le_100"] == 3
        assert flat["h.le_1000"] == 3
        assert flat["h.le_inf"] == 4
        assert h.mean == pytest.approx(5022 / 4)

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=[3, 1, 2])

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.counter("n").inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 4000


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        with TraceCollector() as col:
            with span("a", k="v"):
                trace_mod.event("e", n=2)
            col.metrics.counter("calls").inc(3)
        path = write_trace(col, tmp_path / "t.jsonl")
        records = read_trace(path)
        assert len(records.spans) == 1
        assert records.spans[0]["name"] == "a"
        assert records.spans[0]["attrs"] == {"k": "v"}
        assert records.events[0]["name"] == "e"
        assert records.metrics == [{"calls": 3}]

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            with TraceCollector() as col:
                with span("m"):
                    pass
            write_trace(col, path, append=True)
        records = read_trace(path)
        assert len(records.spans) == 2

    def test_every_line_is_json(self, tmp_path):
        with TraceCollector() as col:
            with span("x", arr=np.int64(3)):  # non-JSON-native attr
                pass
        path = write_trace(col, tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)


class TestSummarize:
    def _traced_hooi(self, tmp_path, rng):
        x = make_random_tensor(3, 25, 150, rng)
        with TraceCollector() as col:
            result = hooi(x, rank=3, max_iters=4, seed=0, kernel="symprop")
        path = write_trace(col, tmp_path / "hooi.jsonl")
        return col, result, path

    def test_span_tree_iteration_phase_level(self, tmp_path, rng):
        """Acceptance: iteration → phase → per-lattice-level spans."""
        col, _result, path = self._traced_hooi(tmp_path, rng)
        records = read_trace(path)
        by_id = {s["id"]: s for s in records.spans}
        levels = [s for s in records.spans if s["name"] == "lattice.level"]
        assert levels, "no per-level spans recorded"
        for lv in levels:
            chain = []
            node = lv
            while node["parent"] is not None:
                node = by_id[node["parent"]]
                chain.append(node["name"])
            assert "phase:s3ttmc" in chain
            assert "hooi.iteration" in chain
            assert lv["attrs"]["nodes"] > 0
            assert lv["attrs"]["edges"] > 0
            assert lv["attrs"]["entry_size"] > 0

    def test_rollup_agrees_with_phase_timer(self, tmp_path, rng):
        """Acceptance: summarize phase totals vs returned PhaseTimer <1%."""
        col, result, path = self._traced_hooi(tmp_path, rng)
        summary = summarize(read_trace(path))
        for name, total in result.timer.totals.items():
            assert summary.phases[name].seconds == pytest.approx(
                total, rel=0.01
            ), name
            assert summary.phases[name].count == result.timer.counts[name]

    def test_summarize_from_collector(self, tmp_path, rng):
        col, result, _path = self._traced_hooi(tmp_path, rng)
        summary = summarize(col)
        assert summary.iterations == result.iterations
        assert summary.levels  # per-level aggregates present

    def test_render_mentions_phases_and_levels(self, tmp_path, rng):
        col, _result, path = self._traced_hooi(tmp_path, rng)
        text = render_summary(summarize(read_trace(path)), title="t")
        assert "per-phase rollup" in text
        assert "s3ttmc" in text
        assert "lattice levels" in text

    def test_cli_summarize(self, tmp_path, rng, capsys):
        _col, _result, path = self._traced_hooi(tmp_path, rng)
        assert obs_main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase rollup" in out
        assert "s3ttmc" in out

    def test_cli_missing_file(self, tmp_path, capsys):
        assert obs_main(["summarize", str(tmp_path / "nope.jsonl")]) == 2

    def test_cli_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert obs_main(["summarize", str(empty)]) == 1


class TestWiring:
    def test_budget_events_and_peak_gauge(self, rng):
        from repro.runtime.budget import MemoryBudget

        x = make_random_tensor(4, 12, 60, rng)
        u = rng.random((12, 3))
        with TraceCollector() as col:
            with MemoryBudget(gigabytes=4.0) as budget:
                s3ttmc(x, u)
        kinds = {e.name for e in col.events}
        assert "budget.request" in kinds
        assert "budget.release" in kinds
        flat = col.metrics.as_dict()
        assert flat["budget.peak_bytes.max"] == budget.peak
        assert flat["budget.requests"] > 0

    def test_budgetless_requests_still_traced(self, rng):
        x = make_random_tensor(3, 10, 40, rng)
        u = rng.random((10, 3))
        with TraceCollector() as col:
            s3ttmc(x, u)
        assert any(e.name == "budget.request" for e in col.events)

    def test_kernel_metrics(self, rng):
        x = make_random_tensor(4, 12, 60, rng)
        u = rng.random((12, 3))
        with TraceCollector() as col:
            s3ttmc(x, u)
        flat = col.metrics.as_dict()
        per_level = [k for k in flat if k.startswith("lattice.flops.level_")]
        assert per_level
        assert flat["lattice.scatter_flops"] > 0
        assert flat["lattice.level_entries.count"] > 0

    def test_hoqri_iteration_spans(self, rng):
        x = make_random_tensor(3, 20, 100, rng)
        with TraceCollector() as col:
            result = hoqri(x, rank=3, max_iters=3, seed=0)
        iters = col.find("hoqri.iteration")
        assert len(iters) == result.iterations
        assert col.find("times_core")

    def test_parallel_chunks_tagged_and_parented(self, rng):
        from repro.parallel.executor import parallel_s3ttmc

        x = make_random_tensor(3, 30, 200, rng)
        u = rng.random((30, 4))
        with TraceCollector() as col:
            with span("driver"):
                parallel_s3ttmc(x, u, n_workers=2)
        chunks = col.find("parallel.chunk")
        assert chunks
        roots = col.find("parallel.s3ttmc")
        assert len(roots) == 1
        for c in chunks:
            assert c.parent_id == roots[0].span_id
            assert "worker" in c.attrs
            assert c.attrs["nz_stop"] > c.attrs["nz_start"]

    def test_harness_env_hook(self, tmp_path, rng, monkeypatch):
        """REPRO_TRACE makes timed_measurement append traces, no code changes."""
        from repro.bench.harness import timed_measurement

        x = make_random_tensor(3, 15, 80, rng)
        u = rng.random((15, 3))
        path = tmp_path / "bench.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        m = timed_measurement(lambda: s3ttmc(x, u), repeats=2, budget_gb=1.0)
        assert m.ok
        records = read_trace(path)
        assert any(s["name"] == "s3ttmc" for s in records.spans)
        assert records.metrics  # metrics line flushed
        # a second measurement appends rather than truncates
        before = len(records.spans)
        timed_measurement(lambda: s3ttmc(x, u), repeats=1, budget_gb=1.0)
        assert len(read_trace(path).spans) > before

    def test_harness_no_env_no_file(self, tmp_path, rng, monkeypatch):
        from repro.bench.harness import timed_measurement

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        x = make_random_tensor(3, 10, 40, rng)
        u = rng.random((10, 3))
        timed_measurement(lambda: s3ttmc(x, u), repeats=1, budget_gb=1.0)
        assert active_collector() is None


class TestDisabledOverhead:
    def test_disabled_span_overhead_under_two_percent(self, rng):
        """Acceptance: with tracing off, the tracer's hot-path cost is <2%
        of kernel time versus a no-op stub.

        Measured structurally rather than as an end-to-end diff (which
        drowns in run-to-run noise): count the span/event call sites one
        kernel invocation passes through, measure the per-call cost of the
        disabled fast path, and compare the product against the kernel's
        wall time.
        """
        x = make_random_tensor(4, 30, 400, rng)
        u = rng.random((30, 5))
        s3ttmc(x, u)  # warm plan/lattice caches

        # how many tracer touchpoints does one call make?
        with TraceCollector() as col:
            s3ttmc(x, u)
        touchpoints = len(col.spans) + len(col.events)

        # per-call cost of the disabled path (span + enter/exit)
        assert active_collector() is None
        reps = 20_000
        tick = time.perf_counter()
        for _ in range(reps):
            with span("x"):
                pass
        per_call = (time.perf_counter() - tick) / reps

        # kernel wall time without tracing, best of 3
        kernel = min(
            _timed(lambda: s3ttmc(x, u)) for _ in range(3)
        )
        overhead = touchpoints * per_call
        assert overhead < 0.02 * kernel, (
            f"disabled tracer overhead {overhead * 1e6:.1f} µs is >=2% of "
            f"kernel time {kernel * 1e3:.2f} ms ({touchpoints} touchpoints)"
        )

    def test_disabled_event_is_cheap_noop(self):
        assert active_collector() is None
        trace_mod.event("nothing", n=1)  # must not raise or allocate state


def _timed(fn):
    tick = time.perf_counter()
    fn()
    return time.perf_counter() - tick
