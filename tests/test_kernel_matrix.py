"""Systematic kernel-correctness matrix.

Every kernel family is checked against the dense einsum reference over a
grid of orders × ranks × sparsity-pattern families. Pattern families probe
structurally different lattice shapes:

* ``random``   — generic multisets (mixed repeats);
* ``distinct`` — all-distinct indices (maximal lattice, the complexity
  model's regime);
* ``diagonal`` — fully repeated indices (degenerate one-path lattices);
* ``clustered``— indices drawn from a small value range (heavy global
  memoization sharing);
* ``fulliou``  — every IOU position non-zero (dense symmetric in sparse
  clothing).
"""

import numpy as np
import pytest

from repro.baselines.css_ttmc import css_s3ttmc
from repro.baselines.dense_ref import dense_s3ttmc_matrix
from repro.baselines.splatt import splatt_ttmc
from repro.core import s3ttmc
from repro.formats import SparseSymmetricTensor
from repro.symmetry.iou import enumerate_iou

ORDERS_RANKS = [(2, 3), (3, 2), (3, 4), (4, 3), (5, 2)]
PATTERNS = ("random", "distinct", "diagonal", "clustered", "fulliou")
DIM = 6


def build_pattern(kind: str, order: int, dim: int, rng) -> SparseSymmetricTensor:
    if kind == "random":
        idx = rng.integers(0, dim, size=(20, order))
    elif kind == "distinct":
        idx = np.stack([rng.choice(dim, size=order, replace=False) for _ in range(12)])
    elif kind == "diagonal":
        idx = np.array([[v] * order for v in range(dim)])
    elif kind == "clustered":
        idx = rng.integers(0, max(2, dim // 3), size=(20, order))
    elif kind == "fulliou":
        idx = enumerate_iou(order, dim)
    else:  # pragma: no cover - guarded by parametrize
        raise AssertionError(kind)
    vals = rng.uniform(-1.0, 1.0, size=idx.shape[0])
    vals[np.abs(vals) < 0.05] = 0.5
    return SparseSymmetricTensor(order, dim, idx, vals, combine="first")


@pytest.mark.parametrize("pattern", PATTERNS)
@pytest.mark.parametrize("order,rank", ORDERS_RANKS)
class TestKernelMatrix:
    def test_symprop(self, order, rank, pattern, rng):
        x = build_pattern(pattern, order, DIM, rng)
        u = rng.uniform(-1, 1, size=(DIM, rank))
        got = s3ttmc(x, u).to_full_unfolding()
        assert np.allclose(got, dense_s3ttmc_matrix(x, u), atol=1e-9)

    def test_css(self, order, rank, pattern, rng):
        x = build_pattern(pattern, order, DIM, rng)
        u = rng.uniform(-1, 1, size=(DIM, rank))
        assert np.allclose(css_s3ttmc(x, u), dense_s3ttmc_matrix(x, u), atol=1e-9)

    def test_splatt(self, order, rank, pattern, rng):
        x = build_pattern(pattern, order, DIM, rng)
        u = rng.uniform(-1, 1, size=(DIM, rank))
        assert np.allclose(splatt_ttmc(x, u), dense_s3ttmc_matrix(x, u), atol=1e-9)

    def test_mttkrp(self, order, rank, pattern, rng):
        from repro.cp import symmetric_mttkrp

        x = build_pattern(pattern, order, DIM, rng)
        u = rng.uniform(-1, 1, size=(DIM, rank))
        got = symmetric_mttkrp(x, u)
        dense = x.to_dense()
        subs = "abcdefgh"[:order]
        spec = subs + "," + ",".join(f"{s}r" for s in subs[1:]) + "->" + subs[0] + "r"
        ref = np.einsum(spec, dense, *([u] * (order - 1)))
        assert np.allclose(got, ref, atol=1e-9)
