"""Tests for symmetric CP: MTTKRP kernel and ALS decomposition."""

import numpy as np
import pytest

from repro.core import KernelStats
from repro.cp import (
    cp_inner_product,
    rank_one_inner_products,
    symmetric_cp_als,
    symmetric_mttkrp,
)
from repro.formats import SparseSymmetricTensor
from tests.conftest import make_random_tensor


def dense_mttkrp(tensor, factor):
    dense = tensor.to_dense()
    order = tensor.order
    subs = "abcdefgh"[:order]
    spec = subs + "," + ",".join(f"{s}r" for s in subs[1:]) + "->" + subs[0] + "r"
    return np.einsum(spec, dense, *([factor] * (order - 1)))


def planted_cp_tensor(order, dim, rank, seed):
    rng = np.random.default_rng(seed)
    u = np.linalg.qr(rng.standard_normal((dim, rank)))[0]
    lam = rng.uniform(1.0, 3.0, rank) * np.where(rng.random(rank) < 0.5, -1, 1)
    from repro.symmetry.iou import enumerate_iou

    idx = enumerate_iou(order, dim)
    prods = np.ones((idx.shape[0], rank))
    for t in range(order):
        prods *= u[idx[:, t]]
    vals = prods @ lam
    return SparseSymmetricTensor(order, dim, idx, vals, assume_canonical=True), u, lam


class TestMTTKRP:
    @pytest.mark.parametrize("order,dim,rank,n", [(3, 6, 4, 25), (4, 5, 3, 20), (5, 6, 2, 25), (2, 7, 3, 15)])
    def test_matches_dense(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng)
        u = rng.standard_normal((dim, rank))
        got = symmetric_mttkrp(x, u)
        assert np.allclose(got, dense_mttkrp(x, u), atol=1e-9)

    def test_memoize_scopes_agree(self, rng):
        x = make_random_tensor(4, 6, 20, rng)
        u = rng.random((6, 3))
        a = symmetric_mttkrp(x, u, memoize="global")
        b = symmetric_mttkrp(x, u, memoize="nonzero")
        assert np.allclose(a, b, atol=1e-12)

    def test_cp_flops_much_smaller_than_tucker(self, rng):
        """CP intermediates are R-vectors: level cost (2l-1)C(N,l)R·unnz."""
        from repro.core import s3ttmc
        from repro.symmetry.combinatorics import binomial

        x = make_random_tensor(5, 12, 30, rng, distinct=True)
        u = rng.random((12, 4))
        cp_stats, tucker_stats = KernelStats(), KernelStats()
        symmetric_mttkrp(x, u, memoize="nonzero", stats=cp_stats)
        s3ttmc(x, u, memoize="nonzero", stats=tucker_stats)
        for level in range(2, 5):
            expected = (2 * level - 1) * binomial(5, level) * 4 * x.unnz
            assert cp_stats.level_flops[level] == expected
        assert cp_stats.kernel_flops < tucker_stats.kernel_flops

    def test_shape_validation(self, rng):
        x = make_random_tensor(3, 6, 10, rng)
        with pytest.raises(ValueError):
            symmetric_mttkrp(x, rng.random((7, 2)))


class TestInnerProducts:
    def test_rank_one_inner_matches_dense(self, rng):
        x = make_random_tensor(3, 6, 20, rng)
        u = rng.standard_normal((6, 2))
        h = rank_one_inner_products(x, u)
        dense = x.to_dense()
        for r in range(2):
            expected = np.einsum("ijk,i,j,k->", dense, u[:, r], u[:, r], u[:, r])
            assert h[r] == pytest.approx(expected, rel=1e-10)

    def test_cp_inner_product_linear_in_weights(self, rng):
        x = make_random_tensor(3, 6, 20, rng)
        u = rng.standard_normal((6, 2))
        a = cp_inner_product(x, np.array([1.0, 0.0]), u)
        b = cp_inner_product(x, np.array([0.0, 1.0]), u)
        ab = cp_inner_product(x, np.array([1.0, 1.0]), u)
        assert ab == pytest.approx(a + b, rel=1e-10)


class TestSymmetricCPALS:
    def test_error_trace_bounded(self, rng):
        x = make_random_tensor(3, 10, 60, rng)
        res = symmetric_cp_als(x, 3, max_iters=20, seed=0)
        assert all(0.0 <= e <= 1.0 + 1e-9 for e in res.error_trace)

    def test_recovers_planted_cp(self):
        x, _u, _lam = planted_cp_tensor(3, 10, 2, seed=1)
        res = symmetric_cp_als(x, 2, max_iters=300, seed=1, tol=1e-13)
        assert res.relative_error < 1e-4, res.relative_error

    def test_even_order_signed_weights(self):
        """Even order with a negative weight: requires signed λ."""
        x, _u, lam = planted_cp_tensor(4, 8, 2, seed=2)
        assert (lam < 0).any() or (lam > 0).any()
        res = symmetric_cp_als(x, 2, max_iters=400, seed=2, tol=1e-13)
        assert res.relative_error < 5e-3, res.relative_error

    def test_rank_one_diagonal_tensor(self):
        """X = e_0^{⊗3} is exactly rank one."""
        x = SparseSymmetricTensor(3, 5, np.array([[0, 0, 0]]), np.array([2.0]))
        res = symmetric_cp_als(x, 1, max_iters=50, seed=3)
        assert res.relative_error < 1e-8
        assert abs(abs(res.factor[0, 0]) - 1.0) < 1e-8
        assert res.weights[0] == pytest.approx(2.0, abs=1e-6)

    def test_explicit_init(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        u0 = rng.standard_normal((8, 2))
        res = symmetric_cp_als(x, 2, max_iters=5, init=u0)
        assert res.iterations >= 1

    def test_validation(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        with pytest.raises(ValueError):
            symmetric_cp_als(x, 0)
        with pytest.raises(ValueError):
            symmetric_cp_als(x, 2, init="hosvd")
        with pytest.raises(ValueError):
            symmetric_cp_als(x, 2, init=np.zeros((3, 2)))
