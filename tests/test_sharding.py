"""Sharded execution v2: workers own tensor shards, not just nz ranges.

Covers the whole owned-sharding stack: the sharder and its invariants,
the deterministic hierarchical merge (and its exchange-event contract
with ``merge_schedule``), the owned mode on every backend (bitwise
across backends, allclose vs the canonical serial kernel), the
``parallel.shard_bytes`` memory acceptance bound, shard re-ingest after
a worker crash, context/checkpoint plumbing, and the distributed
simulator's plan-vs-trace agreement.
"""

import numpy as np
import pytest

from repro.core import s3ttmc
from repro.decomp import hooi, hoqri
from repro.obs.trace import TraceCollector
from repro.parallel import (
    ParallelRunReport,
    build_shards,
    exchange_from_trace,
    hierarchical_merge,
    merge_schedule,
    parallel_s3ttmc,
    partition_ranges,
    plan_sharded_exchange,
    shard_resident_bytes,
    simulate_sharded_time,
)
from repro.perfmodel import predict_parallel_seconds, worker_footprint, RateCalibration
from repro.runtime.checkpoint import load_checkpoint
from repro.runtime.context import ExecContext
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.symmetry.combinatorics import sym_storage_size
from tests.conftest import make_random_tensor


@pytest.fixture
def workload(rng):
    tensor = make_random_tensor(4, 24, 200, rng)
    factor = rng.standard_normal((24, 4))
    return tensor, factor


def _owned(tensor, factor, backend, n_workers=4, **kwargs):
    report = kwargs.pop("report", None) or ParallelRunReport()
    data = parallel_s3ttmc(
        tensor,
        factor,
        n_workers,
        backend=backend,
        sharding="owned",
        report=report,
        **kwargs,
    ).data
    return data, report


class TestBuildShards:
    def test_shards_cover_disjointly(self, workload):
        tensor, factor = workload
        shards = build_shards(tensor, 4, factor.shape[1])
        assert shards[0].start == 0
        assert shards[-1].stop == tensor.unnz
        for left, right in zip(shards, shards[1:]):
            assert left.stop == right.start
        assert [s.shard_id for s in shards] == list(range(len(shards)))

    def test_shards_match_executor_partition(self, workload):
        # A shard's nz slice must equal the broadcast chunk for the same
        # partition — that identity is what makes per-shard partials
        # bitwise-reproducible across modes.
        tensor, factor = workload
        ranges = partition_ranges(tensor, factor.shape[1], 4)
        shards = build_shards(tensor, 4, factor.shape[1])
        assert [(s.start, s.stop) for s in shards] == list(ranges)

    def test_shard_views_alias_parent(self, workload):
        tensor, factor = workload
        shard = build_shards(tensor, 4, factor.shape[1])[0]
        assert shard.indices.base is not None
        assert np.shares_memory(shard.indices, tensor.indices)
        assert np.shares_memory(shard.values, tensor.values)

    def test_row_block_structure(self, workload):
        tensor, factor = workload
        for shard in build_shards(tensor, 4, factor.shape[1]):
            assert np.array_equal(shard.rows, np.unique(shard.indices))
            # row_map inverts rows, -1 elsewhere
            assert np.array_equal(shard.row_map[shard.rows], np.arange(shard.n_rows))
            untouched = np.setdiff1d(np.arange(tensor.dim), shard.rows)
            assert np.all(shard.row_map[untouched] == -1)

    def test_costs_positive_and_balanced(self, workload):
        tensor, factor = workload
        shards = build_shards(tensor, 4, factor.shape[1])
        costs = [s.cost for s in shards]
        assert all(c > 0 for c in costs)
        assert max(costs) <= 2.5 * min(costs)

    def test_resident_bytes_owned_vs_broadcast(self, workload):
        tensor, factor = workload
        ranges = partition_ranges(tensor, factor.shape[1], 4)
        owned = shard_resident_bytes(
            tensor.unnz, tensor.order, ranges, sharding="owned"
        )
        broadcast = shard_resident_bytes(
            tensor.unnz, tensor.order, ranges, sharding="broadcast"
        )
        per_nz = tensor.order * 8 + 8
        assert broadcast == tensor.unnz * per_nz
        assert owned == max(b - a for a, b in ranges) * per_nz
        assert owned <= broadcast / 2


class TestHierarchicalMerge:
    def test_matches_flat_sum(self, rng):
        dim, cols = 30, 6
        partials = []
        expected = np.zeros((dim, cols))
        for _ in range(5):
            rows = np.unique(rng.integers(0, dim, size=12))
            block = rng.standard_normal((rows.shape[0], cols))
            partials.append((rows, block))
            expected[rows] += block
        merged = hierarchical_merge(partials, dim, cols)
        assert np.allclose(merged, expected, atol=1e-12)

    def test_deterministic(self, rng):
        dim, cols = 20, 4
        partials = [
            (np.unique(rng.integers(0, dim, size=8)), None) for _ in range(4)
        ]
        partials = [
            (rows, np.arange(rows.shape[0] * cols, dtype=np.float64).reshape(-1, cols))
            for rows, _ in partials
        ]
        a = hierarchical_merge(partials, dim, cols)
        b = hierarchical_merge(partials, dim, cols)
        assert np.array_equal(a, b)

    def test_single_partial_and_empty(self):
        rows = np.array([1, 3])
        block = np.array([[1.0], [2.0]])
        out = hierarchical_merge([(rows, block)], 5, 1)
        assert np.array_equal(out[:, 0], [0.0, 1.0, 0.0, 2.0, 0.0])
        assert np.array_equal(hierarchical_merge([], 4, 2), np.zeros((4, 2)))

    def test_emitted_exchanges_match_schedule(self, rng):
        dim, cols = 40, 3
        row_sets = [np.unique(rng.integers(0, dim, size=15)) for _ in range(5)]
        partials = [
            (rows, rng.standard_normal((rows.shape[0], cols))) for rows in row_sets
        ]
        collector = TraceCollector()
        ctx = ExecContext(collector=collector)
        hierarchical_merge(partials, dim, cols, ctx=ctx)
        assert exchange_from_trace(collector) == merge_schedule(row_sets, cols)

    def test_schedule_rounds_and_bytes(self):
        row_sets = [np.arange(10), np.arange(5), np.arange(7), np.arange(3)]
        schedule = merge_schedule(row_sets, cols=2)
        # 4 shards -> 2 rounds: (0,1), (2,3), then the two survivors.
        assert [e["round"] for e in schedule] == [0, 0, 1]
        assert schedule[0]["rows"] == 5  # right operand ships
        assert all(e["bytes"] == e["rows"] * (2 * 8 + 8) for e in schedule)


class TestOwnedShardingBackends:
    def test_serial_owned_allclose_canonical(self, workload):
        tensor, factor = workload
        canonical = s3ttmc(tensor, factor).data
        data, report = _owned(tensor, factor, "serial")
        assert np.allclose(data, canonical, atol=1e-10)
        assert report.sharding == "owned"
        assert report.reduce_seconds > 0

    def test_thread_bitwise_matches_serial_owned(self, workload):
        tensor, factor = workload
        base, _ = _owned(tensor, factor, "serial")
        data, _ = _owned(tensor, factor, "thread")
        assert np.array_equal(data, base)

    def test_process_bitwise_matches_serial_owned(self, workload):
        tensor, factor = workload
        base, _ = _owned(tensor, factor, "serial")
        data, report = _owned(tensor, factor, "process")
        assert np.array_equal(data, base)
        assert report.backend == "process"

    def test_compiled_kernel_owned(self, workload):
        tensor, factor = workload
        base, _ = _owned(tensor, factor, "serial", kernel="compiled")
        thread, _ = _owned(tensor, factor, "thread", kernel="compiled")
        assert np.array_equal(thread, base)
        canonical = s3ttmc(tensor, factor).data
        assert np.allclose(base, canonical, atol=1e-10)

    def test_owned_requires_blocked_reduction(self, workload):
        tensor, factor = workload
        with pytest.raises(ValueError, match="blocked"):
            parallel_s3ttmc(
                tensor, factor, 4, backend="serial", sharding="owned", reduction="tree"
            )
        with pytest.raises(ValueError, match="sharding"):
            parallel_s3ttmc(tensor, factor, 4, backend="serial", sharding="bogus")

    def test_broadcast_unchanged_by_default(self, workload):
        tensor, factor = workload
        report = ParallelRunReport()
        parallel_s3ttmc(tensor, factor, 4, backend="serial", report=report)
        assert report.sharding == "broadcast"

    def test_mode_switch_on_live_process_backend(self, workload):
        # One backend instance must serve owned and broadcast runs
        # interleaved (shard segments torn down and rebuilt cleanly).
        from repro.parallel import make_backend

        tensor, factor = workload
        base, _ = _owned(tensor, factor, "serial")
        with make_backend("process", 4) as backend:
            owned1, _ = _owned(tensor, factor, backend)
            broadcast = parallel_s3ttmc(tensor, factor, 4, backend=backend).data
            owned2, _ = _owned(tensor, factor, backend)
        assert np.array_equal(owned1, base)
        assert np.array_equal(owned2, base)
        assert np.allclose(broadcast, base, atol=1e-10)


class TestMemoryAcceptance:
    def test_owned_gauge_at_most_half_of_broadcast(self, workload):
        # The acceptance criterion: order-4 workload, >= 4 process
        # workers, owned resident tensor bytes <= 0.5x broadcast.
        tensor, factor = workload
        readings = {}
        for sharding in ("broadcast", "owned"):
            collector = TraceCollector()
            ctx = ExecContext(collector=collector)
            parallel_s3ttmc(
                tensor, factor, 4, backend="process", sharding=sharding, ctx=ctx
            )
            readings[sharding] = collector.metrics.gauge("parallel.shard_bytes").value
        assert readings["owned"] <= 0.5 * readings["broadcast"]

    def test_worker_footprint_model_agrees(self, workload):
        tensor, factor = workload
        rank = factor.shape[1]
        owned = worker_footprint(
            tensor.dim, tensor.order, rank, tensor.unnz, n_workers=4, sharding="owned"
        )
        broadcast = worker_footprint(
            tensor.dim, tensor.order, rank, tensor.unnz, n_workers=4
        )
        assert owned.tensor <= 0.5 * broadcast.tensor
        assert owned.total < broadcast.total
        # The model's owned tensor bound must dominate the real widest shard.
        ranges = partition_ranges(tensor, rank, 4)
        real = shard_resident_bytes(tensor.unnz, tensor.order, ranges, sharding="owned")
        per_nz = tensor.order * 8 + 8
        assert owned.tensor >= (tensor.unnz // 4) * per_nz
        assert real <= broadcast.tensor

    def test_worker_footprint_validation(self):
        with pytest.raises(ValueError):
            worker_footprint(10, 3, 2, 50, n_workers=0)
        with pytest.raises(ValueError):
            worker_footprint(10, 3, 2, 50, n_workers=2, sharding="bogus")


class TestShardLossRecovery:
    def test_crash_recovers_via_reingest(self, workload):
        tensor, factor = workload
        base, _ = _owned(tensor, factor, "serial")
        injector = FaultInjector(
            [FaultSpec(site="chunk", kind="crash", match={"slot": 1})], seed=0
        )
        collector = TraceCollector()
        ctx = ExecContext(collector=collector, faults=injector)
        report = ParallelRunReport()
        data, report = _owned(tensor, factor, "process", ctx=ctx, report=report)
        assert injector.n_fired == 1
        assert report.respawns >= 1
        assert report.shard_reingests >= 1
        assert report.fallbacks == 0  # recovered, not degraded
        assert np.array_equal(data, base)
        assert collector.metrics.counter("parallel.shard_reingests").value >= 1

    def test_reingest_counter_zero_on_clean_run(self, workload):
        tensor, factor = workload
        _data, report = _owned(tensor, factor, "process")
        assert report.shard_reingests == 0
        assert report.respawns == 0


class TestContextPlumbing:
    def test_context_carries_sharding(self, workload):
        tensor, factor = workload
        ctx = ExecContext(execution="thread", n_workers=4, sharding="owned")
        base, _ = _owned(tensor, factor, "serial")
        report = ParallelRunReport()
        data = parallel_s3ttmc(tensor, factor, report=report, ctx=ctx).data
        ctx.close()
        assert report.sharding == "owned"
        assert np.array_equal(data, base)

    def test_validate_rejects_bad_sharding(self):
        with pytest.raises(ValueError):
            ExecContext(sharding="bogus").validate()
        with pytest.raises(ValueError):
            ExecContext(
                execution="thread", sharding="owned", reduction="tree"
            ).validate()

    def test_serialization_roundtrip(self):
        ctx = ExecContext(execution="process", n_workers=4, sharding="owned")
        spec = ctx.to_dict()
        assert spec["sharding"] == "owned"
        restored = ExecContext.from_dict(spec)
        assert restored.sharding == "owned"
        assert ExecContext.from_dict({"execution": "serial"}).sharding == "broadcast"

    def test_derive_overrides_sharding(self):
        base = ExecContext(execution="thread", n_workers=2)
        child = base.derive(sharding="owned")
        assert child.sharding == "owned"
        assert base.derive().sharding == "broadcast"


class TestDecompositionWiring:
    def test_hooi_owned_matches_serial(self, workload):
        tensor, _ = workload
        serial = hooi(tensor, 3, max_iters=3, seed=7)
        owned = hooi(
            tensor, 3, max_iters=3, seed=7, execution="thread", n_workers=3,
            sharding="owned",
        )
        assert np.allclose(owned.factor, serial.factor, atol=1e-8)

    def test_hoqri_owned_matches_serial(self, workload):
        tensor, _ = workload
        serial = hoqri(tensor, 3, max_iters=3, seed=7)
        owned = hoqri(
            tensor, 3, max_iters=3, seed=7, execution="thread", n_workers=3,
            sharding="owned",
        )
        assert np.allclose(owned.factor, serial.factor, atol=1e-8)

    def test_sharding_conflicts_with_explicit_ctx(self, workload):
        tensor, _ = workload
        ctx = ExecContext(execution="thread", n_workers=2)
        with pytest.raises(ValueError, match="sharding"):
            hooi(tensor, 3, max_iters=1, ctx=ctx, sharding="owned")
        ctx.close()

    def test_checkpoint_records_shard_map(self, workload, tmp_path):
        tensor, _ = workload
        hooi(
            tensor, 3, max_iters=2, seed=7, execution="thread", n_workers=3,
            sharding="owned", checkpoint_dir=tmp_path,
        )
        state = load_checkpoint(tmp_path)
        assert state.config["sharding"] == "owned"
        ranges = state.config["shard_ranges"]
        assert ranges[0][0] == 0 and ranges[-1][1] == tensor.unnz
        # Resume under the same layout continues; a different layout is
        # rejected (the shard map is part of the run identity).
        hooi(
            tensor, 3, max_iters=4, seed=7, execution="thread", n_workers=3,
            sharding="owned", checkpoint_dir=tmp_path, resume=True,
        )
        with pytest.raises(ValueError, match="shard_ranges"):
            hooi(
                tensor, 3, max_iters=4, seed=7, execution="thread", n_workers=2,
                sharding="owned", checkpoint_dir=tmp_path, resume=True,
            )

    def test_broadcast_checkpoint_has_no_shard_map(self, workload, tmp_path):
        tensor, _ = workload
        hooi(
            tensor, 3, max_iters=2, seed=7, execution="thread", n_workers=3,
            checkpoint_dir=tmp_path,
        )
        state = load_checkpoint(tmp_path)
        assert "sharding" not in state.config
        assert "shard_ranges" not in state.config


class TestShardedExchangeModel:
    def test_plan_matches_trace(self, workload):
        tensor, factor = workload
        collector = TraceCollector()
        ctx = ExecContext(collector=collector)
        parallel_s3ttmc(
            tensor, factor, 4, backend="serial", sharding="owned", ctx=ctx
        )
        plan = plan_sharded_exchange(tensor, 4, factor.shape[1], ctx=ctx)
        assert exchange_from_trace(collector) == plan.exchanges

    def test_plan_shape(self, workload):
        tensor, factor = workload
        rank = factor.shape[1]
        plan = plan_sharded_exchange(tensor, 4, rank)
        assert plan.n_shards == 4
        assert plan.cols == sym_storage_size(tensor.order - 1, rank)
        assert plan.n_rounds == 2  # 4 shards -> pairwise tree of depth 2
        assert len(plan.exchanges) == 3
        assert plan.total_exchange_bytes == sum(e["bytes"] for e in plan.exchanges)
        assert plan.imbalance() >= 1.0

    def test_single_shard_no_exchange(self, workload):
        tensor, factor = workload
        plan = plan_sharded_exchange(tensor, 1, factor.shape[1])
        assert plan.exchanges == []
        assert plan.n_rounds == 0
        assert simulate_sharded_time(plan) == plan.shard_costs[0] / 1e9

    def test_simulated_time_terms(self, workload):
        tensor, factor = workload
        plan = plan_sharded_exchange(tensor, 4, factor.shape[1])
        compute_only = simulate_sharded_time(
            plan, bandwidth_bytes=1e15, latency_seconds=0.0
        )
        assert compute_only == pytest.approx(max(plan.shard_costs) / 1e9, rel=1e-6)
        with_latency = simulate_sharded_time(plan, latency_seconds=1.0)
        assert with_latency >= compute_only + plan.n_rounds
        slow_net = simulate_sharded_time(
            plan, bandwidth_bytes=1e3, latency_seconds=0.0
        )
        assert slow_net > compute_only

    def test_invalid_shards(self, workload):
        tensor, factor = workload
        with pytest.raises(ValueError):
            plan_sharded_exchange(tensor, 0, factor.shape[1])


class TestPredictParallel:
    def test_owned_reduce_cheaper_than_broadcast(self):
        cal = RateCalibration()
        cal.record("symprop", 1e9, 1.0)
        kwargs = dict(order=4, rank=4, unnz=10_000, dim=2_000, n_workers=8)
        broadcast = predict_parallel_seconds(cal, "symprop", **kwargs)
        owned = predict_parallel_seconds(
            cal, "symprop", sharding="owned", **kwargs
        )
        assert owned < broadcast

    def test_single_worker_has_no_reduce_term(self):
        cal = RateCalibration()
        cal.record("symprop", 1e9, 1.0)
        serial_like = predict_parallel_seconds(
            cal, "symprop", 4, 4, 1000, n_workers=1, sharding="owned"
        )
        from repro.perfmodel import predict_seconds

        assert serial_like == pytest.approx(
            predict_seconds(cal, "symprop", 4, 4, 1000), rel=1e-9
        )

    def test_uncalibrated_returns_none(self):
        assert (
            predict_parallel_seconds(
                RateCalibration(), "symprop", 4, 4, 100, n_workers=4
            )
            is None
        )

    def test_validation(self):
        cal = RateCalibration()
        cal.record("symprop", 1e9, 1.0)
        with pytest.raises(ValueError):
            predict_parallel_seconds(cal, "symprop", 4, 4, 100, n_workers=0)
        with pytest.raises(ValueError):
            predict_parallel_seconds(
                cal, "symprop", 4, 4, 100, n_workers=2, sharding="bogus"
            )
