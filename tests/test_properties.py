"""Property-based tests (hypothesis) for core invariants.

These pin down the paper's three propositions and the data-structure
invariants on randomly generated inputs rather than fixed examples:

* Property 1 — intermediate ``K`` tensors are fully symmetric;
* Property 2 — mode-1 TTM commutes with the expansion operator;
* Property 3 — ``EᵀE`` is diagonal with multinomial entries;
* IOU rank/unrank bijection, canonicalization idempotence, kernel-vs-dense
  agreement, norm consistency.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.dense_ref import dense_s3ttmc_matrix
from repro.core import s3ttmc
from repro.formats import SparseSymmetricTensor
from repro.symmetry.combinatorics import permutation_counts_array, sym_storage_size
from repro.symmetry.expansion import expand_compact, expansion_matrix
from repro.symmetry.iou import enumerate_iou, rank_iou_array, unrank_iou_array
from repro.symmetry.permutations import canonicalize, distinct_permutations

COMMON = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def order_dim(draw, max_order=5, max_dim=6):
    order = draw(st.integers(2, max_order))
    dim = draw(st.integers(1, max_dim))
    return order, dim


@st.composite
def sparse_tensor(draw, max_order=5, max_dim=7, max_nnz=25):
    order = draw(st.integers(2, max_order))
    dim = draw(st.integers(2, max_dim))
    n = draw(st.integers(1, max_nnz))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, dim, size=(n, order))
    vals = rng.uniform(-1.0, 1.0, size=n)
    vals[vals == 0] = 0.5
    idx, vals = canonicalize(idx, vals, combine="first")
    return SparseSymmetricTensor(order, dim, idx, vals, assume_canonical=True)


class TestIouBijection:
    @COMMON
    @given(order_dim())
    def test_rank_unrank_roundtrip(self, od):
        order, dim = od
        rows = enumerate_iou(order, dim)
        if rows.shape[0] == 0:
            return
        ranks = rank_iou_array(rows, dim)
        assert np.array_equal(ranks, np.arange(rows.shape[0]))
        back = unrank_iou_array(ranks, order, dim)
        assert np.array_equal(back, rows)

    @COMMON
    @given(order_dim(), st.integers(0, 2**31 - 1))
    def test_rank_of_sorted_random_tuples(self, od, seed):
        order, dim = od
        rng = np.random.default_rng(seed)
        tuples = np.sort(rng.integers(0, dim, size=(10, order)), axis=1)
        ranks = rank_iou_array(tuples, dim)
        back = unrank_iou_array(ranks, order, dim)
        assert np.array_equal(back, tuples)


class TestPropertyOne:
    @COMMON
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 2**31 - 1))
    def test_k_tensor_fully_symmetric(self, order, rank, seed):
        """K_m(j) = Σ over distinct orderings Π U(π_a, j_a) is symmetric."""
        rng = np.random.default_rng(seed)
        u = rng.random((6, rank))
        m = tuple(sorted(rng.integers(0, 6, size=order)))
        k = np.zeros((rank,) * order)
        for ordering in distinct_permutations(m):
            term = u[ordering[0]]
            for v in ordering[1:]:
                term = np.multiply.outer(term, u[v])
            k += term
        axes = list(range(order))
        for _ in range(5):
            perm = tuple(rng.permutation(axes))
            assert np.allclose(k, np.transpose(k, perm), atol=1e-12)

    @COMMON
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 2**31 - 1))
    def test_compact_recurrence_equals_explicit_k(self, order, rank, seed):
        """The Alg.-1 compact recurrence reproduces the explicit K."""
        from repro.symmetry.tables import get_tables

        rng = np.random.default_rng(seed)
        u = rng.random((6, rank))
        m = tuple(sorted(rng.integers(0, 6, size=order)))
        # explicit dense K
        k = np.zeros((rank,) * order)
        for ordering in distinct_permutations(m):
            term = u[ordering[0]]
            for v in ordering[1:]:
                term = np.multiply.outer(term, u[v])
            k += term
        # compact recurrence over the multiset
        from collections import Counter

        def compact_k(multiset):
            multiset = tuple(sorted(multiset))
            if len(multiset) == 1:
                return u[multiset[0]].copy()
            tables = get_tables(len(multiset), rank)
            out = np.zeros(tables.size)
            for v in Counter(multiset).keys():
                rest = list(multiset)
                rest.remove(v)
                prev = compact_k(tuple(rest))
                out += u[v][tables.last_index] * prev[tables.parent_loc]
            return out

        compact = compact_k(m)
        full_from_compact = expand_compact(compact, order, rank).reshape(
            (rank,) * order
        )
        assert np.allclose(full_from_compact, k, atol=1e-10)


class TestPropertyTwoThree:
    @COMMON
    @given(st.integers(2, 4), st.integers(1, 4))
    def test_m_diagonal_multinomial(self, order, dim):
        e = expansion_matrix(order, dim)
        m = (e.T @ e).toarray()
        rows = enumerate_iou(order, dim)
        p = permutation_counts_array(rows).astype(float) if rows.size else np.zeros(0)
        assert np.allclose(m, np.diag(p))

    @COMMON
    @given(st.integers(2, 4), st.integers(2, 4), st.integers(0, 2**31 - 1))
    def test_expansion_commutes_with_mode1_ttm(self, sym_order, rank, seed):
        """Property 2: (Uᵀ Y_p) Eᵀ == Uᵀ (Y_p Eᵀ)."""
        rng = np.random.default_rng(seed)
        nrows = 5
        s = sym_storage_size(sym_order, rank)
        y_p = rng.random((nrows, s))
        u = rng.random((nrows, 3))
        left = expand_compact(u.T @ y_p, sym_order, rank)
        right = u.T @ expand_compact(y_p, sym_order, rank)
        assert np.allclose(left, right, atol=1e-10)


class TestKernelAgainstDense:
    @COMMON
    @given(sparse_tensor(), st.integers(1, 4), st.integers(0, 2**31 - 1))
    def test_s3ttmc_matches_dense(self, tensor, rank, seed):
        rng = np.random.default_rng(seed)
        u = rng.uniform(-1, 1, size=(tensor.dim, rank))
        got = s3ttmc(tensor, u).to_full_unfolding()
        ref = dense_s3ttmc_matrix(tensor, u)
        assert np.allclose(got, ref, atol=1e-8)

    @COMMON
    @given(sparse_tensor())
    def test_norm_matches_dense(self, tensor):
        dense = tensor.to_dense()
        assert np.isclose(tensor.norm_squared(), (dense**2).sum(), atol=1e-10)

    @COMMON
    @given(sparse_tensor())
    def test_expand_roundtrip(self, tensor):
        coo = tensor.expand()
        back_idx, back_vals = canonicalize(coo.indices, coo.values, combine="first")
        assert np.array_equal(back_idx, tensor.indices)
        assert np.allclose(back_vals, tensor.values)


class TestCanonicalization:
    @COMMON
    @given(
        st.integers(2, 4),
        st.integers(2, 6),
        st.integers(1, 30),
        st.integers(0, 2**31 - 1),
    )
    def test_idempotent_and_sorted(self, order, dim, n, seed):
        rng = np.random.default_rng(seed)
        idx = rng.integers(0, dim, size=(n, order))
        vals = rng.random(n)
        a_idx, a_vals = canonicalize(idx, vals, combine="sum")
        tuples = [tuple(r) for r in a_idx]
        assert tuples == sorted(tuples)
        assert len(set(tuples)) == len(tuples)
        b_idx, b_vals = canonicalize(a_idx, a_vals)
        assert np.array_equal(a_idx, b_idx)
        assert np.allclose(a_vals, b_vals)
        # total mass preserved under "sum"
        assert np.isclose(a_vals.sum(), vals.sum())
