"""Correctness tests for S³TTMcTC (Algorithm 2) and its properties."""

import numpy as np
import pytest

from repro.baselines.dense_ref import dense_core, dense_s3ttmc_tc
from repro.core import KernelStats, s3ttmc, s3ttmc_tc, times_core
from repro.decomp.hosvd import random_init
from repro.formats.dense import unfold
from tests.conftest import make_random_tensor


class TestAgainstDense:
    @pytest.mark.parametrize(
        "order,dim,rank,n", [(3, 6, 4, 25), (4, 5, 3, 20), (5, 6, 2, 25)]
    )
    def test_a_matrix_matches(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng)
        u = rng.random((dim, rank))
        res = s3ttmc_tc(x, u)
        assert np.allclose(res.a, dense_s3ttmc_tc(x, u), atol=1e-8)

    def test_core_matches_dense(self, rng):
        x = make_random_tensor(4, 6, 25, rng)
        u = rng.random((6, 3))
        res = s3ttmc_tc(x, u)
        ref = unfold(dense_core(x, u), 0)
        assert np.allclose(res.core.to_full_unfolding(), ref, atol=1e-9)

    def test_core_fully_symmetric_for_orthonormal_factor(self, rng):
        """Section IV-A: the core of a symmetric Tucker decomposition is
        fully symmetric; we verify through the full tensor."""
        x = make_random_tensor(3, 8, 25, rng)
        u = random_init(8, 3, rng)
        res = s3ttmc_tc(x, u)
        c = res.core.to_full_tensor()
        assert np.allclose(c, np.transpose(c, (1, 0, 2)), atol=1e-9)
        assert np.allclose(c, np.transpose(c, (2, 1, 0)), atol=1e-9)

    def test_times_core_reuses_y(self, rng):
        x = make_random_tensor(4, 6, 20, rng)
        u = rng.random((6, 3))
        y = s3ttmc(x, u)
        res = times_core(y, u)
        assert res.y is y
        assert np.allclose(res.a, dense_s3ttmc_tc(x, u), atol=1e-8)

    def test_times_core_shape_validation(self, rng):
        x = make_random_tensor(4, 6, 20, rng)
        y = s3ttmc(x, rng.random((6, 3)))
        with pytest.raises(ValueError):
            times_core(y, rng.random((6, 4)))

    def test_stats_include_gemms(self, rng):
        x = make_random_tensor(3, 6, 15, rng)
        u = rng.random((6, 3))
        stats = KernelStats()
        res = s3ttmc_tc(x, u, stats=stats)
        assert res.stats is stats
        # two GEMMs: R*S*I each costing 2*R*S*I flops, plus the scaling pass
        s = res.y.sym_size
        expected = 2 * (2 * 3 * s * 6) + s * 3
        assert stats.extra_flops == expected


class TestPropertyThreeInContext:
    def test_weighted_product_equals_full_product(self, rng):
        """Y_(1) C_(1)ᵀ == Y_p(1) M C_p(1)ᵀ (Property 3 end-to-end)."""
        x = make_random_tensor(4, 7, 30, rng)
        u = rng.random((7, 3))
        res = s3ttmc_tc(x, u)
        y_full = res.y.to_full_unfolding()
        c_full = res.core.to_full_unfolding()
        assert np.allclose(res.a, y_full @ c_full.T, atol=1e-8)

    def test_overhead_is_small_fraction_of_flops(self, rng):
        """TC adds only the two GEMMs on top of S³TTMc (Fig. 5d rationale)."""
        x = make_random_tensor(5, 10, 60, rng)
        u = rng.random((10, 3))
        stats = KernelStats()
        s3ttmc_tc(x, u, stats=stats)
        assert stats.extra_flops < stats.kernel_flops
