"""Tests for empirical moment tensor estimation."""

import numpy as np
import pytest

from repro.apps import empirical_moment_tensor
from repro.cp import symmetric_cp_als


class TestMomentEstimation:
    def test_second_moment_is_covariance(self, rng):
        data = rng.standard_normal((5000, 6))
        m = empirical_moment_tensor(data, 2, threshold=0.0)
        cov = np.cov(data.T, bias=True)
        assert np.allclose(m.to_dense(), cov, atol=1e-10)

    def test_matches_explicit_mean(self, rng):
        data = rng.standard_normal((200, 4))
        m = empirical_moment_tensor(data, 3, center=False)
        centered = data
        explicit = np.einsum("ni,nj,nk->ijk", centered, centered, centered) / 200
        assert np.allclose(m.to_dense(), explicit, atol=1e-10)

    def test_symmetry_of_result(self, rng):
        data = rng.standard_normal((100, 5))
        m = empirical_moment_tensor(data, 3)
        dense = m.to_dense()
        assert np.allclose(dense, np.transpose(dense, (1, 0, 2)))

    def test_threshold_sparsifies(self, rng):
        data = rng.standard_normal((300, 6))
        full = empirical_moment_tensor(data, 3, threshold=0.0)
        sparse = empirical_moment_tensor(data, 3, threshold=0.05)
        assert sparse.unnz < full.unnz

    def test_gaussian_third_moment_near_zero(self, rng):
        """Central third moments of a symmetric distribution vanish."""
        data = rng.standard_normal((60_000, 4))
        m = empirical_moment_tensor(data, 3, threshold=0.1)
        assert m.unnz == 0

    def test_chunking_invariance(self, rng):
        data = rng.standard_normal((150, 5))
        a = empirical_moment_tensor(data, 3, chunk=7)
        b = empirical_moment_tensor(data, 3, chunk=10_000)
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.values, b.values)

    def test_entry_cap(self, rng):
        data = rng.standard_normal((10, 50))
        with pytest.raises(ValueError, match="max_entries"):
            empirical_moment_tensor(data, 4, max_entries=1000)

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            empirical_moment_tensor(rng.standard_normal(5), 2)
        with pytest.raises(ValueError):
            empirical_moment_tensor(np.zeros((0, 3)), 2)
        with pytest.raises(ValueError):
            empirical_moment_tensor(rng.standard_normal((5, 3)), 0)

    def test_latent_factor_recovery_pipeline(self, rng):
        """[6]'s use case: CP of the third moment recovers a planted
        latent direction for skewed single-factor data."""
        direction = np.zeros(8)
        direction[:2] = [0.8, 0.6]
        # skewed latent factor -> non-vanishing third moment along `direction`
        z = rng.exponential(1.0, size=20_000) - 1.0
        data = np.outer(z, direction) + 0.05 * rng.standard_normal((20_000, 8))
        m = empirical_moment_tensor(data, 3)
        res = symmetric_cp_als(m, 1, max_iters=200, seed=0, tol=1e-12)
        recovered = res.factor[:, 0]
        alignment = abs(recovered @ direction)
        assert alignment > 0.98, alignment
