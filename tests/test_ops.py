"""Tests for sparse symmetric tensor algebra and marginalization."""

import numpy as np
import pytest

from repro.formats import SparseSymmetricTensor
from repro.ops import add, degree_vector, hadamard, marginalize, scale, subtract
from tests.conftest import make_random_tensor


class TestAlgebra:
    def test_add_matches_dense(self, rng):
        a = make_random_tensor(3, 7, 20, rng)
        b = make_random_tensor(3, 7, 25, rng)
        c = add(a, b)
        assert np.allclose(c.to_dense(), a.to_dense() + b.to_dense())

    def test_add_self_doubles(self, rng):
        a = make_random_tensor(3, 6, 15, rng)
        c = add(a, a)
        assert np.allclose(c.values, 2 * a.values)
        assert np.array_equal(c.indices, a.indices)

    def test_subtract_self_is_empty(self, rng):
        a = make_random_tensor(4, 6, 15, rng)
        c = subtract(a, a)
        assert c.unnz == 0

    def test_subtract_keep_zeros(self, rng):
        a = make_random_tensor(3, 6, 10, rng)
        c = subtract(a, a, prune_zeros=False)
        assert c.unnz == a.unnz
        assert np.allclose(c.values, 0.0)

    def test_scale(self, rng):
        a = make_random_tensor(3, 6, 15, rng)
        c = scale(a, -2.5)
        assert np.allclose(c.to_dense(), -2.5 * a.to_dense())
        assert scale(a, 0.0).unnz == 0

    def test_hadamard_matches_dense(self, rng):
        a = make_random_tensor(3, 6, 25, rng)
        b = make_random_tensor(3, 6, 25, rng)
        c = hadamard(a, b)
        assert np.allclose(c.to_dense(), a.to_dense() * b.to_dense())

    def test_hadamard_disjoint_empty(self):
        a = SparseSymmetricTensor(2, 4, np.array([[0, 1]]), np.array([1.0]))
        b = SparseSymmetricTensor(2, 4, np.array([[2, 3]]), np.array([1.0]))
        assert hadamard(a, b).unnz == 0

    def test_incompatible_rejected(self, rng):
        a = make_random_tensor(3, 6, 10, rng)
        b = make_random_tensor(3, 7, 10, rng)
        with pytest.raises(ValueError):
            add(a, b)
        c = make_random_tensor(4, 6, 10, rng)
        with pytest.raises(ValueError):
            hadamard(a, c)

    def test_add_empty(self, rng):
        a = make_random_tensor(3, 6, 10, rng)
        empty = SparseSymmetricTensor(3, 6, np.zeros((0, 3), dtype=int), np.zeros(0))
        c = add(a, empty)
        assert np.array_equal(c.indices, a.indices)
        assert hadamard(a, empty).unnz == 0


class TestMarginalize:
    def test_matches_dense_sum(self, rng):
        x = make_random_tensor(3, 6, 25, rng)
        m = marginalize(x)
        assert m.order == 2
        assert np.allclose(m.to_dense(), x.to_dense().sum(axis=2))

    def test_order4_two_modes(self, rng):
        x = make_random_tensor(4, 5, 20, rng)
        m = marginalize(x, 2)
        assert m.order == 2
        assert np.allclose(m.to_dense(), x.to_dense().sum(axis=(2, 3)))

    def test_zero_modes_identity(self, rng):
        x = make_random_tensor(3, 6, 10, rng)
        m = marginalize(x, 0)
        assert m is x

    def test_invalid_modes(self, rng):
        x = make_random_tensor(3, 6, 10, rng)
        with pytest.raises(ValueError):
            marginalize(x, 3)
        with pytest.raises(ValueError):
            marginalize(x, -1)

    def test_repeated_indices(self):
        """A diagonal entry marginalizes once per distinct value."""
        x = SparseSymmetricTensor(3, 4, np.array([[1, 1, 2]]), np.array([3.0]))
        m = marginalize(x)
        dense = x.to_dense().sum(axis=2)
        assert np.allclose(m.to_dense(), dense)

    def test_empty(self):
        x = SparseSymmetricTensor(3, 4, np.zeros((0, 3), dtype=int), np.zeros(0))
        assert marginalize(x).unnz == 0

    def test_degree_vector_matches_hypergraph(self):
        """Adjacency-tensor degrees == (N-1)! x hypergraph degrees for
        all-distinct hyperedges, and == the dense marginal exactly."""
        import math

        from repro.hypergraph import Hypergraph, adjacency_tensor

        hg = Hypergraph(6, [(0, 1, 2), (0, 3, 4), (1, 3, 5)])
        tensor = adjacency_tensor(hg, 3)
        deg = degree_vector(tensor)
        assert np.allclose(deg[: hg.n_nodes], math.factorial(2) * hg.degree())
        dense = tensor.to_dense()
        assert np.allclose(deg, dense.sum(axis=(1, 2)))
