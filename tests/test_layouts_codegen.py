"""Tests for level layouts and the index-iteration strategies (§III-C)."""

import numpy as np
import pytest

from repro.core.codegen import (
    STRATEGIES,
    codegen_step,
    generate_step_source,
    mapping_step,
    table_step,
)
from repro.core.layouts import compact_layout, full_layout, layout_for
from repro.symmetry.combinatorics import dense_size, sym_storage_size
from repro.symmetry.tables import get_tables


class TestLayouts:
    def test_compact_matches_tables(self):
        layout = compact_layout(3, 4)
        tables = get_tables(3, 4)
        assert layout.size == tables.size
        assert np.array_equal(layout.parent_loc, tables.parent_loc)
        assert np.array_equal(layout.last_index, tables.last_index)
        assert layout.parent_size == sym_storage_size(2, 4)

    def test_full_layout_arithmetic(self):
        layout = full_layout(2, 3)
        assert layout.size == 9
        assert layout.parent_loc.tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2]
        assert layout.last_index.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2]
        assert layout.parent_size == dense_size(1, 3)

    def test_dispatch(self):
        assert layout_for("compact", 2, 3).kind == "compact"
        assert layout_for("full", 2, 3).kind == "full"
        with pytest.raises(ValueError):
            layout_for("sparse", 2, 3)


class TestStepStrategies:
    """All three strategies compute the same Eq. 8 term."""

    @pytest.mark.parametrize("order,dim", [(2, 3), (3, 4), (4, 3), (5, 2), (6, 3)])
    def test_strategies_agree(self, order, dim, rng):
        u_row = rng.random(dim)
        k_prev = rng.random(sym_storage_size(order - 1, dim))
        results = {name: fn(u_row, k_prev, order, dim) for name, fn in STRATEGIES.items()}
        base = results["table"]
        for name, res in results.items():
            assert np.allclose(res, base), name

    def test_against_explicit_enumeration(self, rng):
        """out[lin(j)] == u_row[j_last] * k_prev[lin(j[:-1])]."""
        order, dim = 3, 3
        tables = get_tables(order, dim)
        u_row = rng.random(dim)
        k_prev = rng.random(sym_storage_size(order - 1, dim))
        out = codegen_step(u_row, k_prev, order, dim)
        from repro.symmetry.iou import rank_iou_array

        for s, idx in enumerate(tables.indices):
            parent = rank_iou_array(idx[None, :-1], dim)[0]
            assert out[s] == pytest.approx(u_row[idx[-1]] * k_prev[parent])

    def test_source_structure(self):
        src = generate_step_source(4)
        assert src.count("for ") == 4
        assert "loc_o" in src and "loc_p" in src
        compile(src, "<test>", "exec")  # syntactically valid

    def test_source_rejects_order_one(self):
        with pytest.raises(ValueError):
            generate_step_source(1)

    def test_codegen_cache_reuse(self):
        from repro.core import codegen

        codegen_step(np.ones(2), np.ones(2), 2, 2)
        fn1 = codegen._compiled_step(2)
        codegen_step(np.ones(2), np.ones(2), 2, 2)
        assert codegen._compiled_step(2) is fn1

    def test_codegen_cache_is_bounded_lru(self, monkeypatch):
        # CPython rejects > 20 statically nested blocks, so real orders
        # can't overflow the default cap of 32 — shrink the cap instead.
        from repro.core import codegen
        from repro.core.codegen import (
            _compiled_step,
            clear_codegen_cache,
            codegen_cache_info,
        )

        monkeypatch.setattr(codegen, "_CACHE_CAP", 4)
        clear_codegen_cache()
        cap = codegen_cache_info()["cap"]
        assert cap == 4
        # Fill past the cap: oldest orders must be evicted, newest kept.
        for order in range(2, 2 + cap + 3):
            _compiled_step(order)
        info = codegen_cache_info()
        assert info["size"] == cap
        assert 2 not in info["orders"]
        assert 2 + cap + 2 in info["orders"]
        # A hit refreshes recency: touch the oldest survivor, add one
        # more order, and the survivor must still be cached.
        oldest = info["orders"][0]
        _compiled_step(oldest)
        _compiled_step(2 + cap + 3)
        assert oldest in codegen_cache_info()["orders"]
        clear_codegen_cache()
        assert codegen_cache_info()["size"] == 0

    def test_codegen_callables_version_tagged(self):
        from repro.core.codegen import CODEGEN_VERSION, _compiled_step

        assert _compiled_step(3).__codegen_version__ == CODEGEN_VERSION

    def test_mapping_step_high_order(self, rng):
        order, dim = 7, 2
        u_row = rng.random(dim)
        k_prev = rng.random(sym_storage_size(order - 1, dim))
        assert np.allclose(
            mapping_step(u_row, k_prev, order, dim),
            table_step(u_row, k_prev, order, dim),
        )
