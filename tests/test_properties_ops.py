"""Property-based tests for tensor algebra and marginalization."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.formats import SparseSymmetricTensor
from repro.ops import add, degree_vector, hadamard, marginalize, scale, subtract
from repro.symmetry.permutations import canonicalize

COMMON = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def tensor_pair(draw, max_order=4, max_dim=5, max_nnz=15):
    order = draw(st.integers(2, max_order))
    dim = draw(st.integers(2, max_dim))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    def make():
        n = int(rng.integers(1, max_nnz + 1))
        idx, vals = canonicalize(
            rng.integers(0, dim, size=(n, order)),
            rng.uniform(-1, 1, n) + 0.05,
            combine="first",
        )
        return SparseSymmetricTensor(order, dim, idx, vals, assume_canonical=True)

    return make(), make()


class TestAlgebraProperties:
    @COMMON
    @given(tensor_pair())
    def test_add_commutative(self, pair):
        a, b = pair
        left = add(a, b)
        right = add(b, a)
        assert np.array_equal(left.indices, right.indices)
        assert np.allclose(left.values, right.values)

    @COMMON
    @given(tensor_pair(), st.floats(-2, 2))
    def test_scale_distributes_over_add(self, pair, alpha):
        a, b = pair
        lhs = scale(add(a, b), alpha)
        rhs = add(scale(a, alpha), scale(b, alpha))
        assert np.allclose(lhs.to_dense(), rhs.to_dense(), atol=1e-10)

    @COMMON
    @given(tensor_pair())
    def test_subtract_then_add_roundtrip(self, pair):
        a, b = pair
        back = add(subtract(a, b, prune_zeros=False), b, prune_zeros=True, atol=1e-12)
        assert np.allclose(back.to_dense(), a.to_dense(), atol=1e-10)

    @COMMON
    @given(tensor_pair())
    def test_hadamard_commutative_and_bounded_support(self, pair):
        a, b = pair
        ab = hadamard(a, b)
        ba = hadamard(b, a)
        assert np.allclose(ab.to_dense(), ba.to_dense(), atol=1e-12)
        assert ab.unnz <= min(a.unnz, b.unnz)

    @COMMON
    @given(tensor_pair())
    def test_norms_triangle_inequality(self, pair):
        a, b = pair
        total = add(a, b, prune_zeros=False)
        assert total.norm() <= a.norm() + b.norm() + 1e-9


class TestMarginalProperties:
    @COMMON
    @given(tensor_pair())
    def test_marginal_matches_dense(self, pair):
        a, _ = pair
        m = marginalize(a)
        dense = a.to_dense().sum(axis=a.order - 1)
        assert np.allclose(m.to_dense(), dense, atol=1e-10)

    @COMMON
    @given(tensor_pair())
    def test_marginal_linear(self, pair):
        a, b = pair
        lhs = marginalize(add(a, b, prune_zeros=False))
        rhs = add(marginalize(a), marginalize(b), prune_zeros=False)
        assert np.allclose(lhs.to_dense(), rhs.to_dense(), atol=1e-10)

    @COMMON
    @given(tensor_pair())
    def test_total_mass_preserved(self, pair):
        """The degree vector (full marginal) sums to the dense total."""
        a, _ = pair
        full_sum = a.to_dense().sum()
        assert degree_vector(a).sum() == np.float64(full_sum) or np.isclose(
            degree_vector(a).sum(), full_sum, atol=1e-8
        )
