"""The instrumented kernels reproduce the paper's flop formulas exactly.

Section III-D / Table II: with per-non-zero memoization and all-distinct
index tuples, the SymProp kernel performs exactly
``C^SP = Σ_{l=2}^{N-1} (2l−1)·C(N,l)·S_{l,R}·unnz + 2N·S_{N-1,R}·unnz``
flops, and the CSS baseline the same with ``R^l``. This is the strongest
form of the complexity-analysis reproduction: measured == modeled, not
measured ≈ modeled.
"""

import numpy as np
import pytest

from repro.baselines.css_ttmc import css_s3ttmc
from repro.core import KernelStats, s3ttmc
from repro.perfmodel.complexity import (
    c_css,
    c_sp,
    level_reduction_ratio,
    table2_complexities,
    total_css,
    total_sp,
)
from tests.conftest import make_random_tensor


@pytest.mark.parametrize("order,dim,rank,n", [(4, 12, 3, 20), (5, 15, 2, 15), (3, 10, 4, 25)])
class TestExactFlopCounts:
    def test_symprop_total(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng, distinct=True)
        u = rng.random((dim, rank))
        stats = KernelStats()
        s3ttmc(x, u, memoize="nonzero", stats=stats)
        assert stats.kernel_flops == total_sp(order, rank, x.unnz)

    def test_symprop_per_level(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng, distinct=True)
        u = rng.random((dim, rank))
        stats = KernelStats()
        s3ttmc(x, u, memoize="nonzero", stats=stats)
        for level in range(2, order):
            assert stats.level_flops[level] == c_sp(level, order, rank, x.unnz)

    def test_css_total(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng, distinct=True)
        u = rng.random((dim, rank))
        stats = KernelStats()
        css_s3ttmc(x, u, memoize="nonzero", stats=stats)
        assert stats.kernel_flops == total_css(order, rank, x.unnz)

    def test_css_per_level(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng, distinct=True)
        u = rng.random((dim, rank))
        stats = KernelStats()
        css_s3ttmc(x, u, memoize="nonzero", stats=stats)
        for level in range(2, order):
            assert stats.level_flops[level] == c_css(level, order, rank, x.unnz)


class TestGlobalMemoizationOnlyHelps:
    def test_global_no_more_flops(self, rng):
        x = make_random_tensor(5, 8, 40, rng)
        u = rng.random((8, 3))
        s_global, s_local = KernelStats(), KernelStats()
        s3ttmc(x, u, memoize="global", stats=s_global)
        s3ttmc(x, u, memoize="nonzero", stats=s_local)
        assert s_global.kernel_flops <= s_local.kernel_flops

    def test_repeated_indices_cost_less(self, rng):
        """Non-zeros with repeated values have fewer sub-multisets."""
        distinct = make_random_tensor(4, 12, 10, rng, distinct=True)
        diag_idx = np.array([[i, i, i, i] for i in range(10)])
        from repro.formats import SparseSymmetricTensor

        diag = SparseSymmetricTensor(4, 12, diag_idx, np.ones(10))
        u = rng.random((12, 3))
        s_dist, s_diag = KernelStats(), KernelStats()
        s3ttmc(distinct, u, memoize="nonzero", stats=s_dist)
        s3ttmc(diag, u, memoize="nonzero", stats=s_diag)
        assert s_diag.kernel_flops < s_dist.kernel_flops


class TestModelProperties:
    def test_sp_never_exceeds_css(self):
        for order in range(3, 10):
            for rank in range(1, 8):
                assert total_sp(order, rank, 100) <= total_css(order, rank, 100)

    def test_reduction_ratio_limits(self):
        # R^l/S_{l,R} -> l! as R -> inf (Section III-D)
        import math

        assert level_reduction_ratio(3, 10_000) == pytest.approx(6.0, rel=1e-2)
        # R = 2 case: 2^l / (l+1)
        for level in range(2, 8):
            assert level_reduction_ratio(level, 2) == pytest.approx(
                2**level / (level + 1)
            )
        del math

    def test_table2_ordering_high_order(self):
        """For high order / large dim, HOQRI-SymProp is cheapest (Table II)."""
        costs = table2_complexities(dim=50_000, order=8, rank=10, unnz=50_000)
        assert costs["HOQRI-SymProp"] < costs["HOOI-SymProp"]
        assert costs["HOOI-SymProp"] < costs["HOOI-CSS"]
        assert costs["HOQRI-SymProp"] < costs["HOQRI"]

    def test_hoqri_svd_vs_qr_gap(self):
        """The SVD term dominates HOOI at large I (Fig. 7 rationale)."""
        from repro.perfmodel.complexity import qr_cost, svd_cost

        assert svd_cost(60_000, 8, 10) > 1000 * qr_cost(60_000, 10)


class TestKernelStatsAccounting:
    def test_intermediate_bytes_is_peak_not_sum(self):
        """Regression: levels are materialized one at a time, so the K
        footprint is the *largest* level, not the running sum."""
        stats = KernelStats()
        stats.add_level(2, nodes=100, edges=200, entry_size=6)   # 4.8 KB
        stats.add_level(3, nodes=50, edges=150, entry_size=56)   # 22.4 KB
        stats.add_level(4, nodes=10, edges=40, entry_size=126)   # 10.08 KB
        assert stats.intermediate_bytes == 50 * 56 * 8  # peak level only

    def test_intermediate_bytes_matches_merge_semantics(self):
        """add_level on one stats object must equal merge of per-level
        stats objects (merge already took the max)."""
        combined = KernelStats()
        parts = []
        for level, nodes, size in [(2, 30, 6), (3, 80, 20), (4, 5, 70)]:
            combined.add_level(level, nodes, 2 * nodes, size)
            part = KernelStats()
            part.add_level(level, nodes, 2 * nodes, size)
            parts.append(part)
        merged = KernelStats()
        for part in parts:
            merged.merge(part)
        assert merged.intermediate_bytes == combined.intermediate_bytes

    def test_kernel_peak_footprint_bounded_by_model(self, rng):
        """End-to-end: the recorded peak is one level's array, so it is no
        larger than the closed-form per-level bound."""
        from repro.symmetry.combinatorics import sym_storage_size

        x = make_random_tensor(5, 12, 30, rng)
        u = rng.random((12, 3))
        stats = KernelStats()
        s3ttmc(x, u, stats=stats)
        worst = max(
            stats.level_nodes[level] * sym_storage_size(level, 3) * 8
            for level in stats.level_nodes
        )
        assert stats.intermediate_bytes == worst
