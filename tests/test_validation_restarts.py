"""Tests for the kernel-agreement validator and the restart protocol."""

import numpy as np
import pytest

from repro import hoqri, random_sparse_symmetric
from repro.decomp import best_of_restarts, hooi
from repro.validation import verify_kernels


class TestVerifyKernels:
    def test_agreement_on_small_tensor(self):
        x = random_sparse_symmetric(4, 8, 40, seed=0)
        report = verify_kernels(x, 3)
        assert report.reference == "dense"
        assert report.ok, repr(report)
        assert set(report.deviations) == {"symprop", "css", "splatt"}

    def test_css_reference_when_dense_too_big(self):
        x = random_sparse_symmetric(4, 60, 100, seed=1)
        report = verify_kernels(x, 2, include_dense=False, include_splatt=False)
        assert report.reference == "css"
        assert report.ok

    def test_repr_mentions_status(self):
        x = random_sparse_symmetric(3, 6, 15, seed=2)
        text = repr(verify_kernels(x, 2))
        assert "OK" in text


class TestBestOfRestarts:
    def test_returns_best(self):
        x = random_sparse_symmetric(3, 15, 80, seed=3)
        best = best_of_restarts(hoqri, x, 3, n_restarts=4, max_iters=8)
        singles = [
            hoqri(x, 3, init="random", seed=k, max_iters=8).relative_error
            for k in range(4)
        ]
        assert best.relative_error == pytest.approx(min(singles), abs=1e-12)

    def test_single_restart(self):
        x = random_sparse_symmetric(3, 10, 40, seed=4)
        res = best_of_restarts(hooi, x, 2, n_restarts=1, max_iters=3)
        assert res.iterations >= 1

    def test_invalid_count(self):
        x = random_sparse_symmetric(3, 10, 40, seed=5)
        with pytest.raises(ValueError):
            best_of_restarts(hoqri, x, 2, n_restarts=0)

    def test_init_kwarg_overridden(self):
        x = random_sparse_symmetric(3, 10, 40, seed=6)
        res = best_of_restarts(
            hoqri, x, 2, n_restarts=2, max_iters=3, init="hosvd", seed=9
        )
        assert res.iterations >= 1
