"""Chaos soak suite tests: schedule determinism, the closed-world
outcome contract, repro lines, and untyped-failure detection."""

import dataclasses

import pytest

from repro.verify.chaos import (
    TYPED_FAILURES,
    ChaosSchedule,
    chaos_schedules,
    run_chaos_case,
)
from repro.verify.runner import run_suite


class TestSchedules:
    def test_deterministic(self):
        a = chaos_schedules(12, base_seed=7)
        b = chaos_schedules(12, base_seed=7)
        assert a == b

    def test_isolated_rerun_matches_soak_member(self):
        # Schedule i depends on base_seed + i alone, so the published
        # repro line (--base-seed N --schedules 1) rebuilds it exactly.
        soak = chaos_schedules(10, base_seed=0)
        lone = chaos_schedules(1, base_seed=6)[0]
        assert soak[6] == lone

    def test_include_process_marks_every_third(self):
        scheds = chaos_schedules(9, base_seed=0, include_process=True)
        for i, s in enumerate(scheds):
            if i % 3 == 2:
                assert s.execution == "process" and s.n_workers == 2
            else:
                assert s.execution in ("serial", "thread")

    def test_spec_line_names_the_chaos(self):
        scheds = chaos_schedules(40, base_seed=0)
        assert all(f"chaos seed={s.seed}" in s.spec for s in scheds)
        assert any("deadline=" in s.spec for s in scheds)
        assert any("cancel@" in s.spec for s in scheds)
        assert any("faults=" in s.spec for s in scheds)

    def test_variety(self):
        scheds = chaos_schedules(50, base_seed=0)
        assert {s.target for s in scheds} == {"s3ttmc", "hooi"}
        assert any(s.faults for s in scheds)
        assert any(not s.faults for s in scheds)


class TestRunChaosCase:
    def test_small_soak_all_ok(self):
        for sched in chaos_schedules(8, base_seed=0):
            for result in run_chaos_case(sched):
                assert result.ok, f"{result.spec} {result.check}: {result.detail}"

    def test_repro_line(self):
        sched = chaos_schedules(1, base_seed=41)[0]
        results = run_chaos_case(sched)
        assert len(results) == 2
        assert {r.check for r in results} == {"chaos:outcome", "chaos:hygiene"}
        for r in results:
            assert r.repro == (
                "python -m repro.verify --config chaos "
                "--base-seed 41 --schedules 1"
            )

    def test_untyped_failure_detected(self, monkeypatch):
        # A raw RuntimeError out of the kernel layer is exactly the
        # kind of escape the closed-world contract exists to catch.
        def boom(*args, **kwargs):
            raise RuntimeError("kernel exploded")

        monkeypatch.setattr("repro.parallel.executor.parallel_s3ttmc", boom)
        sched = dataclasses.replace(
            chaos_schedules(1, base_seed=0)[0],
            target="s3ttmc",
            faults=(),
            deadline_seconds=None,
            cancel_after=None,
        )
        outcome = next(
            r for r in run_chaos_case(sched) if r.check == "chaos:outcome"
        )
        assert not outcome.ok
        assert "UNTYPED failure" in outcome.detail
        assert "kernel exploded" in outcome.detail

    def test_typed_failure_taxonomy_is_closed(self):
        from repro.runtime.budget import MemoryLimitError
        from repro.runtime.faults import BackendUnhealthyError
        from repro.runtime.health import HealthError

        for exc_type in TYPED_FAILURES:
            assert issubclass(
                exc_type, (HealthError, BackendUnhealthyError, MemoryLimitError)
            )


class TestRunnerIntegration:
    def test_run_suite_chaos_config(self):
        seen = []

        def on_case(sched, results):
            seen.append((sched, results))

        report = run_suite("chaos", schedules=3, base_seed=0, on_case=on_case)
        assert len(report.results) == 6  # outcome + hygiene per schedule
        assert report.ok
        assert len(seen) == 3
        assert all(isinstance(s, ChaosSchedule) for s, _ in seen)

    def test_run_suite_chaos_check_filter(self):
        report = run_suite("chaos", schedules=2, base_seed=0, check="chaos:hygiene")
        assert len(report.results) == 2
        assert all(r.check == "chaos:hygiene" for r in report.results)

    def test_cli_smoke(self, capsys):
        from repro.verify.__main__ import main

        rc = main(["--config", "chaos", "--schedules", "2", "-q"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "passed" in out
