"""ExecContext tests: validation, ambient fallback, scoping/derivation,
serialization, budget propagation under every execution, and isolation
between concurrent runs."""

import asyncio
import threading

import numpy as np
import pytest

from repro import ExecContext, current_context
from repro.core import s3ttmc
from repro.decomp import hooi
from repro.obs.trace import TraceCollector
from repro.parallel import parallel_s3ttmc
from repro.runtime import MemoryBudget, MemoryLimitError
from repro.runtime.context import (
    EXECUTIONS,
    PlanCache,
    resolve_context,
    tensor_generation,
)
from tests.conftest import make_random_tensor


class _DummyBackend:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestValidation:
    def test_unknown_execution(self):
        ctx = ExecContext(execution="gpu")
        with pytest.raises(ValueError, match="unknown execution"):
            ctx.validate()

    def test_unknown_execution_lists_choices(self):
        with pytest.raises(ValueError, match="expected one of"):
            ExecContext(execution="mpi").validate()

    def test_n_workers_requires_parallel(self):
        ctx = ExecContext(execution="serial", n_workers=4)
        with pytest.raises(
            ValueError, match=r"n_workers requires execution='thread'\|'process'"
        ):
            ctx.validate()

    def test_parallel_requires_symprop_kernel(self):
        ctx = ExecContext(execution="thread")
        with pytest.raises(ValueError, match="requires kernel='symprop'"):
            ctx.validate(kernel="css")

    def test_parallel_rejects_full_intermediates(self):
        ctx = ExecContext(execution="thread")
        with pytest.raises(ValueError, match="requires intermediate='compact'"):
            ctx.validate(kernel="symprop", intermediate="full")

    def test_serial_accepts_any_kernel(self):
        ExecContext().validate(kernel="css", intermediate="full")

    def test_hooi_rejects_parallel_css(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        with pytest.raises(ValueError, match="requires kernel='symprop'"):
            hooi(x, 2, kernel="css", execution="thread", max_iters=1)

    def test_hooi_rejects_ctx_execution_conflict(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        ctx = ExecContext(execution="serial")
        with pytest.raises(ValueError, match="conflicts with ctx"):
            hooi(x, 2, ctx=ctx, execution="thread", max_iters=1)


class TestAmbientDefault:
    def test_current_context_defaults_to_ambient(self):
        ctx = current_context()
        assert ctx.is_ambient
        assert resolve_context(None) is ctx

    def test_explicit_context_wins_inside_scope(self):
        ctx = ExecContext(seed=7)
        with ctx:
            assert current_context() is ctx
            assert not current_context().is_ambient
        assert current_context().is_ambient

    def test_resolve_passthrough(self):
        ctx = ExecContext()
        assert resolve_context(ctx) is ctx

    def test_legacy_budget_call_site_still_accounts(self, rng):
        """Pre-existing ``with MemoryBudget(...):`` sites see no change."""
        x = make_random_tensor(3, 8, 40, rng)
        u = rng.random((8, 2))
        with MemoryBudget() as budget:
            s3ttmc(x, u)
        assert budget.peak > 0

    def test_legacy_collector_call_site_still_traces(self, rng):
        x = make_random_tensor(3, 8, 40, rng)
        with TraceCollector() as col:
            hooi(x, 2, max_iters=1)
        assert col.find("hooi.iteration")


class TestScopeAndLifecycle:
    def test_scope_installs_budget_and_collector(self, rng):
        x = make_random_tensor(3, 8, 40, rng)
        u = rng.random((8, 2))
        ctx = ExecContext(budget=MemoryBudget(), collector=TraceCollector())
        with ctx.scope():
            s3ttmc(x, u)
        assert ctx.budget.peak > 0
        assert ctx.collector.find("s3ttmc")

    def test_enter_exit_closes_owned_backend(self):
        ctx = ExecContext(execution="thread")
        backend = _DummyBackend()
        with ctx:
            ctx.adopt_backend(backend)
        assert backend.closed
        assert ctx.backend is None

    def test_double_adopt_rejected(self):
        ctx = ExecContext()
        ctx.adopt_backend(_DummyBackend())
        with pytest.raises(RuntimeError, match="already owns a backend"):
            ctx.adopt_backend(_DummyBackend())
        ctx.close()

    def test_close_is_idempotent(self):
        ctx = ExecContext()
        backend = _DummyBackend()
        ctx.adopt_backend(backend)
        ctx.close()
        ctx.close()
        assert backend.closed

    def test_derive_shares_state_but_not_backend(self):
        budget = MemoryBudget(gigabytes=1)
        parent = ExecContext(budget=budget, collector=TraceCollector(), seed=3)
        parent.adopt_backend(_DummyBackend())
        child = parent.derive(execution="thread", n_workers=2)
        assert child.budget is budget
        assert child.collector is parent.collector
        assert child.plans is parent.plans
        assert child.seed == 3
        assert child.execution == "thread" and child.n_workers == 2
        assert child.backend is None
        parent.close()

    def test_snapshot_materializes_ambient(self):
        with MemoryBudget() as budget, TraceCollector() as col:
            snap = ExecContext().snapshot()
        assert snap.budget is budget
        assert snap.collector is col

    def test_snapshot_is_identity_when_explicit(self):
        ctx = ExecContext(budget=MemoryBudget(), collector=TraceCollector())
        assert ctx.snapshot() is ctx

    def test_serialization_round_trip(self):
        ctx = ExecContext(
            budget=MemoryBudget(limit_bytes=12345),
            collector=TraceCollector(),
            execution="thread",
            n_workers=3,
            reduction="tree",
            seed=11,
        )
        spec = ctx.to_dict()
        clone = ExecContext.from_dict(spec)
        assert clone.execution == "thread"
        assert clone.n_workers == 3
        assert clone.reduction == "tree"
        assert clone.seed == 11
        assert clone.budget.limit_bytes == 12345
        assert clone.collector is not ctx.collector

    def test_seed_flows_to_drivers(self, rng):
        x = make_random_tensor(3, 8, 40, rng)
        a = hooi(x, 2, max_iters=1, ctx=ExecContext(seed=5))
        b = hooi(x, 2, max_iters=1, ctx=ExecContext(seed=5))
        assert np.allclose(a.factor, b.factor)


class TestPlanCache:
    def test_generation_ids_unique_and_stable(self, rng):
        x = make_random_tensor(3, 8, 20, rng)
        y = make_random_tensor(3, 8, 20, rng)
        assert tensor_generation(x) == tensor_generation(x)
        assert tensor_generation(x) != tensor_generation(y)

    def test_context_owns_plans(self, rng):
        x = make_random_tensor(4, 10, 60, rng)
        u = rng.random((10, 3))
        ctx = ExecContext()
        parallel_s3ttmc(x, u, 2, backend="serial", ctx=ctx)
        assert ctx.plans.n_tensors == 1
        assert ctx.plans is not current_context().plans

    def test_plan_cache_clear(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        cache = PlanCache()
        cache.chunk_plans(x)["probe"] = object()
        assert cache.n_tensors == 1
        cache.clear()
        assert cache.n_tensors == 0


class TestBudgetPropagation:
    """Satellite: a tiny budget must OOM under every execution — including
    inside process-backend workers, which previously ran unbudgeted."""

    @pytest.mark.parametrize("execution", EXECUTIONS)
    def test_tiny_budget_raises_everywhere(self, execution, rng):
        x = make_random_tensor(4, 10, 80, rng)
        workers = None if execution == "serial" else 2
        ctx = ExecContext(
            execution=execution,
            n_workers=workers,
            budget=MemoryBudget(limit_bytes=512),
        )
        try:
            with pytest.raises(MemoryLimitError):
                hooi(x, 3, max_iters=2, ctx=ctx)
        finally:
            ctx.close()

    def test_process_worker_enforces_budget(self, rng):
        """The limit ships to workers: a budget that admits the parent's
        partials/output but nothing more must be tripped *worker-side*."""
        x = make_random_tensor(4, 10, 80, rng)
        u = rng.random((10, 3))
        probe = ExecContext(budget=MemoryBudget(), collector=TraceCollector())
        with probe:
            parallel_s3ttmc(x, u, 2, backend="process", ctx=probe)
        dispatch = [
            e
            for e in probe.collector.events
            if e.name == "budget.request" and e.attrs.get("label") == "Y (parallel)"
        ]
        assert dispatch, "parent must account the parallel output"
        base = dispatch[0].attrs["in_use"]  # partials + output at dispatch
        assert probe.budget.peak > base, "workers must report their peaks"

        ctx = ExecContext(budget=MemoryBudget(limit_bytes=base + 1))
        try:
            with ctx, pytest.raises(MemoryLimitError):
                parallel_s3ttmc(x, u, 2, backend="process", ctx=ctx)
        finally:
            ctx.close()

    def test_worker_peak_folds_into_parent_budget(self, rng):
        x = make_random_tensor(4, 10, 80, rng)
        u = rng.random((10, 3))
        serial_ctx = ExecContext(budget=MemoryBudget())
        with serial_ctx:
            s3ttmc(x, u)
        ctx = ExecContext(budget=MemoryBudget())
        with ctx:
            parallel_s3ttmc(x, u, 2, backend="process", ctx=ctx)
        assert ctx.budget.peak > 0
        # Worker-side kernel allocations are visible in the parent's peak.
        assert ctx.budget.peak >= serial_ctx.budget.peak / 4


class TestConcurrencyIsolation:
    """Satellite: concurrent runs under distinct contexts must not
    cross-contaminate traces or budget accounting."""

    def test_threads_with_separate_contexts(self, rng):
        x_a = make_random_tensor(4, 10, 60, rng)
        x_b = make_random_tensor(3, 8, 30, rng)
        contexts = {}
        errors = []
        barrier = threading.Barrier(2)

        def run(name, tensor, iters):
            ctx = ExecContext(
                budget=MemoryBudget(), collector=TraceCollector(), seed=0
            )
            contexts[name] = ctx
            try:
                barrier.wait(timeout=30)
                with ctx:
                    # Negative tol: the convergence test can never fire, so
                    # every run performs exactly `iters` iterations.
                    hooi(tensor, 2, max_iters=iters, tol=-1.0, ctx=ctx)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((name, exc))

        threads = [
            threading.Thread(target=run, args=("a", x_a, 3)),
            threading.Thread(target=run, args=("b", x_b, 5)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        a, b = contexts["a"], contexts["b"]
        assert len(a.collector.find("hooi.iteration")) == 3
        assert len(b.collector.find("hooi.iteration")) == 5
        shared = {id(s) for s in a.collector.spans} & {
            id(s) for s in b.collector.spans
        }
        assert not shared, "span records leaked across contexts"
        assert a.budget.peak > 0 and b.budget.peak > 0

    def test_explicit_context_shields_ambient_collector(self, rng):
        x = make_random_tensor(3, 8, 40, rng)
        ctx = ExecContext(collector=TraceCollector())
        with TraceCollector() as ambient:
            hooi(x, 2, max_iters=1, ctx=ctx)
        assert ctx.collector.find("hooi.iteration")
        assert not ambient.spans


class TestRunTokens:
    def test_every_context_gets_a_distinct_token(self):
        a, b = ExecContext(), ExecContext()
        assert a.run_token != b.run_token
        assert len(a.run_token) == 8
        int(a.run_token, 16)  # hex-parsable (reseed derivation relies on it)

    def test_derive_mints_fresh_token_snapshot_keeps_it(self):
        parent = ExecContext(budget=MemoryBudget(), collector=TraceCollector())
        child = parent.derive()
        assert child.run_token != parent.run_token  # child = new logical run
        assert parent.snapshot().run_token == parent.run_token

    def test_release_backend_detaches_without_closing(self):
        ctx = ExecContext()
        backend = _DummyBackend()
        ctx.adopt_backend(backend)
        released = ctx.release_backend()
        assert released is backend
        assert not backend.closed
        ctx.close()  # no longer owns it: close() must not touch it
        assert not backend.closed
        assert ctx.release_backend() is None  # idempotent


class TestDerivedJobIsolation:
    """Satellite: two jobs derived from one base context, run concurrently
    on an asyncio loop (the serve execution model) — one tripping its
    deadline must leave the sibling's budget, deadline, and trace
    untouched."""

    def test_deadline_trip_spares_sibling(self, rng):
        from repro.runtime.health import CancelToken, DeadlineExceededError

        x = make_random_tensor(3, 16, 150, rng)
        base = ExecContext(seed=1)
        budget_a, budget_b = MemoryBudget(), MemoryBudget()
        col_a, col_b = TraceCollector(), TraceCollector()
        job_a = base.derive(
            budget=budget_a,
            collector=col_a,
            deadline_seconds=0.05,
            cancel=CancelToken(),
        )
        job_b = base.derive(
            budget=budget_b, collector=col_b, cancel=CancelToken()
        )

        async def main():
            def run(ctx, iters):
                return hooi(x, 3, max_iters=iters, tol=0.0, seed=2, ctx=ctx)

            return await asyncio.gather(
                asyncio.to_thread(run, job_a, 5000),
                asyncio.to_thread(run, job_b, 3),
                return_exceptions=True,
            )

        result_a, result_b = asyncio.run(main())
        assert isinstance(result_a, DeadlineExceededError)
        assert not isinstance(result_b, BaseException), result_b

        # Sibling b: derived isolation held — its own budget and trace,
        # no deadline, and a run identical to a solo one.
        assert job_b.deadline_seconds is None
        assert not job_b.cancel_token.cancelled
        assert len(col_b.find("hooi.iteration")) == 3
        assert not [e for e in col_b.events if e.name.startswith("health.")]
        assert budget_b.peak > 0
        # a's failure was recorded against a's trace only.
        assert [e for e in col_a.events if e.name.startswith("health.")]
        solo = hooi(x, 3, max_iters=3, tol=0.0, seed=2)
        assert np.array_equal(result_b.factor, solo.factor)

    def test_derive_overrides_budget_and_collector(self):
        base = ExecContext(
            budget=MemoryBudget(), collector=TraceCollector(), seed=9
        )
        own_budget, own_col = MemoryBudget(), TraceCollector()
        child = base.derive(budget=own_budget, collector=own_col)
        assert child.budget is own_budget
        assert child.collector is own_col
        assert child.plans is base.plans  # plans stay shared (pure caches)
        assert child.seed == 9
        # Defaults still inherit.
        plain = base.derive()
        assert plain.budget is base.budget
        assert plain.collector is base.collector
