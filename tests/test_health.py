"""Run-level resilience tests: cancel tokens, deadlines, the numerical-
health watchdog, decomposition-driver integration (checkpoint-on-trip,
bit-for-bit resume), and shared-memory hygiene after abrupt cancellation.

The timing-based tests measure one iteration first and scale their
cancel/deadline windows from it, so they stay deterministic-in-outcome
on slow CI machines (the exact trip iteration may vary; the contracts —
typed error, valid checkpoint, bitwise resume, zero leaks — may not).
"""

import threading
import time

import numpy as np
import pytest

from repro.decomp import hooi, hoqri
from repro.decomp.restarts import reseed_seed
from repro.parallel import ParallelRunReport, parallel_s3ttmc
from repro.parallel import shm as _shm
from repro.runtime import (
    CancelToken,
    DeadlineExceededError,
    ExecContext,
    FallbackPolicy,
    FaultInjector,
    FaultSpec,
    HealthMonitor,
    NumericalHealthError,
    RunCancelledError,
)
from repro.runtime.checkpoint import load_checkpoint
from tests.conftest import make_random_tensor


def _counter(col, name):
    return col.metrics.counter(name).value


class TestCancelToken:
    def test_cancel_idempotent_first_reason_wins(self):
        tok = CancelToken()
        assert not tok.cancelled
        tok.cancel("first")
        tok.cancel("second")
        assert tok.cancelled
        assert tok.reason == "first"

    def test_derive_propagates_parent_cancel(self):
        parent = CancelToken()
        child = parent.derive()
        grandchild = child.derive()
        assert not grandchild.cancelled
        parent.cancel("evicted")
        assert child.cancelled
        assert grandchild.cancelled
        assert grandchild.reason == "evicted"

    def test_derive_after_cancel_is_already_cancelled(self):
        parent = CancelToken()
        parent.cancel("gone")
        assert parent.derive().cancelled

    def test_child_cancel_does_not_reach_parent(self):
        parent = CancelToken()
        child = parent.derive()
        child.cancel("local")
        assert child.cancelled
        assert not parent.cancelled

    def test_raise_if_cancelled(self):
        tok = CancelToken()
        tok.raise_if_cancelled()  # no-op while live
        tok.cancel("stop")
        with pytest.raises(RunCancelledError, match="stop"):
            tok.raise_if_cancelled("unit-test")


class TestContextDeadline:
    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            ExecContext(deadline_seconds=0)
        with pytest.raises(ValueError):
            ExecContext(deadline_seconds=-1.0)

    def test_remaining_seconds(self):
        assert ExecContext().remaining_seconds() is None
        ctx = ExecContext(deadline_seconds=60.0)
        remaining = ctx.remaining_seconds()
        assert remaining is not None and 0 < remaining <= 60.0

    def test_check_health_cancel_and_site(self):
        tok = CancelToken()
        ctx = ExecContext(cancel=tok)
        ctx.check_health("anywhere")  # healthy: no raise
        tok.cancel("preempted")
        with pytest.raises(RunCancelledError, match=r"preempted \(at here\)"):
            ctx.check_health("here")

    def test_check_health_deadline(self):
        ctx = ExecContext(deadline_seconds=0.001)
        time.sleep(0.01)
        with pytest.raises(DeadlineExceededError, match="0.001"):
            ctx.check_health("late")

    def test_derive_inherits_absolute_deadline_and_token(self):
        tok = CancelToken()
        ctx = ExecContext(deadline_seconds=30.0, cancel=tok)
        child = ctx.derive()
        # Absolute inheritance: the child's clock does not restart.
        assert child._deadline_at == ctx._deadline_at
        assert child.cancel_token is tok
        tok.cancel("parent says stop")
        with pytest.raises(RunCancelledError):
            child.check_health()
        # An explicit override re-arms from now.
        fresh = ExecContext(deadline_seconds=30.0)
        tightened = fresh.derive(deadline_seconds=5.0)
        assert tightened.deadline_seconds == 5.0
        assert tightened._deadline_at != fresh._deadline_at

    def test_snapshot_preserves_deadline(self):
        ctx = ExecContext(deadline_seconds=30.0)
        snap = ctx.snapshot()
        assert snap._deadline_at == ctx._deadline_at

    def test_dict_roundtrip_carries_deadline(self):
        ctx = ExecContext(deadline_seconds=12.5)
        spec = ctx.to_dict()
        assert spec["deadline_seconds"] == 12.5
        clone = ExecContext.from_dict(spec)
        assert clone.deadline_seconds == 12.5

    def test_trip_event_emitted_once(self):
        from repro.obs.trace import TraceCollector

        col = TraceCollector()
        tok = CancelToken()
        ctx = ExecContext(collector=col, cancel=tok)
        tok.cancel("once")
        for _ in range(3):
            with pytest.raises(RunCancelledError):
                ctx.check_health("loop")
        assert _counter(col, "health.cancelled") == 1


class TestHealthMonitor:
    POLICY = FallbackPolicy(max_unhealthy_iters=2, max_health_recoveries=2)

    def test_healthy_and_noise_tolerated(self):
        mon = HealthMonitor(self.POLICY)
        assert mon.observe(1.0, np.inf, norm_x_squared=10.0) is None
        assert mon.observe(0.9, 1.0, norm_x_squared=10.0) is None
        # Worsening below the relative-noise tolerance is not a strike.
        assert mon.observe(0.9 + 1e-12, 0.9, norm_x_squared=10.0) is None
        assert mon.strikes == 0

    def test_strikes_reset_on_recovery_of_health(self):
        mon = HealthMonitor(self.POLICY)
        assert mon.observe(float("nan"), 1.0) is None
        assert mon.strikes == 1
        assert mon.observe(0.5, 1.0) is None
        assert mon.strikes == 0

    def test_restore_then_reseed_then_exhausted(self):
        mon = HealthMonitor(self.POLICY)
        directives = []
        for _ in range(2):
            directives.append(mon.observe(float("inf"), 1.0))
        assert directives == [None, "restore"]
        for _ in range(2):
            directives.append(mon.observe(2.0, 1.0))  # diverging
        assert directives[-2:] == [None, "reseed"]
        mon.observe(float("nan"), 1.0)
        with pytest.raises(NumericalHealthError, match="max_health_recoveries"):
            mon.observe(float("nan"), 1.0)

    def test_threshold_clamped_to_one(self):
        mon = HealthMonitor(FallbackPolicy(max_unhealthy_iters=0))
        assert mon.observe(float("nan"), 1.0) == "restore"

    def test_reseed_seed_convention(self):
        assert reseed_seed(5, 2) == 7
        with pytest.raises(ValueError):
            reseed_seed(0, 0)

    def test_reseed_seed_none_uses_context_seed(self):
        with ExecContext(seed=11) as ctx:
            assert reseed_seed(None, 1, ctx=ctx) == 12
            assert reseed_seed(None, 3, ctx=ctx) == 14

    def test_reseed_seed_seedless_runs_are_decorrelated(self):
        # A seedless run must NOT walk base_seed=0's sequence (nor any
        # other seedless run's): bases derive from the unique run token.
        a, b = ExecContext(), ExecContext()
        seq_a = [reseed_seed(None, k, ctx=a) for k in (1, 2, 3)]
        seq_b = [reseed_seed(None, k, ctx=b) for k in (1, 2, 3)]
        assert seq_a != [1, 2, 3]
        assert seq_b != [1, 2, 3]
        assert seq_a != seq_b
        # ... while staying deterministic within one run.
        assert seq_a == [reseed_seed(None, k, ctx=a) for k in (1, 2, 3)]


class TestBackendHealth:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_precancelled_token_raises(self, backend, rng):
        x = make_random_tensor(3, 8, 30, rng)
        tok = CancelToken()
        tok.cancel("never started")
        with ExecContext(n_workers=2, cancel=tok) as ctx:
            with pytest.raises(RunCancelledError, match="never started"):
                parallel_s3ttmc(x, rng.random((8, 3)), ctx=ctx, backend=backend)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_expired_deadline_raises(self, backend, rng):
        x = make_random_tensor(3, 8, 30, rng)
        ctx = ExecContext(n_workers=2, deadline_seconds=0.001)
        time.sleep(0.01)
        with ctx:
            with pytest.raises(DeadlineExceededError):
                parallel_s3ttmc(x, rng.random((8, 3)), ctx=ctx, backend=backend)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_nan_partial_retried_bitwise(self, backend, rng):
        """The finiteness sentinel catches a poisoned partial; the retry
        reproduces the clean run bit-for-bit."""
        x = make_random_tensor(4, 10, 50, rng)
        u = rng.random((10, 3))
        inj = FaultInjector([FaultSpec(site="chunk", kind="nan")])
        report = ParallelRunReport()
        with ExecContext(n_workers=2, faults=inj) as ctx:
            got = parallel_s3ttmc(x, u, ctx=ctx, backend=backend, report=report)
        with ExecContext(n_workers=2) as clean_ctx:
            clean = parallel_s3ttmc(x, u, ctx=clean_ctx, backend=backend)
        assert inj.n_fired == 1
        assert report.nonfinite_partials == 1
        assert np.array_equal(got.data, clean.data)

    def test_persistent_nan_exhausts_to_numerical_health_error(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        inj = FaultInjector(
            [FaultSpec(site="chunk", kind="nan", times=10**6)]
        )
        pol = FallbackPolicy(max_retries=1, backoff_seconds=0.0, degrade=())
        with ExecContext(faults=inj, fallback=pol) as ctx:
            with pytest.raises(NumericalHealthError, match="non-finite"):
                parallel_s3ttmc(x, rng.random((8, 3)), ctx=ctx, backend="serial")

    def test_slow_fault_completes_but_burns_deadline(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        u = rng.random((8, 3))
        # Without a deadline, slow is just slow: output is unaffected.
        inj = FaultInjector(
            [FaultSpec(site="chunk", kind="slow", seconds=0.05)]
        )
        with ExecContext(faults=inj) as ctx:
            got = parallel_s3ttmc(x, u, ctx=ctx, backend="serial")
        with ExecContext() as clean_ctx:
            clean = parallel_s3ttmc(x, u, ctx=clean_ctx, backend="serial")
        assert np.array_equal(got.data, clean.data)
        # With one, the sleep pushes the run over its wall budget. The
        # serial backend runs its two chunks sequentially, so the health
        # check before chunk 1 observes the time chunk 0's injected
        # sleep burned and trips the deadline.
        inj2 = FaultInjector(
            [FaultSpec(site="chunk", kind="slow", seconds=1.0)]
        )
        ctx2 = ExecContext(faults=inj2, deadline_seconds=0.3)
        with ctx2:
            with pytest.raises(DeadlineExceededError):
                parallel_s3ttmc(
                    x, u, ctx=ctx2, backend="serial", n_workers=2
                )


class TestDecompResilience:
    def _per_iteration_seconds(self, x, rank):
        tick = time.perf_counter()
        hooi(x, rank, max_iters=2, seed=3)
        return max(0.01, (time.perf_counter() - tick) / 2)

    def test_hooi_cancel_checkpoints_and_resumes_bitwise(self, rng, tmp_path):
        x = make_random_tensor(3, 60, 6000, rng)
        per_iter = self._per_iteration_seconds(x, 6)
        tok = CancelToken()
        ctx = ExecContext(cancel=tok)
        timer = threading.Timer(2.5 * per_iter, tok.cancel, args=("evicted",))
        timer.start()
        try:
            with pytest.raises(RunCancelledError, match="evicted"):
                hooi(
                    x, 6, max_iters=100_000, tol=0.0, seed=3, ctx=ctx,
                    checkpoint_dir=tmp_path, checkpoint_every=10**9,
                )
        finally:
            timer.cancel()
            ctx.close()
        # checkpoint_every never fires; the save came from the trip path.
        state = load_checkpoint(tmp_path)
        assert state is not None
        n = state.iteration + 1 + 2
        resumed = hooi(
            x, 6, max_iters=n, tol=0.0, seed=3,
            checkpoint_dir=tmp_path, resume=True,
        )
        straight = hooi(x, 6, max_iters=n, tol=0.0, seed=3)
        assert np.array_equal(resumed.factor, straight.factor)
        assert np.array_equal(resumed.core.data, straight.core.data)

    def test_hoqri_deadline_checkpoints_before_raising(self, rng, tmp_path):
        x = make_random_tensor(3, 60, 6000, rng)
        tick = time.perf_counter()
        hoqri(x, 6, max_iters=2, seed=3)
        per_iter = max(0.01, (time.perf_counter() - tick) / 2)
        ctx = ExecContext(deadline_seconds=3.0 * per_iter)
        with ctx:
            with pytest.raises(DeadlineExceededError):
                hoqri(
                    x, 6, max_iters=100_000, tol=0.0, seed=3, ctx=ctx,
                    checkpoint_dir=tmp_path, checkpoint_every=10**9,
                )
        state = load_checkpoint(tmp_path)
        assert state is not None
        n = state.iteration + 1 + 2
        resumed = hoqri(
            x, 6, max_iters=n, tol=0.0, seed=3,
            checkpoint_dir=tmp_path, resume=True,
        )
        straight = hoqri(x, 6, max_iters=n, tol=0.0, seed=3)
        assert np.array_equal(resumed.factor, straight.factor)

    def test_watchdog_restores_after_transient_nan(self, rng):
        from repro.obs.trace import TraceCollector

        x = make_random_tensor(3, 12, 60, rng)
        col = TraceCollector()
        pol = FallbackPolicy(
            check_finite=False, verify_partials=False,
            max_unhealthy_iters=1, max_health_recoveries=2,
        )
        inj = FaultInjector([FaultSpec(site="chunk", kind="nan")])
        ctx = ExecContext(
            execution="thread", n_workers=2, fallback=pol, faults=inj,
            collector=col,
        )
        with ctx:
            result = hooi(x, 4, max_iters=8, seed=3, ctx=ctx)
        assert np.isfinite(result.relative_error)
        assert _counter(col, "health.recovery") == 1
        assert _counter(col, "health.nonfinite") >= 1

    @pytest.mark.parametrize("algorithm", [hooi, hoqri])
    def test_watchdog_exhausts_to_typed_error(self, algorithm, rng):
        x = make_random_tensor(3, 12, 60, rng)
        pol = FallbackPolicy(
            check_finite=False, verify_partials=False,
            max_unhealthy_iters=1, max_health_recoveries=2,
        )
        inj = FaultInjector(
            [FaultSpec(site="chunk", kind="nan", times=10**6)]
        )
        ctx = ExecContext(
            execution="thread", n_workers=2, fallback=pol, faults=inj
        )
        with ctx:
            with pytest.raises(NumericalHealthError):
                algorithm(x, 4, max_iters=50, seed=3, ctx=ctx)


class TestProcessResilience:
    """The ISSUE acceptance scenario plus the shm-hygiene regression."""

    def test_deadline_mid_iteration_checkpoint_resume_no_leaks(
        self, rng, tmp_path
    ):
        x = make_random_tensor(3, 40, 2000, rng)
        before = set(_shm._LIVE_SEGMENTS)
        # Two chunks per iteration (n_chunks == n_workers): after=2 fires
        # on iteration 2's first chunk, whose 30s sleep outlives the
        # deadline — the trip lands mid-iteration with iteration 1 done.
        inj = FaultInjector(
            [FaultSpec(site="chunk", kind="slow", seconds=30.0, after=2)]
        )
        ctx = ExecContext(
            execution="process", n_workers=2, faults=inj,
            deadline_seconds=8.0,
        )
        try:
            with pytest.raises(DeadlineExceededError):
                hooi(
                    x, 4, max_iters=5, tol=0.0, seed=3, ctx=ctx,
                    checkpoint_dir=tmp_path, checkpoint_every=1,
                )
        finally:
            ctx.close()
        assert set(_shm._LIVE_SEGMENTS) == before, "leaked shm segments"
        state = load_checkpoint(tmp_path)
        assert state is not None and state.iteration >= 0

        resume_ctx = ExecContext(execution="process", n_workers=2)
        with resume_ctx:
            resumed = hooi(
                x, 4, max_iters=3, tol=0.0, seed=3, ctx=resume_ctx,
                checkpoint_dir=tmp_path, resume=True,
            )
        straight_ctx = ExecContext(execution="process", n_workers=2)
        with straight_ctx:
            straight = hooi(
                x, 4, max_iters=3, tol=0.0, seed=3, ctx=straight_ctx
            )
        assert np.array_equal(resumed.factor, straight.factor)
        assert set(_shm._LIVE_SEGMENTS) == before

    def test_cancel_mid_first_chunk_leaves_no_segments(self, rng):
        """Regression: a run cancelled before any chunk completes must
        still unlink every worker-created result segment."""
        x = make_random_tensor(3, 20, 300, rng)
        before = set(_shm._LIVE_SEGMENTS)
        tok = CancelToken()
        inj = FaultInjector(
            [FaultSpec(site="chunk", kind="slow", seconds=30.0, times=4)]
        )
        ctx = ExecContext(
            execution="process", n_workers=2, faults=inj, cancel=tok
        )
        timer = threading.Timer(0.5, tok.cancel, args=("mid-flight",))
        timer.start()
        try:
            with pytest.raises(RunCancelledError, match="mid-flight"):
                parallel_s3ttmc(x, rng.random((20, 3)), ctx=ctx)
        finally:
            timer.cancel()
            ctx.close()
        assert set(_shm._LIVE_SEGMENTS) == before, "leaked shm segments"
