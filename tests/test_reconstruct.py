"""Tests for reconstruction utilities."""

import numpy as np
import pytest

from repro import hoqri, random_sparse_symmetric
from repro.decomp import reconstruct_at, reconstruct_dense, residual_norm


@pytest.fixture(scope="module")
def decomposed():
    x = random_sparse_symmetric(3, 12, 80, seed=0)
    return x, hoqri(x, 3, max_iters=20, seed=0)


class TestReconstruct:
    def test_dense_is_symmetric(self, decomposed):
        _, res = decomposed
        dense = reconstruct_dense(res)
        assert np.allclose(dense, np.transpose(dense, (1, 0, 2)), atol=1e-10)
        assert np.allclose(dense, np.transpose(dense, (2, 1, 0)), atol=1e-10)

    def test_pointwise_matches_dense(self, decomposed):
        x, res = decomposed
        dense = reconstruct_dense(res)
        vals = reconstruct_at(res, x.indices)
        assert np.allclose(vals, dense[tuple(x.indices.T)], atol=1e-10)

    def test_pointwise_permutation_invariant(self, decomposed):
        x, res = decomposed
        forward = reconstruct_at(res, x.indices)
        reversed_idx = x.indices[:, ::-1].copy()
        assert np.allclose(reconstruct_at(res, reversed_idx), forward, atol=1e-10)

    def test_pointwise_chunking_invariant(self, decomposed):
        x, res = decomposed
        a = reconstruct_at(res, x.indices, chunk=7)
        b = reconstruct_at(res, x.indices, chunk=10_000)
        assert np.allclose(a, b)

    def test_shape_validation(self, decomposed):
        _, res = decomposed
        with pytest.raises(ValueError):
            reconstruct_at(res, np.zeros((4, 2), dtype=int))

    def test_norm_of_reconstruction_equals_core_norm(self, decomposed):
        """‖X̂‖ = ‖C‖ for orthonormal factors."""
        _, res = decomposed
        dense = reconstruct_dense(res)
        assert np.linalg.norm(dense) == pytest.approx(res.core.norm(), rel=1e-10)


class TestResidualNorm:
    def test_exact_matches_dense(self, decomposed):
        x, res = decomposed
        expected = np.linalg.norm(x.to_dense() - reconstruct_dense(res))
        assert residual_norm(res, x) == pytest.approx(expected, abs=1e-8)

    def test_fast_path_consistent_for_hoqri(self, decomposed):
        x, res = decomposed
        assert residual_norm(res, x, exact=False) == pytest.approx(
            residual_norm(res, x, exact=True), abs=1e-6
        )

    def test_relative_error_consistency(self, decomposed):
        x, res = decomposed
        assert residual_norm(res, x) / x.norm() == pytest.approx(
            res.relative_error, abs=1e-8
        )
