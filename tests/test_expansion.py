"""Tests for the expansion operator E and multiplicity matrix M (Props 2–3)."""

import numpy as np
import pytest

from repro.symmetry.combinatorics import dense_size, sym_storage_size
from repro.symmetry.expansion import (
    compact_from_full,
    expand_compact,
    expansion_matrix,
    multiplicity_vector,
)
from repro.symmetry.tables import get_tables


class TestExpansionMatrix:
    @pytest.mark.parametrize("order,dim", [(2, 3), (3, 3), (4, 2)])
    def test_shape_and_row_sums(self, order, dim):
        e = expansion_matrix(order, dim)
        assert e.shape == (dense_size(order, dim), sym_storage_size(order, dim))
        # Every full index expands from exactly one IOU.
        assert np.all(np.asarray(e.sum(axis=1)).ravel() == 1)

    @pytest.mark.parametrize("order,dim", [(2, 3), (3, 3), (4, 2)])
    def test_property3_m_is_diagonal_multiplicity(self, order, dim):
        """EᵀE is diagonal with multinomial permutation counts (Property 3)."""
        e = expansion_matrix(order, dim)
        m = (e.T @ e).toarray()
        p = multiplicity_vector(order, dim)
        assert np.allclose(m, np.diag(p))

    def test_column_sums_are_multiplicities(self):
        e = expansion_matrix(3, 3)
        cols = np.asarray(e.sum(axis=0)).ravel()
        assert np.allclose(cols, multiplicity_vector(3, 3))

    def test_multiplicities_sum_to_dense_size(self):
        for order, dim in [(2, 4), (3, 3), (5, 2)]:
            assert multiplicity_vector(order, dim).sum() == dense_size(order, dim)


class TestExpandCompact:
    def test_roundtrip_1d(self, rng):
        order, dim = 3, 4
        compact = rng.random(sym_storage_size(order, dim))
        full = expand_compact(compact, order, dim)
        assert full.shape == (dense_size(order, dim),)
        back = compact_from_full(full, order, dim)
        assert np.allclose(back, compact)

    def test_roundtrip_2d(self, rng):
        order, dim = 2, 5
        compact = rng.random((7, sym_storage_size(order, dim)))
        full = expand_compact(compact, order, dim)
        assert full.shape == (7, dense_size(order, dim))
        assert np.allclose(compact_from_full(full, order, dim), compact)

    def test_expanded_tensor_is_symmetric(self, rng):
        order, dim = 3, 3
        compact = rng.random(sym_storage_size(order, dim))
        full = expand_compact(compact, order, dim).reshape((dim,) * order)
        assert np.allclose(full, np.transpose(full, (1, 0, 2)))
        assert np.allclose(full, np.transpose(full, (0, 2, 1)))
        assert np.allclose(full, np.transpose(full, (2, 1, 0)))

    def test_matches_sparse_matrix(self, rng):
        order, dim = 3, 3
        compact = rng.random(sym_storage_size(order, dim))
        e = expansion_matrix(order, dim)
        assert np.allclose(e @ compact, expand_compact(compact, order, dim))

    def test_compact_from_full_rejects_asymmetric(self, rng):
        full = rng.random(dense_size(2, 3))
        with pytest.raises(ValueError):
            compact_from_full(full, 2, 3)

    def test_compact_from_full_skip_check(self, rng):
        full = rng.random(dense_size(2, 3))
        out = compact_from_full(full, 2, 3, check_symmetry=False)
        assert out.shape == (sym_storage_size(2, 3),)

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            expand_compact(np.zeros(5), 2, 3)
        with pytest.raises(ValueError):
            compact_from_full(np.zeros(5), 2, 3)


class TestExpansionLocs:
    def test_cached(self):
        tables = get_tables(3, 3)
        a = tables.expansion_locs()
        b = tables.expansion_locs()
        assert a is b

    def test_locs_sort_invariant(self):
        tables = get_tables(2, 4)
        locs = tables.expansion_locs()
        # loc of (i,j) equals loc of (j,i)
        for i in range(4):
            for j in range(4):
                assert locs[i * 4 + j] == locs[j * 4 + i]
