"""Tests for the sub-multiset lattice structure."""

import numpy as np
import pytest

from repro.core.lattice import build_lattice, unique_rows
from repro.symmetry.combinatorics import binomial


class TestUniqueRows:
    def test_basic(self, rng):
        a = rng.integers(0, 3, size=(50, 4))
        uniq, inv = unique_rows(a)
        assert np.array_equal(uniq[inv], a)
        assert np.unique(uniq, axis=0).shape[0] == uniq.shape[0]

    def test_empty(self):
        uniq, inv = unique_rows(np.zeros((0, 3), dtype=np.int64))
        assert uniq.shape == (0, 3) and inv.shape == (0,)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            unique_rows(np.array([1, 2, 3]))


class TestLatticeStructure:
    def test_single_distinct_nonzero_node_counts(self):
        """One all-distinct non-zero: C(N,l) nodes per level (Section III-D)."""
        idx = np.array([[0, 2, 4, 7]])
        lat = build_lattice(idx)
        assert lat.order == 4
        for level in range(2, 5):
            assert lat.level_nodes(level) == binomial(4, level)
        assert lat.level_nodes(1) == 4

    def test_single_repeated_nonzero(self):
        """Repeated values collapse sub-multisets."""
        idx = np.array([[1, 1, 3]])
        lat = build_lattice(idx)
        # level-2 sub-multisets of {1,1,3}: {1,1}, {1,3} -> 2 nodes
        assert lat.level_nodes(2) == 2
        assert lat.level_nodes(1) == 2  # leaves {1}, {3}
        top = lat.levels[3]
        assert top.n_edges == 2  # distinct deletions: delete 1, delete 3

    def test_all_equal_nonzero(self):
        idx = np.array([[2, 2, 2, 2]])
        lat = build_lattice(idx)
        for level in range(1, 4):
            assert lat.level_nodes(level) == 1
        assert lat.levels[4].n_edges == 1

    def test_global_memoization_shares(self):
        """Two non-zeros sharing a sub-multiset share nodes globally."""
        idx = np.array([[0, 1, 2], [0, 1, 3]])
        lat_global = build_lattice(idx, "global")
        lat_local = build_lattice(idx, "nonzero")
        # shared level-2 node {0,1}
        assert lat_global.level_nodes(2) == 5  # {0,1},{0,2},{1,2},{0,3},{1,3}
        assert lat_local.level_nodes(2) == 6
        # leaves always global
        assert lat_global.level_nodes(1) == 4
        assert lat_local.level_nodes(1) == 4

    def test_degree_groups_partition_edges(self, rng):
        idx = np.sort(rng.integers(0, 6, size=(20, 4)), axis=1)
        idx = np.unique(idx, axis=0)
        lat = build_lattice(idx)
        for level, lv in lat.levels.items():
            covered = 0
            seen_nodes = []
            for g in lv.groups:
                assert g.degree >= 1
                covered += g.n_edges
                seen_nodes.extend(g.nodes.tolist())
            assert covered == lv.n_edges
            assert sorted(seen_nodes) == list(range(lv.n_nodes))

    def test_group_edges_are_node_major(self, rng):
        """Within a degree group, each node's edges are consecutive."""
        idx = np.sort(rng.integers(0, 5, size=(15, 3)), axis=1)
        idx = np.unique(idx, axis=0)
        lat = build_lattice(idx, keep_keys=True)
        top = lat.levels[3]
        assert top.node is not None
        for g in top.groups:
            for k in range(g.n_nodes):
                sl = slice(g.edge_offset + k * g.degree, g.edge_offset + (k + 1) * g.degree)
                assert np.all(top.node[sl] == g.nodes[k])

    def test_keep_keys(self):
        idx = np.array([[0, 1, 2]])
        lat = build_lattice(idx, keep_keys=True)
        assert lat.node_keys is not None
        assert np.array_equal(lat.node_keys[3], idx)
        assert lat.node_keys[2].shape == (3, 2)
        lat2 = build_lattice(idx)
        assert lat2.node_keys is None

    def test_total_edges(self):
        idx = np.array([[0, 1, 2]])
        lat = build_lattice(idx)
        # level 3: 3 deletions; level 2: 3 nodes x 2 deletions
        assert lat.total_edges == 3 + 6

    def test_rejects_order_one(self):
        with pytest.raises(ValueError):
            build_lattice(np.array([[1]]))

    def test_rejects_bad_memoize(self):
        with pytest.raises(ValueError):
            build_lattice(np.array([[0, 1]]), "fancy")

    def test_children_reference_valid_nodes(self, rng):
        idx = np.sort(rng.integers(0, 6, size=(25, 5)), axis=1)
        idx = np.unique(idx, axis=0)
        lat = build_lattice(idx)
        for level in range(2, 6):
            lv = lat.levels[level]
            below = lat.level_nodes(level - 1)
            assert lv.child.max() < below
            assert lv.child.min() >= 0
