"""Budget exception-path audit: a ``MemoryLimitError`` (or any failure)
mid-kernel must release every byte the call had requested, so retry and
OOM-splitting logic upstream sees the budget exactly as it found it."""

import numpy as np
import pytest

from repro.baselines.hoqri_nary import nary_hoqri_step
from repro.baselines.splatt import splatt_ttmc
from repro.core import s3ttmc
from repro.decomp.hosvd import hosvd_init
from repro.formats.csf import CSFTensor
from repro.formats.partial_sym import PartiallySymmetricTensor
from repro.general.ttmc import csf_ttmc_multi
from repro.runtime.budget import MemoryBudget, MemoryLimitError
from repro.symmetry.combinatorics import sym_storage_size
from tests.conftest import make_random_tensor


@pytest.fixture
def tensor(rng):
    return make_random_tensor(4, 12, 120, rng)


def _peak(fn):
    with MemoryBudget() as probe:
        fn()
        return probe.peak


def _assert_restored_under_pressure(fn, peak, fractions):
    """Run ``fn`` under tightening limits; every OOM must leave in_use
    exactly where it was before the call."""
    ooms = 0
    for frac in fractions:
        with MemoryBudget(limit_bytes=int(peak * frac)) as budget:
            before = budget.in_use
            try:
                fn()
            except MemoryLimitError:
                ooms += 1
                assert budget.in_use == before, (frac, budget.allocations)
    assert ooms > 0, "no limit tripped; fractions too generous"


class TestEngineRelease:
    def test_lattice_oom_releases_k_levels(self, tensor, rng):
        u = rng.random((12, 4))
        peak = _peak(lambda: s3ttmc(tensor, u))
        _assert_restored_under_pressure(
            lambda: s3ttmc(tensor, u), peak, (0.6, 0.4, 0.25, 0.12)
        )


class TestBaselineRelease:
    def test_splatt_no_per_call_drift(self, tensor, rng):
        u = rng.random((12, 4))
        with MemoryBudget() as budget:
            splatt_ttmc(tensor, u)
            base = budget.in_use
            splatt_ttmc(tensor, u)
            assert budget.in_use == base, budget.allocations

    def test_splatt_oom_releases_everything(self, tensor, rng):
        u = rng.random((12, 4))
        peak = _peak(lambda: splatt_ttmc(tensor, u))
        _assert_restored_under_pressure(
            lambda: splatt_ttmc(tensor, u), peak, (0.6, 0.3, 0.1, 0.02)
        )

    def test_nary_step_no_core_leak(self, tensor, rng):
        u = rng.random((12, 4))
        with MemoryBudget() as budget:
            nary_hoqri_step(tensor, u, chunk=16)
            base = budget.in_use
            nary_hoqri_step(tensor, u, chunk=16)
            assert budget.in_use == base, budget.allocations

    def test_nary_step_oom_releases(self, tensor, rng):
        u = rng.random((12, 4))
        peak = _peak(lambda: nary_hoqri_step(tensor, u, chunk=16))
        _assert_restored_under_pressure(
            lambda: nary_hoqri_step(tensor, u, chunk=16), peak, (0.5, 0.1)
        )

    def test_general_csf_oom_releases(self, tensor, rng):
        csf = CSFTensor.from_symmetric(tensor)
        factors = [rng.random((12, 3)) for _ in range(4)]
        peak = _peak(lambda: csf_ttmc_multi(csf, factors))
        _assert_restored_under_pressure(
            lambda: csf_ttmc_multi(csf, factors), peak, (0.5, 0.2, 0.05)
        )


class TestFormatRelease:
    def test_full_unfolding_released_on_expand_failure(self, rng, monkeypatch):
        import repro.formats.partial_sym as ps

        cols = sym_storage_size(3, 4)
        y = PartiallySymmetricTensor(6, 3, 4, rng.random((6, cols)))

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic expand failure")

        monkeypatch.setattr(ps, "expand_compact", boom)
        with MemoryBudget() as budget:
            before = budget.in_use
            with pytest.raises(RuntimeError):
                y.to_full_unfolding()
            assert budget.in_use == before, budget.allocations

    def test_csf_construction_oom_releases_indices(self, tensor):
        with MemoryBudget(limit_bytes=1024) as budget:
            before = budget.in_use
            with pytest.raises(MemoryLimitError):
                CSFTensor.from_symmetric(tensor)
            assert budget.in_use == before, budget.allocations


class TestDecompRelease:
    def test_hosvd_oom_releases(self, tensor):
        peak = _peak(lambda: hosvd_init(tensor, 3))
        _assert_restored_under_pressure(
            lambda: hosvd_init(tensor, 3), peak, (0.5, 0.1)
        )
