"""Tests for the kernel compiler v2 (repro.core.compile).

The compiled kernels promise *bitwise* agreement with the generic
engine (same reduction order, same stable scatter sort, node-aligned
chunks) — so most assertions here are ``array_equal``, not ``allclose``.
"""

import numpy as np
import pytest

from repro.core.compile import (
    DEFAULT_CHUNK_EDGES,
    KERNEL_VERSION,
    KernelSpec,
    build_tables,
    clear_kernel_cache,
    compiled_kernel,
    generate_kernel_source,
    get_kernel,
    kernel_cache_info,
)
from repro.core.engine import lattice_ttmc
from repro.core.plan import build_plan
from repro.core.s3ttmc import s3ttmc
from repro.runtime.budget import MemoryBudget
from repro.runtime.context import ExecContext
from repro.symmetry.combinatorics import sym_storage_size

from .conftest import make_random_tensor


def _run(tensor, factor, **kwargs):
    return lattice_ttmc(
        tensor.indices, tensor.values, tensor.dim, factor, **kwargs
    )


class TestBitwiseEquality:
    @pytest.mark.parametrize("order,dim,unnz", [(2, 8, 20), (3, 8, 25), (4, 7, 20), (5, 6, 12), (6, 5, 8)])
    @pytest.mark.parametrize("intermediate", ["compact", "full", "cp"])
    def test_matches_generic(self, order, dim, unnz, intermediate, rng):
        t = make_random_tensor(order, dim, unnz, rng)
        u = rng.standard_normal((dim, 4))
        ref = _run(t, u, intermediate=intermediate)
        got = _run(t, u, intermediate=intermediate, kernel="compiled")
        assert np.array_equal(got, ref)

    @pytest.mark.parametrize("memoize", ["global", "nonzero"])
    def test_memoize_scopes(self, memoize, rng):
        t = make_random_tensor(4, 7, 25, rng)
        u = rng.standard_normal((7, 3))
        ref = _run(t, u, memoize=memoize)
        got = _run(t, u, memoize=memoize, kernel="compiled")
        assert np.array_equal(got, ref)

    def test_s3ttmc_entry_point(self, small_tensor, rng):
        u = rng.standard_normal((small_tensor.dim, 5))
        ref = s3ttmc(small_tensor, u)
        got = s3ttmc(small_tensor, u, kernel="compiled")
        assert np.array_equal(got.data, ref.data)

    def test_chunk_size_invariance(self, rng):
        # Chunks never split a node or scatter segment, so any chunk
        # size must be bitwise-identical — not merely close.
        t = make_random_tensor(4, 8, 30, rng)
        u = rng.standard_normal((8, 4))
        base = _run(t, u, kernel="compiled", chunk_edges=DEFAULT_CHUNK_EDGES)
        for chunk in (16, 64, 1_000_000):
            got = _run(t, u, kernel="compiled", chunk_edges=chunk)
            assert np.array_equal(got, base), f"chunk_edges={chunk}"

    def test_nz_batching_allclose(self, rng):
        # Batching reorders the output accumulation (like the generic
        # engine) — allclose, and bitwise against the *generic* kernel
        # run at the same batch size.
        t = make_random_tensor(4, 7, 24, rng)
        u = rng.standard_normal((7, 3))
        got = _run(t, u, kernel="compiled", nz_batch_size=7)
        assert np.array_equal(got, _run(t, u, nz_batch_size=7))
        np.testing.assert_allclose(got, _run(t, u), rtol=1e-12, atol=1e-12)

    def test_empty_tensor(self, rng):
        t = make_random_tensor(3, 6, 4, rng)
        empty = type(t)(3, 6, t.indices[:0], t.values[:0])
        u = rng.standard_normal((6, 3))
        got = _run(empty, u, kernel="compiled")
        assert got.shape == (6, sym_storage_size(2, 3))
        assert not got.any()


class TestOutAndRowMap:
    def test_out_accumulates_bitwise(self, rng):
        t = make_random_tensor(4, 7, 20, rng)
        u = rng.standard_normal((7, 3))
        ref = _run(t, u)
        out = np.zeros_like(ref)
        _run(t, u, kernel="compiled", out=out)
        assert np.array_equal(out, ref)

    def test_row_map_identity_bitwise(self, rng):
        t = make_random_tensor(3, 8, 15, rng)
        u = rng.standard_normal((8, 4))
        ref = _run(t, u)
        out = np.zeros_like(ref)
        _run(
            t,
            u,
            kernel="compiled",
            out=out,
            out_row_map=np.arange(8, dtype=np.int64),
        )
        assert np.array_equal(out, ref)

    def test_unmapped_row_raises(self, rng):
        t = make_random_tensor(3, 6, 10, rng)
        u = rng.standard_normal((6, 3))
        row_map = np.full(6, -1, dtype=np.int64)
        out = np.zeros((1, sym_storage_size(2, 3)))
        with pytest.raises(ValueError, match="row"):
            _run(t, u, kernel="compiled", out=out, out_row_map=row_map)

    def test_invalid_kernel_name(self, rng):
        t = make_random_tensor(3, 6, 10, rng)
        u = rng.standard_normal((6, 3))
        with pytest.raises(ValueError, match="kernel"):
            _run(t, u, kernel="vectorized")


class TestCaching:
    def test_function_cache_identity_and_tags(self):
        clear_kernel_cache()
        spec = KernelSpec(order=3, rank=4)
        fn = compiled_kernel(spec)
        assert compiled_kernel(spec) is fn
        assert fn.__kernel_spec__ == spec
        assert fn.__codegen_version__ == KERNEL_VERSION
        assert fn.__source__ == generate_kernel_source(spec)
        assert spec.function_name in fn.__source__
        info = kernel_cache_info()
        assert info["size"] == 1 and spec in info["specs"]

    def test_function_cache_evicts_past_cap(self):
        clear_kernel_cache()
        cap = kernel_cache_info()["cap"]
        specs = [KernelSpec(order=2, rank=r) for r in range(1, cap + 2)]
        for spec in specs:
            compiled_kernel(spec)
        info = kernel_cache_info()
        assert info["size"] == cap
        assert specs[0] not in info["specs"]  # oldest evicted
        assert specs[-1] in info["specs"]
        clear_kernel_cache()
        assert kernel_cache_info()["size"] == 0

    def test_distinct_specs_distinct_functions(self):
        a = compiled_kernel(KernelSpec(order=3, rank=4))
        b = compiled_kernel(KernelSpec(order=3, rank=5))
        assert a is not b

    def test_table_cache_hits_on_plan_stamp(self, rng):
        t = make_random_tensor(4, 7, 20, rng)
        ctx = ExecContext()
        plan = build_plan(t.indices, "global", None)
        k1 = get_kernel(plan, 3, "compact", None, ctx)
        k2 = get_kernel(plan, 3, "compact", None, ctx)
        assert k2.tables is k1.tables  # cached on ctx.plans, not rebuilt
        assert ctx.plans.compiled_hits == 1
        assert ctx.plans.compiled_misses == 1

    def test_table_cache_misses_on_changed_pattern(self, rng):
        ctx = ExecContext()
        t1 = make_random_tensor(4, 7, 20, rng)
        t2 = make_random_tensor(4, 7, 21, rng)
        k1 = get_kernel(build_plan(t1.indices, "global", None), 3, "compact", None, ctx)
        k2 = get_kernel(build_plan(t2.indices, "global", None), 3, "compact", None, ctx)
        assert k1.tables is not k2.tables
        assert ctx.plans.compiled_hits == 0

    def test_unstamped_plan_never_cached(self, rng):
        import dataclasses

        t = make_random_tensor(3, 6, 10, rng)
        ctx = ExecContext()
        plan = build_plan(t.indices, "global", None)
        legacy = dataclasses.replace(plan, unnz=-1, fingerprint=-1)
        get_kernel(legacy, 3, "compact", None, ctx)
        assert ctx.plans.n_compiled == 0


class TestBudget:
    def test_compiled_peak_below_generic(self, rng):
        # The fusion claim, measured: no (M_{l-1}, S_l) expanded
        # intermediate means a strictly lower accounting high-water mark
        # on a workload big enough that intermediates dominate the
        # compiled path's fixed-size chunk scratch buffers.
        t = make_random_tensor(4, 100, 2000, rng)
        u = rng.standard_normal((100, 8))
        peaks = {}
        for mode in ("generic", "compiled"):
            ctx = ExecContext(budget=MemoryBudget())
            _run(t, u, kernel=mode, ctx=ctx)
            ctx.budget.peak = ctx.budget.in_use
            _run(t, u, kernel=mode, ctx=ctx)
            peaks[mode] = ctx.budget.peak
        assert peaks["compiled"] < peaks["generic"]

    def test_budget_released_on_failure(self, rng):
        # The generated kernel releases held allocations even when it
        # raises (the unmapped-row contract) — the budget must balance.
        t = make_random_tensor(3, 6, 10, rng)
        u = rng.standard_normal((6, 3))
        ctx = ExecContext(budget=MemoryBudget())
        row_map = np.full(6, -1, dtype=np.int64)
        out = np.zeros((1, sym_storage_size(2, 3)))
        with pytest.raises(ValueError):
            _run(t, u, kernel="compiled", out=out, out_row_map=row_map, ctx=ctx)
        assert ctx.budget.in_use == 0


class TestSpecAndTables:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            KernelSpec(order=1, rank=4)
        with pytest.raises(ValueError):
            KernelSpec(order=3, rank=0)
        with pytest.raises(ValueError):
            KernelSpec(order=3, rank=4, layout="sparse")
        with pytest.raises(ValueError):
            KernelSpec(order=3, rank=4, chunk_edges=0)

    def test_function_name_encodes_spec(self):
        spec = KernelSpec(order=5, rank=7, layout="full", memoize="nonzero", chunk_edges=64)
        name = spec.function_name
        assert "o5" in name and "r7" in name and "full" in name
        assert "nonzero" in name and "c64" in name

    def test_tables_nbytes_positive(self, rng):
        from repro.core.lattice import build_lattice

        t = make_random_tensor(3, 6, 10, rng)
        lattice = build_lattice(t.indices, memoize="global")
        tables = build_tables(lattice, 4, "compact")
        assert tables.nbytes > 0
        assert len(tables.levels) >= 1
