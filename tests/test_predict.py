"""Tests for the runtime-prediction model."""

import math

import pytest

from repro.perfmodel import (
    RateCalibration,
    kernel_flops_model,
    predict_seconds,
    total_css,
    total_sp,
)


class TestFlopModel:
    def test_symprop_matches_total_sp(self):
        assert kernel_flops_model("symprop", 5, 3, 100) == total_sp(5, 3, 100)
        assert kernel_flops_model("symprop-tc", 5, 3, 100) == total_sp(5, 3, 100)

    def test_css_matches_total_css(self):
        assert kernel_flops_model("css", 5, 3, 100) == total_css(5, 3, 100)

    def test_cp_cheaper_than_tucker(self):
        for order in (4, 6, 8):
            cp = kernel_flops_model("cp", order, 4, 100)
            tucker = kernel_flops_model("symprop", order, 4, 100)
            assert cp < tucker

    def test_splatt_grows_with_factorial(self):
        small = kernel_flops_model("splatt", 4, 3, 100, dim=1000)
        big = kernel_flops_model("splatt", 6, 3, 100, dim=1000)
        assert big > small * 10

    def test_splatt_caps_nodes_at_dim_power(self):
        # tiny dim: shallow levels saturate at dim^{d+1} nodes
        capped = kernel_flops_model("splatt", 5, 2, 1000, dim=2)
        uncapped = kernel_flops_model("splatt", 5, 2, 1000, dim=10**6)
        assert capped < uncapped

    def test_nary(self):
        assert kernel_flops_model("hoqri-nary", 3, 2, 10) == 2 * 8 * math.factorial(3) * 10

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            kernel_flops_model("cusparse", 3, 2, 10)


class TestCalibration:
    def test_median_rate(self):
        calib = RateCalibration()
        calib.record("symprop", 1e9, 1.0)
        calib.record("symprop", 3e9, 1.0)
        calib.record("symprop", 2e9, 1.0)
        assert calib.rate("symprop") == pytest.approx(2e9)

    def test_fallback_to_pooled(self):
        calib = RateCalibration()
        calib.record("css", 1e9, 1.0)
        assert calib.rate("symprop") == pytest.approx(1e9)

    def test_no_samples(self):
        assert RateCalibration().rate("symprop") is None

    def test_too_fast_samples_ignored(self):
        calib = RateCalibration()
        calib.record("symprop", 100.0, 1e-6)  # sub-resolution timing
        assert calib.rate("symprop") is None

    def test_predict_seconds(self):
        calib = RateCalibration()
        calib.record("symprop", 1e8, 1.0)  # 100 Mflop/s
        est = predict_seconds(calib, "symprop", 5, 3, 100)
        assert est == pytest.approx(total_sp(5, 3, 100) / 1e8)

    def test_predict_without_calibration(self):
        assert predict_seconds(RateCalibration(), "symprop", 5, 3, 100) is None
