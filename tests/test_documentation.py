"""Documentation contract: every public item carries a real docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = {"repro.bench.__main__"}


def _walk_modules():
    out = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES or info.name.rsplit(".", 1)[-1].startswith("_"):
            continue
        out.append(info.name)
    return out


MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", None)
    if public is None:
        return
    undocumented = []
    for name in public:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at origin
            doc = inspect.getdoc(obj)
            if not doc or len(doc.strip()) < 10:
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented {undocumented}"


def test_package_has_substantial_init_doc():
    assert repro.__doc__ and "SymProp" in repro.__doc__


def test_repo_docs_exist():
    from pathlib import Path

    root = Path(repro.__file__).resolve().parents[2]
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        path = root / name
        assert path.is_file(), name
        assert len(path.read_text(encoding="utf-8")) > 1000, name
    docs = root / "docs"
    assert {p.name for p in docs.glob("*.md")} >= {
        "algorithms.md",
        "api.md",
        "benchmarks.md",
        "formats.md",
    }
