"""Tests for synthetic generators, the dataset registry, and tensor I/O."""

import io

import numpy as np
import pytest

from repro.data.datasets import DATASETS, dataset_names, load_dataset
from repro.data.io import read_tns, tns_roundtrip, write_tns
from repro.data.synthetic import planted_lowrank, random_iou_pattern, random_sparse_symmetric
from repro.formats import SparseSymmetricTensor
from repro.symmetry.combinatorics import sym_storage_size
from repro.symmetry.iou import is_iou


class TestRandomPattern:
    def test_count_and_uniqueness(self, rng):
        idx = random_iou_pattern(4, 10, 100, rng)
        assert idx.shape == (100, 4)
        assert np.all(is_iou(idx))
        assert np.unique(idx, axis=0).shape[0] == 100

    def test_lex_sorted(self, rng):
        idx = random_iou_pattern(3, 8, 50, rng)
        tuples = [tuple(r) for r in idx]
        assert tuples == sorted(tuples)

    def test_full_capacity(self, rng):
        total = sym_storage_size(2, 4)
        idx = random_iou_pattern(2, 4, total, rng)
        assert idx.shape[0] == total

    def test_over_capacity_rejected(self, rng):
        with pytest.raises(ValueError):
            random_iou_pattern(2, 3, 100, rng)

    def test_zero_requested(self, rng):
        assert random_iou_pattern(3, 5, 0, rng).shape == (0, 3)


class TestGenerators:
    def test_random_sparse_symmetric_deterministic(self):
        a = random_sparse_symmetric(4, 20, 50, seed=3)
        b = random_sparse_symmetric(4, 20, 50, seed=3)
        assert np.array_equal(a.indices, b.indices)
        assert np.allclose(a.values, b.values)

    def test_values_bounded_away_from_zero(self):
        x = random_sparse_symmetric(3, 10, 40, seed=0, value_low=0.5, value_high=2.0)
        assert x.values.min() >= 0.5
        assert x.values.max() < 2.0

    def test_planted_full_sampling_is_lowrank(self):
        x = planted_lowrank(3, 10, 2, None, noise=0.0, seed=1)
        assert x.unnz == sym_storage_size(3, 10)
        # mode-1 unfolding has rank <= 2
        dense = x.to_dense().reshape(10, -1)
        s = np.linalg.svd(dense, compute_uv=False)
        assert s[2] < 1e-10 * s[0]

    def test_planted_sparse_sampling(self):
        x = planted_lowrank(3, 15, 2, 50, noise=0.1, seed=2)
        assert x.unnz == 50


class TestRegistry:
    def test_table3_names(self):
        assert dataset_names() == (
            "L6",
            "L7",
            "L10",
            "H12",
            "contact-school",
            "trivago-clicks",
            "walmart-trips",
            "stackoverflow",
            "amazon-reviews",
        )

    def test_paper_stats_recorded(self):
        spec = DATASETS["walmart-trips"]
        assert (spec.paper_order, spec.paper_dim, spec.paper_unnz, spec.paper_rank) == (
            8,
            62_240,
            47_560,
            10,
        )

    def test_orders_faithful(self):
        for spec in DATASETS.values():
            assert spec.order == spec.paper_order

    def test_load_synthetic_shape(self):
        x = load_dataset("L6", seed=1)
        spec = DATASETS["L6"]
        assert (x.order, x.dim, x.unnz) == (spec.order, spec.dim, spec.unnz)

    def test_load_real_shape(self):
        x = load_dataset("contact-school", seed=1)
        spec = DATASETS["contact-school"]
        assert x.order == spec.order
        assert x.dim == spec.dim
        # hyperedge merging makes unnz approximate
        assert x.unnz >= spec.unnz * 0.6

    def test_load_deterministic(self):
        a = load_dataset("trivago-clicks", seed=4)
        b = load_dataset("trivago-clicks", seed=4)
        assert np.array_equal(a.indices, b.indices)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("netflix")


class TestIO:
    def test_roundtrip(self, small_tensor):
        back = tns_roundtrip(small_tensor)
        assert back.order == small_tensor.order
        assert back.dim == small_tensor.dim
        assert np.array_equal(back.indices, small_tensor.indices)
        assert np.allclose(back.values, small_tensor.values)

    def test_file_roundtrip(self, small_tensor, tmp_path):
        path = tmp_path / "tensor.tns"
        write_tns(small_tensor, path)
        back = read_tns(path)
        assert np.array_equal(back.indices, small_tensor.indices)

    def test_values_exact(self):
        x = SparseSymmetricTensor(
            2, 3, np.array([[0, 1]]), np.array([0.123456789012345678])
        )
        back = tns_roundtrip(x)
        assert back.values[0] == x.values[0]  # repr round-trips doubles

    def test_header_errors(self):
        with pytest.raises(ValueError, match="header"):
            read_tns(io.StringIO("# only a comment\n"))
        with pytest.raises(ValueError, match="header"):
            read_tns(io.StringIO("3 4\n"))

    def test_field_count_error(self):
        with pytest.raises(ValueError, match="indices"):
            read_tns(io.StringIO("2 3 1\n1 2 3 4.0\n"))

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="claims"):
            read_tns(io.StringIO("2 3 2\n1 2 1.0\n"))

    def test_comments_and_blanks_skipped(self):
        text = "# c\n\n2 3 1\n# mid\n1 3 2.5\n"
        x = read_tns(io.StringIO(text))
        assert x.indices.tolist() == [[0, 2]]
        assert x.values.tolist() == [2.5]
