"""Tests for the trace-driven autotuner (repro.core.autotune)."""

import json

import numpy as np
import pytest

from repro.core.autotune import (
    PROFILE_ENV,
    PROFILE_VERSION,
    TunedConfig,
    TuneProfileError,
    autotune,
    default_candidates,
    load_profile,
    save_profile,
    tuned_s3ttmc,
    workload_key,
)
from repro.core.s3ttmc import s3ttmc
from repro.obs.trace import TraceCollector
from repro.runtime.context import ExecContext

from .conftest import make_random_tensor


@pytest.fixture
def workload(rng):
    tensor = make_random_tensor(4, 20, 60, rng)
    factor = rng.standard_normal((20, 5))
    return tensor, factor


def _fake_prober(timings):
    """Deterministic prober: looks timings up by (kernel, chunk_edges)."""

    def probe(tensor, factor, config, ctx, repeats):
        return timings[(config.kernel, config.chunk_edges)]

    return probe


CANDS = [
    TunedConfig(kernel="generic"),
    TunedConfig(kernel="compiled", chunk_edges=512),
    TunedConfig(kernel="compiled", chunk_edges=2048),
]


class TestProfilePersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "tune.json"
        entries = {
            "o4.r8.d512.n8192": TunedConfig(kernel="compiled", chunk_edges=2048),
            "o3.r4.d128.n1024": TunedConfig(kernel="generic", backend="thread", n_workers=4),
        }
        save_profile(path, entries, {"o4.r8.d512.n8192": 0.0123})
        loaded = load_profile(path)
        assert loaded == entries
        payload = json.loads(path.read_text())
        assert payload["version"] == PROFILE_VERSION
        # probe_seconds is recorded for humans but is not a config field
        assert payload["entries"]["o4.r8.d512.n8192"]["probe_seconds"] == 0.0123

    def test_missing_file_is_empty(self, tmp_path):
        assert load_profile(tmp_path / "nope.json") == {}

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "tune.json"
        save_profile(path, {"k": TunedConfig()})
        payload = json.loads(path.read_text())
        payload["version"] = PROFILE_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(TuneProfileError, match="version"):
            load_profile(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text("{not json")
        with pytest.raises(TuneProfileError):
            load_profile(path)
        path.write_text('{"no_version": true}')
        with pytest.raises(TuneProfileError, match="version"):
            load_profile(path)

    def test_unknown_config_field_rejected(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text(
            json.dumps(
                {
                    "version": PROFILE_VERSION,
                    "entries": {"k": {"kernel": "generic", "warp_drive": 9}},
                }
            )
        )
        with pytest.raises(TuneProfileError, match="warp_drive"):
            load_profile(path)

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "tune.json"
        save_profile(path, {"k": TunedConfig()})
        assert [p.name for p in tmp_path.iterdir()] == ["tune.json"]


class TestWorkloadKey:
    def test_buckets_dim_and_unnz(self):
        # Nearby sizes share a key; order/rank enter exactly.
        assert workload_key(4, 300, 5000, 8) == workload_key(4, 257, 4097, 8)
        assert workload_key(4, 300, 5000, 8) != workload_key(4, 300, 5000, 16)
        assert workload_key(3, 300, 5000, 8) != workload_key(4, 300, 5000, 8)

    def test_deterministic_string(self):
        assert workload_key(4, 300, 5000, 8) == "o4.r8.d512.n8192"


class TestAutotune:
    def test_miss_probes_then_hit_skips(self, workload, tmp_path):
        tensor, factor = workload
        path = tmp_path / "tune.json"
        probe = _fake_prober({("generic", None): 3.0, ("compiled", 512): 1.0, ("compiled", 2048): 2.0})
        ctx = ExecContext(collector=TraceCollector())
        cfg = autotune(
            tensor, factor, profile_path=path, candidates=CANDS, prober=probe, ctx=ctx
        )
        assert cfg == CANDS[1]
        m = ctx.metrics
        assert m.counter("autotune.profile.misses").value == 1
        assert m.counter("autotune.probes").value == len(CANDS)

        # Second run: profile hit, calibration skipped — the hit counter
        # is the observable signal, and the probe count must not move.
        def exploding(*a):  # pragma: no cover - must never run
            raise AssertionError("probed on a profile hit")

        cfg2 = autotune(
            tensor, factor, profile_path=path, candidates=CANDS, prober=exploding, ctx=ctx
        )
        assert cfg2 == cfg
        assert m.counter("autotune.profile.hits").value == 1
        assert m.counter("autotune.probes").value == len(CANDS)

    def test_deterministic_tie_break(self, workload):
        tensor, factor = workload
        probe = _fake_prober({("generic", None): 1.0, ("compiled", 512): 1.0, ("compiled", 2048): 1.0})
        picks = {
            autotune(
                tensor, factor, candidates=CANDS, prober=probe, persist=False
            )
            for _ in range(3)
        }
        assert picks == {CANDS[0]}  # all tied -> lowest candidate index

    def test_version_mismatch_falls_back_to_retune(self, workload, tmp_path):
        tensor, factor = workload
        path = tmp_path / "tune.json"
        path.write_text(json.dumps({"version": PROFILE_VERSION + 1, "entries": {}}))
        probe = _fake_prober({("generic", None): 1.0, ("compiled", 512): 2.0, ("compiled", 2048): 3.0})
        ctx = ExecContext(collector=TraceCollector())
        cfg = autotune(
            tensor, factor, profile_path=path, candidates=CANDS, prober=probe, ctx=ctx
        )
        assert cfg == CANDS[0]
        assert ctx.metrics.counter("autotune.profile.rejected").value == 1
        # ...and the re-tune rewrote the file at the current version.
        assert json.loads(path.read_text())["version"] == PROFILE_VERSION

    def test_no_profile_path_no_persistence(self, workload, tmp_path):
        tensor, factor = workload
        probe = _fake_prober({("generic", None): 1.0, ("compiled", 512): 2.0, ("compiled", 2048): 3.0})
        autotune(tensor, factor, candidates=CANDS, prober=probe)
        assert list(tmp_path.iterdir()) == []

    def test_env_var_profile_path(self, workload, tmp_path, monkeypatch):
        tensor, factor = workload
        path = tmp_path / "env_tune.json"
        monkeypatch.setenv(PROFILE_ENV, str(path))
        probe = _fake_prober({("generic", None): 1.0, ("compiled", 512): 2.0, ("compiled", 2048): 3.0})
        autotune(tensor, factor, candidates=CANDS, prober=probe)
        assert path.exists()
        assert workload_key(4, 20, tensor.unnz, 5) in load_profile(path)

    def test_real_probes_fixed_seed_determinism(self, workload, tmp_path):
        # With the *real* prober, wall times vary — but the persisted
        # decision must be a valid candidate and reload identically.
        tensor, factor = workload
        path = tmp_path / "tune.json"
        cfg = autotune(
            tensor, factor, profile_path=path, candidates=CANDS, repeats=1
        )
        assert cfg in CANDS
        assert load_profile(path)[workload_key(4, 20, tensor.unnz, 5)] == cfg

    def test_empty_candidates_raises(self, workload):
        tensor, factor = workload
        with pytest.raises(ValueError, match="candidate"):
            autotune(tensor, factor, candidates=[])

    def test_default_candidates_shape(self):
        single = default_candidates(1)
        assert all(c.backend == "serial" for c in single)
        multi = default_candidates(4)
        assert any(c.backend == "thread" and c.n_workers == 4 for c in multi)
        assert multi[0].kernel == "generic"  # generic is the reference point


class TestTunedRun:
    def test_matches_untuned_result(self, workload):
        tensor, factor = workload
        cfg = TunedConfig(kernel="compiled", chunk_edges=512)
        got = tuned_s3ttmc(tensor, factor, config=cfg)
        ref = s3ttmc(tensor, factor)
        assert np.array_equal(got.data, ref.data)

    def test_thread_backend_config(self, workload):
        tensor, factor = workload
        cfg = TunedConfig(kernel="compiled", backend="thread", n_workers=2)
        got = tuned_s3ttmc(tensor, factor, config=cfg)
        ref = s3ttmc(tensor, factor)
        np.testing.assert_allclose(got.data, ref.data, rtol=1e-9, atol=1e-12)

    def test_autotunes_when_no_config(self, workload, tmp_path):
        tensor, factor = workload
        probe = _fake_prober({("generic", None): 2.0, ("compiled", 512): 1.0, ("compiled", 2048): 3.0})
        got = tuned_s3ttmc(
            tensor,
            factor,
            profile_path=tmp_path / "tune.json",
            candidates=CANDS,
            prober=probe,
        )
        assert np.array_equal(got.data, s3ttmc(tensor, factor).data)


class TestAttributionSeeding:
    """Satellite: autotune candidates seeded from obs.attrib reports."""

    def _report(self, generic_dev, compiled_dev, thread_workers=0):
        from repro.obs.attrib import AttributionReport, LevelRow, WorkerRollup

        report = AttributionReport(
            levels=[
                LevelRow(
                    level="2", layout="compact", backend="serial",
                    kernel="generic", seconds=1.0 + generic_dev,
                    predicted_seconds=1.0,
                ),
                LevelRow(
                    level="2", layout="compact", backend="serial",
                    kernel="compiled", seconds=1.0 + compiled_dev,
                    predicted_seconds=1.0,
                ),
            ],
        )
        if thread_workers:
            report.parallel.append(
                WorkerRollup(backend="thread", n_workers=thread_workers)
            )
        return report

    def test_underperforming_mode_is_demoted(self):
        from repro.core.autotune import candidates_from_attribution

        # Generic measured 2x slower than its model, compiled on-model:
        # compiled candidates must be probed first.
        cands = candidates_from_attribution(self._report(1.0, 0.0), 1)
        assert cands[0].kernel == "compiled"
        assert cands[-1].kernel == "generic"
        # Flipped deviations flip the ordering.
        flipped = candidates_from_attribution(self._report(0.0, 1.0), 1)
        assert flipped[0].kernel == "generic"

    def test_observed_thread_rollup_adds_candidates(self):
        from repro.core.autotune import candidates_from_attribution

        cands = candidates_from_attribution(self._report(0.0, 0.0, thread_workers=3), 1)
        assert any(c.backend == "thread" and c.n_workers == 3 for c in cands)

    def test_no_deviation_rows_keeps_default_order(self):
        from repro.obs.attrib import AttributionReport
        from repro.core.autotune import candidates_from_attribution

        assert candidates_from_attribution(AttributionReport(), 1) == default_candidates(1)

    def test_autotune_accepts_attrib_report(self, workload, tmp_path):
        tensor, factor = workload
        probed = []

        def probe(t, f, config, ctx, repeats):
            probed.append(config)
            return 1.0 + len(probed)  # first candidate wins

        cfg = autotune(
            tensor,
            factor,
            profile_path=tmp_path / "tune.json",
            attrib_report=self._report(1.0, 0.0),
            prober=probe,
        )
        # Seeded ordering put a compiled candidate first, and the
        # synthetic prober makes the first candidate win.
        assert cfg.kernel == "compiled"
        assert probed[0].kernel == "compiled"

    def test_explicit_candidates_override_report(self, workload, tmp_path):
        tensor, factor = workload
        probe = _fake_prober(
            {("generic", None): 1.0, ("compiled", 512): 2.0, ("compiled", 2048): 3.0}
        )
        cfg = autotune(
            tensor,
            factor,
            profile_path=tmp_path / "tune.json",
            candidates=CANDS,
            attrib_report=self._report(1.0, 0.0),
            prober=probe,
        )
        assert cfg == CANDS[0]  # the explicit list was used as-is
