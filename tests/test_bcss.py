"""Tests for the BCSS blocked symmetric format."""

import itertools

import numpy as np
import pytest

from repro.formats import BlockedSymmetricTensor, bcss_storage_entries
from repro.symmetry.combinatorics import dense_size, sym_storage_size


def symmetrize(t):
    out = np.zeros_like(t)
    perms = list(itertools.permutations(range(t.ndim)))
    for perm in perms:
        out += np.transpose(t, perm)
    return out / len(perms)


@pytest.fixture
def sym3(rng):
    return symmetrize(rng.random((7, 7, 7)))


class TestRoundTrip:
    @pytest.mark.parametrize("block", [1, 2, 3, 7, 10])
    def test_roundtrip(self, sym3, block):
        bt = BlockedSymmetricTensor.from_full(sym3, block)
        assert np.allclose(bt.to_full(), sym3)

    def test_order2(self, rng):
        m = rng.random((6, 6))
        m = (m + m.T) / 2
        bt = BlockedSymmetricTensor.from_full(m, 4)
        assert np.allclose(bt.to_full(), m)

    def test_getitem_any_permutation(self, sym3):
        bt = BlockedSymmetricTensor.from_full(sym3, 3)
        for idx in [(0, 3, 6), (6, 3, 0), (5, 5, 1), (2, 2, 2)]:
            assert bt[idx] == pytest.approx(sym3[idx])

    def test_rejects_asymmetric(self, rng):
        with pytest.raises(ValueError):
            BlockedSymmetricTensor.from_full(rng.random((4, 4, 4)), 2)

    def test_rejects_nonhypercubical(self, rng):
        with pytest.raises(ValueError):
            BlockedSymmetricTensor.from_full(rng.random((3, 4)), 2)

    def test_index_validation(self, sym3):
        bt = BlockedSymmetricTensor.from_full(sym3, 3)
        with pytest.raises(IndexError):
            _ = bt[(0, 1)]
        with pytest.raises(IndexError):
            _ = bt[(0, 1, 9)]


class TestStorageModel:
    def test_entries_formula(self, sym3):
        bt = BlockedSymmetricTensor.from_full(sym3, 2)
        assert bt.stored_entries == bcss_storage_entries(3, 7, 2)

    def test_block1_equals_compact(self):
        assert bcss_storage_entries(4, 9, 1) == sym_storage_size(4, 9)

    def test_single_block_equals_full_padded(self):
        assert bcss_storage_entries(3, 7, 7) == dense_size(3, 7)

    def test_monotone_bounds(self):
        """Compact <= BCSS; BCSS can exceed full with padding (the
        related-work caveat the paper cites)."""
        for block in (1, 2, 3, 5):
            entries = bcss_storage_entries(4, 10, block)
            assert entries >= sym_storage_size(4, 10)
        assert bcss_storage_entries(4, 10, 7) > dense_size(4, 10) / 2

    def test_high_order_overhead_grows(self):
        """Within-block redundancy worsens with order at fixed block size."""
        r4 = bcss_storage_entries(4, 16, 4) / sym_storage_size(4, 16)
        r6 = bcss_storage_entries(6, 16, 4) / sym_storage_size(6, 16)
        assert r6 > r4

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            bcss_storage_entries(3, 5, 0)
        with pytest.raises(ValueError):
            BlockedSymmetricTensor(3, 5, 0)
