"""Tests for the profiling helper."""

import time

from repro.runtime import profile_call


class TestProfileCall:
    def test_returns_result(self):
        report = profile_call(lambda: 42)
        assert report.result == 42

    def test_hotspots_ranked(self):
        def work():
            total = 0
            for _ in range(3):
                total += sum(range(50_000))
            return total

        report = profile_call(work)
        assert report.hotspots
        times = [h.total_seconds for h in report.hotspots]
        assert times == sorted(times, reverse=True)

    def test_identifies_sleep(self):
        report = profile_call(lambda: time.sleep(0.05))
        assert report.fraction_in("sleep") > 0.5

    def test_render(self):
        report = profile_call(lambda: sum(range(1000)))
        text = report.render(3)
        assert "total" in text

    def test_kernel_profile_names_engine(self, rng):
        """Profiling a kernel call surfaces the engine module."""
        from repro.core import s3ttmc
        from tests.conftest import make_random_tensor

        x = make_random_tensor(4, 12, 80, rng)
        u = rng.random((12, 3))
        s3ttmc(x, u)  # warm the plan so the profile sees numeric work
        report = profile_call(lambda: s3ttmc(x, u))
        names = " ".join(h.function for h in report.hotspots)
        assert "engine" in names or "reduce" in names or "lattice" in names

    def test_exception_propagates(self):
        import pytest

        with pytest.raises(RuntimeError):
            profile_call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
