"""Tests for the profiling helper."""

import time

from repro.runtime import profile_call


class TestProfileCall:
    def test_returns_result(self):
        report = profile_call(lambda: 42)
        assert report.result == 42

    def test_hotspots_ranked(self):
        def work():
            total = 0
            for _ in range(3):
                total += sum(range(50_000))
            return total

        report = profile_call(work)
        assert report.hotspots
        times = [h.total_seconds for h in report.hotspots]
        assert times == sorted(times, reverse=True)

    def test_identifies_sleep(self):
        report = profile_call(lambda: time.sleep(0.05))
        assert report.fraction_in("sleep") > 0.5

    def test_render(self):
        report = profile_call(lambda: sum(range(1000)))
        text = report.render(3)
        assert "total" in text

    def test_kernel_profile_names_engine(self, rng):
        """Profiling a kernel call surfaces the engine module."""
        from repro.core import s3ttmc
        from tests.conftest import make_random_tensor

        x = make_random_tensor(4, 12, 80, rng)
        u = rng.random((12, 3))
        s3ttmc(x, u)  # warm the plan so the profile sees numeric work
        report = profile_call(lambda: s3ttmc(x, u))
        names = " ".join(h.function for h in report.hotspots)
        assert "engine" in names or "reduce" in names or "lattice" in names

    def test_exception_propagates(self):
        import pytest

        with pytest.raises(RuntimeError):
            profile_call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))


class TestFractionIn:
    """Edge cases of ProfileReport.fraction_in."""

    @staticmethod
    def _report(elapsed, hotspots):
        from repro.runtime import HotSpot, ProfileReport

        return ProfileReport(
            result=None,
            elapsed=elapsed,
            hotspots=[
                HotSpot(function=f, calls=1, total_seconds=t, cumulative_seconds=t)
                for f, t in hotspots
            ],
        )

    def test_zero_elapsed(self):
        report = self._report(0.0, [("engine.py:1(run)", 0.0)])
        assert report.fraction_in("engine") == 0.0

    def test_negative_elapsed(self):
        assert self._report(-1.0, []).fraction_in("x") == 0.0

    def test_no_matches(self):
        report = self._report(1.0, [("engine.py:1(run)", 0.4)])
        assert report.fraction_in("does-not-appear") == 0.0

    def test_partial_match_fraction(self):
        report = self._report(
            2.0, [("engine.py:1(run)", 0.5), ("svd.py:2(go)", 1.5)]
        )
        assert report.fraction_in("engine") == 0.25

    def test_clamped_at_one(self):
        # hotspot times can exceed `elapsed` (profiler accounting skew);
        # the fraction must still clamp to 1.0
        report = self._report(1.0, [("engine.py:1(a)", 0.8), ("engine.py:2(b)", 0.9)])
        assert report.fraction_in("engine") == 1.0

    def test_empty_hotspots(self):
        assert self._report(1.0, []).fraction_in("engine") == 0.0
