"""Tests for the general sparse tensor substrate (per-mode TTMc, HOOI)."""

import numpy as np
import pytest

from repro.formats import COOTensor
from repro.formats.dense import ttm, unfold
from repro.general import general_hooi, general_ttmc
from tests.conftest import make_random_tensor


def random_coo(order, dim, n, rng):
    idx = np.unique(rng.integers(0, dim, size=(n, order)), axis=0)
    return COOTensor(order, dim, idx, rng.uniform(-1, 1, idx.shape[0]))


def dense_general_ttmc(coo, factors, mode):
    dense = coo.to_dense()
    for m in range(coo.order):
        if m == mode:
            continue
        dense = ttm(dense, factors[m], m)
    return unfold(dense, mode)


class TestGeneralTTMc:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_order3(self, mode, rng):
        coo = random_coo(3, 6, 30, rng)
        factors = [rng.random((6, r)) for r in (2, 3, 4)]
        got = general_ttmc(coo, factors, mode)
        ref = dense_general_ttmc(coo, factors, mode)
        assert np.allclose(got, ref, atol=1e-10)

    @pytest.mark.parametrize("mode", [0, 2, 3])
    def test_matches_dense_order4(self, mode, rng):
        coo = random_coo(4, 5, 40, rng)
        factors = [rng.random((5, 2)) for _ in range(4)]
        got = general_ttmc(coo, factors, mode)
        ref = dense_general_ttmc(coo, factors, mode)
        assert np.allclose(got, ref, atol=1e-10)

    def test_csf_cache_per_mode(self, rng):
        coo = random_coo(3, 5, 20, rng)
        factors = [rng.random((5, 2)) for _ in range(3)]
        general_ttmc(coo, factors, 0)
        general_ttmc(coo, factors, 1)
        general_ttmc(coo, factors, 0)
        assert set(getattr(coo, "_csf_cache")) == {0, 1}

    def test_symmetric_specialization_agrees(self, rng):
        """Same factor per mode on a symmetric tensor == S³TTMc."""
        x = make_random_tensor(3, 6, 25, rng)
        u = rng.random((6, 3))
        coo = x.expand()
        general = general_ttmc(coo, [u] * 3, 0)
        from repro.core import s3ttmc

        assert np.allclose(general, s3ttmc(x, u).to_full_unfolding(), atol=1e-10)

    def test_factor_validation(self, rng):
        coo = random_coo(3, 5, 10, rng)
        with pytest.raises(ValueError):
            general_ttmc(coo, [rng.random((5, 2))] * 2, 0)
        with pytest.raises(ValueError):
            general_ttmc(coo, [rng.random((4, 2))] * 3, 0)
        with pytest.raises(ValueError):
            general_ttmc(coo, [rng.random((5, 2))] * 3, 5)


class TestGeneralHooi:
    def test_objective_decreases(self, rng):
        coo = random_coo(3, 10, 80, rng)
        res = general_hooi(coo, 3, max_iters=10, seed=0)
        trace = res.objective_trace
        for a, b in zip(trace, trace[1:]):
            assert b <= a + 1e-9 * max(abs(a), 1.0)
        for factor, rank in zip(res.factors, [3, 3, 3]):
            assert factor.shape == (10, rank)
            assert np.allclose(factor.T @ factor, np.eye(rank), atol=1e-10)

    def test_core_shape_per_mode_ranks(self, rng):
        coo = random_coo(3, 8, 50, rng)
        res = general_hooi(coo, [2, 3, 4], max_iters=3, seed=1)
        assert res.core.shape == (2, 3, 4)

    def test_core_consistent_with_factors(self, rng):
        """Objective from the core equals the dense-residual objective."""
        coo = random_coo(3, 7, 40, rng)
        res = general_hooi(coo, 2, max_iters=6, seed=2)
        dense = coo.to_dense()
        recon = res.core
        for mode in range(3):
            recon = ttm(recon, res.factors[mode].T, mode)
        resid = float(((dense - recon) ** 2).sum())
        assert res.objective_trace[-1] == pytest.approx(resid, rel=1e-6)

    def test_full_rank_exact(self, rng):
        coo = random_coo(3, 5, 30, rng)
        res = general_hooi(coo, 5, max_iters=4, seed=3)
        assert res.relative_error < 1e-6

    def test_matrix_case_matches_svd(self, rng):
        """Order-2 Tucker converges to the truncated-SVD energy."""
        coo = random_coo(2, 8, 30, rng)
        res = general_hooi(coo, 3, max_iters=200, seed=4, tol=1e-14)
        s = np.linalg.svd(coo.to_dense(), compute_uv=False)
        best = float((s[3:] ** 2).sum())
        assert res.objective_trace[-1] == pytest.approx(best, abs=1e-8)

    def test_rank_validation(self, rng):
        coo = random_coo(3, 5, 10, rng)
        with pytest.raises(ValueError):
            general_hooi(coo, [2, 2], max_iters=1)
        with pytest.raises(ValueError):
            general_hooi(coo, 9, max_iters=1)

    def test_explicit_init(self, rng):
        coo = random_coo(3, 6, 20, rng)
        init = [np.linalg.qr(rng.standard_normal((6, 2)))[0] for _ in range(3)]
        res = general_hooi(coo, 2, max_iters=2, init=init)
        assert res.iterations >= 1
