"""Tests for the cached index tables and execution plans."""

import numpy as np
import pytest

from repro.core.plan import TTMcPlan, build_plan, get_plan
from repro.symmetry.combinatorics import sym_storage_size
from repro.symmetry.iou import enumerate_iou
from repro.symmetry.tables import clear_table_cache, get_tables, table_cache_info
from tests.conftest import make_random_tensor


class TestIndexTables:
    def test_contents(self):
        tables = get_tables(3, 4)
        assert tables.size == sym_storage_size(3, 4)
        assert np.array_equal(tables.indices, enumerate_iou(3, 4))
        assert tables.multiplicity.sum() == 4**3

    def test_cache_identity(self):
        a = get_tables(4, 3)
        b = get_tables(4, 3)
        assert a is b

    def test_cache_info_and_clear(self):
        clear_table_cache()
        get_tables(2, 5)
        info = table_cache_info()
        assert info[(2, 5)] == sym_storage_size(2, 5)
        clear_table_cache()
        assert table_cache_info() == {}

    def test_parent_loc_consistent_with_enumeration(self):
        tables = get_tables(4, 3)
        prev = enumerate_iou(3, 3)
        assert np.array_equal(prev[tables.parent_loc], tables.indices[:, :-1])

    def test_expansion_locs_cached(self):
        tables = get_tables(2, 3)
        assert tables.expansion_locs() is tables.expansion_locs()


class TestPlans:
    def test_plan_batches_cover_nonzeros(self, rng):
        x = make_random_tensor(3, 10, 50, rng)
        plan = build_plan(x.indices, nz_batch_size=12)
        spans = [(s, e) for s, e, _lat in plan.batches]
        assert spans[0][0] == 0
        assert spans[-1][1] == x.unnz
        for (a1, b1), (a2, b2) in zip(spans, spans[1:]):
            assert b1 == a2
        assert all(e - s <= 12 for s, e in spans)

    def test_plan_single_batch_default(self, rng):
        x = make_random_tensor(3, 10, 50, rng)
        plan = build_plan(x.indices)
        assert len(plan.batches) == 1

    def test_empty_plan(self):
        plan = build_plan(np.zeros((0, 3), dtype=np.int64))
        assert plan.batches == ()
        assert plan.total_edges == 0

    def test_get_plan_distinct_keys(self, rng):
        x = make_random_tensor(3, 10, 30, rng)
        a = get_plan(x, "global", None)
        b = get_plan(x, "nonzero", None)
        c = get_plan(x, "global", 8)
        assert a is not b and a is not c
        assert get_plan(x, "global", None) is a

    def test_plan_is_structural_only(self, rng):
        """Same pattern, different values: one plan serves both."""
        from repro.core import s3ttmc
        from repro.baselines.dense_ref import dense_s3ttmc_matrix

        x = make_random_tensor(4, 8, 30, rng)
        y = x.permute_values(rng)
        plan = build_plan(x.indices)
        u = rng.random((8, 3))
        for t in (x, y):
            got = s3ttmc(t, u, plan=plan).to_full_unfolding()
            assert np.allclose(got, dense_s3ttmc_matrix(t, u), atol=1e-10)

    def test_plan_type(self, rng):
        x = make_random_tensor(3, 8, 20, rng)
        assert isinstance(get_plan(x), TTMcPlan)


class TestCLI:
    def test_list_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "fig9" in out

    def test_unknown_experiment_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["not-an-experiment"])
