"""Tests for the HiCOO blocked general sparse format."""

import numpy as np
import pytest

from repro.formats import COOTensor, HiCOOTensor


def clustered_coo(rng, n_clusters=6, per_cluster=80, dim=1024, order=3):
    """Non-zeros concentrated in a few 2^7-wide blocks (HiCOO's use case)."""
    rows = []
    for _ in range(n_clusters):
        base = rng.integers(0, dim // 128, size=order) * 128
        rows.append(base + rng.integers(0, 128, size=(per_cluster, order)))
    idx = np.unique(np.concatenate(rows), axis=0)
    return COOTensor(order, dim, idx, rng.random(idx.shape[0]))


class TestRoundTrip:
    def test_entries_preserved(self, rng):
        coo = clustered_coo(rng)
        h = HiCOOTensor(coo, block_bits=7)
        back = h.to_coo()
        a = np.lexsort(coo.indices.T[::-1])
        b = np.lexsort(back.indices.T[::-1])
        assert np.array_equal(coo.indices[a], back.indices[b])
        assert np.allclose(coo.values[a], back.values[b])

    @pytest.mark.parametrize("bits", [1, 4, 8, 12])
    def test_roundtrip_various_block_sizes(self, bits, rng):
        idx = np.unique(rng.integers(0, 300, size=(100, 4)), axis=0)
        coo = COOTensor(4, 300, idx, rng.random(idx.shape[0]))
        h = HiCOOTensor(coo, block_bits=bits)
        back = h.to_coo()
        a = np.lexsort(coo.indices.T[::-1])
        b = np.lexsort(back.indices.T[::-1])
        assert np.array_equal(coo.indices[a], back.indices[b])

    def test_empty_tensor(self):
        coo = COOTensor(3, 10, np.zeros((0, 3), dtype=int), np.zeros(0))
        h = HiCOOTensor(coo)
        assert h.nnz == 0 and h.n_blocks == 0
        assert h.to_coo().nnz == 0

    def test_block_bits_validation(self, rng):
        coo = clustered_coo(rng)
        with pytest.raises(ValueError):
            HiCOOTensor(coo, block_bits=0)
        with pytest.raises(ValueError):
            HiCOOTensor(coo, block_bits=20)


class TestCompression:
    def test_clustered_data_compresses(self, rng):
        coo = clustered_coo(rng, n_clusters=4, per_cluster=120)
        h = HiCOOTensor(coo, block_bits=7)
        # few blocks, many entries per block: index bytes shrink vs COO
        assert h.n_blocks < coo.nnz / 10
        assert h.compression_ratio() > 3.0

    def test_scattered_data_does_not_blow_up(self, rng):
        idx = np.unique(rng.integers(0, 10_000, size=(300, 3)), axis=0)
        coo = COOTensor(3, 10_000, idx, rng.random(idx.shape[0]))
        h = HiCOOTensor(coo, block_bits=7)
        # worst case: one entry per block; overhead stays bounded
        assert h.index_bytes <= 2.0 * h.coo_index_bytes()

    def test_offsets_dtype(self, rng):
        coo = clustered_coo(rng)
        assert HiCOOTensor(coo, block_bits=8).offsets.dtype == np.uint8
        assert HiCOOTensor(coo, block_bits=9).offsets.dtype == np.uint16

    def test_block_ptr_partitions_entries(self, rng):
        coo = clustered_coo(rng)
        h = HiCOOTensor(coo, block_bits=7)
        assert h.block_ptr[0] == 0
        assert h.block_ptr[-1] == h.nnz
        assert np.all(np.diff(h.block_ptr) > 0)
