"""End-to-end tests for the serve front door: admission before any
allocation, content-addressed caching (and the pattern/content aliasing
regression), per-job isolation, cancel/preempt/resume, shutdown hygiene,
and the ``python -m repro.serve`` daemon round-trip."""

import asyncio
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core import content_fingerprint, s3ttmc
from repro.core.plan import pattern_fingerprint
from repro.decomp import hooi, hoqri
from repro.parallel import shm as _shm
from repro.runtime.health import DeadlineExceededError, RunCancelledError
from repro.serve import (
    DecompositionService,
    InvalidJobError,
    JobSpec,
    QuotaExceededError,
    TenantQuota,
    UnknownJobError,
    predict_job_peak_bytes,
)
from repro.serve.client import connect_from_banner
from repro.serve.wire import spec_from_wire, spec_to_wire
from tests.conftest import make_random_tensor


def run(coro):
    return asyncio.run(coro)


def hooi_spec(tensor, rank, **kw):
    kw.setdefault("max_iters", 5)
    return JobSpec(kind="hooi", tensor=tensor, rank=rank, **kw)


# ---------------------------------------------------------------------------
# Specs and admission
# ---------------------------------------------------------------------------


class TestJobSpec:
    def test_unknown_kind_rejected(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        spec = JobSpec(kind="cp-als", tensor=x, rank=2)
        with pytest.raises(InvalidJobError, match="unknown job kind"):
            spec.validate()
        assert isinstance(InvalidJobError("x"), ValueError)

    def test_s3ttmc_requires_matching_factor(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        with pytest.raises(InvalidJobError, match="require a factor"):
            JobSpec(kind="s3ttmc", tensor=x).validate()
        with pytest.raises(InvalidJobError, match="does not match tensor dim"):
            JobSpec(kind="s3ttmc", tensor=x, factor=np.ones((5, 2))).validate()

    def test_determinism_classification(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        assert JobSpec(kind="s3ttmc", tensor=x, factor=np.ones((8, 2))).deterministic()
        assert not hooi_spec(x, 2).deterministic()  # seedless random init
        assert hooi_spec(x, 2, seed=7).deterministic()
        assert hooi_spec(x, 2, init="hosvd").deterministic()

    def test_wire_round_trip(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        spec = hooi_spec(x, 2, seed=3, tenant="acme", deadline_seconds=5.0)
        back = spec_from_wire(spec_to_wire(spec))
        assert back.config_key() == spec.config_key()
        assert back.tenant == "acme"
        assert content_fingerprint(back.tensor) == content_fingerprint(x)

    def test_prediction_needs_no_allocation(self, rng):
        x = make_random_tensor(3, 16, 120, rng)
        predicted = predict_job_peak_bytes(hooi_spec(x, 3))
        # At least the operands themselves.
        assert predicted >= x.unnz * (8 * x.order + 8) + x.dim * 3 * 8


class TestContentFingerprint:
    def test_same_pattern_different_values_distinct(self, rng):
        """Satellite regression: the result cache must key on *content*.

        ``pattern_fingerprint`` intentionally identifies these two
        tensors (they share a plan); ``content_fingerprint`` must not.
        """
        a = make_random_tensor(3, 10, 60, rng)
        b = repro.SparseSymmetricTensor(
            a.order, a.dim, a.indices.copy(), a.values + 1.0
        )
        assert pattern_fingerprint(a.indices) == pattern_fingerprint(b.indices)
        assert content_fingerprint(a) != content_fingerprint(b)
        assert content_fingerprint(a) == content_fingerprint(
            repro.SparseSymmetricTensor(
                a.order, a.dim, a.indices.copy(), a.values.copy()
            )
        )

    def test_dimension_changes_fingerprint(self, rng):
        a = make_random_tensor(3, 10, 60, rng)
        wider = repro.SparseSymmetricTensor(
            a.order, a.dim + 1, a.indices.copy(), a.values.copy()
        )
        assert content_fingerprint(a) != content_fingerprint(wider)


# ---------------------------------------------------------------------------
# Submit / result / cache
# ---------------------------------------------------------------------------


class TestSubmitResult:
    def test_hooi_bitwise_equal_to_direct(self, rng):
        x = make_random_tensor(3, 12, 80, rng)

        async def main():
            async with DecompositionService() as svc:
                job = await svc.submit(hooi_spec(x, 3, seed=7))
                return await svc.result(job)

        got = run(main())
        want = hooi(x, 3, seed=7, max_iters=5)
        assert np.array_equal(got.factor, want.factor)
        assert got.relative_error == want.relative_error

    def test_s3ttmc_bitwise_equal_to_direct(self, rng):
        x = make_random_tensor(3, 12, 80, rng)
        u = rng.random((12, 3))

        async def main():
            async with DecompositionService() as svc:
                job = await svc.submit(JobSpec(kind="s3ttmc", tensor=x, factor=u))
                return await svc.result(job)

        got = run(main())
        want = s3ttmc(x, u)
        assert np.array_equal(np.asarray(got.data), np.asarray(want.data))

    def test_duplicate_submission_hits_cache(self, rng):
        x = make_random_tensor(3, 12, 80, rng)

        async def main():
            async with DecompositionService() as svc:
                first = await svc.submit(hooi_spec(x, 3, seed=7))
                result = await svc.result(first)
                # Content-identical duplicate: fresh tensor object, same bytes.
                dup = repro.SparseSymmetricTensor(
                    x.order, x.dim, x.indices.copy(), x.values.copy()
                )
                second = await svc.submit(hooi_spec(dup, 3, seed=7))
                status = svc.status(second)
                dup_result = await svc.result(second)
                return result, status, dup_result, svc.stats()

        result, status, dup_result, stats = run(main())
        assert status.state == "done" and status.cache_hit
        assert dup_result is result  # served the cached object, no rerun
        assert stats["counters"]["cache_hits"] == 1
        assert stats["counters"]["completed"] == 1
        assert stats["interner"]["hits"] == 1

    def test_seedless_jobs_never_cached(self, rng):
        x = make_random_tensor(3, 12, 80, rng)

        async def main():
            async with DecompositionService() as svc:
                a = await svc.submit(hooi_spec(x, 3))
                b = await svc.submit(hooi_spec(x, 3))
                await svc.result(a), await svc.result(b)
                return svc.status(b).cache_hit, svc.stats()

        hit, stats = run(main())
        assert not hit
        assert stats["counters"]["cache_hits"] == 0
        assert stats["counters"]["completed"] == 2

    def test_same_pattern_different_values_not_aliased(self, rng):
        """Satellite regression, service level: two tensors sharing a
        sparsity pattern but holding different values must not share a
        cache entry (pre-fix, a pattern-keyed cache aliased them)."""
        a = make_random_tensor(3, 12, 80, rng)
        b = repro.SparseSymmetricTensor(
            a.order, a.dim, a.indices.copy(), a.values * 2.0 + 0.5
        )

        async def main():
            async with DecompositionService() as svc:
                ja = await svc.submit(hooi_spec(a, 3, seed=7))
                jb = await svc.submit(hooi_spec(b, 3, seed=7))
                ra, rb = await svc.result(ja), await svc.result(jb)
                return ra, rb, svc.status(jb).cache_hit

        ra, rb, b_hit = run(main())
        assert not b_hit
        assert not np.array_equal(ra.factor, rb.factor)
        assert np.array_equal(ra.factor, hooi(a, 3, seed=7, max_iters=5).factor)
        assert np.array_equal(rb.factor, hooi(b, 3, seed=7, max_iters=5).factor)

    def test_quota_rejection_is_typed_and_pre_allocation(self, rng):
        x = make_random_tensor(3, 20, 300, rng)
        quota = TenantQuota(memory_bytes=1024)

        async def main():
            async with DecompositionService(quotas={"smallco": quota}) as svc:
                with pytest.raises(QuotaExceededError) as excinfo:
                    await svc.submit(hooi_spec(x, 4, seed=1, tenant="smallco"))
                return excinfo.value, svc.stats()

        err, stats = run(main())
        assert err.tenant == "smallco"
        assert err.limit_bytes == 1024
        assert err.predicted_bytes > 1024
        assert stats["counters"]["rejected"] == 1
        assert stats["counters"]["submitted"] == 0  # refused before intake
        assert stats["states"] == {}  # no record, no allocation

    def test_unknown_job_id(self):
        async def main():
            async with DecompositionService() as svc:
                with pytest.raises(UnknownJobError):
                    svc.status("job-999999")

        run(main())


# ---------------------------------------------------------------------------
# Cancel / deadline / preempt
# ---------------------------------------------------------------------------


class TestJobControl:
    def test_cancel_queued_and_running(self, rng):
        x = make_random_tensor(3, 16, 150, rng)

        async def main():
            async with DecompositionService(pool_size=1) as svc:
                # seed=0 is a monotone-objective init on this tensor, so
                # the health watchdog can't fire before the cancel does.
                running = await svc.submit(
                    hooi_spec(x, 3, seed=0, max_iters=5000, tol=0.0,
                              use_cache=False)
                )
                queued = await svc.submit(
                    hooi_spec(x, 2, max_iters=5000, tol=0.0, use_cache=False)
                )
                assert svc.cancel(queued)  # never started
                while svc.status(running).state == "queued":
                    await asyncio.sleep(0.01)
                assert svc.cancel(running)  # interrupted mid-run
                with pytest.raises(RunCancelledError):
                    await svc.result(queued)
                with pytest.raises(RunCancelledError):
                    await svc.result(running)
                return svc.stats()

        stats = run(main())
        assert stats["counters"]["cancelled"] == 2
        assert stats["counters"]["completed"] == 0
        assert stats["counters"]["budgets_undrained"] == 0

    def test_deadline_trips_one_job_spares_sibling(self, rng):
        """A tenant tripping its deadline must not disturb a sibling job
        running concurrently in the same service (own budget, own trace,
        own cancel token)."""
        x = make_random_tensor(3, 16, 150, rng)

        async def main():
            async with DecompositionService(pool_size=2) as svc:
                # Seed pinned to a monotone-objective init: a seedless
                # (or oscillating) init can trip the numerical-health
                # watchdog before the deadline does, and this test is
                # about the deadline.
                doomed = await svc.submit(
                    hooi_spec(
                        x, 3, seed=0, max_iters=5000, tol=0.0,
                        deadline_seconds=0.05, use_cache=False,
                    )
                )
                healthy = await svc.submit(
                    hooi_spec(x, 2, seed=4, max_iters=4, use_cache=False)
                )
                with pytest.raises(DeadlineExceededError):
                    await svc.result(doomed)
                result = await svc.result(healthy)
                return svc.status(doomed), svc.status(healthy), result, svc.stats()

        doomed, healthy, result, stats = run(main())
        assert doomed.state == "failed"
        assert doomed.error_type == "DeadlineExceededError"
        assert healthy.state == "done" and healthy.error_type is None
        assert np.array_equal(result.factor, hooi(x, 2, seed=4, max_iters=4).factor)
        assert stats["counters"]["budgets_undrained"] == 0

    def test_preempt_resumes_bitwise(self, rng):
        x = make_random_tensor(3, 20, 250, rng)

        async def main():
            async with DecompositionService(pool_size=1) as svc:
                job = await svc.submit(
                    hooi_spec(x, 4, seed=3, max_iters=40, tol=0.0, use_cache=False)
                )
                # Wait for it to start, then checkpoint-preempt it once.
                while svc.status(job).state == "queued":
                    await asyncio.sleep(0.005)
                preempted = svc.preempt(job)
                result = await svc.result(job)
                return preempted, svc.status(job), result

        preempted, status, result = run(main())
        want = hooi(x, 4, seed=3, max_iters=40, tol=0.0)
        assert np.array_equal(result.factor, want.factor)
        if preempted:  # raced completion is legal but should be rare
            assert status.preemptions >= 1
        assert status.state == "done"

    def test_kernel_jobs_not_preemptible(self, rng):
        x = make_random_tensor(3, 12, 80, rng)
        u = rng.random((12, 3))

        async def main():
            async with DecompositionService() as svc:
                job = await svc.submit(JobSpec(kind="s3ttmc", tensor=x, factor=u))
                await svc.result(job)
                return svc.preempt(job)

        assert run(main()) is False


# ---------------------------------------------------------------------------
# Acceptance end-to-end: concurrent multi-tenant load + shutdown hygiene
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_concurrent_jobs_cache_quota_and_hygiene(self, rng):
        """The ISSUE acceptance scenario: >= 8 concurrent jobs including
        duplicates and one over-quota tenant. Duplicates are served from
        the cache, the over-quota job is refused typed before any
        allocation, every completed job is bitwise-equal to a direct
        driver call, and shutdown leaves budgets drained and zero leaked
        shm segments."""
        before = set(_shm._LIVE_SEGMENTS)
        x1 = make_random_tensor(3, 16, 150, rng)
        x2 = make_random_tensor(3, 14, 120, rng)
        x3 = make_random_tensor(4, 10, 90, rng)
        u1 = rng.random((16, 3))
        u2 = rng.random((14, 2))

        def copy_of(t):
            return repro.SparseSymmetricTensor(
                t.order, t.dim, t.indices.copy(), t.values.copy()
            )

        specs = [
            hooi_spec(x1, 3, seed=7, tenant="acme"),
            hooi_spec(x3, 3, seed=2, tenant="acme"),
            JobSpec(kind="hoqri", tensor=x2, rank=2, seed=5, max_iters=5,
                    tenant="beta"),
            JobSpec(kind="hoqri", tensor=x1, rank=2, seed=9, max_iters=5,
                    tenant="beta"),
            JobSpec(kind="s3ttmc", tensor=x1, factor=u1, tenant="acme"),
            JobSpec(kind="s3ttmc", tensor=x2, factor=u2, tenant="beta"),
            # Content-identical duplicates of jobs 0 and 4, fresh objects.
            hooi_spec(copy_of(x1), 3, seed=7, tenant="beta"),
            JobSpec(kind="s3ttmc", tensor=copy_of(x1), factor=u1.copy(),
                    tenant="acme"),
        ]

        async def main():
            async with DecompositionService(
                pool_size=3, quotas={"smallco": TenantQuota(memory_bytes=2048)}
            ) as svc:
                # All eight enter the service before any result is awaited,
                # so the pool runs them concurrently and the duplicates
                # coalesce onto their in-flight primaries.
                jobs = [await svc.submit(spec) for spec in specs]
                with pytest.raises(QuotaExceededError) as excinfo:
                    await svc.submit(
                        hooi_spec(x3, 3, seed=1, tenant="smallco")
                    )
                results = [await svc.result(job) for job in jobs]
                statuses = [svc.status(job) for job in jobs]
                stats = svc.stats()
                counters = await svc.close()
                return excinfo.value, results, statuses, stats, counters

        rejection, results, statuses, stats, counters = run(main())

        # Typed refusal, before intake: the smallco job has no record.
        assert rejection.tenant == "smallco"
        assert rejection.predicted_bytes > rejection.limit_bytes == 2048
        assert counters["rejected"] == 1
        assert counters["submitted"] == 8

        # Duplicates rode the cache (coalesced mid-flight or served after).
        assert statuses[6].cache_hit and statuses[7].cache_hit
        assert counters["cache_hits"] >= 2
        assert all(s.state == "done" for s in statuses)

        # Bitwise equality against direct driver calls.
        direct = [
            hooi(x1, 3, seed=7, max_iters=5),
            hooi(x3, 3, seed=2, max_iters=5),
            hoqri(x2, 2, seed=5, max_iters=5),
            hoqri(x1, 2, seed=9, max_iters=5),
            s3ttmc(x1, u1),
            s3ttmc(x2, u2),
        ]
        for got, want in zip(results[:4], direct[:4]):
            assert np.array_equal(got.factor, want.factor)
        for got, want in zip(results[4:6], direct[4:6]):
            assert np.array_equal(np.asarray(got.data), np.asarray(want.data))
        assert np.array_equal(results[6].factor, direct[0].factor)
        assert np.array_equal(
            np.asarray(results[7].data), np.asarray(direct[4].data)
        )

        # Shutdown hygiene: budgets drained, no leaked shm segments.
        assert counters["budgets_undrained"] == 0
        assert set(_shm._LIVE_SEGMENTS) == before

    def test_process_pool_jobs_leak_no_segments(self, rng):
        """One service over a persistent process backend: results match
        the serial kernel and closing the service sweeps every shm
        segment its run tokens created."""
        before = set(_shm._LIVE_SEGMENTS)
        x = make_random_tensor(3, 12, 80, rng)
        u = rng.random((12, 3))

        async def main():
            async with DecompositionService(
                execution="process", n_workers=2, pool_size=1
            ) as svc:
                a = await svc.submit(JobSpec(kind="s3ttmc", tensor=x, factor=u))
                ra = await svc.result(a)
                # Second job reuses the slot's warm backend.
                b = await svc.submit(
                    JobSpec(kind="s3ttmc", tensor=x, factor=u * 2.0)
                )
                rb = await svc.result(b)
                return ra, rb

        ra, rb = run(main())
        assert np.allclose(np.asarray(ra.data), np.asarray(s3ttmc(x, u).data))
        assert np.allclose(
            np.asarray(rb.data), np.asarray(s3ttmc(x, u * 2.0).data)
        )
        assert set(_shm._LIVE_SEGMENTS) == before


# ---------------------------------------------------------------------------
# Daemon round-trip
# ---------------------------------------------------------------------------


class TestDaemon:
    def test_daemon_round_trip(self, rng):
        x = make_random_tensor(3, 12, 80, rng)
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_dir), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.serve", "--port", "0",
             "--pool", "2", "--quota", "smallco=2048"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            client = connect_from_banner(banner, timeout=120.0)
            assert client is not None, f"no banner in {banner!r}"
            assert client.ping()

            spec = hooi_spec(x, 3, seed=7)
            submitted = client.submit(spec)
            reply = client.result(submitted["job_id"])
            want = hooi(x, 3, seed=7, max_iters=5)
            assert np.array_equal(
                np.asarray(reply["result"]["factor"]), want.factor
            )

            dup = client.submit(hooi_spec(x, 3, seed=7))
            assert dup["state"] == "done" and dup["cache_hit"]

            from repro.serve.client import RemoteServeError

            with pytest.raises(RemoteServeError) as excinfo:
                client.submit(hooi_spec(x, 3, seed=1, tenant="smallco"))
            assert excinfo.value.error == "QuotaExceededError"

            stats = client.stats()
            assert stats["counters"]["rejected"] == 1
            assert stats["counters"]["cache_hits"] == 1

            final = client.shutdown()
            assert final["hygiene"]["budgets_undrained"] == 0
            assert proc.wait(timeout=60) == 0
            tail = proc.stdout.read()
            assert "serve: shutdown clean (budgets_undrained=0" in tail
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
