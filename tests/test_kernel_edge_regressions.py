"""Regression tests for the four kernel-edge bugs fixed alongside repro.verify.

Each test fails on the pre-fix engine:

1. Budget pre-flight ordering — the level-table hoist allocated its
   gather tables *before* asking the budget, so a refused run had already
   materialized the bytes the budget existed to prevent.
2. ``out=`` dtype — a float32 / integer ``out`` passed shape validation
   and silently accumulated with precision loss (or dtype-cast errors
   deep in the scatter).
3. ``out_row_map`` coverage — an unmapped (-1) target row wrapped around
   to the *last local row* of the block, silently corrupting it.
4. Stale plan reuse — only ``plan.order`` was checked, so a plan built
   for one sparsity pattern could be replayed against another, producing
   garbage without any error.
"""

import dataclasses
import tracemalloc

import numpy as np
import pytest

from repro.core.engine import lattice_ttmc
from repro.core.plan import build_plan, pattern_fingerprint
from repro.runtime.budget import MemoryBudget, MemoryLimitError
from repro.symmetry.combinatorics import sym_storage_size
from repro.verify.invariants import check_budget_preflight
from tests.conftest import make_random_tensor


@pytest.fixture
def small():
    rng = np.random.default_rng(11)
    x = make_random_tensor(3, 6, 20, rng)
    u = rng.standard_normal((6, 4))
    return x, u


def _cols(order, rank):
    return sym_storage_size(order - 1, rank)


class TestBudgetPreflight:
    def test_refused_hoist_is_never_materialized(self):
        # tracemalloc sees numpy's real allocations: across a refused
        # call, the traced peak must stay far below the gather-table
        # size. Pre-fix, the tables were allocated first and the peak
        # jumped by ~11.5 MB.
        result = check_budget_preflight()
        assert result.ok, result.detail

    def test_budget_drained_after_refusal(self):
        rng = np.random.default_rng(0)
        dim, rank = 40000, 8
        x = make_random_tensor(3, dim, 48, rng)
        u = rng.standard_normal((dim, rank))
        out = np.zeros((dim, _cols(3, rank)))
        # Plan construction transfers lattice bytes to the (long-lived)
        # plan object, so build it outside the budget under test.
        plan = build_plan(x.indices)
        budget = MemoryBudget(limit_bytes=4 * 2**20)
        with budget:
            with pytest.raises(MemoryLimitError):
                lattice_ttmc(
                    x.indices, x.values, dim, u, out=out, plan=plan,
                    block_bytes=1 << 25,
                )
        assert budget.in_use == 0, budget.allocations

    def test_traced_peak_small_during_refused_hoist(self):
        rng = np.random.default_rng(0)
        dim, rank = 40000, 8
        x = make_random_tensor(3, dim, 48, rng)
        u = rng.standard_normal((dim, rank))
        out = np.zeros((dim, _cols(3, rank)))
        hoist_bytes = (dim + 3 * 48) * _cols(3, rank) * 8
        tracemalloc.start()
        try:
            tracemalloc.reset_peak()
            base = tracemalloc.get_traced_memory()[0]
            with MemoryBudget(limit_bytes=4 * 2**20):
                with pytest.raises(MemoryLimitError):
                    lattice_ttmc(
                        x.indices, x.values, dim, u, out=out, block_bytes=1 << 25
                    )
            peak = tracemalloc.get_traced_memory()[1] - base
        finally:
            tracemalloc.stop()
        assert peak < hoist_bytes // 2


class TestOutDtypeValidation:
    @pytest.mark.parametrize("dtype", [np.float32, np.int64, np.float16])
    def test_narrow_out_rejected(self, small, dtype):
        x, u = small
        out = np.zeros((6, _cols(3, 4)), dtype=dtype)
        with pytest.raises(ValueError, match="float64"):
            lattice_ttmc(x.indices, x.values, 6, u, out=out)

    def test_float64_out_accepted(self, small):
        x, u = small
        ref = lattice_ttmc(x.indices, x.values, 6, u)
        out = np.zeros((6, _cols(3, 4)))
        lattice_ttmc(x.indices, x.values, 6, u, out=out)
        np.testing.assert_array_equal(out, ref)


class TestOutRowMapCoverage:
    def test_unmapped_target_row_raises(self, small):
        x, u = small
        touched = np.unique(x.indices)
        assert touched.size >= 2
        # Map every touched row except the last — pre-fix the -1 wrapped
        # to the block's final local row and corrupted it silently.
        kept = touched[:-1]
        row_map = np.full(6, -1, dtype=np.int64)
        row_map[kept] = np.arange(kept.size)
        out = np.zeros((kept.size, _cols(3, 4)))
        with pytest.raises(ValueError, match="out_row_map"):
            lattice_ttmc(
                x.indices, x.values, 6, u, out=out, out_row_map=row_map
            )

    def test_covering_row_map_untouched_rows_unmapped_ok(self, small):
        x, u = small
        touched = np.unique(x.indices)
        row_map = np.full(6, -1, dtype=np.int64)
        row_map[touched] = np.arange(touched.size)
        out = np.zeros((touched.size, _cols(3, 4)))
        lattice_ttmc(x.indices, x.values, 6, u, out=out, out_row_map=row_map)
        ref = lattice_ttmc(x.indices, x.values, 6, u)
        np.testing.assert_array_equal(out, ref[touched])


class TestStalePlanDetection:
    def test_plan_from_other_pattern_rejected(self, small):
        x, u = small
        other = np.sort((x.indices + 1) % 6, axis=1)
        other = other[np.lexsort(other.T[::-1])]
        assert other.tobytes() != x.indices.tobytes()
        stale = build_plan(other)
        with pytest.raises(ValueError, match="stale|does not match"):
            lattice_ttmc(x.indices, x.values, 6, u, plan=stale)

    def test_plan_from_truncated_pattern_rejected(self, small):
        x, u = small
        stale = build_plan(x.indices[:-1])
        with pytest.raises(ValueError, match="stale|does not match"):
            lattice_ttmc(x.indices, x.values, 6, u, plan=stale)

    def test_matching_plan_accepted_and_bitwise(self, small):
        x, u = small
        plan = build_plan(x.indices)
        assert plan.unnz == x.indices.shape[0]
        assert plan.fingerprint == pattern_fingerprint(x.indices)
        got = lattice_ttmc(x.indices, x.values, 6, u, plan=plan)
        ref = lattice_ttmc(x.indices, x.values, 6, u)
        np.testing.assert_array_equal(got, ref)

    def test_legacy_unstamped_plan_still_accepted(self, small):
        # Plans pickled before the stamp existed deserialize with the
        # sentinel defaults; they must keep working (order check only).
        x, u = small
        legacy = dataclasses.replace(
            build_plan(x.indices), unnz=-1, fingerprint=-1
        )
        lattice_ttmc(x.indices, x.values, 6, u, plan=legacy)

    def test_wrong_order_plan_rejected(self, small):
        x, u = small
        rng = np.random.default_rng(1)
        other = make_random_tensor(4, 6, 10, rng)
        with pytest.raises(ValueError, match="order"):
            lattice_ttmc(x.indices, x.values, 6, u, plan=build_plan(other.indices))

    def test_fingerprint_distinguishes_permuted_values(self):
        a = np.array([[0, 1, 2], [1, 2, 3]], dtype=np.int64)
        b = np.array([[0, 1, 3], [1, 2, 2]], dtype=np.int64)
        assert pattern_fingerprint(a) != pattern_fingerprint(b)
        assert pattern_fingerprint(a) == pattern_fingerprint(a.copy())
