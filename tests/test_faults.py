"""Fault-tolerance tests: deterministic injection, recovery equivalence,
supervision (hang detection/respawn), OOM bisection, and backend fallback.

The central claim under test: a faulted run *converges to the same
answer* as a clean one. Crash / hang / corrupt recovery re-executes the
exact same chunk into the exact same staging slot, so those paths are
required to be **bitwise** identical; OOM bisection changes the
summation order inside one chunk, so it is required to agree to
floating-point tolerance only.
"""

import numpy as np
import pytest

from repro.decomp import hooi
from repro.obs.trace import TraceCollector
from repro.parallel import ParallelRunReport, parallel_s3ttmc
from repro.runtime.context import ExecContext
from repro.runtime.faults import (
    BackendUnhealthyError,
    FallbackPolicy,
    FaultInjector,
    FaultSpec,
    faults_from_env,
    parse_fault_specs,
)
from tests.conftest import make_random_tensor

#: Fast policy for tests: tiny backoff, tight hang deadline.
FAST = FallbackPolicy(
    backoff_seconds=0.01,
    chunk_timeout=1.0,
    heartbeat_interval=0.1,
)


def _counter(col, name):
    return col.metrics.counter(name).value


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="chunk", kind="meteor")

    def test_invalid_times_and_probability(self):
        with pytest.raises(ValueError):
            FaultSpec(site="chunk", kind="crash", times=0)
        with pytest.raises(ValueError):
            FaultSpec(site="chunk", kind="crash", probability=1.5)

    def test_match_filters(self):
        spec = FaultSpec(site="chunk", kind="crash", match={"slot": 2})
        assert spec.matches({"slot": 2, "backend": "thread"})
        assert not spec.matches({"slot": 1})
        assert not spec.matches({})  # missing attributes never match

    def test_payload_shape(self):
        assert FaultSpec(site="chunk", kind="hang", seconds=3.0).payload() == (
            "hang",
            3.0,
        )
        assert FaultSpec(site="chunk", kind="corrupt", scale=0.5).payload() == (
            "corrupt",
            0.5,
        )


class TestParseFaultSpecs:
    def test_grammar(self):
        specs = parse_fault_specs(
            "chunk:crash;chunk:oom:after=2;chunk:hang:seconds=5,slot=1"
        )
        assert [s.kind for s in specs] == ["crash", "oom", "hang"]
        assert specs[1].after == 2
        assert specs[2].seconds == 5.0
        assert specs[2].match == {"slot": 1}

    def test_empty_entries_skipped(self):
        assert parse_fault_specs(";;chunk:crash;") == [
            FaultSpec(site="chunk", kind="crash")
        ]

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_specs("chunk")
        with pytest.raises(ValueError):
            parse_fault_specs("chunk:crash:notakv")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            parse_fault_specs("chunk:meteor")

    def test_malformed_attrs_rejected(self):
        # A bare word where key=value is required.
        with pytest.raises(ValueError, match="must be key=value"):
            parse_fault_specs("chunk:crash:after")
        # Typed options must coerce: 'after' takes an int.
        with pytest.raises(ValueError):
            parse_fault_specs("chunk:crash:after=soon")
        # Constructor-level validation still applies to parsed values.
        with pytest.raises(ValueError):
            parse_fault_specs("chunk:crash:times=0")
        with pytest.raises(ValueError):
            parse_fault_specs("chunk:crash:probability=2")

    def test_duplicate_sites_all_kept(self):
        # Repeating a site is not an error: each entry is its own spec,
        # and the injector checks them in order (first match fires).
        specs = parse_fault_specs("chunk:crash;chunk:crash:after=1")
        assert len(specs) == 2
        assert [s.after for s in specs] == [0, 1]

    def test_duplicate_option_last_wins(self):
        (spec,) = parse_fault_specs("chunk:hang:seconds=1,seconds=2")
        assert spec.seconds == 2.0

    def test_nan_and_slow_kinds_parse(self):
        specs = parse_fault_specs("chunk:nan;chunk:slow:seconds=0.2")
        assert [s.kind for s in specs] == ["nan", "slow"]
        assert specs[1].payload() == ("slow", 0.2)
        assert specs[0].payload() == ("nan", specs[0].scale)

    def test_faults_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "chunk:crash;chunk:oom:after=1")
        inj = faults_from_env()
        assert inj is not None
        assert [s.kind for s in inj.specs] == ["crash", "oom"]


class TestParsePolicySpec:
    def test_grammar(self):
        from repro.runtime.faults import parse_policy_spec

        pol = parse_policy_spec(
            "max_retries=1,chunk_timeout=5,check_finite=off,degrade=thread>serial"
        )
        assert pol.max_retries == 1
        assert pol.chunk_timeout == 5.0
        assert pol.check_finite is False
        assert pol.degrade == ("thread", "serial")

    def test_chunk_timeout_none_and_empty_degrade(self):
        from repro.runtime.faults import parse_policy_spec

        pol = parse_policy_spec("chunk_timeout=none,degrade=")
        assert pol.chunk_timeout is None
        assert pol.degrade == ()

    def test_errors(self):
        from repro.runtime.faults import parse_policy_spec

        with pytest.raises(ValueError, match="key=value"):
            parse_policy_spec("max_retries")
        with pytest.raises(ValueError, match="unknown policy field"):
            parse_policy_spec("max_turbo=1")
        with pytest.raises(ValueError, match="boolean"):
            parse_policy_spec("check_finite=maybe")

    def test_policy_from_env(self, monkeypatch):
        from repro.runtime.faults import policy_from_env

        monkeypatch.delenv("REPRO_POLICY", raising=False)
        assert policy_from_env() is None
        monkeypatch.setenv("REPRO_POLICY", "max_unhealthy_iters=5")
        pol = policy_from_env()
        assert pol is not None
        assert pol.max_unhealthy_iters == 5
        # Unspecified fields keep their defaults.
        assert pol.verify_partials is FallbackPolicy().verify_partials


class TestFaultInjector:
    def test_after_and_times(self):
        inj = FaultInjector([FaultSpec(site="chunk", kind="crash", after=1, times=2)])
        fired = [inj.arm("chunk", slot=i) is not None for i in range(5)]
        assert fired == [False, True, True, False, False]
        assert inj.n_fired == 2

    def test_site_and_match_filtering(self):
        inj = FaultInjector(
            [FaultSpec(site="chunk", kind="crash", match={"backend": "process"})]
        )
        assert inj.arm("other", backend="process") is None
        assert inj.arm("chunk", backend="thread") is None
        assert inj.arm("chunk", backend="process") is not None

    def test_probability_deterministic_per_seed(self):
        plan = [FaultSpec(site="chunk", kind="crash", probability=0.5, times=100)]
        a = FaultInjector(plan, seed=42)
        b = FaultInjector(plan, seed=42)
        fired_a = [a.arm("chunk", slot=i) is not None for i in range(50)]
        fired_b = [b.arm("chunk", slot=i) is not None for i in range(50)]
        assert fired_a == fired_b
        assert any(fired_a) and not all(fired_a)

    def test_reset_replays_identically(self):
        inj = FaultInjector(
            [FaultSpec(site="chunk", kind="oom", probability=0.3, times=100)],
            seed=7,
        )
        first = [inj.arm("chunk", slot=i) is not None for i in range(20)]
        inj.reset()
        assert [inj.arm("chunk", slot=i) is not None for i in range(20)] == first

    def test_first_matching_spec_wins_but_all_count(self):
        inj = FaultInjector(
            [
                FaultSpec(site="chunk", kind="crash"),
                FaultSpec(site="chunk", kind="oom", after=1),
            ]
        )
        assert inj.arm("chunk").kind == "crash"  # occurrence 0 counts for both
        assert inj.arm("chunk").kind == "oom"


class TestFallbackPolicy:
    def test_backoff_schedule(self):
        p = FallbackPolicy(backoff_seconds=0.1, backoff_multiplier=2.0)
        assert p.backoff(0) == 0.0
        assert p.backoff(1) == pytest.approx(0.1)
        assert p.backoff(3) == pytest.approx(0.4)

    def test_degrade_chain(self):
        p = FallbackPolicy()
        assert p.degrade_to("process") == "thread"
        assert p.degrade_to("thread") == "serial"
        assert p.degrade_to("serial") is None

    def test_degrade_only_weaker(self):
        p = FallbackPolicy(degrade=("process", "serial"))
        assert p.degrade_to("thread") == "serial"  # never "upgrades"
        assert p.degrade_to("process") == "serial"

    def test_empty_chain_disables(self):
        assert FallbackPolicy(degrade=()).degrade_to("process") is None

    def test_context_carries_policy(self):
        pol = FallbackPolicy(max_retries=7)
        ctx = ExecContext(fallback=pol, faults=FaultInjector())
        assert ctx.effective_fallback() is pol
        child = ctx.derive()
        assert child.effective_fallback() is pol
        assert child.faults is ctx.faults
        snap = ctx.snapshot()
        assert snap.effective_fallback() is pol


class TestRecoveryEquivalence:
    """Faulted runs produce the same Y as clean runs, with counters."""

    BITWISE_KINDS = ("crash", "corrupt", "error")

    def _run(self, backend, specs, policy=FAST, rng_seed=3):
        rng = np.random.default_rng(rng_seed)
        x = make_random_tensor(4, 10, 60, rng)
        u = rng.random((10, 3))
        clean = parallel_s3ttmc(x, u, 2, backend=backend).unfolding
        ctx = ExecContext(faults=FaultInjector(specs), fallback=policy)
        report = ParallelRunReport()
        got = parallel_s3ttmc(x, u, 2, backend=backend, ctx=ctx, report=report)
        return clean, got.unfolding, report, ctx.faults

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("kind", BITWISE_KINDS)
    def test_bitwise_recovery(self, backend, kind):
        clean, got, report, injector = self._run(
            backend, [FaultSpec(site="chunk", kind=kind)]
        )
        assert injector.n_fired == 1
        assert np.array_equal(got, clean), (backend, kind)
        assert report.retries == 1
        if kind == "corrupt":
            assert report.corrupt_partials == 1
        if backend == "process" and kind == "crash":
            assert report.respawns == 1

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_oom_bisection_recovery(self, backend):
        clean, got, report, injector = self._run(
            backend, [FaultSpec(site="chunk", kind="oom")]
        )
        assert injector.n_fired == 1
        assert report.oom_splits == 1
        assert report.retries == 0  # a split is not a retry
        # Bisection reorders the summation within one chunk: equal to
        # floating-point tolerance, not bitwise.
        assert np.allclose(got, clean, atol=1e-12), backend

    def test_process_hang_detected_and_respawned(self):
        clean, got, report, injector = self._run(
            "process",
            [FaultSpec(site="chunk", kind="hang", seconds=30.0)],
        )
        assert injector.n_fired == 1
        assert np.array_equal(got, clean)
        assert report.respawns == 1  # hung worker was killed and replaced
        assert report.retries == 1

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_inprocess_hang_is_a_stall_not_a_failure(self, backend):
        # Without a supervising process boundary a hang is just a sleep;
        # the chunk still completes and nothing is retried.
        clean, got, report, _ = self._run(
            backend, [FaultSpec(site="chunk", kind="hang", seconds=0.05)]
        )
        assert np.array_equal(got, clean)
        assert report.retries == 0

    def test_multiple_faults_one_run(self):
        # Keyed to (slot, attempt) so the plan is deterministic even though
        # concurrent chunk completion order is not: slot 0 crashes, its
        # retry OOMs and bisects; slot 1's first partial arrives corrupted.
        clean, got, report, injector = self._run(
            "process",
            [
                FaultSpec(site="chunk", kind="crash", match={"slot": 0}),
                FaultSpec(site="chunk", kind="corrupt", match={"slot": 1}),
                FaultSpec(
                    site="chunk", kind="oom", match={"slot": 0, "attempt": 1}
                ),
            ],
        )
        assert injector.n_fired == 3
        assert report.retries >= 2
        assert report.oom_splits == 1
        assert np.allclose(got, clean, atol=1e-12)

    def test_retry_exhaustion_without_fallback_raises(self):
        rng = np.random.default_rng(3)
        x = make_random_tensor(3, 8, 30, rng)
        u = rng.random((8, 2))
        ctx = ExecContext(
            faults=FaultInjector([FaultSpec(site="chunk", kind="crash", times=99)]),
            fallback=FAST.with_(degrade=()),
        )
        with pytest.raises(BackendUnhealthyError):
            parallel_s3ttmc(x, u, 2, backend="serial", ctx=ctx)

    def test_counters_visible_in_collector(self):
        rng = np.random.default_rng(3)
        x = make_random_tensor(4, 10, 60, rng)
        u = rng.random((10, 3))
        ctx = ExecContext(
            faults=FaultInjector(
                [
                    FaultSpec(site="chunk", kind="crash"),
                    FaultSpec(site="chunk", kind="oom", after=2),
                ]
            ),
            fallback=FAST,
        )
        with TraceCollector() as col:
            parallel_s3ttmc(x, u, 2, backend="thread", ctx=ctx)
        assert _counter(col, "parallel.retries") == 1
        assert _counter(col, "parallel.oom_splits") == 1
        assert len([e for e in col.events if e.name == "parallel.retry"]) == 1
        assert len([e for e in col.events if e.name == "parallel.oom_split"]) == 1


class TestBackendFallback:
    def test_process_degrades_to_thread(self):
        rng = np.random.default_rng(5)
        x = make_random_tensor(4, 10, 60, rng)
        u = rng.random((10, 3))
        clean = parallel_s3ttmc(x, u, 2, backend="thread").unfolding
        # Every process-backend attempt crashes; thread attempts are clean.
        ctx = ExecContext(
            faults=FaultInjector(
                [
                    FaultSpec(
                        site="chunk",
                        kind="crash",
                        times=99,
                        match={"backend": "process"},
                    )
                ]
            ),
            fallback=FAST,
        )
        report = ParallelRunReport()
        with TraceCollector() as col:
            got = parallel_s3ttmc(x, u, 2, backend="process", ctx=ctx, report=report)
        assert report.fallbacks == 1
        assert report.fallback_chain == ["thread"]
        assert report.backend == "thread"
        assert np.array_equal(got.unfolding, clean)
        assert _counter(col, "parallel.fallbacks") == 1
        fallback_events = [e for e in col.events if e.name == "parallel.fallback"]
        assert len(fallback_events) == 1
        assert fallback_events[0].attrs["from_backend"] == "process"
        assert fallback_events[0].attrs["to_backend"] == "thread"

    def test_degrade_sticks_on_context_backend(self):
        """After a degrade, the context's adopted backend is the weaker one,
        so later calls (e.g. remaining decomposition iterations) skip the
        unhealthy backend entirely."""
        rng = np.random.default_rng(5)
        x = make_random_tensor(4, 10, 50, rng)
        u = rng.random((10, 3))
        ctx = ExecContext(
            execution="process",
            n_workers=2,
            faults=FaultInjector(
                [
                    FaultSpec(
                        site="chunk",
                        kind="crash",
                        times=99,
                        match={"backend": "process"},
                    )
                ]
            ),
            fallback=FAST,
        )
        try:
            parallel_s3ttmc(x, u, ctx=ctx)
            assert ctx.backend is not None
            assert ctx.backend.name == "thread"
            report = ParallelRunReport()
            parallel_s3ttmc(x, u, ctx=ctx, report=report)
            assert report.backend == "thread"
            assert report.fallbacks == 0  # no second degrade needed
        finally:
            ctx.close()


class TestDecompositionUnderFaults:
    def test_hooi_process_with_faults_matches_clean(self, rng):
        """Acceptance: a 5-iteration HOOI on the process backend with an
        injected crash, a hang, and a chunk OOM completes and matches the
        fault-free run (OOM bisection ⇒ fp-tolerance, not bitwise)."""
        x = make_random_tensor(4, 12, 50, rng)
        base = hooi(x, 3, max_iters=5, tol=0.0, seed=5)
        ctx = ExecContext(
            execution="process",
            n_workers=2,
            faults=FaultInjector(
                [
                    FaultSpec(site="chunk", kind="crash"),
                    FaultSpec(site="chunk", kind="hang", seconds=30.0, after=3),
                    FaultSpec(site="chunk", kind="oom", after=6),
                ]
            ),
            fallback=FAST,
        )
        try:
            got = hooi(x, 3, max_iters=5, tol=0.0, seed=5, ctx=ctx)
        finally:
            ctx.close()
        assert ctx.faults.n_fired == 3
        assert np.allclose(got.factor, base.factor, atol=1e-9)
        assert np.allclose(got.trace.objective, base.trace.objective, atol=1e-9)

    def test_hooi_bitwise_when_no_oom_fault(self, rng):
        x = make_random_tensor(4, 12, 50, rng)
        base = hooi(x, 3, max_iters=3, tol=0.0, seed=5)
        ctx = ExecContext(
            execution="thread",
            n_workers=2,
            faults=FaultInjector(
                [
                    FaultSpec(site="chunk", kind="crash"),
                    FaultSpec(site="chunk", kind="corrupt", after=2),
                ]
            ),
            fallback=FAST,
        )
        try:
            got = hooi(x, 3, max_iters=3, tol=0.0, seed=5, ctx=ctx)
        finally:
            ctx.close()
        clean_parallel = hooi(
            x, 3, max_iters=3, tol=0.0, seed=5, execution="thread", n_workers=2
        )
        assert ctx.faults.n_fired == 2
        # Recovery is bitwise against the same-backend clean run.
        assert np.array_equal(got.factor, clean_parallel.factor)
        assert np.allclose(got.factor, base.factor, atol=1e-9)
