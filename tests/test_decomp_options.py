"""Decomposition option-matrix tests: every flag combination behaves."""

import numpy as np
import pytest

from repro.decomp import hooi, hoqri
from repro.formats import CSSTensor
from repro.runtime.timer import PhaseTimer
from tests.conftest import make_random_tensor


@pytest.fixture(scope="module")
def tensor():
    rng = np.random.default_rng(99)
    return make_random_tensor(4, 14, 70, rng)


@pytest.mark.parametrize("kernel", ["symprop", "css"])
@pytest.mark.parametrize("svd_method", ["expand", "gram"])
@pytest.mark.parametrize("memoize", ["global", "nonzero"])
class TestHooiOptionMatrix:
    def test_trajectory_invariant(self, tensor, kernel, svd_method, memoize):
        """All option combinations compute the same mathematical iteration."""
        if kernel == "css" and svd_method == "gram":
            pytest.skip("gram path applies to the symprop kernel only")
        from repro.decomp import random_init

        u0 = random_init(tensor.dim, 3, np.random.default_rng(5))
        reference = hooi(tensor, 3, max_iters=3, init=u0.copy(), tol=0.0)
        variant = hooi(
            tensor,
            3,
            max_iters=3,
            init=u0.copy(),
            tol=0.0,
            kernel=kernel,
            svd_method=svd_method,
            memoize=memoize,
        )
        assert np.allclose(
            reference.trace.objective, variant.trace.objective, rtol=1e-8
        )


class TestSharedOptionBehaviours:
    @pytest.mark.parametrize("algo", [hooi, hoqri])
    def test_external_timer_filled(self, tensor, algo):
        timer = PhaseTimer()
        res = algo(tensor, 2, max_iters=2, tol=0.0, seed=0, timer=timer)
        assert res.timer is timer
        assert timer.total > 0

    @pytest.mark.parametrize("algo", [hooi, hoqri])
    def test_huge_tol_converges_after_two_iterations(self, tensor, algo):
        res = algo(tensor, 2, max_iters=50, tol=1e6, seed=0)
        assert res.converged
        assert res.iterations <= 2

    @pytest.mark.parametrize("algo", [hooi, hoqri])
    def test_css_input_equivalent(self, tensor, algo):
        from repro.decomp import random_init

        u0 = random_init(tensor.dim, 2, np.random.default_rng(3))
        a = algo(tensor, 2, max_iters=3, tol=0.0, init=u0.copy())
        b = algo(CSSTensor.from_ucoo(tensor), 2, max_iters=3, tol=0.0, init=u0.copy())
        assert np.allclose(a.trace.objective, b.trace.objective)

    @pytest.mark.parametrize("algo", [hooi, hoqri])
    def test_batch_size_invariant(self, tensor, algo):
        from repro.decomp import random_init

        u0 = random_init(tensor.dim, 2, np.random.default_rng(4))
        a = algo(tensor, 2, max_iters=3, tol=0.0, init=u0.copy())
        b = algo(tensor, 2, max_iters=3, tol=0.0, init=u0.copy(), nz_batch_size=9)
        assert np.allclose(a.trace.objective, b.trace.objective, rtol=1e-10)

    @pytest.mark.parametrize("algo", [hooi, hoqri])
    def test_trace_lengths_consistent(self, tensor, algo):
        res = algo(tensor, 2, max_iters=4, tol=0.0, seed=1)
        t = res.trace
        assert len(t.objective) == len(t.relative_error) == len(t.core_norm_squared)
        energy = t.energy_fraction(res.norm_x_squared)
        assert len(energy) == t.iterations
        # energy + err^2 == 1 (consistency of the two recordings)
        for e, r in zip(energy, t.relative_error):
            assert e + r * r == pytest.approx(1.0, abs=1e-6)
