"""Tests for the applications layer: applies, eigenpairs, centrality, links."""

import numpy as np
import pytest

from repro import hoqri, random_sparse_symmetric
from repro.apps import (
    auc_score,
    degree_centrality,
    holdout_split,
    link_prediction_auc,
    rayleigh_quotient,
    sshopm,
    symmetric_apply,
    z_eigenvector_centrality,
)
from repro.formats import SparseSymmetricTensor
from repro.hypergraph import Hypergraph, adjacency_tensor, planted_partition_hypergraph
from tests.conftest import make_random_tensor


class TestSymmetricApply:
    def test_matches_dense_contraction(self, rng):
        x = make_random_tensor(3, 8, 30, rng)
        v = rng.standard_normal(8)
        dense = x.to_dense()
        expected = np.einsum("ijk,j,k->i", dense, v, v)
        assert np.allclose(symmetric_apply(x, v), expected, atol=1e-10)

    def test_order4(self, rng):
        x = make_random_tensor(4, 6, 25, rng)
        v = rng.standard_normal(6)
        expected = np.einsum("ijkl,j,k,l->i", x.to_dense(), v, v, v)
        assert np.allclose(symmetric_apply(x, v), expected, atol=1e-10)

    def test_rayleigh_quotient(self, rng):
        x = make_random_tensor(3, 7, 20, rng)
        v = rng.standard_normal(7)
        expected = np.einsum("ijk,i,j,k->", x.to_dense(), v, v, v)
        assert rayleigh_quotient(x, v) == pytest.approx(expected, rel=1e-10)

    def test_length_validation(self, rng):
        x = make_random_tensor(3, 7, 20, rng)
        with pytest.raises(ValueError):
            symmetric_apply(x, np.ones(5))

    def test_matrix_case_is_matvec(self, rng):
        x = make_random_tensor(2, 9, 20, rng)
        v = rng.standard_normal(9)
        assert np.allclose(symmetric_apply(x, v), x.to_dense() @ v, atol=1e-12)


class TestSSHOPM:
    def test_matrix_eigenpair(self, rng):
        """Order-2 SS-HOPM finds a matrix eigenpair."""
        x = make_random_tensor(2, 8, 25, rng)
        pair = sshopm(x, seed=0, max_iters=2000, tol=1e-13)
        assert pair.residual(x) < 1e-6
        dense_eigs = np.linalg.eigvalsh(x.to_dense())
        assert min(abs(pair.eigenvalue - e) for e in dense_eigs) < 1e-6

    def test_order3_eigenpair_residual(self, rng):
        x = make_random_tensor(3, 6, 20, rng)
        pair = sshopm(x, seed=1, max_iters=3000, tol=1e-13)
        assert np.linalg.norm(pair.eigenvector) == pytest.approx(1.0, abs=1e-10)
        if pair.converged:
            assert pair.residual(x) < 1e-5

    def test_diagonal_tensor_known_eigenvalue(self):
        """X with X(i,i,i)=d_i has Z-eigenpairs (d_i, e_i)."""
        idx = np.array([[i, i, i] for i in range(5)])
        d = np.array([5.0, 1.0, 1.0, 0.5, 0.2])
        x = SparseSymmetricTensor(3, 5, idx, d)
        e0 = np.zeros(5)
        e0[0] = 1.0
        pair = sshopm(x, x0=e0, max_iters=50)
        assert pair.eigenvalue == pytest.approx(5.0, abs=1e-8)
        assert abs(pair.eigenvector[0]) == pytest.approx(1.0, abs=1e-8)

    def test_rejects_zero_start(self, rng):
        x = make_random_tensor(3, 5, 10, rng)
        with pytest.raises(ValueError):
            sshopm(x, x0=np.zeros(5))

    def test_concave_mode_runs(self, rng):
        x = make_random_tensor(3, 6, 15, rng)
        pair = sshopm(x, seed=2, concave=True, max_iters=500)
        assert np.isfinite(pair.eigenvalue)


class TestCentrality:
    def test_star_hypergraph_center_most_central(self):
        """A hub node in every hyperedge dominates centrality."""
        edges = [(0, i, i + 1) for i in range(1, 8, 2)]
        hg = Hypergraph(9, edges)
        tensor = adjacency_tensor(hg, 3)
        c = z_eigenvector_centrality(tensor, n_real_nodes=9)
        assert c[0] == max(c)
        assert c.sum() == pytest.approx(1.0)

    def test_symmetric_nodes_equal_scores(self):
        hg = Hypergraph(4, [(0, 1, 2), (0, 1, 3)])
        tensor = adjacency_tensor(hg, 3)
        c = z_eigenvector_centrality(tensor, n_real_nodes=4)
        assert c[0] == pytest.approx(c[1], abs=1e-8)
        assert c[2] == pytest.approx(c[3], abs=1e-8)

    def test_rejects_negative_tensor(self):
        x = SparseSymmetricTensor(3, 4, np.array([[0, 1, 2]]), np.array([-1.0]))
        with pytest.raises(ValueError):
            z_eigenvector_centrality(x)

    def test_degree_centrality(self):
        hg = Hypergraph(3, [(0, 1), (0, 2)])
        c = degree_centrality(hg)
        assert c[0] == pytest.approx(0.5)
        assert c.sum() == pytest.approx(1.0)


class TestLinkPrediction:
    def test_auc_perfect_separation(self):
        assert auc_score(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0
        assert auc_score(np.array([0.0]), np.array([5.0])) == 0.0

    def test_auc_ties_half(self):
        assert auc_score(np.ones(4), np.ones(4)) == pytest.approx(0.5)

    def test_holdout_split_partitions(self):
        x = random_sparse_symmetric(3, 20, 100, seed=0)
        train, held_idx, held_vals = holdout_split(x, 0.25, seed=1)
        assert train.unnz + held_idx.shape[0] == 100
        assert held_idx.shape[0] == 25

    def test_holdout_fraction_validation(self):
        x = random_sparse_symmetric(3, 10, 20, seed=0)
        with pytest.raises(ValueError):
            holdout_split(x, 1.5)

    def test_end_to_end_beats_chance(self):
        """Community-structured hypergraph: held-out edges score above
        random non-edges."""
        hg, _ = planted_partition_hypergraph(
            50, 600, 3, min_cardinality=3, max_cardinality=3, p_intra=0.95, seed=3
        )
        tensor = adjacency_tensor(hg, 3)
        train, held_idx, _ = holdout_split(tensor, 0.2, seed=3)
        result = hoqri(train, 3, max_iters=40, seed=3)
        auc = link_prediction_auc(result, held_idx, tensor, seed=3)
        assert auc > 0.6, auc
