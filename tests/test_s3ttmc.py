"""Correctness tests for the SymProp S³TTMc kernel against dense references."""

import numpy as np
import pytest

from repro.baselines.dense_ref import dense_s3ttmc_matrix
from repro.core import KernelStats, build_plan, s3ttmc
from repro.formats import CSSTensor, SparseSymmetricTensor
from tests.conftest import make_random_tensor


class TestAgainstDense:
    @pytest.mark.parametrize(
        "order,dim,rank,n",
        [(2, 5, 3, 10), (3, 6, 4, 25), (4, 5, 3, 20), (5, 6, 2, 30), (6, 4, 2, 12)],
    )
    def test_matches_dense(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng)
        u = rng.random((dim, rank))
        ref = dense_s3ttmc_matrix(x, u)
        y = s3ttmc(x, u)
        assert np.allclose(y.to_full_unfolding(), ref, atol=1e-10)

    @pytest.mark.parametrize("memoize", ["global", "nonzero"])
    def test_memoize_scopes_agree(self, memoize, rng):
        x = make_random_tensor(4, 6, 25, rng)
        u = rng.random((6, 3))
        ref = dense_s3ttmc_matrix(x, u)
        y = s3ttmc(x, u, memoize=memoize)
        assert np.allclose(y.to_full_unfolding(), ref, atol=1e-10)

    def test_css_input(self, small_tensor, rng):
        u = rng.random((small_tensor.dim, 3))
        css = CSSTensor.from_ucoo(small_tensor)
        a = s3ttmc(css, u).unfolding
        b = s3ttmc(small_tensor, u).unfolding
        assert np.allclose(a, b)

    def test_batching_invariance(self, rng):
        x = make_random_tensor(4, 8, 40, rng)
        u = rng.random((8, 3))
        full = s3ttmc(x, u).unfolding
        for batch in (1, 7, 16, 1000):
            assert np.allclose(s3ttmc(x, u, nz_batch_size=batch).unfolding, full)

    def test_block_bytes_invariance(self, rng):
        x = make_random_tensor(5, 6, 30, rng)
        u = rng.random((6, 3))
        full = s3ttmc(x, u).unfolding
        tiny = s3ttmc(x, u, block_bytes=4096).unfolding
        assert np.allclose(tiny, full)

    def test_plan_reuse(self, rng):
        x = make_random_tensor(4, 6, 20, rng)
        u1 = rng.random((6, 3))
        u2 = rng.random((6, 3))
        plan = build_plan(x.indices)
        y1 = s3ttmc(x, u1, plan=plan).to_full_unfolding()
        y2 = s3ttmc(x, u2, plan=plan).to_full_unfolding()
        assert np.allclose(y1, dense_s3ttmc_matrix(x, u1), atol=1e-10)
        assert np.allclose(y2, dense_s3ttmc_matrix(x, u2), atol=1e-10)

    def test_plan_cached_on_tensor(self, rng):
        from repro.core.plan import get_plan

        x = make_random_tensor(3, 5, 10, rng)
        p1 = get_plan(x)
        p2 = get_plan(x)
        assert p1 is p2


class TestEdgeCases:
    def test_empty_tensor(self, rng):
        x = SparseSymmetricTensor(3, 5, np.zeros((0, 3), dtype=int), np.zeros(0))
        y = s3ttmc(x, rng.random((5, 2)))
        assert np.allclose(y.unfolding, 0.0)

    def test_single_nonzero(self, rng):
        x = SparseSymmetricTensor(3, 5, np.array([[0, 2, 4]]), np.array([2.0]))
        u = rng.random((5, 2))
        ref = dense_s3ttmc_matrix(x, u)
        assert np.allclose(s3ttmc(x, u).to_full_unfolding(), ref, atol=1e-12)

    def test_rank_one(self, rng):
        x = make_random_tensor(4, 5, 15, rng)
        u = rng.random((5, 1))
        ref = dense_s3ttmc_matrix(x, u)
        assert np.allclose(s3ttmc(x, u).to_full_unfolding(), ref, atol=1e-10)

    def test_diagonal_only_tensor(self, rng):
        """All-repeated indices (hypergraph self-loops)."""
        idx = np.array([[i, i, i] for i in range(5)])
        x = SparseSymmetricTensor(3, 5, idx, rng.random(5))
        u = rng.random((5, 3))
        ref = dense_s3ttmc_matrix(x, u)
        assert np.allclose(s3ttmc(x, u).to_full_unfolding(), ref, atol=1e-10)

    def test_factor_shape_validation(self, small_tensor, rng):
        with pytest.raises(ValueError):
            s3ttmc(small_tensor, rng.random((small_tensor.dim + 1, 3)))

    def test_order_one_rejected(self, rng):
        x = SparseSymmetricTensor(1, 5, np.array([[2]]), np.array([1.0]))
        with pytest.raises(ValueError):
            s3ttmc(x, rng.random((5, 2)))

    def test_wrong_input_type(self, rng):
        with pytest.raises(TypeError):
            s3ttmc(np.zeros((3, 3)), rng.random((3, 2)))


class TestStats:
    def test_stats_filled(self, rng):
        x = make_random_tensor(4, 6, 20, rng)
        u = rng.random((6, 3))
        stats = KernelStats()
        s3ttmc(x, u, stats=stats)
        assert stats.kernel_flops > 0
        assert set(stats.level_flops) == {2, 3}
        assert stats.scatter_flops > 0
        assert stats.output_bytes == 6 * 10 * 8  # I x S_{3,3}

    def test_stats_merge(self):
        a, b = KernelStats(), KernelStats()
        a.add_level(2, 10, 20, 6)
        b.add_level(2, 5, 8, 6)
        b.add_scatter(4, 6)
        a.merge(b)
        assert a.level_nodes[2] == 15
        assert a.level_edges[2] == 28
        assert a.scatter_flops == 48
