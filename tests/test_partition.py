"""Degenerate-input regressions for the non-zero partitioner.

``balanced_partition`` / ``assign_chunks`` feed both the chunked executor
and the sharder, so a malformed range (overlap, gap, reversed bounds) or
a lopsided assignment on pathological inputs would corrupt every layer
above. These cases pin the degenerate inputs: more parts than non-zeros,
all-zero costs, empty tensors.
"""

import numpy as np
import pytest

from repro.parallel.partition import (
    assign_chunks,
    balanced_partition,
    block_partition,
    estimate_nonzero_costs,
)


def _assert_well_formed(ranges, n, n_parts):
    """Ranges must be exactly ``n_parts`` contiguous slices covering [0, n)."""
    assert len(ranges) == n_parts
    assert ranges[0][0] == 0
    assert ranges[-1][1] == n
    for (a, b), (c, _d) in zip(ranges, ranges[1:]):
        assert a <= b == c
    assert all(a <= b for a, b in ranges)


class TestBalancedPartitionDegenerate:
    def test_more_parts_than_costs_gives_singletons(self):
        ranges = balanced_partition(np.array([3.0, 1.0, 2.0]), 5)
        _assert_well_formed(ranges, 3, 5)
        # Every non-zero gets its own part; only the tail is empty.
        assert ranges[:3] == [(0, 1), (1, 2), (2, 3)]
        assert ranges[3:] == [(3, 3), (3, 3)]

    def test_parts_equal_costs_is_all_singletons(self):
        ranges = balanced_partition(np.array([1.0, 1.0, 1.0, 1.0]), 4)
        assert ranges == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_single_cost_many_parts(self):
        ranges = balanced_partition(np.array([7.0]), 3)
        assert ranges == [(0, 1), (1, 1), (1, 1)]

    def test_all_zero_costs_fall_back_to_block_partition(self):
        # Zero costs carry no balance signal; the quantile search used to
        # put every non-zero into the last part.
        costs = np.zeros(10)
        ranges = balanced_partition(costs, 4)
        assert ranges == block_partition(10, 4)
        _assert_well_formed(ranges, 10, 4)
        widths = [b - a for a, b in ranges]
        assert max(widths) - min(widths) <= 1

    def test_empty_costs_yield_empty_ranges(self):
        ranges = balanced_partition(np.zeros(0), 3)
        assert ranges == [(0, 0)] * 3

    def test_nonfinite_total_falls_back_to_block_partition(self):
        costs = np.array([1.0, np.inf, 1.0, 1.0])
        ranges = balanced_partition(costs, 2)
        assert ranges == block_partition(4, 2)

    @pytest.mark.parametrize("n,n_parts", [(1, 1), (2, 7), (13, 4), (64, 64)])
    def test_always_well_formed(self, n, n_parts, rng):
        ranges = balanced_partition(rng.uniform(0.0, 5.0, size=n), n_parts)
        _assert_well_formed(ranges, n, n_parts)

    def test_invalid_n_parts(self):
        with pytest.raises(ValueError):
            balanced_partition(np.array([1.0]), 0)


class TestAssignChunksDegenerate:
    def test_all_zero_sizes_spread_round_robin(self):
        # Equal (zero) loads used to pile every chunk onto worker 0; the
        # count tie-break must spread them.
        assignment = assign_chunks(np.zeros(6), 3)
        assert [len(chunks) for chunks in assignment] == [2, 2, 2]
        assert sorted(c for chunks in assignment for c in chunks) == list(range(6))

    def test_all_equal_sizes_spread_evenly(self):
        assignment = assign_chunks(np.ones(8), 4)
        assert [len(chunks) for chunks in assignment] == [2, 2, 2, 2]

    def test_empty_sizes(self):
        assert assign_chunks(np.zeros(0), 3) == [[], [], []]

    def test_more_workers_than_chunks(self):
        assignment = assign_chunks(np.array([2.0, 1.0]), 5)
        lengths = sorted(len(chunks) for chunks in assignment)
        assert lengths == [0, 0, 0, 1, 1]

    def test_lpt_balances_uneven_sizes(self):
        assignment = assign_chunks(np.array([4.0, 3.0, 2.0, 1.0]), 2)
        loads = [sum((4.0, 3.0, 2.0, 1.0)[c] for c in chunks) for chunks in assignment]
        assert sorted(loads) == [5.0, 5.0]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            assign_chunks(np.ones(3), 0)


class TestEstimateCosts:
    def test_empty_indices(self):
        costs = estimate_nonzero_costs(np.zeros((0, 3), dtype=np.int64), 4)
        assert costs.shape == (0,)

    def test_monotone_in_rank(self, rng):
        # Closed-form: a wider factor strictly increases every non-zero's
        # level work, so the whole cost vector must dominate elementwise.
        indices = np.sort(rng.integers(0, 12, size=(30, 4)), axis=1)
        low = estimate_nonzero_costs(indices, 2)
        high = estimate_nonzero_costs(indices, 6)
        assert np.all(high > low)

    def test_distinct_indices_cost_more(self):
        # A non-zero with all-distinct values spawns more sub-multisets
        # than a fully repeated one — the balance signal the sharder uses.
        indices = np.array([[0, 0, 0, 0], [1, 2, 3, 4]])
        costs = estimate_nonzero_costs(indices, 3)
        assert costs[1] > costs[0]
