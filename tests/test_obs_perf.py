"""Tests for the performance-attribution layer.

Covers the sampling profiler (deterministic folded output under a fake
clock and fabricated stacks, lifecycle, ``REPRO_PROFILE`` parsing,
ExecContext ownership), the Chrome Trace exporter (schema, process-worker
track synthesis), the predicted-vs-measured attribution math against
hand-computed ``kernel_flops_model`` values, the noise-aware regression
comparator (v1 + v2 schemas), ``Gauge.add`` wiring into the budget, the
``ParallelRunReport`` worker rollups, and the multi-worker
process-backend trace round-trip.
"""

import json
import warnings

import pytest

from repro.obs import (
    TraceCollector,
    chrome_trace,
    read_trace,
    render_summary,
    snapshot_open_stacks,
    summarize,
    write_trace,
)
from repro.obs.attrib import attribute, render_attribution
from repro.obs.export import TraceRecords
from repro.obs.profile import (
    DEFAULT_INTERVAL,
    SamplingProfiler,
    profiler_from_env,
)
from repro.obs.regress import (
    BaselineRun,
    PhaseStats,
    compare_runs,
    has_regressions,
    load_baseline,
    phase_stats,
    render_findings,
)
from repro.obs.trace import span
from tests.conftest import make_random_tensor


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestSamplingProfiler:
    def test_folded_deterministic_under_fake_stacks(self):
        script = [
            {"main": ["a", "b"], "w1": ["a", "c"]},
            {"main": ["a", "b"]},
            {"w1": ["a", "c"], "main": ["a", "b"]},
            {},
        ]
        expected = "main;a;b 3\nw1;a;c 2"
        for order in (script, list(reversed(script))):
            feed = iter(order)
            prof = SamplingProfiler(0.001, clock=FakeClock(), stacks=lambda: next(feed))
            for _ in order:
                prof.sample_once()
            assert prof.folded() == expected
            assert prof.n_samples == 4
            assert prof.idle_samples == 1

    def test_seconds_for_uses_wall_clock_share(self):
        clock = FakeClock(10.0)
        feed = iter([{"main": ["x"]}, {"main": ["x"]}, {"main": ["y"]}, {}])
        prof = SamplingProfiler(0.001, clock=clock, stacks=lambda: next(feed))
        prof.started_at = clock()
        for _ in range(4):
            prof.sample_once()
        clock.t = 14.0
        prof.stopped_at = clock()
        assert prof.wall_seconds == pytest.approx(4.0)
        assert prof.seconds_for(("main", "x")) == pytest.approx(2.0)
        assert prof.seconds_for(("main", "y")) == pytest.approx(1.0)
        assert prof.seconds_for(("main", "zzz")) == 0.0

    def test_start_stop_idempotent_and_flushes(self, tmp_path):
        out = tmp_path / "prof.folded"
        prof = SamplingProfiler(0.001, path=out)
        prof.samples[("main", "work")] = 3  # pre-seeded; thread may add more
        prof.start()
        prof.start()  # no second thread
        assert prof.running
        prof.stop()
        prof.stop()  # no double flush/join
        assert not prof.running
        lines = out.read_text().splitlines()
        assert "main;work 3" in lines

    def test_write_appends_and_sums_across_runs(self, tmp_path):
        out = tmp_path / "prof.folded"
        prof = SamplingProfiler(0.001)
        prof.samples[("t", "s")] = 1
        prof.write(out)
        prof.write(out)
        assert out.read_text() == "t;s 1\nt;s 1\n"

    def test_unwritable_path_warns_not_raises(self, tmp_path):
        prof = SamplingProfiler(0.001, path=tmp_path / "no" / "dir" / "p")
        prof.start()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prof.stop()
        assert any("could not write profile" in str(w.message) for w in caught)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(0.0)

    def test_env_parsing(self, tmp_path):
        assert profiler_from_env({}) is None
        p = profiler_from_env({"REPRO_PROFILE": str(tmp_path / "out")})
        assert p is not None and p.interval == DEFAULT_INTERVAL
        p = profiler_from_env({"REPRO_PROFILE": f"{tmp_path / 'out'}:2"})
        assert p.interval == pytest.approx(0.002)
        assert p.path == tmp_path / "out"
        # A path containing ':' but no numeric tail keeps the whole spec.
        p = profiler_from_env({"REPRO_PROFILE": "C:/tmp/out"})
        assert str(p.path) == "C:/tmp/out"
        assert p.interval == DEFAULT_INTERVAL

    def test_samples_attribute_to_open_spans(self):
        with TraceCollector():
            with span("outer"):
                with span("inner"):
                    stacks = snapshot_open_stacks()
                    prof = SamplingProfiler(0.001, stacks=snapshot_open_stacks)
                    prof.sample_once()
        (key,) = prof.samples
        assert key[-2:] == ("outer", "inner")
        assert any(names == ["outer", "inner"] for names in stacks.values())

    def test_execcontext_owns_profiler_lifecycle(self):
        from repro.runtime.context import ExecContext

        prof = SamplingProfiler(0.5)
        with ExecContext(profiler=prof) as ctx:
            assert prof.running
            child = ctx.derive()
            assert child.profiler is None  # children must not stop it
            child.close()
            assert prof.running
        assert not prof.running

    def test_harness_env_hook(self, tmp_path, rng, monkeypatch):
        from repro.bench.harness import timed_measurement
        from repro.core.s3ttmc import s3ttmc

        out = tmp_path / "bench.folded"
        monkeypatch.setenv("REPRO_PROFILE", f"{out}:1")
        x = make_random_tensor(3, 10, 40, rng)
        u = rng.random((10, 3))
        m = timed_measurement(lambda: s3ttmc(x, u), repeats=1)
        assert m.ok
        assert out.exists()  # may be empty (fast run), but flushed


class TestChromeExport:
    def _schema_check(self, doc):
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        for e in doc["traceEvents"]:
            assert e["ph"] in ("X", "i", "M")
            assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0
            if e["ph"] == "i":
                assert e["ts"] >= 0 and e["s"] == "t"

    def test_spans_and_events_export(self, rng):
        from repro.core.s3ttmc import s3ttmc

        x = make_random_tensor(3, 10, 40, rng)
        u = rng.random((10, 3))
        with TraceCollector() as col:
            s3ttmc(x, u)
        doc = chrome_trace(col)
        self._schema_check(doc)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "lattice_ttmc" in names

    def test_process_chunk_done_synthesizes_worker_tracks(self):
        records = TraceRecords(
            spans=[
                {
                    "name": "parallel.s3ttmc",
                    "id": 1,
                    "parent": None,
                    "start": 100.0,
                    "end": 101.0,
                    "seconds": 1.0,
                    "thread": "MainThread",
                    "attrs": {"backend": "process", "n_workers": 2},
                }
            ],
            events=[
                {
                    "name": "parallel.chunk.done",
                    "ts": 100.6,
                    "parent": 1,
                    "thread": "MainThread",
                    "attrs": {"chunk": 0, "worker": 1, "numeric_seconds": 0.5},
                }
            ],
        )
        doc = chrome_trace(records)
        self._schema_check(doc)
        synth = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "parallel.chunk[0]"
        ]
        assert len(synth) == 1
        assert synth[0]["dur"] == pytest.approx(0.5e6)
        # end at event ts (rebased 0.6s), so start = 0.1s after base
        assert synth[0]["ts"] == pytest.approx(0.1e6)
        tracks = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "worker 1 (proc)" in tracks

    def test_cli_export_chrome(self, tmp_path, rng, capsys):
        from repro.core.s3ttmc import s3ttmc
        from repro.obs.__main__ import main as obs_main

        x = make_random_tensor(3, 10, 40, rng)
        u = rng.random((10, 3))
        with TraceCollector() as col:
            s3ttmc(x, u)
        trace = tmp_path / "t.jsonl"
        write_trace(col, trace)
        assert obs_main(["export-chrome", str(trace)]) == 0
        out = tmp_path / "t.jsonl.chrome.json"
        assert out.exists()
        self._schema_check(json.loads(out.read_text()))


def _fabricated_kernel_trace(seconds=1.0, order=3, rank=4, unnz=50):
    """One serial lattice_ttmc call with two levels and a scatter.

    The structural attrs are chosen so the summed structural flops are
    easy to hand-check; ``seconds`` sets the kernel span duration that
    calibrates the family rate.
    """
    level2 = {"level": 2, "nodes": 3, "edges": 10, "entry_size": 16}
    level3 = {"level": 3, "nodes": 4, "edges": 12, "entry_size": 64}
    scatter = {"edges": 5, "entry_size": 64}
    spans = [
        {
            "name": "lattice_ttmc",
            "id": 1,
            "parent": None,
            "seconds": seconds,
            "thread": "MainThread",
            "attrs": {
                "intermediate": "compact",
                "order": order,
                "rank": rank,
                "unnz": unnz,
                "dim": 20,
            },
        },
        {
            "name": "lattice.level",
            "id": 2,
            "parent": 1,
            "seconds": 0.3,
            "thread": "MainThread",
            "attrs": level2,
        },
        {
            "name": "lattice.level",
            "id": 3,
            "parent": 1,
            "seconds": 0.5,
            "thread": "MainThread",
            "attrs": level3,
        },
        {
            "name": "lattice.scatter",
            "id": 4,
            "parent": 1,
            "seconds": 0.2,
            "thread": "MainThread",
            "attrs": scatter,
        },
    ]
    flops = {
        "2": (2 * 10 - 3) * 16.0,
        "3": (2 * 12 - 4) * 64.0,
        "scatter": 2 * 5 * 64.0,
    }
    return TraceRecords(spans=spans), flops


class TestAttribution:
    def test_structural_flops_and_rate_math(self):
        records, flops = _fabricated_kernel_trace(seconds=1.0)
        report = attribute(records)
        total = sum(flops.values())
        # The single kernel call calibrates symprop at exactly total/1s.
        assert report.rates["symprop"] == pytest.approx(total)
        rows = {r.level: r for r in report.levels}
        assert set(rows) == {"2", "3", "scatter"}
        for level, row in rows.items():
            assert row.layout == "compact"
            assert row.backend == "serial"
            assert row.flops == pytest.approx(flops[level])
            # rate-predicted: measured structural flops / calibrated rate
            assert row.predicted_seconds == pytest.approx(flops[level] / total)
        assert rows["2"].rate == pytest.approx(flops["2"] / 0.3)
        assert rows["3"].deviation == pytest.approx(
            0.5 / (flops["3"] / total) - 1.0
        )
        assert report.total_seconds == pytest.approx(1.0)
        assert report.level_share(rows["3"]) == pytest.approx(0.5)

    def test_kernel_row_uses_closed_form_model(self):
        from repro.perfmodel.predict import kernel_flops_model

        records, flops = _fabricated_kernel_trace(
            seconds=1.0, order=3, rank=4, unnz=50
        )
        report = attribute(records)
        (krow,) = report.kernels
        assert krow.family == "symprop"
        assert (krow.order, krow.rank, krow.unnz) == (3, 4, 50)
        assert krow.calls == 1
        assert krow.seconds == pytest.approx(1.0)
        rate = sum(flops.values())  # calibrated above
        expected = kernel_flops_model("symprop", 3, 4, 50, dim=400) / rate
        assert krow.predicted_seconds == pytest.approx(expected)

    def test_kernel_modes_split_into_families(self):
        # Same workload traced under both engine modes: the compiled
        # call must land in its own calibration family and its own
        # per-level rows, never averaged into the generic ones.
        generic, flops = _fabricated_kernel_trace(seconds=1.0)
        compiled, _ = _fabricated_kernel_trace(seconds=0.5)
        spans = list(generic.spans)
        offset = max(s["id"] for s in spans)
        for s in compiled.spans:
            s = dict(s, id=s["id"] + offset, attrs=dict(s["attrs"]))
            if s["parent"] is not None:
                s["parent"] += offset
            else:
                s["attrs"]["kernel"] = "compiled"
            spans.append(s)
        report = attribute(TraceRecords(spans=spans))
        total = sum(flops.values())
        assert report.rates["symprop"] == pytest.approx(total)
        assert report.rates["symprop+compiled"] == pytest.approx(total / 0.5)
        families = {k.family: k for k in report.kernels}
        assert set(families) == {"symprop", "symprop+compiled"}
        assert families["symprop+compiled"].seconds == pytest.approx(0.5)
        # closed-form prediction works for the suffixed family too
        assert families["symprop+compiled"].predicted_seconds is not None
        by_mode = {(r.level, r.kernel) for r in report.levels}
        assert ("2", "generic") in by_mode and ("2", "compiled") in by_mode
        compiled_row = next(
            r for r in report.levels if r.level == "2" and r.kernel == "compiled"
        )
        assert "compact+compiled" in compiled_row.label

    def test_kernel_modes_live_trace(self, rng):
        # End to end on real kernels: both modes traced in one run show
        # up as distinct attribution rows.
        from repro.core import s3ttmc
        from repro.runtime.context import ExecContext

        tensor = make_random_tensor(3, 10, 30, rng)
        factor = rng.standard_normal((10, 4))
        with TraceCollector() as col:
            ctx = ExecContext(collector=col)
            s3ttmc(tensor, factor, ctx=ctx)
            s3ttmc(tensor, factor, kernel="compiled", ctx=ctx)
        report = attribute(col)
        assert {k.family for k in report.kernels} == {
            "symprop",
            "symprop+compiled",
        }
        text = render_attribution(report)
        assert "symprop+compiled" in text

    def test_worker_rollups_spans_and_events(self):
        spans = [
            {
                "name": "parallel.s3ttmc",
                "id": 1,
                "parent": None,
                "seconds": 2.0,
                "thread": "MainThread",
                "attrs": {"backend": "thread", "n_workers": 2},
            },
            {
                "name": "parallel.chunk",
                "id": 2,
                "parent": 1,
                "seconds": 1.5,
                "thread": "t0",
                "attrs": {"worker": "t0", "chunk": 0},
            },
            {
                "name": "parallel.chunk",
                "id": 3,
                "parent": 1,
                "seconds": 0.5,
                "thread": "t1",
                "attrs": {"worker": "t1", "chunk": 1},
            },
            {
                "name": "parallel.s3ttmc",
                "id": 4,
                "parent": None,
                "seconds": 3.0,
                "thread": "MainThread",
                "attrs": {"backend": "process", "n_workers": 2},
            },
        ]
        events = [
            {
                "name": "parallel.chunk.done",
                "parent": 4,
                "thread": "MainThread",
                "attrs": {"chunk": 0, "worker": 0, "numeric_seconds": 2.0},
            },
            {
                "name": "parallel.chunk.done",
                "parent": 4,
                "thread": "MainThread",
                "attrs": {"chunk": 1, "worker": 1, "numeric_seconds": 1.0},
            },
        ]
        report = attribute(TraceRecords(spans=spans, events=events))
        rollups = {r.backend: r for r in report.parallel}
        thread = rollups["thread"]
        assert thread.busy == {"t0": 1.5, "t1": 0.5}
        assert thread.critical_path_seconds == pytest.approx(1.5)
        assert thread.utilization == pytest.approx(2.0 / (2 * 2.0))
        proc = rollups["process"]
        assert proc.busy == {"w0": 2.0, "w1": 1.0}
        assert proc.critical_path_seconds == pytest.approx(2.0)
        assert proc.utilization == pytest.approx(3.0 / (2 * 3.0))

    def test_render_and_empty_trace(self):
        records, _ = _fabricated_kernel_trace()
        text = render_attribution(attribute(records), title="t")
        assert "per-level predicted vs measured" in text
        assert "kernel calls" in text
        assert "calibrated rates" in text
        empty = render_attribution(attribute(TraceRecords()))
        assert "no lattice or parallel spans" in empty

    def test_cli_report_on_real_parallel_hooi(self, tmp_path, rng, capsys):
        from repro.decomp.hooi import hooi
        from repro.obs.__main__ import main as obs_main
        from repro.runtime.budget import MemoryBudget
        from repro.runtime.context import ExecContext

        tensor = make_random_tensor(4, 16, 120, rng)
        with ExecContext(
            budget=MemoryBudget(),
            collector=TraceCollector(),
            execution="thread",
            n_workers=2,
        ) as ctx:
            hooi(tensor, rank=3, max_iters=2, ctx=ctx, seed=0)
            trace = tmp_path / "hooi.jsonl"
            write_trace(ctx.collector, trace)
        assert obs_main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-level predicted vs measured" in out
        assert "parallel runs" in out
        assert "critical path" in out
        assert "util %" in out


class TestRegress:
    def test_phase_stats_median_mad(self):
        s = phase_stats([1.0, 2.0, 100.0])
        assert s.median == 2.0
        assert s.mad == 1.0  # |1-2|, |2-2|, |100-2| -> median 1
        assert s.repeats == 3
        assert s.relative_dispersion == pytest.approx(0.5)
        with pytest.raises(ValueError):
            phase_stats([])

    def test_load_v2_prefers_samples(self, tmp_path):
        payload = {
            "schema": 2,
            "workload": {"order": 3, "dim": 60, "unnz": 300, "rank": 6, "tiny": True},
            "phases": {
                "a": {"median": 9.0, "mad": 9.0, "samples": [1.0, 2.0, 3.0]},
                "b": {"median": 5.0, "mad": 0.5, "repeats": 4},
            },
        }
        p = tmp_path / "b.json"
        p.write_text(json.dumps(payload))
        run = load_baseline(p)
        assert run.schema == 2
        assert run.phases["a"].median == 2.0  # recomputed, not trusted
        assert run.phases["b"] == PhaseStats(median=5.0, mad=0.5, repeats=4)

    def test_load_v1_legacy_schema(self):
        run = load_baseline(
            {
                "workload": {"order": 4, "dim": 300, "unnz": 5000, "rank": 8},
                "plain_kernel_seconds": 0.5,
                "backends": {
                    "serial": {
                        "cold_seconds": 1.0,
                        "warm_seconds": 0.4,
                        "plan_build_seconds": 0.1,
                    }
                },
            }
        )
        assert run.schema == 1
        assert run.phases["plain_kernel"].median == 0.5
        assert run.phases["serial.warm"] == PhaseStats(median=0.4)
        assert run.phases["serial.cold"].mad == 0.0

    def test_allowance_scales_with_noise(self):
        base = BaselineRun(phases={"p": PhaseStats(median=1.0, mad=0.1, repeats=5)})
        fresh = BaselineRun(phases={"p": PhaseStats(median=1.3, mad=0.0, repeats=5)})
        # rel dispersion 0.1 -> allowed = max(0.25, 4*0.1) = 0.4 > 0.3
        findings = compare_runs(base, fresh)
        assert findings[0].status == "ok"
        assert findings[0].allowed == pytest.approx(0.4)
        # Quiet phase: allowance collapses to the threshold floor.
        quiet = BaselineRun(phases={"p": PhaseStats(median=1.0)})
        findings = compare_runs(quiet, fresh)
        assert findings[0].status == "regressed"
        assert has_regressions(findings)

    def test_improved_added_removed_noise(self):
        base = BaselineRun(
            phases={
                "gone": PhaseStats(median=1.0),
                "fast": PhaseStats(median=1.0),
                "tiny": PhaseStats(median=5e-5),
            }
        )
        fresh = BaselineRun(
            phases={
                "fast": PhaseStats(median=0.5),
                "tiny": PhaseStats(median=9e-5),
                "new": PhaseStats(median=1.0),
            }
        )
        status = {f.phase: f.status for f in compare_runs(base, fresh)}
        assert status == {
            "gone": "removed",
            "fast": "improved",
            "tiny": "noise",
            "new": "added",
        }
        assert not has_regressions(compare_runs(base, fresh))

    def test_render_findings_verdict_line(self):
        base = BaselineRun(phases={"p": PhaseStats(median=1.0)})
        fresh = BaselineRun(phases={"p": PhaseStats(median=2.0)})
        text = render_findings(compare_runs(base, fresh))
        assert "REGRESSED: p" in text
        ok = render_findings(compare_runs(base, base))
        assert "no regressions" in ok

    def test_workload_compatibility(self):
        a = BaselineRun(workload={"order": 3, "dim": 60, "unnz": 300, "rank": 6})
        b = BaselineRun(workload={"order": 4, "dim": 60, "unnz": 300, "rank": 6})
        assert a.compatible_with(a)
        assert not a.compatible_with(b)

    def test_current_committed_baseline_loads(self):
        from pathlib import Path

        committed = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
        run = load_baseline(committed)
        assert run.schema == 2
        assert "plain_kernel" in run.phases
        assert all(p.median > 0 for p in run.phases.values())


class TestGaugeAddAndBudgetWiring:
    def test_gauge_add_tracks_value_and_max(self):
        from repro.obs import MetricsRegistry

        g = MetricsRegistry().gauge("g")
        g.add(5)
        g.add(3)
        g.add(-6)
        assert g.value == 2
        assert g.max == 8

    def test_budget_in_use_gauge_deltas(self):
        from repro.runtime.budget import MemoryBudget

        budget = MemoryBudget()
        with TraceCollector() as col:
            budget.request(100, "a")
            budget.request(50, "b")
            budget.release(100, "a")
        g = col.metrics.gauge("budget.in_use_bytes")
        assert g.value == 50
        assert g.max == 150


class TestWorkerBusyReport:
    def test_thread_backend_fills_worker_busy(self, rng):
        from repro.parallel import ParallelRunReport, parallel_s3ttmc

        x = make_random_tensor(3, 14, 90, rng)
        u = rng.random((14, 4))
        report = ParallelRunReport()
        parallel_s3ttmc(x, u, n_workers=2, backend="thread", report=report)
        assert report.worker_busy
        assert report.busy_seconds() == pytest.approx(sum(report.chunk_seconds))
        assert report.critical_path_seconds() == pytest.approx(
            max(report.worker_busy.values())
        )
        assert 0.0 <= report.utilization() <= 1.0 + 1e-9

    def test_rollup_methods_on_fabricated_report(self):
        from repro.parallel import ParallelRunReport

        r = ParallelRunReport(
            n_workers=2,
            chunk_seconds=[0.7, 0.5],
            elapsed=1.0,
            worker_busy={"a": 0.7, "b": 0.5},
        )
        assert r.busy_seconds() == pytest.approx(1.2)
        assert r.critical_path_seconds() == pytest.approx(0.7)
        assert r.utilization() == pytest.approx(0.6)
        # Fallback when no worker identities were recorded (old callers).
        bare = ParallelRunReport(chunk_seconds=[0.3, 0.4])
        assert bare.busy_seconds() == pytest.approx(0.7)
        assert bare.critical_path_seconds() == pytest.approx(0.4)
        assert bare.utilization() == 0.0


class TestProcessTraceRoundTrip:
    def test_multi_worker_process_trace_summarize_and_report(self, tmp_path, rng):
        from repro.parallel import ParallelRunReport, make_backend, parallel_s3ttmc

        x = make_random_tensor(3, 16, 120, rng)
        u = rng.random((16, 4))
        report = ParallelRunReport()
        with TraceCollector() as col:
            with make_backend("process", 2) as backend:
                parallel_s3ttmc(x, u, backend=backend, report=report)
        path = tmp_path / "proc.jsonl"
        write_trace(col, path)
        records = read_trace(path)
        done = [e for e in records.events if e["name"] == "parallel.chunk.done"]
        assert done, "process backend must report chunk.done events"
        workers = {e["attrs"]["worker"] for e in done}
        assert len(workers) >= 1  # on a loaded host one worker may win all
        assert report.worker_busy  # w<id> keys from the finish() path
        assert all(w.startswith("w") for w in report.worker_busy)
        # Round-trip: summarize and attribute both digest the parsed file.
        summary = summarize(records)
        assert summary.span_count == len(records.spans)
        assert summary.event_count == len(records.events)
        text = render_summary(summary, title="proc")
        assert f"spans: {summary.span_count}" in text
        att = attribute(records)
        rollups = {r.backend: r for r in att.parallel}
        assert "process" in rollups
        assert rollups["process"].busy_seconds == pytest.approx(
            sum(report.worker_busy.values()), rel=1e-6
        )


class TestVerifyWiring:
    def test_run_case_trace_path_appends(self, tmp_path):
        from repro.verify.generators import Workload
        from repro.verify.runner import run_case

        spec = Workload.from_spec(
            "order=3,dim=7,rank=4,unnz=25,dist=uniform,seed=0"
        )
        trace = tmp_path / "verify.jsonl"
        results = run_case(spec, trace_path=str(trace))
        assert results and all(r.ok for r in results)
        records = read_trace(trace)
        assert records.spans
        run_case(spec, trace_path=str(trace))
        assert len(read_trace(trace).spans) == 2 * len(records.spans)

    def test_verify_cli_profile_env(self, tmp_path, monkeypatch, capsys):
        from repro.verify.__main__ import main as verify_main

        out = tmp_path / "verify.folded"
        monkeypatch.setenv("REPRO_PROFILE", f"{out}:1")
        rc = verify_main(
            [
                "--case",
                "order=3,dim=7,rank=4,unnz=25,dist=uniform,seed=0",
                "-q",
            ]
        )
        assert rc == 0
        assert out.exists()
        text = out.read_text()
        if text:  # sampling is statistical; when it fired, stacks fold
            assert all(" " in line for line in text.splitlines())
