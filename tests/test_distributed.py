"""Tests for the distributed-memory communication model."""

import numpy as np
import pytest

from repro.data import random_sparse_symmetric
from repro.parallel import (
    CommunicationPlan,
    measure_chunk_costs,
    plan_distribution,
    simulate_distributed_time,
)
from repro.symmetry.combinatorics import sym_storage_size


@pytest.fixture(scope="module")
def tensor():
    return random_sparse_symmetric(4, 60, 400, seed=0)


class TestPlanDistribution:
    def test_single_process_no_communication(self, tensor):
        plan = plan_distribution(tensor, 1, rank=3)
        assert plan.total_factor_volume == 0
        assert plan.total_output_volume == 0
        assert plan.imbalance() == pytest.approx(1.0)

    def test_ranges_cover_all_nonzeros(self, tensor):
        plan = plan_distribution(tensor, 4, rank=3)
        covered = sum(b - a for a, b in plan.ranges)
        assert covered == tensor.unnz

    def test_owned_rows_partition_dim(self, tensor):
        plan = plan_distribution(tensor, 4, rank=3)
        all_rows = np.concatenate(plan.owned_rows)
        assert np.array_equal(np.sort(all_rows), np.arange(tensor.dim))

    def test_volume_grows_then_saturates(self, tensor):
        """More processes → more foreign rows, bounded by touched rows."""
        v2 = plan_distribution(tensor, 2, rank=3).total_factor_volume
        v8 = plan_distribution(tensor, 8, rank=3).total_factor_volume
        assert v8 >= v2
        # bound: each process can't receive more rows than exist
        plan8 = plan_distribution(tensor, 8, rank=3)
        assert plan8.max_recv() <= tensor.dim

    def test_exact_volume_small_case(self):
        from repro.formats import SparseSymmetricTensor

        # 2 procs, rows 0-1 owned by p0, rows 2-3 by p1.
        x = SparseSymmetricTensor(
            2, 4, np.array([[0, 1], [2, 3]]), np.array([1.0, 1.0])
        )
        plan = plan_distribution(x, 2, rank=2)
        # Balanced ranges put one non-zero per process; nonzero (0,1) on p0
        # touches only owned rows, (2,3) on p1 likewise -> no communication.
        assert plan.total_factor_volume == 0

    def test_custom_row_owner(self, tensor):
        owner = np.zeros(tensor.dim, dtype=np.int64)  # p0 owns everything
        plan = plan_distribution(tensor, 2, rank=3, row_owner=owner)
        # p0 receives nothing; p1 receives every row it touches.
        assert plan.recv_factor_rows[0] == 0
        assert plan.recv_factor_rows[1] > 0

    def test_row_owner_validation(self, tensor):
        with pytest.raises(ValueError):
            plan_distribution(tensor, 2, rank=3, row_owner=np.zeros(3, dtype=int))
        bad = np.full(tensor.dim, 5, dtype=np.int64)
        with pytest.raises(ValueError):
            plan_distribution(tensor, 2, rank=3, row_owner=bad)

    def test_invalid_procs(self, tensor):
        with pytest.raises(ValueError):
            plan_distribution(tensor, 0, rank=3)


class TestSimulatedTime:
    def test_compute_dominates_with_fast_network(self, tensor):
        plan = plan_distribution(tensor, 4, rank=3)
        fast = simulate_distributed_time(
            plan, 4, 3, bandwidth_bytes=1e12, latency_seconds=0.0
        )
        slow = simulate_distributed_time(
            plan, 4, 3, bandwidth_bytes=1e5, latency_seconds=0.0
        )
        assert slow > fast

    def test_more_procs_less_compute_time(self, tensor):
        t1 = simulate_distributed_time(
            plan_distribution(tensor, 1, rank=3), 4, 3, latency_seconds=0.0,
            bandwidth_bytes=1e15,
        )
        t8 = simulate_distributed_time(
            plan_distribution(tensor, 8, rank=3), 4, 3, latency_seconds=0.0,
            bandwidth_bytes=1e15,
        )
        assert t8 < t1

    def test_latency_term(self, tensor):
        plan = plan_distribution(tensor, 4, rank=3)
        base = simulate_distributed_time(plan, 4, 3, latency_seconds=0.0)
        with_lat = simulate_distributed_time(plan, 4, 3, latency_seconds=1.0)
        assert with_lat >= base + 2 * 3  # 2 phases x (p-1) messages

    def test_closed_form_fixture(self):
        # Hand-built plan: every term of T = work/flop + 2·α·msgs +
        # (factor + output bytes)/β is known exactly.
        order, rank = 4, 3
        plan = CommunicationPlan(
            n_procs=2,
            ranges=[(0, 5), (5, 12)],
            owned_rows=[np.arange(3), np.arange(3, 6)],
            recv_factor_rows=[3, 5],
            send_output_rows=[3, 5],
            local_work=[100.0, 200.0],
        )
        flop_rate, bandwidth, latency = 1e6, 1e6, 1e-3
        expected = (
            200.0 / flop_rate
            + 2 * latency * 1  # p - 1 messages per phase
            + (5 * rank * 8 + 5 * sym_storage_size(order - 1, rank) * 8)
            / bandwidth
        )
        got = simulate_distributed_time(
            plan,
            order,
            rank,
            flop_rate=flop_rate,
            bandwidth_bytes=bandwidth,
            latency_seconds=latency,
        )
        assert got == pytest.approx(expected, rel=1e-12)

    def test_messages_override(self):
        plan = CommunicationPlan(
            n_procs=4,
            ranges=[(0, 1)] * 4,
            owned_rows=[np.arange(1)] * 4,
            recv_factor_rows=[0] * 4,
            send_output_rows=[0] * 4,
            local_work=[1.0] * 4,
        )
        base = simulate_distributed_time(
            plan, 3, 2, latency_seconds=1.0, messages_per_phase=0
        )
        more = simulate_distributed_time(
            plan, 3, 2, latency_seconds=1.0, messages_per_phase=5
        )
        assert more == pytest.approx(base + 2 * 5)


class TestMeasureChunkCosts:
    def test_one_cost_per_chunk_all_positive(self, tensor):
        factor = np.random.default_rng(0).standard_normal((tensor.dim, 3))
        costs = measure_chunk_costs(tensor, factor, 4)
        assert len(costs) == 4
        assert all(np.isfinite(c) and c > 0 for c in costs)

    def test_cost_monotone_in_rank(self, tensor):
        # Higher rank strictly widens every level's row blocks, so the
        # summed measured chunk cost must grow with it. Rank 2 -> 8 is a
        # ~10x closed-form work increase — far above timer noise.
        rng = np.random.default_rng(1)
        low = sum(
            measure_chunk_costs(tensor, rng.standard_normal((tensor.dim, 2)), 3, repeats=3)
        )
        high = sum(
            measure_chunk_costs(tensor, rng.standard_normal((tensor.dim, 8)), 3, repeats=3)
        )
        assert high > low

    def test_costs_track_partition_estimate(self, tensor):
        # The measured per-chunk times are what the Figure-6 simulator
        # schedules; they must at least be balanced to the same order the
        # cost model promises (no chunk 10x another on a balanced split).
        factor = np.random.default_rng(2).standard_normal((tensor.dim, 3))
        costs = measure_chunk_costs(tensor, factor, 4, repeats=3)
        assert max(costs) < 10 * min(costs)
