"""Cross-kernel agreement: SymProp ≡ CSS ≡ SPLATT ≡ n-ary ≡ dense."""

import numpy as np
import pytest

from repro.baselines import (
    css_s3ttmc,
    css_s3ttmc_tc,
    dense_s3ttmc_matrix,
    dense_s3ttmc_tc,
    nary_ttmc_tc,
    splatt_ttmc,
)
from repro.baselines.hoqri_nary import nary_hoqri_step
from repro.baselines.splatt import csf_ttmc
from repro.core import s3ttmc, s3ttmc_tc
from repro.formats import CSFTensor, SparseSymmetricTensor
from tests.conftest import make_random_tensor


@pytest.mark.parametrize("order,dim,rank,n", [(3, 6, 4, 25), (4, 5, 3, 20), (5, 6, 2, 25)])
class TestKernelFamilyAgreement:
    def test_css_matches_dense(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng)
        u = rng.random((dim, rank))
        assert np.allclose(css_s3ttmc(x, u), dense_s3ttmc_matrix(x, u), atol=1e-10)

    def test_splatt_matches_dense(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng)
        u = rng.random((dim, rank))
        assert np.allclose(splatt_ttmc(x, u), dense_s3ttmc_matrix(x, u), atol=1e-10)

    def test_symprop_expanded_equals_css(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng)
        u = rng.random((dim, rank))
        sp = s3ttmc(x, u).to_full_unfolding()
        css = css_s3ttmc(x, u)
        assert np.allclose(sp, css, atol=1e-10)

    def test_nary_matches_dense(self, order, dim, rank, n, rng):
        x = make_random_tensor(order, dim, n, rng)
        u = rng.random((dim, rank))
        core = s3ttmc_tc(x, u).core
        a = nary_ttmc_tc(x, u, core, chunk=13)
        assert np.allclose(a, dense_s3ttmc_tc(x, u), atol=1e-8)


class TestSplattDetails:
    def test_nonzero_batching_of_csf_levels(self, rng):
        """CSF TTMc over a nontrivial trie (shared fibers)."""
        idx = np.array([[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]])
        x = SparseSymmetricTensor(3, 5, idx, rng.random(4))
        u = rng.random((5, 3))
        assert np.allclose(splatt_ttmc(x, u), dense_s3ttmc_matrix(x, u), atol=1e-12)

    def test_csf_other_mode_order(self, rng):
        """TTMc excluding a non-zero root mode agrees with dense (symmetry)."""
        x = make_random_tensor(3, 5, 15, rng)
        u = rng.random((5, 2))
        csf = CSFTensor.from_symmetric(x, mode_order=(1, 0, 2))
        # For a symmetric tensor the product over all modes but one is
        # mode-independent (Eq. 2).
        assert np.allclose(csf_ttmc(csf, u), dense_s3ttmc_matrix(x, u), atol=1e-12)

    def test_factor_validation(self, small_tensor, rng):
        csf = CSFTensor.from_symmetric(small_tensor)
        with pytest.raises(ValueError):
            csf_ttmc(csf, rng.random((small_tensor.dim + 2, 3)))


class TestCssTc:
    def test_css_tc_matches_dense(self, rng):
        x = make_random_tensor(4, 6, 20, rng)
        u = rng.random((6, 3))
        assert np.allclose(css_s3ttmc_tc(x, u), dense_s3ttmc_tc(x, u), atol=1e-8)


class TestNaryHoqriStep:
    def test_step_matches_symprop(self, rng):
        x = make_random_tensor(4, 7, 25, rng)
        u = rng.random((7, 3))
        a_nary, c1 = nary_hoqri_step(x, u, chunk=11)
        res = s3ttmc_tc(x, u)
        assert np.allclose(a_nary, res.a, atol=1e-8)
        assert np.allclose(c1, res.core.to_full_unfolding(), atol=1e-9)

    def test_core_shape_validation(self, rng):
        x = make_random_tensor(3, 6, 10, rng)
        u = rng.random((6, 3))
        bad_core = s3ttmc_tc(x, rng.random((6, 2))).core
        with pytest.raises(ValueError):
            nary_ttmc_tc(x, u, bad_core)
