"""Tests for the closed-form memory model (who OOMs where)."""

import math

import pytest

from repro.perfmodel.memory import (
    expanded_coo_bytes,
    footprint_table,
    intermediate_bytes_bound,
    kernel_footprint,
    lattice_level_nodes_bound,
    suggest_nz_batch,
    y_compact_bytes,
    y_full_bytes,
)
from repro.symmetry.combinatorics import dense_size, sym_storage_size


class TestFootprintFormulas:
    def test_y_sizes(self):
        assert y_full_bytes(100, 4, 3) == 100 * 27 * 8
        assert y_compact_bytes(100, 4, 3) == 100 * sym_storage_size(3, 3) * 8

    def test_compact_never_larger(self):
        for order in range(3, 10):
            for rank in range(1, 10):
                assert y_compact_bytes(50, order, rank) <= y_full_bytes(50, order, rank)

    def test_expanded_bytes(self):
        assert expanded_coo_bytes(3, 10) == 6 * 10 * (3 * 8 + 8)

    def test_walmart_paper_numbers(self):
        """The 4.6 TB vs 5.3 GB comparison of Section VI-C-1."""
        full = y_full_bytes(62_240, 8, 10)
        compact = y_compact_bytes(62_240, 8, 10)
        assert full == pytest.approx(4.6 * 1e12, rel=0.15)
        assert compact == pytest.approx(5.3 * 1e9, rel=0.15)
        # "99.88% reduction in size"
        assert 1 - compact / full == pytest.approx(0.9988, abs=0.001)

    def test_level_nodes_bound(self):
        assert lattice_level_nodes_bound(6, 3, 100) == math.comb(6, 3) * 100

    def test_intermediate_bound_compact_vs_full(self):
        compact = intermediate_bytes_bound(6, 4, 100, "compact")
        full = intermediate_bytes_bound(6, 4, 100, "full")
        assert compact < full


class TestSuggestBatch:
    def test_no_batching_when_cheap(self):
        batch = suggest_nz_batch(3, 2, "compact", 2**30)
        assert batch == 512  # capped at default

    def test_small_batch_when_tight(self):
        # per-non-zero worst level: C(10,9) * 5^9 * 8 B ≈ 156 MB
        batch = suggest_nz_batch(10, 5, "full", 4 * 2**30)
        assert batch is not None and 0 < batch < 512

    def test_zero_when_hopeless(self):
        # one non-zero's full lattice exceeds a 1 MB budget at order 10 rank 5
        assert suggest_nz_batch(10, 5, "full", 2**20) == 0


class TestKernelFootprint:
    def test_splatt_dominated_by_expansion_at_high_order(self):
        fp = kernel_footprint("splatt", 400, 10, 4, 1000)
        assert fp.expansion > fp.output

    def test_symprop_smallest_output(self):
        table = footprint_table(1000, 7, 6, 5000)
        assert table["symprop"].output < table["css"].output
        assert table["symprop"].output < table["splatt"].output

    def test_hooi_svd_pays_full_expansion(self):
        fp = kernel_footprint("hooi-svd", 4000, 8, 6, 1500)
        assert fp.intermediates == y_full_bytes(4000, 8, 6)

    def test_oom_ordering_matches_paper(self):
        """Under one budget: SPLATT dies first, CSS second, SymProp lives.

        (Order sweep shape of Fig. 5b.)
        """
        budget = int(1.5 * 2**30)
        dim, rank, unnz = 400, 4, 10_000
        died = {}
        for kernel in ("splatt", "css", "symprop"):
            died[kernel] = None
            for order in range(4, 15):
                fp = kernel_footprint(kernel, dim, order, rank, unnz, nz_batch=16)
                if not fp.fits(budget):
                    died[kernel] = order
                    break
        assert died["splatt"] is not None and died["css"] is not None
        assert died["splatt"] < died["css"]
        assert died["symprop"] is None or died["symprop"] > died["css"]

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            kernel_footprint("cusparse", 10, 3, 2, 10)

    def test_fits(self):
        fp = kernel_footprint("symprop", 10, 3, 2, 10)
        assert fp.fits(10**9)
        assert not fp.fits(10)
