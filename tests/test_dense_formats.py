"""Tests for dense helpers and compact dense symmetric storage."""

import numpy as np
import pytest

from repro.formats.dense import frobenius_norm, refold, ttm, ttmc_all_but_one, unfold
from repro.formats.dense_sym import DenseSymmetricTensor
from repro.symmetry.combinatorics import sym_storage_size


class TestUnfold:
    def test_roundtrip_all_modes(self, rng):
        t = rng.random((3, 4, 5, 2))
        for mode in range(4):
            m = unfold(t, mode)
            assert m.shape == (t.shape[mode], t.size // t.shape[mode])
            assert np.allclose(refold(m, mode, t.shape), t)

    def test_mode0_matches_reshape(self, rng):
        t = rng.random((3, 4, 5))
        assert np.allclose(unfold(t, 0), t.reshape(3, 20))

    def test_column_layout_row_major(self, rng):
        # unfold(t,1)[j, lin(i,k)] == t[i,j,k] with k fastest
        t = rng.random((2, 3, 4))
        m = unfold(t, 1)
        for i in range(2):
            for j in range(3):
                for k in range(4):
                    assert m[j, i * 4 + k] == t[i, j, k]

    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            unfold(rng.random((2, 2)), 5)


class TestTTM:
    def test_matches_einsum(self, rng):
        t = rng.random((4, 4, 4))
        u = rng.random((4, 2))
        assert np.allclose(ttm(t, u, 0), np.einsum("ijk,ir->rjk", t, u))
        assert np.allclose(ttm(t, u, 1), np.einsum("ijk,jr->irk", t, u))
        assert np.allclose(ttm(t, u, 2), np.einsum("ijk,kr->ijr", t, u))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            ttm(rng.random((3, 3)), rng.random((4, 2)), 0)

    def test_chain_all_but_one(self, rng):
        t = rng.random((3, 3, 3, 3))
        u = rng.random((3, 2))
        y = ttmc_all_but_one(t, u, 0)
        assert y.shape == (3, 2, 2, 2)
        ref = np.einsum("ijkl,jb,kc,ld->ibcd", t, u, u, u)
        assert np.allclose(y, ref)

    def test_frobenius(self, rng):
        t = rng.random((3, 3))
        assert frobenius_norm(t) == pytest.approx(np.linalg.norm(t))


class TestDenseSymmetric:
    def make_symmetric(self, order, dim, rng):
        t = rng.random((dim,) * order)
        for perm in __import__("itertools").permutations(range(order)):
            t = (t + np.transpose(t, perm)) / 2 if perm != tuple(range(order)) else t
        # full symmetrization
        out = np.zeros_like(t)
        import itertools

        perms = list(itertools.permutations(range(order)))
        for perm in perms:
            out += np.transpose(t, perm)
        return out / len(perms)

    def test_roundtrip(self, rng):
        full = self.make_symmetric(3, 4, rng)
        ds = DenseSymmetricTensor.from_full(full)
        assert ds.size == sym_storage_size(3, 4)
        assert np.allclose(ds.to_full(), full)

    def test_norm_matches_full(self, rng):
        full = self.make_symmetric(3, 3, rng)
        ds = DenseSymmetricTensor.from_full(full)
        assert ds.norm_squared() == pytest.approx((full**2).sum())
        assert ds.norm() == pytest.approx(np.linalg.norm(full))

    def test_getsetitem_any_order(self, rng):
        ds = DenseSymmetricTensor(3, 4)
        ds[(3, 0, 2)] = 7.5
        assert ds[(0, 2, 3)] == 7.5
        assert ds[(2, 3, 0)] == 7.5

    def test_rejects_nonhypercubical(self, rng):
        with pytest.raises(ValueError):
            DenseSymmetricTensor.from_full(rng.random((2, 3)))

    def test_rejects_asymmetric(self, rng):
        with pytest.raises(ValueError):
            DenseSymmetricTensor.from_full(rng.random((3, 3, 3)))

    def test_random_constructor(self, rng):
        ds = DenseSymmetricTensor.random(4, 3, rng)
        assert ds.data.shape == (sym_storage_size(4, 3),)

    def test_paper_example(self):
        """The order-3 2x2x2 example of Section II-A."""
        full = np.array([[[1, 2], [2, 3]], [[2, 3], [3, 4]]], dtype=float)
        ds = DenseSymmetricTensor.from_full(full)
        assert ds.data.tolist() == [1, 2, 3, 4]

    def test_wrong_index_count(self):
        ds = DenseSymmetricTensor(3, 4)
        with pytest.raises(IndexError):
            _ = ds[(1, 2)]
