"""Unit tests for IOU enumeration, ranking and linearization."""

import itertools

import numpy as np
import pytest

from repro.symmetry.combinatorics import sym_storage_size
from repro.symmetry.iou import (
    enumerate_iou,
    full_linear_index,
    iou_layout,
    is_iou,
    rank_iou,
    rank_iou_array,
    unrank_iou,
    unrank_iou_array,
)


def brute_force_iou(order: int, dim: int) -> np.ndarray:
    rows = [
        tup
        for tup in itertools.product(range(dim), repeat=order)
        if all(tup[i] <= tup[i + 1] for i in range(order - 1))
    ]
    return np.array(rows, dtype=np.int64).reshape(len(rows), order)


class TestEnumeration:
    @pytest.mark.parametrize("order,dim", [(1, 5), (2, 4), (3, 3), (4, 3), (5, 2), (2, 1)])
    def test_matches_brute_force(self, order, dim):
        expected = brute_force_iou(order, dim)
        got = enumerate_iou(order, dim)
        assert np.array_equal(got, expected)

    def test_count_matches_storage_size(self):
        for order, dim in [(3, 5), (4, 4), (6, 3)]:
            assert enumerate_iou(order, dim).shape == (
                sym_storage_size(order, dim),
                order,
            )

    def test_lex_sorted(self):
        rows = enumerate_iou(3, 4)
        as_tuples = [tuple(r) for r in rows]
        assert as_tuples == sorted(as_tuples)

    def test_order_zero(self):
        assert enumerate_iou(0, 5).shape == (1, 0)

    def test_zero_dim(self):
        assert enumerate_iou(2, 0).shape == (0, 2)


class TestLayout:
    @pytest.mark.parametrize("order,dim", [(2, 4), (3, 4), (4, 3), (5, 3)])
    def test_parent_and_last(self, order, dim):
        rows, parent, last = iou_layout(order, dim)
        prev = enumerate_iou(order - 1, dim) if order > 1 else None
        assert np.array_equal(rows[:, -1], last)
        if prev is not None:
            assert np.array_equal(prev[parent], rows[:, :-1])

    def test_level_one(self):
        rows, parent, last = iou_layout(1, 5)
        assert np.array_equal(rows[:, 0], np.arange(5))
        assert np.array_equal(parent, np.zeros(5, dtype=np.int64))


class TestRanking:
    @pytest.mark.parametrize("order,dim", [(1, 6), (2, 5), (3, 4), (5, 3)])
    def test_rank_is_position(self, order, dim):
        rows = enumerate_iou(order, dim)
        ranks = rank_iou_array(rows, dim)
        assert np.array_equal(ranks, np.arange(rows.shape[0]))

    @pytest.mark.parametrize("order,dim", [(2, 5), (3, 4), (4, 4)])
    def test_unrank_roundtrip(self, order, dim):
        n = sym_storage_size(order, dim)
        rows = unrank_iou_array(np.arange(n), order, dim)
        assert np.array_equal(rows, enumerate_iou(order, dim))

    def test_scalar_wrappers(self):
        # Lex enumeration for order 3, dim 3: (0,0,0),(0,0,1),(0,0,2),(0,1,1),...
        assert rank_iou((0, 0, 0), 3) == 0
        assert rank_iou((0, 1, 1), 3) == 3
        assert tuple(unrank_iou(3, 3, 3)) == (0, 1, 1)

    def test_rank_rejects_decreasing(self):
        with pytest.raises(ValueError):
            rank_iou_array(np.array([[2, 1]]), 4)

    def test_rank_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            rank_iou_array(np.array([[0, 4]]), 4)

    def test_unrank_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            unrank_iou_array(np.array([100]), 2, 3)

    def test_empty_inputs(self):
        assert rank_iou_array(np.zeros((0, 3), dtype=int), 4).shape == (0,)
        assert unrank_iou_array(np.zeros(0, dtype=int), 3, 4).shape == (0, 3)


class TestFullLinearIndex:
    def test_row_major(self):
        idx = np.array([[1, 2, 3], [0, 0, 0], [2, 1, 0]])
        lin = full_linear_index(idx, 4)
        assert lin.tolist() == [1 * 16 + 2 * 4 + 3, 0, 2 * 16 + 4]

    def test_matches_ravel_multi_index(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 5, size=(20, 4))
        expected = np.ravel_multi_index(tuple(idx.T), (5,) * 4)
        assert np.array_equal(full_linear_index(idx, 5), expected)


class TestIsIou:
    def test_masks(self):
        rows = np.array([[0, 1, 2], [2, 1, 0], [1, 1, 1]])
        assert is_iou(rows).tolist() == [True, False, True]

    def test_single_column(self):
        assert is_iou(np.array([[3], [1]])).tolist() == [True, True]
