"""Tests for partially symmetric {i1},{i2..iN} storage (Y_p / C_p)."""

import numpy as np
import pytest

from repro.formats.partial_sym import PartiallySymmetricTensor
from repro.symmetry.combinatorics import dense_size, sym_storage_size


class TestShape:
    def test_dimensions(self):
        ps = PartiallySymmetricTensor(5, 3, 4)
        assert ps.order == 4
        assert ps.sym_size == sym_storage_size(3, 4)
        assert ps.data.shape == (5, ps.sym_size)
        assert ps.unfolding is ps.data

    def test_data_validation(self, rng):
        with pytest.raises(ValueError):
            PartiallySymmetricTensor(5, 3, 4, rng.random((5, 7)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PartiallySymmetricTensor(-1, 2, 3)
        with pytest.raises(ValueError):
            PartiallySymmetricTensor(3, 0, 3)


class TestExpansion:
    def test_full_unfolding_shape(self, rng):
        ps = PartiallySymmetricTensor(4, 2, 3, rng.random((4, 6)))
        full = ps.to_full_unfolding()
        assert full.shape == (4, dense_size(2, 3))

    def test_full_tensor_symmetric_in_trailing_modes(self, rng):
        ps = PartiallySymmetricTensor(4, 3, 2, rng.random((4, sym_storage_size(3, 2))))
        t = ps.to_full_tensor()
        assert t.shape == (4, 2, 2, 2)
        assert np.allclose(t, np.transpose(t, (0, 2, 1, 3)))
        assert np.allclose(t, np.transpose(t, (0, 1, 3, 2)))
        assert np.allclose(t, np.transpose(t, (0, 3, 2, 1)))

    def test_norm_matches_full(self, rng):
        ps = PartiallySymmetricTensor(3, 3, 3, rng.random((3, sym_storage_size(3, 3))))
        full = ps.to_full_unfolding()
        assert ps.norm_squared() == pytest.approx((full**2).sum())

    def test_full_unfolding_bytes(self):
        ps = PartiallySymmetricTensor(10, 3, 4)
        assert ps.full_unfolding_bytes() == 10 * 64 * 8


class TestMode1TTM:
    def test_property2_layout_preserved(self, rng):
        """Mode-1 TTM on compact storage == TTM on full storage, compacted."""
        ps = PartiallySymmetricTensor(6, 2, 3, rng.random((6, 6)))
        u = rng.random((6, 4))
        compact_result = ps.mode1_ttm(u)
        full_result = u.T @ ps.to_full_unfolding()
        assert np.allclose(compact_result.to_full_unfolding(), full_result)

    def test_shape_mismatch(self, rng):
        ps = PartiallySymmetricTensor(6, 2, 3)
        with pytest.raises(ValueError):
            ps.mode1_ttm(rng.random((5, 4)))

    def test_weighted_unfolding(self, rng):
        ps = PartiallySymmetricTensor(2, 2, 2, rng.random((2, 3)))
        w = ps.weighted_unfolding()
        # multiplicities for order-2 dim-2 IOUs (0,0),(0,1),(1,1) = 1,2,1
        assert np.allclose(w, ps.data * np.array([1.0, 2.0, 1.0]))
