"""Edge cases for the vectorized segment reductions (repro.core._segment).

``segment_sum_by_ptr`` papers over ``np.add.reduceat``'s empty-segment
misbehaviour; ``scatter_add_rows`` reimplements ``np.add.at`` via
sort-and-reduce. Both are cross-checked against loop/``np.add.at``
references on the degenerate shapes the kernels can produce.
"""

import numpy as np
import pytest

from repro.core._segment import scatter_add_rows, segment_sum_by_ptr


def _segment_ref(contrib, node_ptr):
    n = node_ptr.shape[0] - 1
    out = np.zeros((n,) + contrib.shape[1:], dtype=contrib.dtype)
    for i in range(n):
        out[i] = contrib[node_ptr[i] : node_ptr[i + 1]].sum(axis=0)
    return out


def _check_segment(contrib, node_ptr):
    node_ptr = np.asarray(node_ptr, dtype=np.int64)
    got = segment_sum_by_ptr(contrib, node_ptr)
    ref = _segment_ref(contrib, node_ptr)
    assert got.shape == ref.shape
    np.testing.assert_array_equal(got, ref)


def _rows(n, width=3, seed=0):
    rng = np.random.default_rng(seed)
    # Integer-valued doubles: every summation order is exact, so the
    # references compare bitwise.
    return rng.integers(-50, 50, size=(n, width)).astype(np.float64)


class TestSegmentSumByPtr:
    def test_zero_nodes(self):
        out = segment_sum_by_ptr(_rows(0), np.array([0]))
        assert out.shape == (0, 3)

    def test_single_node(self):
        _check_segment(_rows(5), [0, 5])

    def test_leading_empty_segment(self):
        _check_segment(_rows(5), [0, 0, 2, 5])

    def test_trailing_empty_segment(self):
        _check_segment(_rows(4), [0, 2, 4, 4])

    def test_interior_empty_runs(self):
        _check_segment(_rows(6), [0, 1, 1, 1, 4, 4, 6])

    def test_all_segments_empty(self):
        _check_segment(_rows(0), [0, 0, 0, 0])

    def test_zero_edges_nonzero_nodes(self):
        out = segment_sum_by_ptr(_rows(0), np.array([0, 0, 0]))
        np.testing.assert_array_equal(out, np.zeros((2, 3)))

    def test_singleton_segments(self):
        _check_segment(_rows(4), [0, 1, 2, 3, 4])

    def test_random_against_reference(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n_nodes = int(rng.integers(1, 8))
            lens = rng.integers(0, 4, size=n_nodes)
            node_ptr = np.concatenate([[0], np.cumsum(lens)])
            _check_segment(_rows(int(node_ptr[-1]), seed=int(rng.integers(1e6))), node_ptr)


class TestScatterAddRows:
    def _check(self, rows, contrib, n_out=None):
        rows = np.asarray(rows, dtype=np.int64)
        n_out = int(rows.max()) + 1 if n_out is None else n_out
        got = np.zeros((n_out,) + contrib.shape[1:])
        ref = got.copy()
        scatter_add_rows(got, rows, contrib)
        np.add.at(ref, rows, contrib)
        np.testing.assert_array_equal(got, ref)

    def test_empty_rows_is_noop(self):
        out = np.ones((3, 2))
        scatter_add_rows(out, np.zeros(0, dtype=np.int64), np.zeros((0, 2)))
        np.testing.assert_array_equal(out, np.ones((3, 2)))

    def test_single_row(self):
        self._check([2], _rows(1))

    def test_all_rows_identical(self):
        self._check([1, 1, 1, 1], _rows(4))

    def test_duplicate_heavy(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 3, size=64)
        self._check(rows, _rows(64, seed=4))

    def test_unsorted_rows(self):
        self._check([5, 0, 5, 2, 0, 5], _rows(6))

    def test_accumulates_into_existing(self):
        out = np.full((4, 2), 10.0)
        contrib = _rows(3, width=2)
        rows = np.array([0, 3, 0], dtype=np.int64)
        scatter_add_rows(out, rows, contrib)
        ref = np.full((4, 2), 10.0)
        np.add.at(ref, rows, contrib)
        np.testing.assert_array_equal(out, ref)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_against_add_at(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 100))
        rows = rng.integers(0, 10, size=n)
        self._check(rows, _rows(n, width=5, seed=seed + 100), n_out=10)
