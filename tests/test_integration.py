"""Integration tests across modules: end-to-end pipelines under budgets."""

import numpy as np
import pytest

from repro import (
    CSSTensor,
    MemoryBudget,
    MemoryLimitError,
    hooi,
    hoqri,
    load_dataset,
    random_sparse_symmetric,
    s3ttmc,
    s3ttmc_tc,
)
from repro.core import KernelStats
from repro.core.plan import get_plan
from repro.data.io import tns_roundtrip
from repro.perfmodel import kernel_footprint, total_sp


class TestEndToEndPipelines:
    def test_dataset_to_decomposition(self):
        """Registry dataset → HOQRI under the scaled budget."""
        x = load_dataset("L6", seed=0)
        with MemoryBudget(gigabytes=1.5):
            res = hoqri(x, 2, max_iters=3, tol=0.0, seed=0)
        # tol=0 may stop early if the objective exactly stagnates
        assert 1 <= res.iterations <= 3
        assert res.orthonormality_defect() < 1e-8

    def test_io_roundtrip_preserves_kernel_output(self, rng):
        x = random_sparse_symmetric(4, 30, 200, seed=5)
        u = rng.random((30, 3))
        y1 = s3ttmc(x, u).unfolding
        y2 = s3ttmc(tns_roundtrip(x), u).unfolding
        assert np.allclose(y1, y2)

    def test_css_format_pipeline(self, rng):
        x = random_sparse_symmetric(4, 25, 150, seed=6)
        css = CSSTensor.from_ucoo(x)
        res = hoqri(css, 3, max_iters=5, seed=0)
        res2 = hoqri(x, 3, max_iters=5, seed=0)
        assert np.allclose(res.trace.objective, res2.trace.objective)

    def test_plan_shared_across_iterations(self):
        """One plan per (pattern, scope): decomposition loops reuse it."""
        x = random_sparse_symmetric(4, 30, 200, seed=7)
        hoqri(x, 3, max_iters=4, seed=0)
        cache = getattr(x, "_s3ttmc_plan_cache")
        assert len(cache) == 1

    def test_footprint_model_predicts_actual_oom(self, rng):
        """Closed-form prediction agrees with real budget behaviour."""
        x = random_sparse_symmetric(6, 40, 100, seed=8)
        u = rng.random((40, 5))
        budget = 8 * 2**20
        from repro.baselines import css_s3ttmc

        fp = kernel_footprint("css", 40, 6, 5, 100, nz_batch=100)
        assert not fp.fits(budget)
        with MemoryBudget(limit_bytes=budget):
            with pytest.raises(MemoryLimitError):
                css_s3ttmc(x, u)
        fp_sp = kernel_footprint("symprop", 40, 6, 5, 100, nz_batch=100)
        assert fp_sp.fits(budget)
        with MemoryBudget(limit_bytes=budget):
            s3ttmc(x, u)

    def test_flops_accumulate_over_decomposition(self):
        x = random_sparse_symmetric(4, 20, 100, seed=9)
        res = hoqri(x, 3, max_iters=4, tol=0.0, seed=0, memoize="nonzero")
        # 4 iterations of the kernel; the pattern has some repeated indices
        # so measured <= the all-distinct model bound.
        per_iter_bound = total_sp(4, 3, 100)
        assert res.stats.kernel_flops <= 4 * per_iter_bound
        assert res.stats.kernel_flops > 0

    def test_hooi_oom_then_gram_rescue(self):
        """The faithful SVD OOMs; the Gram extension completes (ablation 5)."""
        x = random_sparse_symmetric(6, 200, 300, seed=10)
        rank = 8
        # full Y: 200 * 8^5 * 8 = 52 MB > 16 MB budget; Gram: 200^2 * 8 tiny,
        # and the compact kernel (batched) stays well under the limit.
        with MemoryBudget(limit_bytes=16 * 2**20):
            with pytest.raises(MemoryLimitError):
                hooi(
                    x,
                    rank,
                    max_iters=2,
                    seed=0,
                    svd_method="expand",
                    nz_batch_size=64,
                )
        with MemoryBudget(limit_bytes=16 * 2**20):
            res = hooi(
                x, rank, max_iters=2, tol=0.0, seed=0, svd_method="gram",
                nz_batch_size=64,
            )
        assert res.iterations == 2


class TestNumericalRobustness:
    def test_zero_values_allowed(self, rng):
        from repro.formats import SparseSymmetricTensor

        x = SparseSymmetricTensor(
            3, 10, np.array([[0, 1, 2], [3, 4, 5]]), np.array([0.0, 1.0])
        )
        y = s3ttmc(x, rng.random((10, 2)))
        assert np.isfinite(y.unfolding).all()

    def test_negative_values(self, rng):
        from repro.baselines.dense_ref import dense_s3ttmc_matrix
        from repro.formats import SparseSymmetricTensor

        idx = rng.integers(0, 6, size=(20, 3))
        vals = rng.standard_normal(20)
        x = SparseSymmetricTensor(3, 6, idx, vals, combine="first")
        u = rng.standard_normal((6, 3))
        assert np.allclose(
            s3ttmc(x, u).to_full_unfolding(), dense_s3ttmc_matrix(x, u), atol=1e-10
        )

    def test_large_magnitude_values(self, rng):
        from repro.formats import SparseSymmetricTensor

        x = SparseSymmetricTensor(
            3, 8, np.array([[0, 1, 2]]), np.array([1e12])
        )
        res = s3ttmc_tc(x, rng.random((8, 2)))
        assert np.isfinite(res.a).all()

    def test_stats_deterministic(self):
        x = random_sparse_symmetric(4, 15, 80, seed=11)
        u = np.random.default_rng(0).random((15, 3))
        a, b = KernelStats(), KernelStats()
        s3ttmc(x, u, stats=a)
        s3ttmc(x, u, stats=b)
        assert a.kernel_flops == b.kernel_flops
        assert a.level_nodes == b.level_nodes

    def test_kernel_deterministic_bitwise(self):
        x = random_sparse_symmetric(5, 20, 100, seed=12)
        u = np.random.default_rng(1).random((20, 3))
        y1 = s3ttmc(x, u).unfolding
        y2 = s3ttmc(x, u).unfolding
        assert np.array_equal(y1, y2)

    def test_decomposition_reproducible_by_seed(self):
        x = random_sparse_symmetric(3, 25, 120, seed=13)
        a = hoqri(x, 3, max_iters=6, seed=99)
        b = hoqri(x, 3, max_iters=6, seed=99)
        assert np.array_equal(a.factor, b.factor)
        assert a.trace.objective == b.trace.objective
