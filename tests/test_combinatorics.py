"""Unit tests for repro.symmetry.combinatorics."""

import math

import numpy as np
import pytest

from repro.symmetry.combinatorics import (
    binomial,
    dense_size,
    falling_factorial,
    multinomial,
    permutation_count,
    permutation_counts_array,
    storage_compression_ratio,
    sym_storage_size,
)


class TestBinomial:
    def test_matches_math_comb(self):
        for n in range(12):
            for k in range(n + 1):
                assert binomial(n, k) == math.comb(n, k)

    def test_outside_triangle_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(3, -1) == 0
        assert binomial(-2, 0) == 0

    def test_symmetry_identity(self):
        assert binomial(10, 3) == binomial(10, 7)


class TestMultinomial:
    def test_basic(self):
        assert multinomial([1, 1, 1]) == 6
        assert multinomial([2, 1]) == 3
        assert multinomial([3]) == 1
        assert multinomial([]) == 1

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            multinomial([2, -1])

    def test_sums_to_power(self):
        # Sum of multinomials over all compositions of 3 into 2 parts = 2^3.
        total = sum(multinomial([k, 3 - k]) for k in range(4))
        assert total == 8


class TestStorageSize:
    def test_table_values(self):
        # S_{N,I} = C(N+I-1, N)
        assert sym_storage_size(3, 2) == 4  # the paper's example tensor T
        assert sym_storage_size(2, 3) == 6
        assert sym_storage_size(1, 7) == 7
        assert sym_storage_size(0, 5) == 1

    def test_zero_dim(self):
        assert sym_storage_size(3, 0) == 0

    def test_pascal_recurrence(self):
        # S_{N,I} = S_{N-1,I} + S_{N,I-1}
        for order in range(1, 6):
            for dim in range(1, 6):
                assert sym_storage_size(order, dim) == sym_storage_size(
                    order - 1, dim
                ) + sym_storage_size(order, dim - 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sym_storage_size(-1, 3)
        with pytest.raises(ValueError):
            sym_storage_size(2, -1)


class TestCompressionRatio:
    def test_approaches_factorial(self):
        # lim_{I→∞} I^N / S_{N,I} = N!  (Section II-B)
        ratio = storage_compression_ratio(3, 10_000)
        assert ratio == pytest.approx(6.0, rel=1e-3)

    def test_small_dim(self):
        assert storage_compression_ratio(2, 2) == pytest.approx(4 / 3)

    def test_dense_size(self):
        assert dense_size(3, 4) == 64
        assert dense_size(0, 4) == 1


class TestPermutationCounts:
    def test_scalar(self):
        assert permutation_count((1, 3, 5)) == 6
        assert permutation_count((1, 1, 3)) == 3
        assert permutation_count((2, 2, 2)) == 1
        assert permutation_count((0,)) == 1

    def test_array_matches_scalar(self):
        rows = np.array([[1, 3, 5], [1, 1, 3], [2, 2, 2], [0, 1, 1]])
        counts = permutation_counts_array(rows)
        assert counts.tolist() == [6, 3, 1, 3]

    def test_array_unsorted_rows(self):
        rows = np.array([[5, 3, 1], [3, 1, 1]])
        assert permutation_counts_array(rows).tolist() == [6, 3]

    def test_empty(self):
        assert permutation_counts_array(np.zeros((0, 4), dtype=int)).shape == (0,)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            permutation_counts_array(np.array([1, 2, 3]))

    def test_large_order(self):
        row = np.arange(12).reshape(1, -1)
        assert permutation_counts_array(row)[0] == math.factorial(12)


class TestFallingFactorial:
    def test_values(self):
        assert falling_factorial(5, 3) == 60
        assert falling_factorial(5, 0) == 1
        assert falling_factorial(3, 5) == 0  # passes through zero

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            falling_factorial(3, -1)
