"""Tests for the memory-budget runtime and phase timers."""

import time

import numpy as np
import pytest

from repro.runtime.budget import (
    MemoryBudget,
    MemoryLimitError,
    current_budget,
    release_bytes,
    request_bytes,
    track_array,
)
from repro.runtime.timer import PhaseTimer, Stopwatch


class TestBudget:
    def test_no_budget_is_noop(self):
        request_bytes(10**15, "huge")  # no active budget: never raises
        release_bytes(10**15, "huge")

    def test_limit_enforced(self):
        with MemoryBudget(limit_bytes=1000) as budget:
            budget.request(600, "a")
            with pytest.raises(MemoryLimitError):
                budget.request(600, "b")
            budget.release(600, "a")
            budget.request(900, "c")

    def test_gigabytes_constructor(self):
        budget = MemoryBudget(gigabytes=2.0)
        assert budget.limit_bytes == 2 * 2**30

    def test_both_limits_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(limit_bytes=10, gigabytes=1.0)

    def test_peak_tracking(self):
        with MemoryBudget() as budget:
            budget.request(100, "a")
            budget.request(50, "b")
            budget.release(100, "a")
            assert budget.peak == 150
            assert budget.in_use == 50

    def test_nesting_and_current(self):
        assert current_budget() is None
        with MemoryBudget(limit_bytes=100) as outer:
            assert current_budget() is outer
            with MemoryBudget(limit_bytes=50) as inner:
                assert current_budget() is inner
            assert current_budget() is outer
        assert current_budget() is None

    def test_error_carries_context(self):
        with MemoryBudget(limit_bytes=10):
            with pytest.raises(MemoryLimitError) as info:
                request_bytes(100, "Y (full)")
        assert info.value.label == "Y (full)"
        assert info.value.nbytes == 100
        assert info.value.limit == 10

    def test_track_array_scope(self):
        with MemoryBudget(limit_bytes=1000) as budget:
            with track_array((10, 10), "buf") as nbytes:
                assert nbytes == 800
                assert budget.in_use == 800
            assert budget.in_use == 0

    def test_allocation_labels(self):
        with MemoryBudget() as budget:
            budget.request(64, "K level 2")
            budget.request(64, "K level 2")
            assert budget.allocations["K level 2"] == 128
            budget.release(128, "K level 2")
            assert "K level 2" not in budget.allocations

    def test_negative_request_rejected(self):
        with MemoryBudget() as budget:
            with pytest.raises(ValueError):
                budget.request(-5)

    def test_kernel_ooms_under_tight_budget(self, rng):
        """End-to-end: the CSS baseline trips the budget, SymProp fits."""
        from repro.baselines import css_s3ttmc
        from repro.core import s3ttmc
        from tests.conftest import make_random_tensor

        x = make_random_tensor(6, 30, 50, rng)
        u = rng.random((30, 6))
        # CSS level-5 intermediates need ~300 nodes x 6^5 x 8 B ≈ 19 MB;
        # SymProp's compact path stays under ~4 MB in total.
        with MemoryBudget(limit_bytes=8_000_000):
            with pytest.raises(MemoryLimitError):
                css_s3ttmc(x, u)
        with MemoryBudget(limit_bytes=8_000_000):
            y = s3ttmc(x, u)  # fits
            assert y.unfolding.shape == (30, 252)


class TestTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.01)
        with timer.phase("a"):
            pass
        with timer.phase("b"):
            pass
        assert timer.counts["a"] == 2
        assert timer.totals["a"] >= 0.01
        assert set(timer.breakdown()) == {"a", "b"}

    def test_breakdown_sums_to_100(self):
        timer = PhaseTimer()
        timer.add("x", 1.0)
        timer.add("y", 3.0)
        breakdown = timer.breakdown()
        assert breakdown["x"] == pytest.approx(25.0)
        assert breakdown["y"] == pytest.approx(75.0)
        assert sum(breakdown.values()) == pytest.approx(100.0)

    def test_empty_breakdown(self):
        assert PhaseTimer().breakdown() == {}

    def test_merge(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a.totals["x"] == pytest.approx(3.0)
        assert a.totals["y"] == pytest.approx(1.0)
        assert a.counts == {"x": 2, "y": 1}

    def test_merge_of_merged_timers_preserves_counts(self):
        """Regression: merging an already-merged timer must add its full
        entry counts, not a phantom +1 per phase."""
        workers = []
        for _ in range(3):
            w = PhaseTimer()
            w.add("s3ttmc", 1.0)
            w.add("s3ttmc", 1.0)
            workers.append(w)
        left = PhaseTimer()
        left.merge(workers[0])
        left.merge(workers[1])
        right = PhaseTimer()
        right.merge(workers[2])
        total = PhaseTimer()
        total.merge(left)
        total.merge(right)
        assert total.totals["s3ttmc"] == pytest.approx(6.0)
        assert total.counts["s3ttmc"] == 6

    def test_merge_totals_without_counts(self):
        """External `totals` mutation (no matching count) merges as time
        with zero entries instead of silently inventing one."""
        a, b = PhaseTimer(), PhaseTimer()
        b.totals["ghost"] = 2.5  # misuse: bypassed add()/phase()
        a.merge(b)
        assert a.totals["ghost"] == pytest.approx(2.5)
        assert a.counts.get("ghost", 0) == 0
        # and a well-formed phase on top still counts correctly
        a.add("ghost", 0.5)
        assert a.counts["ghost"] == 1

    def test_stopwatch(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.005)
        with watch:
            time.sleep(0.005)
        assert watch.elapsed >= 0.01


class TestBudgetExceptionsPropagate:
    def test_phase_records_on_exception(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("failing"):
                raise RuntimeError("boom")
        assert "failing" in timer.totals
