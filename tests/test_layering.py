"""The architectural layering holds: no upward imports between layers.

Runs the same checker CI runs (``tools/check_layering.py``) so a
violation fails the suite locally before it fails the lint job.
"""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_layering", REPO / "tools" / "check_layering.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_no_upward_imports():
    chk = _load_checker()
    errors = []
    for path in sorted(chk.PACKAGE.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        errors.extend(chk.check_file(path))
    assert not errors, "\n".join(errors)


def test_every_subpackage_has_a_layer():
    chk = _load_checker()
    groups = {
        p.name for p in chk.PACKAGE.iterdir() if p.is_dir() and p.name != "__pycache__"
    }
    groups |= {
        p.stem
        for p in chk.PACKAGE.glob("*.py")
        if p.name != "__init__.py"
    }
    missing = groups - set(chk.LAYERS)
    assert not missing, f"subpackages without a layer rank: {sorted(missing)}"


def test_checker_detects_inverted_ranks():
    """Guard against the checker itself going vacuous."""
    chk = _load_checker()
    chk.LAYERS["parallel"] = 99  # pretend parallel sits above decomp
    errors = []
    for path in sorted(chk.PACKAGE.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        errors.extend(chk.check_file(path))
    assert any("upward import" in e for e in errors)
