"""Synthetic hypergraph generators (stand-ins for the paper's datasets).

Offline reproduction cannot ship contact-school / trivago-clicks /
walmart-trips / stackoverflow / amazon-reviews; these generators produce
hypergraphs matching the statistics that drive kernel cost — node count,
edge count, cardinality distribution — with planted community structure so
clustering applications (the paper's motivating use case) are meaningful.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .hypergraph import Hypergraph

__all__ = ["planted_partition_hypergraph", "uniform_random_hypergraph"]


def _sample_cardinalities(
    n_edges: int,
    min_card: int,
    max_card: int,
    rng: np.random.Generator,
    weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    cards = np.arange(min_card, max_card + 1)
    if weights is None:
        # Real hypergraphs skew heavily toward small edges: geometric decay.
        weights = 0.5 ** np.arange(cards.shape[0])
    probs = np.asarray(weights, dtype=np.float64)
    probs = probs / probs.sum()
    return rng.choice(cards, size=n_edges, p=probs)


def planted_partition_hypergraph(
    n_nodes: int,
    n_edges: int,
    n_communities: int,
    *,
    min_cardinality: int = 2,
    max_cardinality: int = 5,
    p_intra: float = 0.85,
    cardinality_weights: Optional[Sequence[float]] = None,
    seed: Optional[int] = None,
) -> tuple[Hypergraph, np.ndarray]:
    """Hypergraph with planted communities.

    Nodes are split into ``n_communities`` blocks; each hyperedge draws all
    its nodes from one community with probability ``p_intra``, otherwise
    uniformly from all nodes. Returns ``(hypergraph, labels)`` where
    ``labels`` is the ground-truth community of each node.
    """
    if n_communities < 1 or n_nodes < n_communities:
        raise ValueError("need at least one node per community")
    if min_cardinality < 1 or max_cardinality < min_cardinality:
        raise ValueError("invalid cardinality range")
    rng = np.random.default_rng(seed)
    labels = np.sort(rng.integers(0, n_communities, size=n_nodes))
    members = [np.flatnonzero(labels == c) for c in range(n_communities)]
    # Guarantee non-empty communities.
    for c, m in enumerate(members):
        if m.size == 0:
            victim = int(rng.integers(0, n_nodes))
            labels[victim] = c
            members = [np.flatnonzero(labels == k) for k in range(n_communities)]
    cards = _sample_cardinalities(
        n_edges, min_cardinality, max_cardinality, rng, cardinality_weights
    )
    edges = []
    for card in cards:
        card = int(card)
        if rng.random() < p_intra:
            pool = members[int(rng.integers(0, n_communities))]
        else:
            pool = np.arange(n_nodes)
        k = min(card, pool.size)
        edges.append(tuple(rng.choice(pool, size=k, replace=False)))
    return Hypergraph(n_nodes, edges), labels


def uniform_random_hypergraph(
    n_nodes: int,
    n_edges: int,
    *,
    min_cardinality: int = 2,
    max_cardinality: int = 5,
    cardinality_weights: Optional[Sequence[float]] = None,
    seed: Optional[int] = None,
) -> Hypergraph:
    """Structure-free random hypergraph (for pure performance workloads)."""
    rng = np.random.default_rng(seed)
    cards = _sample_cardinalities(
        n_edges, min_cardinality, max_cardinality, rng, cardinality_weights
    )
    edges = [
        tuple(rng.choice(n_nodes, size=min(int(c), n_nodes), replace=False))
        for c in cards
    ]
    return Hypergraph(n_nodes, edges)
