"""Hypergraph data structure.

The paper's real-world tensors are adjacency tensors of hypergraphs
(contact-school, trivago-clicks, …): each hyperedge of cardinality ``c``
becomes one non-zero whose indices are the connected nodes. This class
holds the combinatorial object; :mod:`repro.hypergraph.adjacency` performs
the tensor construction with the paper's dummy-node unification.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Hypergraph"]


class Hypergraph:
    """A hypergraph on nodes ``0..n_nodes-1`` with weighted hyperedges.

    Hyperedges are stored as sorted tuples of distinct node ids. Duplicate
    hyperedges are merged by summing weights.
    """

    def __init__(
        self,
        n_nodes: int,
        edges: Iterable[Sequence[int]],
        weights: Iterable[float] | None = None,
    ):
        if n_nodes < 0:
            raise ValueError("n_nodes must be >= 0")
        self.n_nodes = n_nodes
        merged: dict[Tuple[int, ...], float] = {}
        weight_list = list(weights) if weights is not None else None
        for pos, edge in enumerate(edges):
            key = tuple(sorted(set(int(v) for v in edge)))
            if len(key) == 0:
                raise ValueError("empty hyperedge")
            if key[0] < 0 or key[-1] >= n_nodes:
                raise ValueError(f"hyperedge {key} out of node range")
            w = weight_list[pos] if weight_list is not None else 1.0
            merged[key] = merged.get(key, 0.0) + float(w)
        self.edges: List[Tuple[int, ...]] = sorted(merged)
        self.weights = np.array([merged[e] for e in self.edges], dtype=np.float64)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def cardinalities(self) -> np.ndarray:
        """Cardinality (number of nodes) of each hyperedge."""
        return np.array([len(e) for e in self.edges], dtype=np.int64)

    def max_cardinality(self) -> int:
        return int(self.cardinalities().max()) if self.edges else 0

    def cardinality_histogram(self) -> Counter:
        return Counter(len(e) for e in self.edges)

    def degree(self) -> np.ndarray:
        """Number of hyperedges incident to each node."""
        deg = np.zeros(self.n_nodes, dtype=np.int64)
        for edge in self.edges:
            for v in edge:
                deg[v] += 1
        return deg

    def restrict_cardinality(self, max_cardinality: int) -> "Hypergraph":
        """Subset with hyperedges of cardinality ``<= max_cardinality``.

        The paper applies exactly this restriction to bound the tensor
        order (Section VI-A, footnote 1).
        """
        keep = [i for i, e in enumerate(self.edges) if len(e) <= max_cardinality]
        return Hypergraph(
            self.n_nodes,
            [self.edges[i] for i in keep],
            self.weights[keep],
        )

    def __repr__(self) -> str:
        return f"Hypergraph(n_nodes={self.n_nodes}, n_edges={self.n_edges})"
