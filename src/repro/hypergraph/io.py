"""Hyperedge-list text I/O.

The standard interchange format of the hypergraph datasets the paper uses
([33]): one hyperedge per line as whitespace-separated 1-based node ids,
optionally followed by ``# weight`` — plus a header comment with the node
count so isolated trailing nodes survive round trips.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

from .hypergraph import Hypergraph

__all__ = ["write_hyperedges", "read_hyperedges"]

PathLike = Union[str, Path, TextIO]


def _open(target: PathLike, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_hyperedges(hypergraph: Hypergraph, target: PathLike) -> None:
    """Write 1-based hyperedge lines; non-unit weights appended as ``# w``."""
    handle, owned = _open(target, "w")
    try:
        handle.write(f"# nodes: {hypergraph.n_nodes}\n")
        for edge, weight in zip(hypergraph.edges, hypergraph.weights):
            line = " ".join(str(v + 1) for v in edge)
            if weight != 1.0:
                line += f" # {float(weight)!r}"
            handle.write(line + "\n")
    finally:
        if owned:
            handle.close()


def read_hyperedges(source: PathLike, n_nodes: int | None = None) -> Hypergraph:
    """Read a hyperedge list written by :func:`write_hyperedges`.

    ``n_nodes`` overrides the header (or infers ``max id + 1`` when both
    are absent).
    """
    handle, owned = _open(source, "r")
    try:
        edges = []
        weights = []
        header_nodes = None
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            if text.startswith("#"):
                body = text[1:].strip()
                if body.startswith("nodes:"):
                    header_nodes = int(body.split(":", 1)[1])
                continue
            if "#" in text:
                ids_part, weight_part = text.split("#", 1)
                weight = float(weight_part.strip())
            else:
                ids_part, weight = text, 1.0
            try:
                ids = [int(tok) - 1 for tok in ids_part.split()]
            except ValueError as exc:
                raise ValueError(f"line {lineno}: bad node id") from exc
            if not ids:
                raise ValueError(f"line {lineno}: empty hyperedge")
            edges.append(tuple(ids))
            weights.append(weight)
        total = n_nodes if n_nodes is not None else header_nodes
        if total is None:
            total = 1 + max((max(e) for e in edges), default=-1)
        return Hypergraph(total, edges, weights)
    finally:
        if owned:
            handle.close()
