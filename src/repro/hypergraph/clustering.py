"""Tucker-based hypergraph community detection.

The application the paper's introduction motivates: decompose the
symmetric adjacency tensor, then cluster the rows of the factor matrix
``U`` (each row is a node embedding) — the tensor analogue of spectral
clustering [3]. Includes a self-contained k-means (no sklearn offline) and
normalized mutual information for evaluating against planted labels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["kmeans", "cluster_factor", "normalized_mutual_information"]


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    n_init: int = 8,
    max_iters: int = 100,
    seed: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Lloyd's k-means with k-means++ seeding and restarts.

    Returns ``(labels, centers, inertia)`` of the best restart.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")
    rng = np.random.default_rng(seed)
    best: tuple[np.ndarray, np.ndarray, float] | None = None
    for _ in range(n_init):
        centers = _kmeanspp(points, k, rng)
        labels = np.zeros(n, dtype=np.int64)
        for _it in range(max_iters):
            dists = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_labels = dists.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _it > 0:
                break
            labels = new_labels
            for c in range(k):
                mask = labels == c
                if mask.any():
                    centers[c] = points[mask].mean(axis=0)
                else:  # re-seed empty cluster at the farthest point
                    far = dists.min(axis=1).argmax()
                    centers[c] = points[far]
        inertia = float(
            ((points - centers[labels]) ** 2).sum()
        )
        if best is None or inertia < best[2]:
            best = (labels.copy(), centers.copy(), inertia)
    assert best is not None
    return best


def _kmeanspp(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[rng.integers(0, n)]
    closest = ((points - centers[0]) ** 2).sum(axis=1)
    for c in range(1, k):
        total = closest.sum()
        if total <= 0:
            centers[c:] = points[rng.integers(0, n, size=k - c)]
            break
        probs = closest / total
        centers[c] = points[rng.choice(n, p=probs)]
        closest = np.minimum(closest, ((points - centers[c]) ** 2).sum(axis=1))
    return centers


def cluster_factor(
    factor: np.ndarray,
    k: int,
    *,
    n_real_nodes: Optional[int] = None,
    normalize: bool = True,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Cluster factor-matrix rows into ``k`` communities.

    ``n_real_nodes`` drops trailing dummy-node rows before clustering.
    Rows are L2-normalized by default (standard for spectral embeddings).
    """
    rows = np.asarray(factor, dtype=np.float64)
    if n_real_nodes is not None:
        rows = rows[:n_real_nodes]
    if normalize:
        norms = np.linalg.norm(rows, axis=1, keepdims=True)
        rows = rows / np.where(norms > 0, norms, 1.0)
    labels, _, _ = kmeans(rows, k, seed=seed)
    return labels


def normalized_mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """NMI between two label vectors (arithmetic normalization), in [0, 1]."""
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError("label vectors must have the same length")
    n = a.shape[0]
    if n == 0:
        return 0.0
    _, a_ids = np.unique(a, return_inverse=True)
    _, b_ids = np.unique(b, return_inverse=True)
    ka = int(a_ids.max()) + 1
    kb = int(b_ids.max()) + 1
    joint = np.zeros((ka, kb), dtype=np.float64)
    np.add.at(joint, (a_ids, b_ids), 1.0)
    joint /= n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nzmask = joint > 0
    mi = float(
        (joint[nzmask] * np.log(joint[nzmask] / np.outer(pa, pb)[nzmask])).sum()
    )
    ha = float(-(pa[pa > 0] * np.log(pa[pa > 0])).sum())
    hb = float(-(pb[pb > 0] * np.log(pb[pb > 0])).sum())
    denom = (ha + hb) / 2.0
    if denom <= 0:
        return 1.0 if mi <= 0 else 0.0
    return max(0.0, min(1.0, mi / denom))
