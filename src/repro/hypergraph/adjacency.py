"""Hypergraph → sparse symmetric adjacency tensor.

Following Section VI-A: each hyperedge maps to one IOU non-zero whose
indices are its nodes; hyperedges shorter than the tensor order are padded
with *dummy nodes* appended after the real node range, unifying
non-uniform cardinalities. Padding uses one distinct dummy id per missing
slot (``order - cardinality`` of them), so padded indices remain
all-distinct and permutation counts stay maximal — matching the e-adjacency
uniformisation of [2].
"""

from __future__ import annotations

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor
from .hypergraph import Hypergraph

__all__ = ["adjacency_tensor", "dummy_node_count"]


def dummy_node_count(hypergraph: Hypergraph, order: int) -> int:
    """Dummy nodes needed to pad all hyperedges to ``order``."""
    if hypergraph.n_edges == 0:
        return 0
    min_card = int(hypergraph.cardinalities().min())
    return max(0, order - min_card)


def adjacency_tensor(
    hypergraph: Hypergraph,
    order: int | None = None,
    *,
    restrict: bool = True,
) -> SparseSymmetricTensor:
    """Build the order-``order`` symmetric adjacency tensor.

    Parameters
    ----------
    hypergraph:
        Source hypergraph.
    order:
        Target tensor order; defaults to the maximum hyperedge cardinality.
    restrict:
        Drop hyperedges larger than ``order`` (the paper's subsetting);
        with ``restrict=False`` an oversized hyperedge raises.

    Returns
    -------
    :class:`SparseSymmetricTensor` of dimension
    ``n_nodes + dummy_node_count`` with one IOU non-zero per hyperedge.
    """
    if order is None:
        order = hypergraph.max_cardinality()
    if order < 1:
        raise ValueError("order must be >= 1")
    hg = hypergraph.restrict_cardinality(order) if restrict else hypergraph
    if not restrict and hg.n_edges and hg.max_cardinality() > order:
        raise ValueError("hyperedge larger than tensor order")
    n_dummy = dummy_node_count(hg, order)
    dim = hg.n_nodes + n_dummy
    indices = np.zeros((hg.n_edges, order), dtype=np.int64)
    for row, edge in enumerate(hg.edges):
        pad = order - len(edge)
        padded = list(edge) + [hg.n_nodes + t for t in range(pad)]
        indices[row] = sorted(padded)
    return SparseSymmetricTensor(
        order, dim, indices, hg.weights.copy(), combine="error"
    )
