"""Hypergraph substrate: structure, adjacency tensors, clustering."""

from .adjacency import adjacency_tensor, dummy_node_count
from .clustering import cluster_factor, kmeans, normalized_mutual_information
from .generators import planted_partition_hypergraph, uniform_random_hypergraph
from .hypergraph import Hypergraph
from .io import read_hyperedges, write_hyperedges

__all__ = [
    "Hypergraph",
    "read_hyperedges",
    "write_hyperedges",
    "adjacency_tensor",
    "dummy_node_count",
    "planted_partition_hypergraph",
    "uniform_random_hypergraph",
    "kmeans",
    "cluster_factor",
    "normalized_mutual_information",
]
