"""Cross-implementation validation: run all kernel families and compare.

A user-facing sanity tool: given any sparse symmetric tensor and rank,
runs the SymProp kernel, the CSS baseline, SPLATT and (for small problems)
the dense einsum reference, and reports agreement. Useful when adapting
the library to new data, and used by the test suite as an integration
check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .baselines.css_ttmc import css_s3ttmc
from .baselines.dense_ref import dense_s3ttmc_matrix
from .baselines.splatt import splatt_ttmc
from .core.s3ttmc import SymmetricInput, _as_ucoo, s3ttmc
from .decomp.hosvd import random_init
from .symmetry.combinatorics import dense_size

__all__ = ["KernelAgreement", "verify_kernels"]

_DENSE_LIMIT = 2_000_000  # elements; above this the dense reference is skipped


@dataclass
class KernelAgreement:
    """Pairwise max-abs deviations between kernel outputs."""

    reference: str
    deviations: Dict[str, float]
    atol: float

    @property
    def ok(self) -> bool:
        return all(d <= self.atol for d in self.deviations.values())

    def __repr__(self) -> str:
        status = "OK" if self.ok else "MISMATCH"
        parts = ", ".join(f"{k}={v:.2e}" for k, v in self.deviations.items())
        return f"KernelAgreement[{status} vs {self.reference}]({parts})"


def verify_kernels(
    tensor: SymmetricInput,
    rank: int,
    *,
    seed: int = 0,
    atol: float = 1e-8,
    include_splatt: Optional[bool] = None,
    include_dense: Optional[bool] = None,
) -> KernelAgreement:
    """Run every kernel family on ``tensor`` and compare full unfoldings.

    ``include_splatt`` defaults to True when the expanded non-zero count is
    below ~1M; ``include_dense`` when the full tensor is small. The
    reference is the dense einsum result when available, else the CSS
    baseline.
    """
    ucoo = _as_ucoo(tensor)
    factor = random_init(ucoo.dim, rank, np.random.default_rng(seed))

    outputs: Dict[str, np.ndarray] = {}
    outputs["symprop"] = s3ttmc(ucoo, factor).to_full_unfolding()
    outputs["css"] = css_s3ttmc(ucoo, factor)

    if include_splatt is None:
        include_splatt = ucoo.nnz <= 1_000_000
    if include_splatt:
        outputs["splatt"] = splatt_ttmc(ucoo, factor)

    if include_dense is None:
        include_dense = dense_size(ucoo.order, ucoo.dim) <= _DENSE_LIMIT
    if include_dense:
        outputs["dense"] = dense_s3ttmc_matrix(ucoo, factor)

    reference = "dense" if "dense" in outputs else "css"
    ref = outputs[reference]
    deviations = {
        name: float(np.max(np.abs(out - ref))) if out.size else 0.0
        for name, out in outputs.items()
        if name != reference
    }
    return KernelAgreement(reference=reference, deviations=deviations, atol=atol)
