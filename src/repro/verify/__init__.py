"""Differential correctness oracle for the S³TTMc/S³TTMcTC kernel family.

The paper's contribution is an *exact-equality* claim: the compact
(SymProp) evaluation equals the naive expansion (Properties 1–3, the
Eq. 7 recurrence). Four PRs of parallel backends, shared-memory workers
and OOM bisection multiplied the execution paths through that claim —
layouts × backends × reductions × plan reuse × row-block scatter — far
past what hand-written fixtures can pin down. ``repro.verify`` turns the
claim into an always-on subsystem:

* :mod:`repro.verify.generators` — seeded random workloads: orders 3–6,
  uniform / skewed / duplicate-heavy index distributions, and the
  degenerate cases (empty tensor, rank 1, dim 1, single non-zero,
  all-equal indices).
* :mod:`repro.verify.oracles` — the differential check matrix: every
  kernel configuration against the dense einsum reference and against
  each other, with ULP-aware tolerances that distinguish *reordered
  summation* (allclose) from *must be bitwise* (slot-ordered paths), plus
  error-contract checks that misuse fails loudly.
* :mod:`repro.verify.invariants` — run-level invariants after each case:
  the memory budget drains to zero, trace span stacks balance, plan-cache
  hit/miss counters are consistent, and instrumented
  :class:`~repro.core.stats.KernelStats` flop/byte tallies equal the
  closed-form :mod:`repro.perfmodel` predictions.
* :mod:`repro.verify.runner` — the seeded suite (``smoke`` / ``full``)
  behind ``python -m repro.verify``; every mismatch prints a
  seed-plus-config repro line that reruns exactly the failing case.

See ``docs/verification.md`` for the oracle matrix and tolerance policy.
"""

from .generators import GeneratedWorkload, Workload, generate, workloads_for
from .oracles import CheckResult, run_workload_checks
from .invariants import check_budget_preflight, run_case_invariants
from .runner import VerifyReport, run_case, run_suite

__all__ = [
    "CheckResult",
    "GeneratedWorkload",
    "VerifyReport",
    "Workload",
    "check_budget_preflight",
    "generate",
    "run_case",
    "run_case_invariants",
    "run_suite",
    "run_workload_checks",
    "workloads_for",
]
