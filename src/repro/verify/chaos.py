"""Chaos soak suite: randomized faults × cancellations × deadlines.

Each :class:`ChaosSchedule` is a fully seed-determined plan: a workload
from the differential-oracle generators, an execution backend, a set of
injected faults (:mod:`repro.runtime.faults` — including the ``nan`` and
``slow`` kinds), an optional wall-clock deadline, and an optional
cross-thread cancellation timer. The suite runs every schedule and holds
the run to a closed-world contract:

* **Completion** must be oracle-verified — the S³TTMc output matches a
  clean serial reference (allclose; fault retries may reorder
  summation), or the HOOI run reaches the reference's relative error
  with an orthonormal factor.
* **Failure** must be *exactly one typed error* from the resilience
  taxonomy: :class:`~repro.runtime.health.DeadlineExceededError`,
  :class:`~repro.runtime.health.RunCancelledError`,
  :class:`~repro.runtime.health.NumericalHealthError`,
  :class:`~repro.runtime.faults.BackendUnhealthyError` or
  :class:`~repro.runtime.budget.MemoryLimitError`. Anything else — a
  raw ``ValueError`` out of a kernel, a deadlock, a worker traceback —
  fails the suite.
* **Hygiene** holds either way: after the context closes, the memory
  budget is drained and no shared-memory segments created during the
  schedule are still live.

Run it with ``python -m repro.verify --config chaos`` (``--schedules``
sizes the soak; CI runs 50).
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from ..core.s3ttmc import s3ttmc
from ..obs.trace import TraceCollector
from ..runtime.budget import MemoryBudget, MemoryLimitError
from ..runtime.context import ExecContext
from ..runtime.faults import BackendUnhealthyError, FaultInjector, FaultSpec
from ..runtime.health import (
    CancelToken,
    DeadlineExceededError,
    NumericalHealthError,
    RunCancelledError,
)
from .generators import Workload, generate
from .oracles import CheckResult

__all__ = [
    "ChaosSchedule",
    "TYPED_FAILURES",
    "chaos_schedules",
    "run_chaos_case",
]

#: The closed set of acceptable failure types. A chaos run that raises
#: anything outside this tuple fails the suite.
TYPED_FAILURES = (
    DeadlineExceededError,
    RunCancelledError,
    NumericalHealthError,
    BackendUnhealthyError,
    MemoryLimitError,
)

#: Workloads cycled through by the schedule generator (seed is replaced
#: per schedule). Small enough that 50+ schedules stay CI-friendly.
_WORKLOAD_POOL = (
    Workload(order=3, dim=7, rank=4, unnz=25, dist="uniform"),
    Workload(order=3, dim=8, rank=3, unnz=30, dist="skewed"),
    Workload(order=4, dim=6, rank=3, unnz=20, dist="dupes"),
)

_FAULT_KIND_POOL = ("crash", "hang", "oom", "corrupt", "error", "nan", "slow")


@dataclass(frozen=True)
class _ChaosResult(CheckResult):
    """A chaos-suite verdict; the repro line reruns the one schedule."""

    chaos_seed: int = 0

    @property
    def repro(self) -> str:
        return (
            f"python -m repro.verify --config chaos "
            f"--base-seed {self.chaos_seed} --schedules 1"
        )


@dataclass(frozen=True)
class ChaosSchedule:
    """One seed-determined chaos plan (workload + backend + injected chaos)."""

    seed: int
    workload: Workload
    target: str  # "s3ttmc" | "hooi"
    execution: str  # "serial" | "thread" | "process"
    n_workers: Optional[int]
    faults: Tuple[FaultSpec, ...]
    deadline_seconds: Optional[float]
    cancel_after: Optional[float]

    @property
    def spec(self) -> str:
        parts = [f"chaos seed={self.seed}", self.target, self.execution]
        if self.faults:
            parts.append(
                "faults=" + "+".join(f.kind for f in self.faults)
            )
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds:.2f}s")
        if self.cancel_after is not None:
            parts.append(f"cancel@{self.cancel_after:.2f}s")
        return " ".join(parts)


def chaos_schedules(
    n_schedules: int = 50,
    base_seed: int = 0,
    include_process: bool = False,
) -> List[ChaosSchedule]:
    """The seeded schedule matrix: schedule ``i`` draws from RNG
    ``base_seed + i`` alone, so any schedule reruns in isolation."""
    out: List[ChaosSchedule] = []
    for i in range(n_schedules):
        seed = base_seed + i
        rng = np.random.default_rng(seed)
        workload = replace(
            _WORKLOAD_POOL[int(rng.integers(len(_WORKLOAD_POOL)))], seed=seed
        )
        target = "hooi" if rng.random() < 0.34 else "s3ttmc"
        if include_process and i % 3 == 2:
            execution, n_workers = "process", 2
        else:
            execution = "thread" if rng.random() < 0.6 else "serial"
            n_workers = 2 if execution == "thread" else None
        faults = tuple(
            FaultSpec(
                site="chunk",
                kind=_FAULT_KIND_POOL[int(rng.integers(len(_FAULT_KIND_POOL)))],
                after=int(rng.integers(0, 3)),
                times=1,
                seconds=float(rng.uniform(0.1, 0.3)),
                scale=float(rng.uniform(0.5, 2.0)),
            )
            for _ in range(int(rng.integers(0, 3)))
        )
        deadline = (
            float(rng.uniform(0.15, 0.5)) if rng.random() < 0.3 else None
        )
        cancel_after = (
            float(rng.uniform(0.05, 0.25)) if rng.random() < 0.25 else None
        )
        out.append(
            ChaosSchedule(
                seed=seed,
                workload=workload,
                target=target,
                execution=execution,
                n_workers=n_workers,
                faults=faults,
                deadline_seconds=deadline,
                cancel_after=cancel_after,
            )
        )
    return out


def _verify_s3ttmc(schedule: ChaosSchedule, got, gen) -> Tuple[bool, str]:
    ref = s3ttmc(gen.tensor, gen.factor)
    if got.data.shape != ref.data.shape:
        return False, f"shape {got.data.shape} != reference {ref.data.shape}"
    scale = float(np.max(np.abs(ref.data))) if ref.data.size else 0.0
    if not np.allclose(got.data, ref.data, rtol=1e-9, atol=1e-9 * max(scale, 1.0)):
        worst = float(np.max(np.abs(got.data - ref.data))) if got.data.size else 0.0
        return False, f"output diverged from serial reference (max abs {worst:g})"
    return True, "completed; matches serial reference"


def _verify_hooi(schedule: ChaosSchedule, result, reference) -> Tuple[bool, str]:
    if not np.isfinite(result.relative_error):
        return False, f"non-finite relative error {result.relative_error}"
    gram = result.factor.T @ result.factor
    if not np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8):
        return False, "factor lost orthonormality"
    # rtol for genuinely different errors, atol because near-exact
    # recoveries sit at ~1e-8 where backend summation order dominates.
    if not np.isclose(
        result.relative_error, reference.relative_error, rtol=1e-6, atol=1e-6
    ):
        return False, (
            f"relative error {result.relative_error!r} != serial "
            f"reference {reference.relative_error!r}"
        )
    return True, "completed; orthonormal factor at reference error"


def run_chaos_case(
    schedule: ChaosSchedule, *, trace_path: Optional[str] = None
) -> List[CheckResult]:
    """Run one schedule; return its outcome and hygiene verdicts."""
    from ..parallel import shm as _shm
    from ..parallel.executor import parallel_s3ttmc

    gen = generate(schedule.workload)
    token = CancelToken() if schedule.cancel_after is not None else None
    segments_before = set(_shm._LIVE_SEGMENTS)
    ctx = ExecContext(
        budget=MemoryBudget(),
        collector=TraceCollector(),
        execution=schedule.execution,
        n_workers=schedule.n_workers,
        faults=FaultInjector(list(schedule.faults)),
        deadline_seconds=schedule.deadline_seconds,
        cancel=token,
    )
    timer: Optional[threading.Timer] = None
    if token is not None:
        timer = threading.Timer(
            schedule.cancel_after, token.cancel, args=("chaos eviction",)
        )
        timer.daemon = True
        timer.start()

    ok = True
    detail = ""
    try:
        try:
            if schedule.target == "s3ttmc":
                got = parallel_s3ttmc(gen.tensor, gen.factor, ctx=ctx)
                ok, detail = _verify_s3ttmc(schedule, got, gen)
            else:
                from ..decomp.hooi import hooi

                with tempfile.TemporaryDirectory() as ckpt_dir:
                    result = hooi(
                        gen.tensor,
                        schedule.workload.rank,
                        max_iters=3,
                        seed=schedule.seed,
                        ctx=ctx,
                        checkpoint_dir=ckpt_dir,
                        checkpoint_every=1,
                    )
                reference = hooi(
                    gen.tensor, schedule.workload.rank, max_iters=3,
                    seed=schedule.seed,
                )
                ok, detail = _verify_hooi(schedule, result, reference)
        except TYPED_FAILURES as exc:
            ok, detail = True, f"typed failure: {type(exc).__name__}: {exc}"
        except BaseException as exc:  # noqa: BLE001 - the whole point
            ok = False
            detail = f"UNTYPED failure: {type(exc).__name__}: {exc}"
    finally:
        if timer is not None:
            timer.cancel()
        ctx.close()

    results: List[CheckResult] = [
        _ChaosResult(
            spec=schedule.spec,
            check="chaos:outcome",
            mode="invariant",
            ok=ok,
            detail=detail,
            chaos_seed=schedule.seed,
        )
    ]

    hygiene_ok = True
    hygiene_detail = "budget drained, no shm leaks"
    # Plan-cache lattice bytes are tensor-lifetime by design (the plan is
    # memoized on the tensor instance), so they are not a per-run leak;
    # everything else must have drained even on a cancelled/failed run.
    residual = {
        label: nbytes
        for label, nbytes in ctx.budget.allocations.items()
        if not label.startswith("lattice level")
    }
    if residual:
        hygiene_ok = False
        hygiene_detail = f"budget not drained; held allocations: {residual}"
    leaked = set(_shm._LIVE_SEGMENTS) - segments_before
    if leaked:
        hygiene_ok = False
        hygiene_detail = f"leaked shm segments: {sorted(leaked)}"
    results.append(
        _ChaosResult(
            spec=schedule.spec,
            check="chaos:hygiene",
            mode="invariant",
            ok=hygiene_ok,
            detail=hygiene_detail,
            chaos_seed=schedule.seed,
        )
    )

    if trace_path is not None:
        import warnings

        from ..obs.export import write_trace

        try:
            write_trace(ctx.collector, trace_path, append=True)
        except OSError as exc:
            warnings.warn(
                f"could not write chaos trace to {trace_path!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    return results
