"""The differential check matrix: every kernel path against every other.

Each check compares one kernel configuration against the dense einsum
reference or against the canonical compact serial evaluation, under one
of three modes:

``bitwise``
    The two paths perform the *same* floating-point operations in the
    same order (plan reuse, ``out=`` accumulation from zeros, identity
    ``out_row_map``, slot-ordered blocked reduction across backends) —
    results must be identical to the last bit.
``allclose``
    The paths reorder summation (different layouts, batching, block
    sizes, partitions, tree reduction) — results must agree to a
    scale-aware tolerance, with the maximum ULP distance reported.
``raises``
    Error contracts: misuse (narrow ``out`` dtypes, unmapped row-map
    entries, stale plans) must fail loudly instead of corrupting output.

Every result carries the workload spec string, so a failure prints as a
single rerunnable ``python -m repro.verify --case … --check …`` line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..baselines.css_ttmc import css_s3ttmc, css_s3ttmc_tc
from ..baselines.dense_ref import dense_s3ttmc_matrix, dense_s3ttmc_tc
from ..core.engine import lattice_ttmc
from ..core.plan import build_plan
from ..core.s3ttmc import s3ttmc
from ..core.s3ttmc_tc import s3ttmc_tc
from ..cp.mttkrp import symmetric_mttkrp
from ..obs.trace import TraceCollector
from ..parallel.distributed import exchange_from_trace, plan_sharded_exchange
from ..parallel.executor import ParallelRunReport, parallel_s3ttmc
from ..runtime.context import ExecContext
from ..runtime.faults import FaultInjector, FaultSpec
from ..symmetry.combinatorics import dense_size, sym_storage_size
from .generators import GeneratedWorkload

__all__ = [
    "CheckResult",
    "run_workload_checks",
    "max_ulp_diff",
    "DENSE_LIMIT",
]

#: Skip dense-reference checks when the full tensor would exceed this
#: many entries (the reference materializes ``dim**order`` doubles).
DENSE_LIMIT = 500_000

#: Scale-relative tolerance for reordered-summation (allclose) checks.
ALLCLOSE_RTOL = 1e-9


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one differential or contract check."""

    spec: str  # workload spec string (seed + config)
    check: str  # e.g. "full-vs-compact", "parallel:thread:blocked"
    mode: str  # "bitwise" | "allclose" | "raises" | "invariant"
    ok: bool
    detail: str = ""

    @property
    def repro(self) -> str:
        """A shell line that reruns exactly this case and check."""
        return (
            f'python -m repro.verify --case "{self.spec}" --check {self.check}'
        )


def max_ulp_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Largest elementwise distance in units of last place.

    ``|a - b| / spacing(max(|a|, |b|))`` — 0.0 means bitwise identical,
    a few ULP means same-operation different-rounding, large values mean
    genuinely different sums.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0:
        return 0.0
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        spacing = np.spacing(np.maximum(np.abs(a), np.abs(b)))
        ulp = np.abs(a - b) / spacing
    ulp = np.where(np.isnan(ulp), 0.0, ulp)
    return float(np.max(ulp))


def _compare(
    spec: str, check: str, mode: str, got: np.ndarray, ref: np.ndarray
) -> CheckResult:
    got = np.asarray(got, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    if got.shape != ref.shape:
        return CheckResult(
            spec, check, mode, False, f"shape {got.shape} != {ref.shape}"
        )
    if mode == "bitwise":
        if np.array_equal(got, ref):
            return CheckResult(spec, check, mode, True)
        return CheckResult(
            spec,
            check,
            mode,
            False,
            f"not bitwise: max|Δ|={float(np.max(np.abs(got - ref))):.3e}, "
            f"max ulp={max_ulp_diff(got, ref):.1f}",
        )
    scale = float(np.max(np.abs(ref))) if ref.size else 0.0
    tol = ALLCLOSE_RTOL * max(1.0, scale)
    dev = float(np.max(np.abs(got - ref))) if ref.size else 0.0
    ok = dev <= tol
    detail = "" if ok else (
        f"max|Δ|={dev:.3e} > tol={tol:.3e} "
        f"(scale={scale:.3e}, max ulp={max_ulp_diff(got, ref):.1f})"
    )
    return CheckResult(spec, check, "allclose", ok, detail)


def _expect_raises(
    spec: str, check: str, fn: Callable[[], object], exc: type
) -> CheckResult:
    try:
        fn()
    except exc as e:
        return CheckResult(spec, check, "raises", True, type(e).__name__)
    except Exception as e:  # pragma: no cover - unexpected error class
        return CheckResult(
            spec,
            check,
            "raises",
            False,
            f"raised {type(e).__name__} instead of {exc.__name__}: {e}",
        )
    return CheckResult(
        spec,
        check,
        "raises",
        False,
        f"no {exc.__name__} raised — the misuse was silently accepted",
    )


def _guarded(
    spec: str, check: str, mode: str, fn: Callable[[], CheckResult]
) -> CheckResult:
    """Run a check body, converting unexpected exceptions into failures."""
    try:
        return fn()
    except Exception as e:
        return CheckResult(
            spec, check, mode, False, f"raised {type(e).__name__}: {e}"
        )


def _dense_mttkrp(tensor, factor: np.ndarray) -> np.ndarray:
    dense = tensor.to_dense()
    subs = "abcdefgh"[: tensor.order]
    spec = subs + "," + ",".join(f"{s}r" for s in subs[1:])
    return np.einsum(spec + "->" + subs[0] + "r", dense, *([factor] * (tensor.order - 1)))


def run_workload_checks(
    gen: GeneratedWorkload,
    ctx: ExecContext,
    *,
    include_process: bool = False,
    dense_limit: int = DENSE_LIMIT,
) -> List[CheckResult]:
    """Run the full differential matrix for one workload.

    ``ctx`` carries the case's budget/collector/plan cache; kernels are
    invoked with it explicitly (it is never installed ambiently, so the
    dense reference materializations stay outside the budget). The
    returned list contains one :class:`CheckResult` per executed check;
    infeasible checks (dense reference too large, parallel on an empty
    tensor) are skipped, not failed.
    """
    x, u, spec = gen.tensor, gen.factor, gen.spec.spec
    order, dim, rank = gen.spec.order, gen.spec.dim, gen.spec.rank
    unnz = x.unnz
    cols = sym_storage_size(order - 1, rank)
    dense_ok = dense_size(order, dim) <= dense_limit
    results: List[CheckResult] = []

    # Canonical path: serial compact kernel, plan memoized on the tensor.
    y_p = s3ttmc(x, u, ctx=ctx)
    canonical = y_p.data
    y_full = y_p.to_full_unfolding()

    if dense_ok:
        dense_y = dense_s3ttmc_matrix(x, u)
        results.append(
            _compare(spec, "compact-vs-dense", "allclose", y_full, dense_y)
        )
        results.append(
            _guarded(
                spec,
                "cp-vs-dense",
                "allclose",
                lambda: _compare(
                    spec,
                    "cp-vs-dense",
                    "allclose",
                    symmetric_mttkrp(x, u),
                    _dense_mttkrp(x, u),
                ),
            )
        )
        results.append(
            _guarded(
                spec,
                "tc-vs-dense",
                "allclose",
                lambda: _compare(
                    spec,
                    "tc-vs-dense",
                    "allclose",
                    s3ttmc_tc(x, u, ctx=ctx).a,
                    dense_s3ttmc_tc(x, u),
                ),
            )
        )

    # Property 1: full (CSS) layout equals the expanded compact result.
    results.append(
        _guarded(
            spec,
            "full-vs-compact",
            "allclose",
            lambda: _compare(
                spec,
                "full-vs-compact",
                "allclose",
                css_s3ttmc(x, u, ctx=ctx),
                y_full,
            ),
        )
    )
    # TC on the full layout equals TC on the compact layout.
    results.append(
        _guarded(
            spec,
            "tc-full-vs-compact",
            "allclose",
            lambda: _compare(
                spec,
                "tc-full-vs-compact",
                "allclose",
                css_s3ttmc_tc(x, u, ctx=ctx),
                s3ttmc_tc(x, u, ctx=ctx).a,
            ),
        )
    )

    def kernel(**kwargs) -> np.ndarray:
        return lattice_ttmc(
            x.indices, x.values, dim, u, intermediate="compact", ctx=ctx, **kwargs
        )

    # Plan reuse: same plan object across calls, and an independently
    # rebuilt plan, both bitwise against the canonical run.
    plan = build_plan(x.indices, "global", None)
    results.append(
        _guarded(
            spec,
            "plan-reuse",
            "bitwise",
            lambda: _compare(
                spec, "plan-reuse", "bitwise", kernel(plan=plan), canonical
            ),
        )
    )
    results.append(
        _guarded(
            spec,
            "plan-rebuild",
            "bitwise",
            lambda: _compare(
                spec,
                "plan-rebuild",
                "bitwise",
                kernel(plan=build_plan(x.indices, "global", None)),
                canonical,
            ),
        )
    )

    # Compiled kernels (repro.core.compile): the fused exec-generated
    # path preserves operation order (stable scatter sort, degree-group
    # reductions, node-aligned chunks) so it must match the generic
    # kernel bitwise; batching/memoization variants reorder (allclose).
    results.append(
        _guarded(
            spec,
            "compiled-vs-generic",
            "bitwise",
            lambda: _compare(
                spec,
                "compiled-vs-generic",
                "bitwise",
                kernel(kernel="compiled"),
                canonical,
            ),
        )
    )
    if dense_ok:
        results.append(
            _guarded(
                spec,
                "compiled-vs-dense",
                "allclose",
                lambda: _compare(
                    spec,
                    "compiled-vs-dense",
                    "allclose",
                    s3ttmc(x, u, kernel="compiled", ctx=ctx).to_full_unfolding(),
                    dense_y,
                ),
            )
        )

    def _compiled_plan_reuse() -> CheckResult:
        # Two calls on the same stamped plan: the second hits the
        # per-plan gather-table cache and must still be bitwise.
        kernel(kernel="compiled", plan=plan)
        return _compare(
            spec,
            "compiled-plan-reuse",
            "bitwise",
            kernel(kernel="compiled", plan=plan),
            canonical,
        )

    results.append(
        _guarded(spec, "compiled-plan-reuse", "bitwise", _compiled_plan_reuse)
    )
    results.append(
        _guarded(
            spec,
            "compiled-chunk-invariance",
            "bitwise",
            lambda: _compare(
                spec,
                "compiled-chunk-invariance",
                "bitwise",
                kernel(kernel="compiled", chunk_edges=64),
                kernel(kernel="compiled", chunk_edges=100_000),
            ),
        )
    )
    if unnz > 0:
        results.append(
            _guarded(
                spec,
                "compiled-nz-batch",
                "allclose",
                lambda: _compare(
                    spec,
                    "compiled-nz-batch",
                    "allclose",
                    kernel(kernel="compiled", nz_batch_size=max(1, unnz // 3)),
                    canonical,
                ),
            )
        )
    results.append(
        _guarded(
            spec,
            "compiled-memoize-nonzero",
            "allclose",
            lambda: _compare(
                spec,
                "compiled-memoize-nonzero",
                "allclose",
                kernel(kernel="compiled", memoize="nonzero"),
                canonical,
            ),
        )
    )

    # Reordered-summation paths: batching, memoization scope, forced
    # non-hoisted gathers (tiny block_bytes also splits the scatter).
    if unnz > 0:
        batch = max(1, unnz // 3)
        results.append(
            _guarded(
                spec,
                "nz-batch",
                "allclose",
                lambda: _compare(
                    spec,
                    "nz-batch",
                    "allclose",
                    kernel(nz_batch_size=batch),
                    canonical,
                ),
            )
        )
    results.append(
        _guarded(
            spec,
            "memoize-nonzero",
            "allclose",
            lambda: _compare(
                spec,
                "memoize-nonzero",
                "allclose",
                kernel(memoize="nonzero"),
                canonical,
            ),
        )
    )
    results.append(
        _guarded(
            spec,
            "nohoist-tiny-blocks",
            "allclose",
            lambda: _compare(
                spec,
                "nohoist-tiny-blocks",
                "allclose",
                kernel(block_bytes=2048),
                canonical,
            ),
        )
    )

    # out= / out_row_map= accumulation: same operations, same order.
    def _out_case() -> CheckResult:
        out = np.zeros((dim, cols), dtype=np.float64)
        kernel(out=out)
        return _compare(spec, "out-accumulate", "bitwise", out, canonical)

    results.append(_guarded(spec, "out-accumulate", "bitwise", _out_case))

    def _row_map_identity() -> CheckResult:
        out = np.zeros((dim, cols), dtype=np.float64)
        kernel(out=out, out_row_map=np.arange(dim, dtype=np.int64))
        return _compare(spec, "out-row-map-identity", "bitwise", out, canonical)

    results.append(
        _guarded(spec, "out-row-map-identity", "bitwise", _row_map_identity)
    )

    if unnz >= 2:

        def _row_map_blocks() -> CheckResult:
            from ..parallel.executor import chunk_row_block

            acc = np.zeros((dim, cols), dtype=np.float64)
            mid = unnz // 2
            for start, stop in ((0, mid), (mid, unnz)):
                rows, row_map = chunk_row_block(x.indices[start:stop], dim)
                block = np.zeros((rows.shape[0], cols), dtype=np.float64)
                lattice_ttmc(
                    x.indices[start:stop],
                    x.values[start:stop],
                    dim,
                    u,
                    intermediate="compact",
                    out=block,
                    out_row_map=row_map,
                    ctx=ctx,
                )
                acc[rows] += block
            return _compare(spec, "out-row-map-blocks", "allclose", acc, canonical)

        results.append(
            _guarded(spec, "out-row-map-blocks", "allclose", _row_map_blocks)
        )

    # Error contracts — misuse must raise, never corrupt.
    results.append(
        _expect_raises(
            spec,
            "rejects-float32-out",
            lambda: kernel(out=np.zeros((dim, cols), dtype=np.float32)),
            ValueError,
        )
    )
    results.append(
        _expect_raises(
            spec,
            "rejects-int-out",
            lambda: kernel(out=np.zeros((dim, cols), dtype=np.int64)),
            ValueError,
        )
    )
    touched = np.unique(x.indices) if unnz else np.zeros(0, dtype=np.int64)
    if touched.size >= 1:

        def _unmapped() -> object:
            # Map every touched row except the last; the engine must
            # refuse the -1 instead of wrapping to local row -1.
            row_map = np.full(dim, -1, dtype=np.int64)
            kept = touched[:-1]
            row_map[kept] = np.arange(kept.shape[0], dtype=np.int64)
            out = np.zeros((max(kept.shape[0], 1), cols), dtype=np.float64)
            return kernel(out=out, out_row_map=row_map)

        results.append(
            _expect_raises(spec, "rejects-unmapped-rows", _unmapped, ValueError)
        )
    if unnz >= 1 and dim >= 2:
        alt = np.sort((x.indices + 1) % dim, axis=1)
        perm = np.lexsort(alt.T[::-1])
        alt = alt[perm]
        if alt.tobytes() != x.indices.tobytes():
            stale = build_plan(alt, "global", None)
            results.append(
                _expect_raises(
                    spec,
                    "rejects-stale-plan",
                    lambda: kernel(plan=stale),
                    ValueError,
                )
            )

    # Parallel backends: blocked reduction is slot-ordered, so all
    # backends must agree bitwise with each other; against the unchunked
    # kernel the partition reorders summation (allclose). Tree reduction
    # reorders too.
    if unnz > 0:
        n_workers = 3

        def _parallel(
            backend: str,
            reduction: str,
            kernel_mode: str = "generic",
            sharding: str = "broadcast",
            run_ctx: ExecContext = None,
            report: ParallelRunReport = None,
        ) -> np.ndarray:
            report = ParallelRunReport() if report is None else report
            return parallel_s3ttmc(
                x,
                u,
                n_workers,
                backend=backend,
                reduction=reduction,
                kernel=kernel_mode,
                sharding=sharding,
                report=report,
                ctx=ctx if run_ctx is None else run_ctx,
            ).data

        def _blocked_matrix() -> List[CheckResult]:
            out: List[CheckResult] = []
            base = _parallel("serial", "blocked")
            out.append(
                _compare(
                    spec, "parallel:serial:blocked", "allclose", base, canonical
                )
            )
            out.append(
                _compare(
                    spec,
                    "parallel:thread:blocked",
                    "bitwise",
                    _parallel("thread", "blocked"),
                    base,
                )
            )
            if include_process:
                out.append(
                    _compare(
                        spec,
                        "parallel:process:blocked",
                        "bitwise",
                        _parallel("process", "blocked"),
                        base,
                    )
                )
            out.append(
                _compare(
                    spec,
                    "parallel:thread:tree",
                    "allclose",
                    _parallel("thread", "tree"),
                    canonical,
                )
            )
            # Compiled kernels under the blocked reduction: every backend
            # must match the serial-blocked *compiled* base bitwise (the
            # chunk partition itself reorders vs the unchunked canonical,
            # hence the allclose anchor row).
            base_c = _parallel("serial", "blocked", "compiled")
            out.append(
                _compare(
                    spec,
                    "parallel:serial:blocked:compiled",
                    "allclose",
                    base_c,
                    canonical,
                )
            )
            out.append(
                _compare(
                    spec,
                    "parallel:thread:blocked:compiled",
                    "bitwise",
                    _parallel("thread", "blocked", "compiled"),
                    base_c,
                )
            )
            if include_process:
                out.append(
                    _compare(
                        spec,
                        "parallel:process:blocked:compiled",
                        "bitwise",
                        _parallel("process", "blocked", "compiled"),
                        base_c,
                    )
                )
            return out

        try:
            results.extend(_blocked_matrix())
        except Exception as e:
            results.append(
                CheckResult(
                    spec,
                    "parallel:matrix",
                    "allclose",
                    False,
                    f"raised {type(e).__name__}: {e}",
                )
            )

        # Sharded execution (sharding="owned"): workers own disjoint
        # tensor shards and partials merge through the deterministic
        # hierarchical tree. Cross-shard sums are reordered relative to
        # the slot-ordered broadcast reduce, so the sharded serial run
        # anchors allclose against the canonical kernel — and every
        # backend running the same shards must match it bitwise.
        def _sharded_matrix() -> List[CheckResult]:
            out: List[CheckResult] = []
            base = _parallel("serial", "blocked", sharding="owned")
            out.append(
                _compare(
                    spec, "sharded:serial:owned", "allclose", base, canonical
                )
            )
            out.append(
                _compare(
                    spec,
                    "sharded:thread:owned",
                    "bitwise",
                    _parallel("thread", "blocked", sharding="owned"),
                    base,
                )
            )
            if include_process:
                out.append(
                    _compare(
                        spec,
                        "sharded:process:owned",
                        "bitwise",
                        _parallel("process", "blocked", sharding="owned"),
                        base,
                    )
                )
            base_c = _parallel("serial", "blocked", "compiled", sharding="owned")
            out.append(
                _compare(
                    spec,
                    "sharded:serial:owned:compiled",
                    "allclose",
                    base_c,
                    canonical,
                )
            )
            out.append(
                _compare(
                    spec,
                    "sharded:thread:owned:compiled",
                    "bitwise",
                    _parallel("thread", "blocked", "compiled", sharding="owned"),
                    base_c,
                )
            )
            if include_process:
                out.append(
                    _compare(
                        spec,
                        "sharded:process:owned:compiled",
                        "bitwise",
                        _parallel(
                            "process", "blocked", "compiled", sharding="owned"
                        ),
                        base_c,
                    )
                )

            def _exchange_agreement() -> CheckResult:
                # The merge's emitted parallel.reduce.exchange events must
                # equal the planned schedule record-for-record — the
                # contract the distributed simulator builds on.
                collector = TraceCollector()
                run_ctx = ExecContext(
                    budget=ctx.effective_budget(),
                    collector=collector,
                    plans=ctx.plans,
                )
                _parallel("serial", "blocked", sharding="owned", run_ctx=run_ctx)
                planned = plan_sharded_exchange(
                    x, n_workers, rank, ctx=run_ctx
                ).exchanges
                measured = exchange_from_trace(collector)
                ok = measured == planned
                detail = (
                    ""
                    if ok
                    else f"measured {measured!r} != planned {planned!r}"
                )
                return CheckResult(
                    spec, "sharded:exchange-plan-vs-trace", "invariant", ok, detail
                )

            out.append(
                _guarded(
                    spec,
                    "sharded:exchange-plan-vs-trace",
                    "invariant",
                    _exchange_agreement,
                )
            )

            if include_process:

                def _shard_loss_recovery() -> CheckResult:
                    # Crash one shard owner mid-run: the respawned worker
                    # re-ingests its shard from the parent's canonical copy
                    # and the run must complete bitwise-identical anyway.
                    name = "sharded:shard-loss-recovery"
                    injector = FaultInjector(
                        [FaultSpec(site="chunk", kind="crash", match={"slot": 0})],
                        seed=0,
                    )
                    run_ctx = ExecContext(
                        budget=ctx.effective_budget(),
                        plans=ctx.plans,
                        faults=injector,
                    )
                    report = ParallelRunReport()
                    got = _parallel(
                        "process",
                        "blocked",
                        sharding="owned",
                        run_ctx=run_ctx,
                        report=report,
                    )
                    if injector.n_fired == 0:
                        return CheckResult(
                            spec, name, "invariant", False, "fault never fired"
                        )
                    if report.shard_reingests < 1:
                        return CheckResult(
                            spec,
                            name,
                            "invariant",
                            False,
                            f"no shard re-ingest (respawns={report.respawns}, "
                            f"fallbacks={report.fallbacks})",
                        )
                    return _compare(spec, name, "bitwise", got, base)

                out.append(
                    _guarded(
                        spec,
                        "sharded:shard-loss-recovery",
                        "invariant",
                        _shard_loss_recovery,
                    )
                )
            return out

        try:
            results.extend(_sharded_matrix())
        except Exception as e:
            results.append(
                CheckResult(
                    spec,
                    "sharded:matrix",
                    "allclose",
                    False,
                    f"raised {type(e).__name__}: {e}",
                )
            )
    return results
