"""CLI for the differential oracle: ``python -m repro.verify``.

Examples::

    python -m repro.verify --config smoke          # CI gate (<2 min)
    python -m repro.verify --config full --seeds 4
    python -m repro.verify --config chaos --schedules 50   # resilience soak
    python -m repro.verify --case "order=3,dim=7,rank=4,unnz=25,dist=uniform,seed=0" \
        --check plan-reuse

Exit status 0 when every check passes, 1 otherwise; each failure prints
the exact ``--case``/``--check`` line that reruns it.

Observability rides along exactly as in the bench harness: set
``REPRO_TRACE=path.jsonl`` to append every case's spans/metrics, and
``REPRO_PROFILE=path[:interval_ms]`` to sample the whole run into a
folded-stack profile.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from ..obs.profile import profiler_from_env
from .generators import Workload
from .runner import VerifyReport, run_case, run_suite


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Differential correctness oracle for the S³TTMc kernel family.",
    )
    parser.add_argument(
        "--config",
        choices=("smoke", "full", "chaos"),
        default="smoke",
        help="workload matrix size, or 'chaos' for the resilience soak "
        "(default: smoke)",
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=50,
        help="number of seeded chaos schedules (--config chaos only; "
        "default: 50)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=2,
        help="seed replicas of the randomized matrix (default: 2)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0, help="first RNG seed (default: 0)"
    )
    parser.add_argument(
        "--case",
        metavar="SPEC",
        help='run one workload, e.g. "order=3,dim=7,rank=4,unnz=25,dist=uniform,seed=0"',
    )
    parser.add_argument(
        "--check",
        metavar="NAME",
        help="restrict to one named check (e.g. plan-reuse, budget-preflight)",
    )
    parser.add_argument(
        "--include-process",
        action="store_true",
        help="also cross-check the process backend (slower: worker spawn cost)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-case progress lines"
    )
    args = parser.parse_args(argv)

    trace_path = os.environ.get("REPRO_TRACE") or None
    profiler = profiler_from_env()
    start = time.perf_counter()
    if profiler is not None:
        profiler.start()
    try:
        if args.case is not None:
            try:
                spec = Workload.from_spec(args.case)
            except ValueError as e:
                parser.error(str(e))
            report = VerifyReport()
            report.results.extend(
                run_case(
                    spec,
                    include_process=args.include_process,
                    check=args.check,
                    trace_path=trace_path,
                )
            )
            if not report.results:
                print(
                    f"no check named {args.check!r} ran for this case",
                    file=sys.stderr,
                )
                return 2
        else:

            def on_case(spec: Workload, results) -> None:
                if args.quiet:
                    return
                bad = sum(1 for r in results if not r.ok)
                status = "ok" if not bad else f"{bad} FAILED"
                print(f"  {spec.spec}: {len(results)} checks, {status}")

            report = run_suite(
                args.config,
                seeds=args.seeds,
                base_seed=args.base_seed,
                include_process=args.include_process,
                check=args.check,
                on_case=on_case,
                trace_path=trace_path,
                schedules=args.schedules,
            )
            if not report.results:
                print(f"no check named {args.check!r} ran", file=sys.stderr)
                return 2
    finally:
        if profiler is not None:
            profiler.stop()

    elapsed = time.perf_counter() - start
    print(f"{report.summary()} in {elapsed:.1f}s")
    if not report.ok:
        print()
        print(report.format_failures())
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
