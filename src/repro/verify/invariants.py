"""Run-level invariant checks: the accounting must balance after every case.

The differential checks in :mod:`repro.verify.oracles` compare *values*;
the checks here compare *bookkeeping*. After a case's kernels have run:

* the case's :class:`~repro.runtime.budget.MemoryBudget` must have drained
  back to zero — a positive ``in_use`` means some kernel requested bytes
  it never released (exactly the class of leak that made retry-after-OOM
  logic see a budget that never frees);
* the thread's trace span stack must be balanced and the collector's
  recorded spans internally consistent (no dangling parents, no negative
  durations);
* re-running the parallel kernel on the same context must hit the plan
  cache — a miss on the second run means the cache key or the plan
  staleness stamp regressed;
* in the closed-form regime (all-distinct indices, per-non-zero
  memoization) the instrumented :class:`~repro.core.stats.KernelStats`
  flop and intermediate-byte tallies must equal the
  :mod:`repro.perfmodel` predictions *exactly* — both are derived from
  the same lattice combinatorics, so any gap is a counting bug on one
  side.

:func:`check_budget_preflight` is a standalone canary for the
request-before-allocate contract in the level-table hoist: it watches the
process's actual traced allocations (``tracemalloc``) while a budgeted
kernel is refused, and fails if the refused bytes were materialized
before the budget said no.
"""

from __future__ import annotations

import math
import tracemalloc
from typing import List

import numpy as np

from ..core.engine import lattice_ttmc
from ..core.stats import KernelStats
from ..data.synthetic import random_iou_pattern
from ..obs import open_span_depth
from ..parallel.executor import ParallelRunReport, parallel_s3ttmc
from ..perfmodel import kernel_flops_for_layout
from ..runtime.budget import MemoryBudget, MemoryLimitError
from ..runtime.context import ExecContext
from ..symmetry.combinatorics import sym_storage_size
from .generators import GeneratedWorkload
from .oracles import CheckResult

__all__ = ["run_case_invariants", "check_budget_preflight"]


def _entry_size(intermediate: str, level: int, rank: int) -> int:
    if intermediate == "compact":
        return sym_storage_size(level, rank)
    if intermediate == "full":
        return rank**level
    return rank  # cp


def run_case_invariants(gen: GeneratedWorkload, ctx: ExecContext) -> List[CheckResult]:
    """Post-case accounting checks for one workload on its context."""
    spec = gen.spec.spec
    x, u = gen.tensor, gen.factor
    order, rank = gen.spec.order, gen.spec.rank
    unnz = x.unnz
    results: List[CheckResult] = []

    # Budget drained back to zero.
    try:
        if ctx.budget is not None:
            ctx.budget.assert_drained()
        results.append(CheckResult(spec, "budget-drained", "invariant", True))
    except RuntimeError as e:
        results.append(CheckResult(spec, "budget-drained", "invariant", False, str(e)))

    # Span stack balanced on this thread.
    depth = open_span_depth()
    results.append(
        CheckResult(
            spec,
            "span-stack-balanced",
            "invariant",
            depth == 0,
            "" if depth == 0 else f"{depth} span(s) still open after the case",
        )
    )

    # Collector-recorded spans internally consistent.
    if ctx.collector is not None:
        problems = ctx.collector.check_consistency()
        results.append(
            CheckResult(
                spec,
                "trace-consistent",
                "invariant",
                not problems,
                "; ".join(problems[:4]),
            )
        )

    # Plan cache: a repeated parallel run on the same context must be
    # all hits — a miss means the cache key or staleness stamp regressed.
    if unnz > 0:
        try:
            parallel_s3ttmc(x, u, 2, backend="serial", ctx=ctx)
            second = ParallelRunReport()
            parallel_s3ttmc(x, u, 2, backend="serial", report=second, ctx=ctx)
            ok = second.plan_cache_misses == 0 and second.plan_cache_hits > 0
            results.append(
                CheckResult(
                    spec,
                    "plan-cache-hits",
                    "invariant",
                    ok,
                    ""
                    if ok
                    else (
                        f"second run: {second.plan_cache_hits} hits, "
                        f"{second.plan_cache_misses} misses (expected all hits)"
                    ),
                )
            )
        except Exception as e:
            results.append(
                CheckResult(
                    spec,
                    "plan-cache-hits",
                    "invariant",
                    False,
                    f"raised {type(e).__name__}: {e}",
                )
            )

    # Closed-form flop model (Eq. 9 regime: all-distinct rows, per-non-zero
    # memoization — no cross-non-zero sharing, so counts are exact).
    if unnz > 0 and gen.all_distinct:
        for intermediate in ("compact", "full", "cp"):
            name = f"flops-match-model:{intermediate}"
            try:
                stats = KernelStats()
                lattice_ttmc(
                    x.indices,
                    x.values,
                    gen.spec.dim,
                    u,
                    intermediate=intermediate,
                    memoize="nonzero",
                    stats=stats,
                    ctx=ctx,
                )
                want = kernel_flops_for_layout(intermediate, order, rank, unnz)
                ok = stats.kernel_flops == want
                detail = (
                    ""
                    if ok
                    else f"measured {stats.kernel_flops} != model {want}"
                )
                if ok:
                    want_bytes = max(
                        math.comb(order, level)
                        * unnz
                        * _entry_size(intermediate, level, rank)
                        * 8
                        for level in range(2, order)
                    )
                    ok = stats.intermediate_bytes == want_bytes
                    detail = (
                        ""
                        if ok
                        else (
                            f"intermediate_bytes {stats.intermediate_bytes} "
                            f"!= model {want_bytes}"
                        )
                    )
                results.append(CheckResult(spec, name, "invariant", ok, detail))
            except Exception as e:
                results.append(
                    CheckResult(
                        spec,
                        name,
                        "invariant",
                        False,
                        f"raised {type(e).__name__}: {e}",
                    )
                )
    return results


def check_budget_preflight() -> CheckResult:
    """Canary for the request-before-allocate contract in the level hoist.

    Builds a workload whose hoisted gather tables (``(dim + M_prev) ·
    S_{l,R} · 8`` bytes, dominated by ``dim``) far exceed a small budget,
    runs the kernel with a caller-provided ``out`` (so the output itself
    is never requested), and measures the process's *traced* peak
    allocation across the refused call. If the kernel materializes the
    tables before asking the budget, the traced peak jumps by the table
    size even though ``MemoryLimitError`` is still raised — the exact
    signature of the pre-flight-ordering bug.
    """
    spec = "order=3,dim=40000,rank=8,unnz=48,dist=uniform,seed=0"
    order, dim, rank, unnz = 3, 40000, 8, 48
    rng = np.random.default_rng(0)
    indices = random_iou_pattern(order, dim, unnz, rng)
    values = rng.standard_normal(indices.shape[0])
    factor = rng.standard_normal((dim, rank))
    cols = sym_storage_size(order - 1, rank)
    out = np.zeros((dim, cols), dtype=np.float64)  # allocated before tracing
    hoist_bytes = (dim + 3 * unnz) * cols * 8  # upper bound on the tables

    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        before = tracemalloc.get_traced_memory()[0]
        refused = False
        try:
            with MemoryBudget(limit_bytes=4 * 2**20):
                # Large block_bytes keeps the hoist path enabled, so the
                # ~11.5 MB gather tables are the allocation under test.
                lattice_ttmc(
                    indices,
                    values,
                    dim,
                    factor,
                    out=out,
                    block_bytes=1 << 25,
                )
        except MemoryLimitError:
            refused = True
        peak = tracemalloc.get_traced_memory()[1] - before
    finally:
        if not was_tracing:
            tracemalloc.stop()

    if not refused:
        return CheckResult(
            spec,
            "budget-preflight",
            "invariant",
            False,
            "kernel was not refused — budget sizing assumption broken",
        )
    limit = hoist_bytes // 2
    ok = peak < limit
    return CheckResult(
        spec,
        "budget-preflight",
        "invariant",
        ok,
        ""
        if ok
        else (
            f"traced peak {peak} bytes >= {limit} during a refused call — "
            f"gather tables were allocated before the budget pre-flight"
        ),
    )
