"""Seeded random workload generation for the differential oracle.

A :class:`Workload` is a fully seed-determined spec — ``(order, dim,
rank, unnz, dist, seed)`` — that round-trips through a one-line string,
so any failing check can be reproduced from its printed repro line alone.
:func:`generate` materializes the spec into a tensor/factor pair.

Index distributions (``dist``):

``uniform``
    Uniform random IOU patterns — the analogue of the paper's synthetic
    operation benchmarks.
``skewed``
    Power-law index draws (mass concentrated on low indices) with
    colliding rows combined by summation — exercises duplicate-heavy
    scatter targets and ``canonicalize(combine="sum")``.
``dupes``
    Indices drawn from a tiny alphabet so rows repeat values heavily
    (``(0,0,1,1)``-style tuples) — small multiplicities, deep lattice
    sharing.
``allequal``
    Every row is ``(i, i, …, i)`` — multiplicity-1 non-zeros, the
    opposite extreme.
``distinct``
    Every row has ``order`` pairwise-distinct values (requires
    ``dim >= order``) — the all-distinct regime where the closed-form
    flop model (Eq. 9) holds exactly, so the flop-model invariant runs.
``single``
    Exactly one non-zero (``unnz`` is forced to 1).
``empty``
    No non-zeros at all (``unnz`` is forced to 0).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np

from ..data.synthetic import random_iou_pattern
from ..formats.ucoo import SparseSymmetricTensor

__all__ = ["Workload", "GeneratedWorkload", "generate", "workloads_for", "DISTS"]

DISTS = ("uniform", "skewed", "dupes", "allequal", "distinct", "single", "empty")


@dataclass(frozen=True)
class Workload:
    """One seed-determined workload spec (round-trips via :meth:`spec`)."""

    order: int
    dim: int
    rank: int
    unnz: int
    dist: str = "uniform"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dist not in DISTS:
            raise ValueError(f"unknown dist {self.dist!r}; expected one of {DISTS}")

    @property
    def spec(self) -> str:
        """The canonical one-line form, accepted by ``--case``."""
        return (
            f"order={self.order},dim={self.dim},rank={self.rank},"
            f"unnz={self.unnz},dist={self.dist},seed={self.seed}"
        )

    @classmethod
    def from_spec(cls, spec: str) -> "Workload":
        """Parse ``"order=3,dim=6,rank=4,unnz=20,dist=uniform,seed=7"``."""
        fields = {}
        for part in spec.replace(" ", ",").split(","):
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad workload spec fragment {part!r}")
            key, _, value = part.partition("=")
            fields[key.strip()] = value.strip()
        try:
            return cls(
                order=int(fields["order"]),
                dim=int(fields["dim"]),
                rank=int(fields["rank"]),
                unnz=int(fields["unnz"]),
                dist=fields.get("dist", "uniform"),
                seed=int(fields.get("seed", 0)),
            )
        except KeyError as exc:
            raise ValueError(f"workload spec missing field {exc}") from None


@dataclass(frozen=True)
class GeneratedWorkload:
    """A materialized workload: the spec plus tensor and factor."""

    spec: Workload
    tensor: SparseSymmetricTensor
    factor: np.ndarray

    @property
    def all_distinct(self) -> bool:
        """Every row has ``order`` distinct values — the regime where the
        closed-form flop model holds exactly (Eq. 9)."""
        idx = self.tensor.indices
        if idx.shape[0] == 0 or idx.shape[1] < 2:
            return False
        return bool((np.diff(idx, axis=1) != 0).all())


def _skewed_indices(
    order: int, dim: int, unnz: int, rng: np.random.Generator
) -> np.ndarray:
    draw = np.floor(dim * rng.random((unnz, order)) ** 3).astype(np.int64)
    draw.sort(axis=1)
    return draw


def _dupes_indices(
    order: int, dim: int, unnz: int, rng: np.random.Generator
) -> np.ndarray:
    alphabet = max(1, min(dim, 3))
    draw = rng.integers(0, alphabet, size=(unnz, order)).astype(np.int64)
    draw.sort(axis=1)
    return draw


def generate(spec: Workload) -> GeneratedWorkload:
    """Materialize a workload spec (deterministic in the spec alone).

    Values are standard normal (signed, so cancellation-masking bugs
    can't hide behind all-positive data); the factor is a dense standard
    normal ``(dim, rank)`` matrix. For ``skewed``/``dupes`` draws the
    requested ``unnz`` counts *raw draws*; colliding rows are combined by
    summation, so the realized ``tensor.unnz`` may be smaller.
    """
    spec_unnz = spec.unnz
    if spec.dist == "empty":
        spec_unnz = 0
    elif spec.dist == "single":
        spec_unnz = 1
    rng = np.random.default_rng(spec.seed)
    if spec.dist in ("uniform", "single", "empty"):
        indices = random_iou_pattern(spec.order, spec.dim, spec_unnz, rng)
        values = rng.standard_normal(indices.shape[0])
        tensor = SparseSymmetricTensor(
            spec.order, spec.dim, indices, values, assume_canonical=True
        )
    elif spec.dist == "distinct":
        if spec.dim < spec.order:
            raise ValueError("dist='distinct' needs dim >= order")
        indices = np.stack(
            [
                np.sort(rng.choice(spec.dim, size=spec.order, replace=False))
                for _ in range(spec_unnz)
            ]
        ).astype(np.int64) if spec_unnz else np.zeros((0, spec.order), dtype=np.int64)
        values = rng.standard_normal(indices.shape[0])
        tensor = SparseSymmetricTensor(
            spec.order, spec.dim, indices, values, combine="sum"
        )
    elif spec.dist == "allequal":
        n = min(spec_unnz, spec.dim)
        picks = rng.choice(spec.dim, size=n, replace=False)
        picks.sort()
        indices = np.repeat(picks[:, None], spec.order, axis=1)
        values = rng.standard_normal(n)
        tensor = SparseSymmetricTensor(
            spec.order, spec.dim, indices, values, assume_canonical=True
        )
    else:
        if spec.dist == "skewed":
            indices = _skewed_indices(spec.order, spec.dim, spec_unnz, rng)
        else:
            indices = _dupes_indices(spec.order, spec.dim, spec_unnz, rng)
        values = rng.standard_normal(indices.shape[0])
        tensor = SparseSymmetricTensor(
            spec.order, spec.dim, indices, values, combine="sum"
        )
    factor = rng.standard_normal((spec.dim, spec.rank))
    return GeneratedWorkload(spec=spec, tensor=tensor, factor=factor)


def workloads_for(
    config: str, seeds: int = 2, base_seed: int = 0
) -> List[Workload]:
    """The workload matrix for a suite config (``smoke`` or ``full``).

    Each seed replicates the randomized rows with a distinct RNG seed;
    the degenerate cases (empty, rank 1, dim 1, single non-zero,
    all-equal indices) are always present once per suite. The ``smoke``
    matrix is sized to keep ``python -m repro.verify --config smoke``
    under two minutes in CI.
    """
    if config not in ("smoke", "full"):
        raise ValueError(f"unknown config {config!r}; expected 'smoke' or 'full'")
    randomized: List[Workload]
    if config == "smoke":
        randomized = [
            Workload(order=3, dim=7, rank=4, unnz=25, dist="uniform"),
            Workload(order=3, dim=8, rank=3, unnz=30, dist="skewed"),
            Workload(order=4, dim=6, rank=3, unnz=20, dist="skewed"),
            Workload(order=5, dim=5, rank=3, unnz=12, dist="dupes"),
            Workload(order=6, dim=4, rank=2, unnz=8, dist="uniform"),
            Workload(order=4, dim=8, rank=3, unnz=15, dist="distinct"),
        ]
    else:
        randomized = [
            Workload(order=3, dim=12, rank=5, unnz=60, dist=dist)
            for dist in ("uniform", "skewed", "dupes")
        ] + [
            Workload(order=4, dim=8, rank=4, unnz=40, dist=dist)
            for dist in ("uniform", "skewed", "dupes")
        ] + [
            Workload(order=5, dim=6, rank=3, unnz=24, dist=dist)
            for dist in ("uniform", "skewed", "dupes")
        ] + [
            Workload(order=6, dim=5, rank=2, unnz=12, dist=dist)
            for dist in ("uniform", "skewed")
        ] + [
            Workload(order=3, dim=10, rank=4, unnz=40, dist="distinct"),
            Workload(order=5, dim=8, rank=2, unnz=15, dist="distinct"),
        ]
    out: List[Workload] = []
    for s in range(max(1, seeds)):
        for w in randomized:
            out.append(replace(w, seed=base_seed + s))
    out.extend(
        [
            Workload(order=3, dim=6, rank=3, unnz=0, dist="empty", seed=base_seed),
            Workload(order=4, dim=5, rank=1, unnz=10, dist="uniform", seed=base_seed),
            Workload(order=3, dim=1, rank=2, unnz=1, dist="uniform", seed=base_seed),
            Workload(order=4, dim=6, rank=3, unnz=1, dist="single", seed=base_seed),
            Workload(order=3, dim=5, rank=2, unnz=5, dist="allequal", seed=base_seed),
            Workload(order=5, dim=4, rank=2, unnz=3, dist="allequal", seed=base_seed),
        ]
    )
    return out
