"""Suite driver for the differential oracle.

:func:`run_case` gives one workload a private execution context (its own
accounting-only budget, trace collector and plan cache), runs the full
differential matrix plus the post-case invariants, and returns the
results. :func:`run_suite` maps that over the seeded workload matrix for
a config (``smoke`` / ``full``), prepends the budget-preflight canary,
and folds everything into a :class:`VerifyReport` whose failure section
is a list of copy-pasteable repro lines. The ``chaos`` config instead
runs the resilience soak (:mod:`repro.verify.chaos`): seeded schedules
of concurrent faults, cancellations and deadlines, each asserted to
either complete with oracle-verified output or fail with exactly one
typed error — budget drained and no shm leaks either way.

Both honour the same observability hooks as the bench harness: with
``REPRO_TRACE=path.jsonl`` every case's spans/metrics are appended to the
trace (``trace_path`` on :func:`run_case` for programmatic use), and with
``REPRO_PROFILE=path`` the whole suite runs under the sampling profiler.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..obs.trace import TraceCollector
from ..runtime.budget import MemoryBudget
from ..runtime.context import ExecContext
from .generators import Workload, generate, workloads_for
from .invariants import check_budget_preflight, run_case_invariants
from .oracles import CheckResult, run_workload_checks

__all__ = ["VerifyReport", "run_case", "run_suite"]


@dataclass
class VerifyReport:
    """Aggregated outcome of a verification run."""

    results: List[CheckResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def n_cases(self) -> int:
        return len({r.spec for r in self.results})

    def summary(self) -> str:
        return (
            f"{len(self.results)} checks over {self.n_cases} cases: "
            f"{len(self.results) - len(self.failures)} passed, "
            f"{len(self.failures)} failed"
        )

    def format_failures(self) -> str:
        """One block per failure: what diverged, and the line to rerun it."""
        blocks = []
        for r in self.failures:
            detail = f"\n    {r.detail}" if r.detail else ""
            blocks.append(
                f"FAIL [{r.mode}] {r.check} on {r.spec}{detail}\n    repro: {r.repro}"
            )
        return "\n".join(blocks)


def run_case(
    spec: Workload,
    *,
    include_process: bool = False,
    check: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> List[CheckResult]:
    """Run one workload's full check matrix in a private context.

    The budget is accounting-only (no limit) so the drain invariant sees
    every request/release pair without refusing any; the collector and
    plan cache are fresh, so invariants observe only this case. ``check``
    filters the returned results to one named check (substring-exact on
    the check name). ``trace_path`` appends the case's trace records to
    a JSONL file after the invariants ran (unwritable paths warn rather
    than fail — the verdicts already exist and must be reported).
    """
    gen = generate(spec)
    ctx = ExecContext(budget=MemoryBudget(), collector=TraceCollector())
    results = run_workload_checks(gen, ctx, include_process=include_process)
    results.extend(run_case_invariants(gen, ctx))
    if trace_path is not None:
        from ..obs.export import write_trace

        try:
            write_trace(ctx.collector, trace_path, append=True)
        except OSError as exc:
            warnings.warn(
                f"could not write verify trace to {trace_path!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
    if check is not None:
        results = [r for r in results if r.check == check]
    return results


def run_suite(
    config: str = "smoke",
    *,
    seeds: int = 2,
    base_seed: int = 0,
    include_process: bool = False,
    check: Optional[str] = None,
    on_case: Optional[Callable[[Workload, List[CheckResult]], None]] = None,
    trace_path: Optional[str] = None,
    schedules: int = 50,
) -> VerifyReport:
    """Run the whole seeded matrix for a config.

    ``on_case`` is a progress hook called after each case with its spec
    and results (the CLI uses it for live per-case lines); ``trace_path``
    is forwarded to every :func:`run_case`. For ``config="chaos"`` the
    seeded schedule soak runs instead of the differential matrix;
    ``schedules`` sizes it and ``seeds`` is ignored.
    """
    report = VerifyReport()
    if config == "chaos":
        from .chaos import chaos_schedules, run_chaos_case

        for sched in chaos_schedules(
            schedules, base_seed=base_seed, include_process=include_process
        ):
            results = run_chaos_case(sched, trace_path=trace_path)
            if check is not None:
                results = [r for r in results if r.check == check]
            report.results.extend(results)
            if on_case is not None:
                on_case(sched, results)
        return report
    if check is None or check == "budget-preflight":
        report.results.append(check_budget_preflight())
    for spec in workloads_for(config, seeds=seeds, base_seed=base_seed):
        results = run_case(
            spec, include_process=include_process, check=check, trace_path=trace_path
        )
        report.results.extend(results)
        if on_case is not None:
            on_case(spec, results)
    return report
