"""SymProp core: symmetry-propagated S³TTMc and S³TTMcTC kernels."""

from .autotune import (
    PROFILE_VERSION,
    TunedConfig,
    TuneProfileError,
    autotune,
    candidates_from_attribution,
    default_candidates,
    load_profile,
    save_profile,
    tuned_s3ttmc,
    workload_key,
)
from .codegen import (
    CODEGEN_VERSION,
    STRATEGIES,
    clear_codegen_cache,
    codegen_cache_info,
    codegen_step,
    generate_step_source,
    mapping_step,
    table_step,
)
from .compile import (
    DEFAULT_CHUNK_EDGES,
    KERNEL_VERSION,
    KernelSpec,
    build_tables,
    clear_kernel_cache,
    compiled_kernel,
    generate_kernel_source,
    get_kernel,
    kernel_cache_info,
)
from .engine import DEFAULT_BLOCK_BYTES, KERNELS, lattice_ttmc
from .lattice import Lattice, LatticeLevel, build_lattice
from .layouts import LevelLayout, compact_layout, full_layout, layout_for
from .plan import TTMcPlan, build_plan, content_fingerprint, get_plan
from .s3ttmc import s3ttmc
from .s3ttmc_tc import TTMcTCResult, s3ttmc_tc, times_core
from .stats import KernelStats

__all__ = [
    "s3ttmc",
    "s3ttmc_tc",
    "times_core",
    "TTMcTCResult",
    "KernelStats",
    "lattice_ttmc",
    "DEFAULT_BLOCK_BYTES",
    "KERNELS",
    "KernelSpec",
    "KERNEL_VERSION",
    "DEFAULT_CHUNK_EDGES",
    "build_tables",
    "generate_kernel_source",
    "compiled_kernel",
    "get_kernel",
    "kernel_cache_info",
    "clear_kernel_cache",
    "TunedConfig",
    "TuneProfileError",
    "PROFILE_VERSION",
    "autotune",
    "candidates_from_attribution",
    "tuned_s3ttmc",
    "default_candidates",
    "workload_key",
    "load_profile",
    "save_profile",
    "build_lattice",
    "Lattice",
    "LatticeLevel",
    "TTMcPlan",
    "content_fingerprint",
    "build_plan",
    "get_plan",
    "LevelLayout",
    "compact_layout",
    "full_layout",
    "layout_for",
    "codegen_step",
    "mapping_step",
    "table_step",
    "generate_step_source",
    "STRATEGIES",
    "CODEGEN_VERSION",
    "codegen_cache_info",
    "clear_codegen_cache",
]
