"""SymProp core: symmetry-propagated S³TTMc and S³TTMcTC kernels."""

from .codegen import STRATEGIES, codegen_step, generate_step_source, mapping_step, table_step
from .engine import DEFAULT_BLOCK_BYTES, lattice_ttmc
from .lattice import Lattice, LatticeLevel, build_lattice
from .layouts import LevelLayout, compact_layout, full_layout, layout_for
from .plan import TTMcPlan, build_plan, get_plan
from .s3ttmc import s3ttmc
from .s3ttmc_tc import TTMcTCResult, s3ttmc_tc, times_core
from .stats import KernelStats

__all__ = [
    "s3ttmc",
    "s3ttmc_tc",
    "times_core",
    "TTMcTCResult",
    "KernelStats",
    "lattice_ttmc",
    "DEFAULT_BLOCK_BYTES",
    "build_lattice",
    "Lattice",
    "LatticeLevel",
    "TTMcPlan",
    "build_plan",
    "get_plan",
    "LevelLayout",
    "compact_layout",
    "full_layout",
    "layout_for",
    "codegen_step",
    "mapping_step",
    "table_step",
    "generate_step_source",
    "STRATEGIES",
]
