"""Intermediate-tensor layouts: compact (SymProp) vs full (CSS baseline).

Both the SymProp kernel and the CSS baseline run the *same* sub-multiset
lattice recurrence; the only difference — the paper's entire contribution
for S³TTMc — is how the intermediate symmetric ``K`` tensors are laid out:

* **compact**: only IOU entries, ``S_{l,R}`` per level-``l`` tensor
  (symmetry propagated, Property 1);
* **full**: all ``R**l`` entries (symmetry of the input exploited via the
  IOU non-zero set, but intermediate symmetry ignored — the state of the
  art before SymProp).

A :class:`LevelLayout` abstracts exactly the two gather tables the
recurrence needs (drop-last parent location, last index), so one kernel
implementation serves both variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..symmetry.combinatorics import dense_size, sym_storage_size
from ..symmetry.tables import get_tables

__all__ = ["LevelLayout", "compact_layout", "full_layout", "layout_for"]


@dataclass(frozen=True)
class LevelLayout:
    """Gather tables of one intermediate level.

    For every storage slot ``s`` of a level-``l`` K tensor,
    ``K_l[s] = Σ_terms U[v, last_index[s]] * K_{l-1}[parent_loc[s]]``.
    """

    level: int
    dim: int
    size: int
    parent_loc: np.ndarray
    last_index: np.ndarray
    kind: str

    @property
    def parent_size(self) -> int:
        if self.kind == "compact":
            return sym_storage_size(self.level - 1, self.dim)
        if self.kind == "cp":
            return self.dim
        return dense_size(self.level - 1, self.dim)


def compact_layout(level: int, dim: int) -> LevelLayout:
    """IOU lex layout — ``S_{l,R}`` entries (SymProp)."""
    tables = get_tables(level, dim)
    return LevelLayout(
        level=level,
        dim=dim,
        size=tables.size,
        parent_loc=tables.parent_loc,
        last_index=tables.last_index,
        kind="compact",
    )


def full_layout(level: int, dim: int) -> LevelLayout:
    """Row-major full layout — ``R**l`` entries (CSS baseline).

    ``lin(j₁…j_l) = lin(j₁…j_{l-1})·R + j_l``, so the parent location is
    ``slot // R`` and the last index ``slot % R``.
    """
    size = dense_size(level, dim)
    slots = np.arange(size, dtype=np.int64)
    return LevelLayout(
        level=level,
        dim=dim,
        size=size,
        parent_loc=slots // dim if dim else slots,
        last_index=slots % dim if dim else slots,
        kind="full",
    )


def cp_layout(level: int, dim: int) -> LevelLayout:
    """Elementwise (CP/Khatri-Rao) layout — ``R`` entries at every level.

    For CP-style chains the per-level "outer product" is an elementwise
    product in the shared rank index: ``K_m[r] = Σ_v U[v,r]·K_{m−v}[r]``,
    so both gather tables are the identity. This is symmetry propagation
    applied to the MTTKRP kernel — the extension the paper's conclusion
    proposes for "other tensor decomposition methods".
    """
    slots = np.arange(dim, dtype=np.int64)
    return LevelLayout(
        level=level,
        dim=dim,
        size=dim,
        parent_loc=slots,
        last_index=slots,
        kind="cp",
    )


def layout_for(kind: str, level: int, dim: int) -> LevelLayout:
    """Dispatch on layout kind: ``"compact"``, ``"full"`` or ``"cp"``."""
    if kind == "compact":
        return compact_layout(level, dim)
    if kind == "full":
        return full_layout(level, dim)
    if kind == "cp":
        return cp_layout(level, dim)
    raise ValueError(f"unknown intermediate layout {kind!r}")
