"""Kernel instrumentation: exact flop and allocation accounting.

Every SymProp/CSS kernel invocation can fill a :class:`KernelStats`, which
records floating-point operations per lattice level plus structural counts.
The flop counting follows the paper's convention (Section III-D): one
fused multiply and one add are two flops; the first term of each
accumulation needs no add, giving ``(2·deg − 1)`` flops per output entry
for a node with ``deg`` recurrence terms.

These numbers are *exact by construction* (derived from the lattice sizes,
not sampled), which lets the test suite equate them with the closed-form
complexity model ``c_sp`` / ``c_css`` (Eq. 9) — the reproduction of the
paper's complexity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Mutable per-invocation kernel counters.

    Attributes
    ----------
    level_flops:
        Flops spent computing the level-``l`` intermediate ``K`` tensors.
    scatter_flops:
        Flops of the final accumulation into the output ``Y`` rows.
    extra_flops:
        Flops of any post-processing (e.g. the two GEMMs of S³TTMcTC).
    level_nodes / level_edges:
        Lattice sizes per level (after memoization/dedup).
    intermediate_bytes:
        Peak bytes held in ``K`` level arrays.
    output_bytes:
        Bytes of the returned ``Y`` (or ``A``) container.
    """

    level_flops: Dict[int, int] = field(default_factory=dict)
    scatter_flops: int = 0
    extra_flops: int = 0
    level_nodes: Dict[int, int] = field(default_factory=dict)
    level_edges: Dict[int, int] = field(default_factory=dict)
    intermediate_bytes: int = 0
    output_bytes: int = 0
    batches: int = 0

    def add_level(self, level: int, nodes: int, edges: int, entry_size: int) -> None:
        """Record one computed lattice level.

        ``entry_size`` is the per-node K-tensor entry count (``S_{l,R}``
        compact, ``R**l`` full). Flops: each edge contributes a multiply and
        an add per entry, minus one add per node (first term).
        """
        flops = (2 * edges - nodes) * entry_size
        self.level_flops[level] = self.level_flops.get(level, 0) + flops
        self.level_nodes[level] = self.level_nodes.get(level, 0) + nodes
        self.level_edges[level] = self.level_edges.get(level, 0) + edges
        # Peak single-level K footprint, matching merge()'s max semantics —
        # levels are materialized one at a time, so their bytes never sum.
        self.intermediate_bytes = max(self.intermediate_bytes, nodes * entry_size * 8)

    def add_scatter(self, edges: int, entry_size: int) -> None:
        """Record the value-scaled accumulation into output rows."""
        self.scatter_flops += 2 * edges * entry_size

    def add_gemm(self, m: int, n: int, k: int) -> None:
        """Record a dense ``(m×k)·(k×n)`` matrix multiplication."""
        self.extra_flops += 2 * m * n * k

    def add_scale(self, entries: int) -> None:
        """Record an elementwise scaling pass."""
        self.extra_flops += entries

    @property
    def kernel_flops(self) -> int:
        """Lattice + scatter flops (the ``C^SP`` / ``C^CSS`` quantity)."""
        return sum(self.level_flops.values()) + self.scatter_flops

    @property
    def total_flops(self) -> int:
        return self.kernel_flops + self.extra_flops

    def merge(self, other: "KernelStats") -> None:
        for level, flops in other.level_flops.items():
            self.level_flops[level] = self.level_flops.get(level, 0) + flops
        for level, n in other.level_nodes.items():
            self.level_nodes[level] = self.level_nodes.get(level, 0) + n
        for level, e in other.level_edges.items():
            self.level_edges[level] = self.level_edges.get(level, 0) + e
        self.scatter_flops += other.scatter_flops
        self.extra_flops += other.extra_flops
        self.intermediate_bytes = max(self.intermediate_bytes, other.intermediate_bytes)
        self.output_bytes = max(self.output_bytes, other.output_bytes)
        self.batches += other.batches
