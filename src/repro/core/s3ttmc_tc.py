"""S³TTMcTC-SP: TTM chain times core, fully symmetry-aware (Algorithm 2).

Computes the HOQRI update matrix ``A = Y_(1) C_(1)ᵀ ∈ R^{I×R}`` without ever
expanding ``Y`` or ``C``:

1. ``Y_p = S³TTMc(X, U)``                      (optimized kernel, Property 1)
2. ``C_p(1) = Uᵀ Y_p(1)``                      (Property 2 — plain GEMM)
3. ``A = Y_p(1) · M · C_p(1)ᵀ``                (Property 3 — ``M`` diagonal)

Step 3 scales the *core* (the smaller operand) by the multiplicity vector
``p`` and finishes with one GEMM, exactly as Section IV-C prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..formats.partial_sym import PartiallySymmetricTensor
from ..runtime.context import ExecContext, resolve_context
from .engine import DEFAULT_BLOCK_BYTES
from .s3ttmc import SymmetricInput, s3ttmc
from .stats import KernelStats

__all__ = ["TTMcTCResult", "s3ttmc_tc", "times_core"]


@dataclass
class TTMcTCResult:
    """Outputs of one S³TTMcTC invocation.

    Attributes
    ----------
    a:
        The ``(I, R)`` matrix handed to QR in HOQRI.
    y:
        The compact ``Y_p`` (kept in memory deliberately — the paper keeps
        it to avoid recomputation, unlike the original HOQRI).
    core:
        The core tensor in partially symmetric form ``C_p``
        (``nrows = R``); its full Frobenius norm drives the objective.
    stats:
        Kernel statistics if requested.
    """

    a: np.ndarray
    y: PartiallySymmetricTensor
    core: PartiallySymmetricTensor
    stats: Optional[KernelStats]


def times_core(
    y: PartiallySymmetricTensor,
    factor: np.ndarray,
    *,
    stats: Optional[KernelStats] = None,
    ctx: Optional[ExecContext] = None,
) -> TTMcTCResult:
    """Steps 2–3 of Algorithm 2, given an already-computed ``Y_p``.

    Split out so HOQRI can reuse one S³TTMc result for both the core update
    and the ``A`` matrix.
    """
    ctx = resolve_context(ctx)
    factor = np.asarray(factor, dtype=np.float64)
    if factor.shape != (y.nrows, y.sym_dim):
        raise ValueError(
            f"factor must be ({y.nrows}, {y.sym_dim}), got {factor.shape}"
        )
    with ctx.span(
        "times_core", nrows=y.nrows, rank=y.sym_dim, sym_size=y.sym_size
    ):
        core = y.mode1_ttm(factor)  # C_p(1) = Uᵀ Y_p(1)
        p = core.multiplicities()
        scaled_core_t = core.data.T * p[:, None]  # M C_p(1)ᵀ, (S, R)
        a = y.data @ scaled_core_t  # Y_p(1) M C_p(1)ᵀ, (I, R)
    if stats is not None:
        s = y.sym_size
        rank = y.sym_dim
        stats.add_gemm(rank, s, y.nrows)  # Uᵀ Y_p(1)
        stats.add_scale(s * rank)  # diagonal M
        stats.add_gemm(y.nrows, rank, s)  # Y_p(1) (M C_pᵀ)
    return TTMcTCResult(a=a, y=y, core=core, stats=stats)


def s3ttmc_tc(
    tensor: SymmetricInput,
    factor: np.ndarray,
    *,
    memoize: str = "global",
    kernel: str = "generic",
    chunk_edges: Optional[int] = None,
    stats: Optional[KernelStats] = None,
    nz_batch_size: Optional[int] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    plan=None,
    ctx: Optional[ExecContext] = None,
) -> TTMcTCResult:
    """Full S³TTMcTC-SP: S³TTMc followed by the two Property-2/3 GEMMs.

    See :func:`repro.core.s3ttmc.s3ttmc` for the shared parameters
    (including the ``kernel``/``chunk_edges`` engine mode); ``ctx``
    carries the run's budget/collector (ambient when ``None``).
    """
    ctx = resolve_context(ctx)
    y = s3ttmc(
        tensor,
        factor,
        memoize=memoize,
        kernel=kernel,
        chunk_edges=chunk_edges,
        stats=stats,
        nz_batch_size=nz_batch_size,
        block_bytes=block_bytes,
        plan=plan,
        ctx=ctx,
    )
    return times_core(y, np.asarray(factor, dtype=np.float64), stats=stats, ctx=ctx)
