"""S³TTMc-SP: sparse symmetric TTM-chain with symmetry propagation.

Public entry point for the paper's first kernel (Section III): computes
``Y = X ×₂ Uᵀ … ×_N Uᵀ`` for a sparse symmetric ``X`` and returns the
partially symmetric result in compact form ``Y_p`` — intermediates and
output both store IOU entries only (Property 1).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..formats.css import CSSTensor
from ..formats.partial_sym import PartiallySymmetricTensor
from ..formats.ucoo import SparseSymmetricTensor
from ..runtime.context import ExecContext, resolve_context
from .engine import DEFAULT_BLOCK_BYTES, lattice_ttmc
from .plan import TTMcPlan, get_plan
from .stats import KernelStats

__all__ = ["s3ttmc"]

SymmetricInput = Union[SparseSymmetricTensor, CSSTensor]


def _as_ucoo(tensor: SymmetricInput) -> SparseSymmetricTensor:
    if isinstance(tensor, CSSTensor):
        return tensor.ucoo
    if isinstance(tensor, SparseSymmetricTensor):
        return tensor
    raise TypeError(
        f"expected SparseSymmetricTensor or CSSTensor, got {type(tensor).__name__}"
    )


def s3ttmc(
    tensor: SymmetricInput,
    factor: np.ndarray,
    *,
    memoize: str = "global",
    kernel: str = "generic",
    chunk_edges: Optional[int] = None,
    stats: Optional[KernelStats] = None,
    nz_batch_size: Optional[int] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    plan: Optional[TTMcPlan] = None,
    ctx: Optional[ExecContext] = None,
) -> PartiallySymmetricTensor:
    """Symmetry-propagated S³TTMc.

    Parameters
    ----------
    tensor:
        Order-``N`` sparse symmetric input (UCOO or CSS).
    factor:
        Factor matrix ``U`` of shape ``(I, R)``.
    memoize:
        Lattice memoization scope: ``"global"`` shares sub-multiset ``K``
        tensors across non-zeros (CSS-tree-style), ``"nonzero"`` recomputes
        per non-zero (matches the closed-form complexity model exactly).
    kernel:
        Engine mode: ``"generic"`` (batched-gather) or ``"compiled"``
        (fused exec-generated kernels, :mod:`repro.core.compile`);
        results are bitwise identical.
    chunk_edges:
        Edges per fused chunk for the compiled kernel (``None`` = tuned
        default); ignored for the generic kernel.
    stats:
        Optional :class:`~repro.core.stats.KernelStats` filled with exact
        flop/structure counts.
    nz_batch_size:
        Optional non-zero batching to bound intermediate memory.
    block_bytes:
        Bound on transient gather buffers.
    plan:
        Pre-built execution plan. When omitted, the plan is built on first
        use and memoized on the tensor (the CSS-tree analogue: structure is
        pattern-only and reused across iterations).
    ctx:
        Optional :class:`~repro.runtime.context.ExecContext` carrying the
        run's budget and trace collector; defaults to the ambient context.

    Returns
    -------
    :class:`~repro.formats.partial_sym.PartiallySymmetricTensor`
        ``Y_p`` with ``nrows = I``, ``sym_order = N-1``, ``sym_dim = R``;
        its ``.unfolding`` is ``Y_p(1) ∈ R^{I × S_{N-1,R}}``.
    """
    ucoo = _as_ucoo(tensor)
    factor = np.asarray(factor, dtype=np.float64)
    if factor.ndim != 2 or factor.shape[0] != ucoo.dim:
        raise ValueError(
            f"factor must be ({ucoo.dim}, R), got {factor.shape}"
        )
    if ucoo.order < 2:
        raise ValueError("S³TTMc requires tensor order >= 2")
    if plan is None:
        plan = get_plan(ucoo, memoize, nz_batch_size)
    ctx = resolve_context(ctx)
    with ctx.span(
        "s3ttmc",
        kernel="symprop",
        engine=kernel,
        order=ucoo.order,
        dim=ucoo.dim,
        unnz=ucoo.unnz,
        rank=factor.shape[1],
        memoize=memoize,
    ):
        data = lattice_ttmc(
            ucoo.indices,
            ucoo.values,
            ucoo.dim,
            factor,
            intermediate="compact",
            memoize=memoize,
            kernel=kernel,
            chunk_edges=chunk_edges,
            stats=stats,
            nz_batch_size=nz_batch_size,
            block_bytes=block_bytes,
            plan=plan,
            ctx=ctx,
        )
    return PartiallySymmetricTensor(
        ucoo.dim, ucoo.order - 1, factor.shape[1], data
    )
