"""The shared lattice-evaluation engine behind S³TTMc and its CSS baseline.

Evaluates the sub-multiset lattice bottom-up with one vectorized
gather-multiply-segment-sum per level, in the layout chosen by the caller
(compact ``S_{l,R}`` — SymProp — or full ``R**l`` — the CSS baseline), and
scatters the top-level ``K`` tensors into the output rows.

Performance notes (all heavy work is batched NumPy):

* the structural lattice is *reused* across calls via
  :mod:`repro.core.plan` (the CSS-tree analogue: structure is built once
  per tensor, numeric evaluation per call);
* per level, the factor gather ``U[:, last_index]`` and the parent
  re-layout ``K_{l-1}[:, parent_loc]`` are hoisted out of the edge loop so
  per-edge work is two contiguous row-gathers, one multiply and one
  segment-sum — no 2-D fancy indexing on the hot path;
* node-chunking bounds transient buffers to ``block_bytes``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..runtime.context import ExecContext, resolve_context
from ..symmetry.combinatorics import dense_size, sym_storage_size
from ._segment import scatter_add_rows, segment_sum_by_ptr
from .compile import get_kernel
from .lattice import Lattice
from .layouts import layout_for
from .plan import TTMcPlan, build_plan
from .stats import KernelStats

__all__ = ["lattice_ttmc", "DEFAULT_BLOCK_BYTES", "KERNELS"]

DEFAULT_BLOCK_BYTES = 256 * 2**20

#: Engine modes: the generic batched-gather path and the v2 compiled
#: (fused, exec-generated) path — bitwise-equal by construction.
KERNELS = ("generic", "compiled")


def lattice_ttmc(
    indices: np.ndarray,
    values: np.ndarray,
    dim: int,
    factor: np.ndarray,
    *,
    intermediate: str = "compact",
    memoize: str = "global",
    kernel: str = "generic",
    chunk_edges: Optional[int] = None,
    stats: Optional[KernelStats] = None,
    nz_batch_size: Optional[int] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    out: Optional[np.ndarray] = None,
    out_row_map: Optional[np.ndarray] = None,
    plan: Optional[TTMcPlan] = None,
    ctx: Optional[ExecContext] = None,
) -> np.ndarray:
    """Evaluate S³TTMc over IOU non-zeros with the chosen intermediate layout.

    Parameters
    ----------
    indices, values:
        IOU non-zeros, ``(unnz, order)`` and ``(unnz,)``.
    dim:
        Input dimension size ``I`` (output row count).
    factor:
        Factor matrix ``U`` of shape ``(I, R)``.
    intermediate:
        ``"compact"`` (SymProp) or ``"full"`` (CSS baseline). Determines
        both intermediate K-tensor storage and the output column layout:
        ``S_{N-1,R}`` vs ``R**(N-1)``.
    memoize:
        Lattice memoization scope (``"global"`` / ``"nonzero"``); ignored
        when ``plan`` is given.
    kernel:
        ``"generic"`` (batched-gather engine below) or ``"compiled"``
        (:mod:`repro.core.compile`: fused, exec-generated source with
        per-plan gather tables — bitwise-equal results, no materialized
        expansion intermediates).
    chunk_edges:
        Edges per fused-gather chunk for the compiled kernel (``None`` =
        :data:`repro.core.compile.DEFAULT_CHUNK_EDGES`); the autotuner's
        primary knob. Ignored for the generic kernel.
    stats:
        Optional :class:`KernelStats` to fill.
    nz_batch_size:
        Process non-zeros in batches of this size (bounds lattice and
        intermediate memory at a small loss of cross-batch sharing);
        ignored when ``plan`` is given.
    block_bytes:
        Transient per-level gather buffer bound.
    out:
        Optional pre-allocated ``(I, cols)`` output to accumulate into.
        When the engine allocates ``out`` itself, the allocation is
        *declared* against the active :class:`~repro.runtime.budget.
        MemoryBudget` (pre-flight OOM check + peak tracking) and released
        again on handoff — ownership transfers to the caller, so the
        engine must not leave the bytes pinned in ``in_use`` across
        repeated calls (e.g. one per HOOI iteration).
    out_row_map:
        Optional ``(dim,)`` int64 map from global output row to a local
        row of ``out`` (out-slicing for row-block accumulation). When
        given, ``out`` is required and holds only the mapped rows —
        ``out.shape = (n_local, cols)`` — and every top-level scatter
        target must map to a valid local row. This is what lets parallel
        workers accumulate into compact per-chunk row blocks instead of
        private full-width ``(I, cols)`` copies.
    plan:
        Pre-built :class:`TTMcPlan` for this pattern (reuse across calls).
    ctx:
        Optional :class:`~repro.runtime.context.ExecContext`; its budget
        governs the allocation declarations and its collector receives
        the spans/metrics. ``None`` resolves to the ambient context, so
        legacy budget/trace scoping keeps working.

    Returns
    -------
    ``(I, cols)`` matrix: ``Y_p(1)`` for compact, ``Y_(1)`` for full
    (or the ``(n_local, cols)`` row-block when ``out_row_map`` is given).
    """
    ctx = resolve_context(ctx)
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    factor = np.asarray(factor, dtype=np.float64)
    if indices.ndim != 2:
        raise ValueError("indices must be (unnz, order)")
    unnz, order = indices.shape
    if order < 2:
        raise ValueError("S³TTMc requires order >= 2")
    if factor.ndim != 2 or factor.shape[0] != dim:
        raise ValueError(f"factor must be ({dim}, R), got {factor.shape}")
    rank = factor.shape[1]
    if intermediate == "compact":
        cols = sym_storage_size(order - 1, rank)
    elif intermediate == "full":
        cols = dense_size(order - 1, rank)
    elif intermediate == "cp":
        cols = rank
    else:
        raise ValueError(f"unknown intermediate layout {intermediate!r}")
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel mode {kernel!r}; expected one of {KERNELS}")

    if out is not None and out.dtype != np.float64:
        # scatter_add_rows accumulates with `out[rows] += float64`: a
        # float32 buffer silently truncates every contribution and an
        # integer one fails deep in the scatter — reject up front.
        raise ValueError(
            f"out must be float64, got {out.dtype}; accumulating into a "
            f"narrower dtype would silently lose precision"
        )
    if out_row_map is not None:
        out_row_map = np.asarray(out_row_map, dtype=np.int64)
        if out is None:
            raise ValueError("out_row_map requires a pre-allocated out")
        if out_row_map.shape != (dim,):
            raise ValueError(f"out_row_map must be ({dim},)")
        if out.ndim != 2 or out.shape[1] != cols:
            raise ValueError(f"out must be (n_local, {cols})")
    elif out is not None and out.shape != (dim, cols):
        raise ValueError(f"out must be ({dim}, {cols})")

    if plan is not None:
        if plan.order != order:
            raise ValueError("plan order does not match indices")
        if not plan.matches(indices):
            raise ValueError(
                f"plan does not match indices: built for unnz={plan.unnz}, "
                f"fingerprint={plan.fingerprint:#x}, called with "
                f"unnz={unnz} — stale plan reuse would produce garbage"
            )

    # When the engine allocates Y itself it only *pre-flights* the bytes
    # against the budget (OOM check + peak); ownership transfers to the
    # caller on return, so the request is paired with a release on every
    # exit path — otherwise `in_use` climbs by one Y per kernel call.
    owned_label = f"Y ({intermediate})"
    owned_bytes = 0
    if out is None:
        owned_bytes = dim * cols * 8
        ctx.request_bytes(owned_bytes, owned_label)
        out = np.zeros((dim, cols), dtype=np.float64)

    try:
        if stats is not None:
            stats.output_bytes = out.nbytes

        if unnz == 0:
            return out

        if plan is None:
            plan = build_plan(indices, memoize, nz_batch_size)

        with ctx.span(
            "lattice_ttmc",
            intermediate=intermediate,
            kernel=kernel,
            order=order,
            unnz=unnz,
            rank=rank,
            dim=dim,
        ):
            if kernel == "compiled":
                kern = get_kernel(plan, rank, intermediate, chunk_edges, ctx)
                collector = ctx.effective_collector()
                for (start, stop, _lattice), tables in zip(
                    plan.batches, kern.tables
                ):
                    with ctx.span("lattice.batch", nz_start=start, nz_stop=stop):
                        kern.fn(
                            tables,
                            factor,
                            values[start:stop],
                            out,
                            out_row_map,
                            ctx,
                            stats,
                            collector,
                        )
                    if stats is not None:
                        stats.batches += 1
            else:
                for start, stop, lattice in plan.batches:
                    with ctx.span("lattice.batch", nz_start=start, nz_stop=stop):
                        _accumulate_batch(
                            lattice,
                            values[start:stop],
                            factor,
                            rank,
                            intermediate,
                            out,
                            stats,
                            block_bytes,
                            out_row_map,
                            ctx,
                        )
                    if stats is not None:
                        stats.batches += 1
        return out
    finally:
        if owned_bytes:
            ctx.release_bytes(owned_bytes, owned_label)


def _accumulate_batch(
    lattice: Lattice,
    values: np.ndarray,
    factor: np.ndarray,
    rank: int,
    intermediate: str,
    out: np.ndarray,
    stats: Optional[KernelStats],
    block_bytes: int,
    out_row_map: Optional[np.ndarray] = None,
    ctx: Optional[ExecContext] = None,
) -> None:
    ctx = resolve_context(ctx)
    order = lattice.order
    # Budget requests held by this call. Every path out — including a
    # MemoryLimitError raised by a later, larger level — must give the
    # bytes back, or retry-after-OOM logic upstream (chunk splitting in
    # repro.parallel) would see a budget that never drains.
    held: list[tuple[int, str]] = []

    def _request(nbytes: int, label: str) -> None:
        ctx.request_bytes(nbytes, label)
        held.append((nbytes, label))

    def _release(nbytes: int, label: str) -> None:
        ctx.release_bytes(nbytes, label)
        held.remove((nbytes, label))

    # Level-1 K tensors are rows of U (identical in both layouts).
    k_prev = factor[lattice.leaf_values]
    k_prev_label = "K level 1"
    collector = ctx.effective_collector()
    try:
        _request(k_prev.nbytes, k_prev_label)
        for level in range(2, order):
            layout = layout_for(intermediate, level, rank)
            edges = lattice.levels[level]
            label = f"K level {level}"
            with ctx.span(
                "lattice.level",
                level=level,
                nodes=edges.n_nodes,
                edges=edges.n_edges,
                entry_size=layout.size,
            ):
                _request(edges.n_nodes * layout.size * 8, label)
                k_cur = np.empty((edges.n_nodes, layout.size), dtype=np.float64)
                _compute_level(k_cur, k_prev, factor, edges, layout, block_bytes, ctx)
            if stats is not None:
                stats.add_level(level, edges.n_nodes, edges.n_edges, layout.size)
            if collector is not None:
                collector.metrics.counter(f"lattice.flops.level_{level}").inc(
                    (2 * edges.n_edges - edges.n_nodes) * layout.size
                )
                collector.metrics.histogram("lattice.level_entries").observe(
                    edges.n_nodes * layout.size
                )
            _release(k_prev.nbytes, k_prev_label)
            k_prev, k_prev_label = k_cur, label

        # Top level: scale by non-zero values, scatter into output rows.
        top = lattice.levels[order]
        assert top.node is not None, "top lattice level must retain parent ids"
        with ctx.span(
            "lattice.scatter", edges=top.n_edges, entry_size=k_prev.shape[1]
        ):
            row_bytes = k_prev.shape[1] * 8
            edge_block = max(1, block_bytes // max(2 * row_bytes, 1))
            n_edges = top.n_edges
            for estart in range(0, n_edges, edge_block):
                estop = min(estart + edge_block, n_edges)
                sl = slice(estart, estop)
                contrib = k_prev[top.child[sl]] * values[top.node[sl], None]
                rows = top.value[sl]
                if out_row_map is not None:
                    rows = out_row_map[rows]
                    if rows.size and rows.min() < 0:
                        # A -1 (unmapped) entry would wrap via Python
                        # negative indexing and corrupt a valid local row.
                        bad = np.unique(top.value[sl][rows < 0])
                        raise ValueError(
                            f"out_row_map has no local row for scatter "
                            f"target rows {bad[:8].tolist()}"
                            f"{'...' if bad.size > 8 else ''} — the row "
                            f"block does not cover this chunk's non-zeros"
                        )
                scatter_add_rows(out, rows, contrib)
        if stats is not None:
            stats.add_scatter(n_edges, k_prev.shape[1])
        if collector is not None:
            collector.metrics.counter("lattice.scatter_flops").inc(
                2 * n_edges * k_prev.shape[1]
            )
        _release(k_prev.nbytes, k_prev_label)
    except BaseException:
        for nbytes, label in held:
            ctx.release_bytes(nbytes, label)
        raise


def _compute_level(
    k_cur: np.ndarray,
    k_prev: np.ndarray,
    factor: np.ndarray,
    edges,
    layout,
    block_bytes: int,
    ctx: Optional[ExecContext] = None,
) -> None:
    """Fill ``k_cur`` node-chunk by node-chunk.

    Per edge ``e`` (term of its node):
    ``contrib[e, s] = U[value[e], last_index[s]] * K_prev[child[e], parent_loc[s]]``
    with both gathers hoisted to per-level row tables; edges are node-major
    so a single segment-sum finishes each chunk.
    """
    ctx = resolve_context(ctx)
    n_nodes = k_cur.shape[0]
    if n_nodes == 0:
        return
    size = layout.size
    row_bytes = size * 8
    edges_per_chunk = max(1, block_bytes // max(2 * row_bytes, 1))
    # Hoisted per-level tables (factor columns re-ordered by last index, the
    # parent K re-laid-out to the child index space) turn the per-edge work
    # into contiguous row-gathers. Hoisting costs (dim + M_{l-1}) * size
    # doubles — cheap in the compact layout, potentially dominant in the
    # full layout — so fall back to per-chunk 2-D gathers when it is large.
    hoist_bytes = (factor.shape[0] + k_prev.shape[0]) * row_bytes
    hoist = hoist_bytes <= 2 * block_bytes
    if hoist:
        # Pre-flight *before* allocating: the whole point of the budget is
        # the OOM check, which must fire while the bytes are uncommitted.
        ctx.request_bytes(hoist_bytes, "level gather tables")
    try:
        if hoist:
            gathered_factor = np.ascontiguousarray(factor[:, layout.last_index])
            expanded_prev = np.ascontiguousarray(k_prev[:, layout.parent_loc])
        for group in edges.groups:
            degree = group.degree
            nodes_per_chunk = max(1, edges_per_chunk // degree)
            for a in range(0, group.n_nodes, nodes_per_chunk):
                b = min(a + nodes_per_chunk, group.n_nodes)
                sl = slice(group.edge_offset + a * degree, group.edge_offset + b * degree)
                if hoist:
                    contrib = gathered_factor[edges.value[sl]]
                    contrib *= expanded_prev[edges.child[sl]]
                else:
                    contrib = factor[edges.value[sl, None], layout.last_index[None, :]]
                    contrib *= k_prev[edges.child[sl, None], layout.parent_loc[None, :]]
                if degree == 1:
                    k_cur[group.nodes[a:b]] = contrib
                else:
                    k_cur[group.nodes[a:b]] = contrib.reshape(b - a, degree, size).sum(
                        axis=1
                    )
    finally:
        if hoist:
            ctx.release_bytes(hoist_bytes, "level gather tables")
