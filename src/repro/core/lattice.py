"""Sub-multiset lattice: the memoization structure of S³TTMc.

For each IOU non-zero ``i`` (a sorted multiset of ``N`` indices), S³TTMc
needs the symmetric tensors ``K_{i∖k}`` for every distinct ``k ∈ i``; those
are built bottom-up from ``K``'s of smaller sub-multisets (Eq. 7). The set
of *all* sub-multisets of all non-zeros, organized by size ``l``, forms a
lattice; a node at level ``l`` is computed from its level-``l-1`` children
via one recurrence term per distinct value — which is simultaneously the
set of its deletion edges.

Memoization scope:

* ``"global"`` — nodes are deduplicated across non-zeros (the CSS tree's
  between-non-zeros sharing, generalized from prefixes to arbitrary
  sub-multisets);
* ``"nonzero"`` — nodes are deduplicated only within each owning non-zero
  (UCOO-style, the worst case the paper's complexity formulas describe:
  exactly ``C(N,l)`` nodes per level for an all-distinct non-zero).

Edges of each level are stored *degree-grouped*: nodes with the same
number of recurrence terms ``d`` are contiguous, with their ``d`` edges
interleaved, so the evaluation engine can reduce a whole group with one
``reshape(n, d, S).sum(axis=1)`` — a compiled, exact segment sum. (A node's
degree is its count of distinct index values, at most ``min(l, order)``.)

The lattice is purely structural — it knows nothing about ranks, layouts,
or values — so SymProp and the CSS baseline share it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..runtime.budget import request_bytes

__all__ = ["DegreeGroup", "LatticeLevel", "Lattice", "build_lattice", "unique_rows"]


def unique_rows(a: np.ndarray):
    """Deduplicate rows of a 2-D integer array.

    Returns ``(uniq, inverse)`` with ``uniq[inverse] == a`` row-wise. Uses a
    contiguous byte view (one void element per row), which is considerably
    faster than ``np.unique(axis=0)``; the resulting row order is
    deterministic but byte-lexicographic, which no consumer relies on.
    """
    if a.ndim != 2:
        raise ValueError("expected 2-D array")
    n, w = a.shape
    if n == 0 or w == 0:
        empty_uniq = a[:1].copy() if (n and w == 0) else a.copy()
        return empty_uniq, np.zeros(n, dtype=np.int64)
    contig = np.ascontiguousarray(a)
    view = contig.view(np.dtype((np.void, contig.dtype.itemsize * w))).ravel()
    _, first, inverse = np.unique(view, return_index=True, return_inverse=True)
    return contig[first], inverse.astype(np.int64)


@dataclass(frozen=True)
class DegreeGroup:
    """Contiguous run of equal-degree nodes within one level's edge arrays.

    The group's nodes are ``nodes`` (original node ids, ``n`` of them) and
    its edges occupy ``edge_offset : edge_offset + n * degree``, laid out
    node-major (node ``nodes[k]`` owns edges
    ``edge_offset + k*degree : edge_offset + (k+1)*degree``).
    """

    degree: int
    nodes: np.ndarray
    edge_offset: int

    @property
    def n_nodes(self) -> int:
        return self.nodes.shape[0]

    @property
    def n_edges(self) -> int:
        return self.n_nodes * self.degree


@dataclass(frozen=True)
class LatticeLevel:
    """Edges connecting level-``l`` nodes to their level-``l-1`` children.

    Attributes
    ----------
    level:
        ``l`` — the size of the node multisets on the parent side.
    n_nodes:
        Number of (deduplicated) level-``l`` nodes.
    value:
        ``(n_edges,)`` deleted index value per edge (the ``U`` row of the
        recurrence term).
    child:
        ``(n_edges,)`` level-``l-1`` node ids.
    node:
        ``(n_edges,)`` parent node ids — kept only for the top level
        (where parents are non-zeros and scale the scatter); ``None``
        elsewhere.
    groups:
        Degree-grouped edge layout (see :class:`DegreeGroup`).
    """

    level: int
    n_nodes: int
    value: np.ndarray
    child: np.ndarray
    node: Optional[np.ndarray]
    groups: Tuple[DegreeGroup, ...]

    @property
    def n_edges(self) -> int:
        return self.value.shape[0]


@dataclass(frozen=True)
class Lattice:
    """Full lattice for one batch of IOU non-zeros.

    ``levels[l]`` (``2 <= l <= N``) holds the edges computing level ``l``
    from level ``l-1``. ``leaf_values`` are the index values of the level-1
    nodes (whose ``K`` tensors are rows of ``U``). Level-``N`` nodes are the
    non-zeros themselves, in input order.
    """

    order: int
    n_nonzeros: int
    levels: Dict[int, LatticeLevel]
    leaf_values: np.ndarray
    node_keys: Optional[Dict[int, np.ndarray]]
    memoize: str

    def level_nodes(self, level: int) -> int:
        if level == 1:
            return self.leaf_values.shape[0]
        return self.levels[level].n_nodes

    @property
    def total_edges(self) -> int:
        return sum(lv.n_edges for lv in self.levels.values())


def _delete_one_per_run(current: np.ndarray):
    """All single-element deletions up to multiset equality.

    For each row of the sorted matrix ``current`` ``(M, w)``, deleting any
    element of a run of equal values yields the same sorted child; we delete
    the run *ends*. Returns ``(parent_row, deleted_value, child_tuples,
    counts)`` in node-major order; ``counts[m]`` is row ``m``'s number of
    distinct values (its degree).
    """
    M, w = current.shape
    run_end = np.ones((M, w), dtype=bool)
    if w > 1:
        run_end[:, :-1] = current[:, 1:] != current[:, :-1]
    parent_row, pos = np.nonzero(run_end)
    n_edges = parent_row.shape[0]
    deleted = current[parent_row, pos]
    if w > 1:
        keep = np.arange(w)[None, :] != pos[:, None]
        child = current[parent_row][keep].reshape(n_edges, w - 1)
    else:
        child = np.zeros((n_edges, 0), dtype=current.dtype)
    counts = run_end.sum(axis=1)
    return parent_row, deleted, child, counts


def _degree_grouped_order(counts: np.ndarray):
    """Edge permutation and groups for degree-grouped layout.

    Given per-node edge counts (node-major edges), returns
    ``(edge_perm, group_descriptors)`` where ``edge_perm`` reorders edges so
    that equal-degree nodes are contiguous, and each descriptor is
    ``(degree, node_ids, edge_offset)``.
    """
    n_nodes = counts.shape[0]
    node_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=node_ptr[1:])
    node_order = np.argsort(counts, kind="stable")
    lengths = counts[node_order]
    starts = node_ptr[node_order]
    total = int(node_ptr[-1])
    out_offsets = np.zeros(n_nodes + 1, dtype=np.int64)
    np.cumsum(lengths, out=out_offsets[1:])
    edge_perm = (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_offsets[:-1], lengths)
        + np.repeat(starts, lengths)
    )
    groups = []
    boundary = np.ones(n_nodes, dtype=bool)
    if n_nodes > 1:
        boundary[1:] = lengths[1:] != lengths[:-1]
    group_starts = np.flatnonzero(boundary)
    group_ends = np.concatenate([group_starts[1:], [n_nodes]])
    for gs, ge in zip(group_starts, group_ends):
        degree = int(lengths[gs])
        groups.append(
            DegreeGroup(
                degree=degree,
                nodes=node_order[gs:ge].copy(),
                edge_offset=int(out_offsets[gs]),
            )
        )
    return edge_perm, tuple(groups)


def build_lattice(
    indices: np.ndarray, memoize: str = "global", *, keep_keys: bool = False
) -> Lattice:
    """Build the sub-multiset lattice for a batch of IOU non-zeros.

    Parameters
    ----------
    indices:
        ``(unnz, order)`` non-decreasing rows.
    memoize:
        ``"global"`` or ``"nonzero"`` (see module docstring).
    keep_keys:
        Retain the per-level node index tuples (``node_keys``) — useful for
        inspection and tests, costly on deep lattices.
    """
    if memoize not in ("global", "nonzero"):
        raise ValueError(f"unknown memoize scope {memoize!r}")
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 2:
        raise ValueError("indices must be (unnz, order)")
    unnz, order = indices.shape
    if order < 2:
        raise ValueError("lattice requires order >= 2")

    levels: Dict[int, LatticeLevel] = {}
    node_keys: Dict[int, np.ndarray] = {order: indices} if keep_keys else {}
    current = indices
    # In "nonzero" scope each node carries its owning non-zero id; dedup keys
    # include it, so sharing never crosses non-zeros.
    owner = np.arange(unnz, dtype=np.int64)
    for level in range(order, 1, -1):
        parent_row, deleted, child, counts = _delete_one_per_run(current)
        request_bytes(child.nbytes + 3 * parent_row.nbytes, f"lattice level {level}")
        if level - 1 == 1 or memoize == "global":
            key = child
        else:
            key = np.concatenate([owner[parent_row, None], child], axis=1)
        uniq, inverse = unique_rows(key)
        edge_perm, groups = _degree_grouped_order(counts)
        levels[level] = LatticeLevel(
            level=level,
            n_nodes=current.shape[0],
            value=deleted[edge_perm],
            child=inverse[edge_perm],
            node=parent_row[edge_perm] if level == order else None,
            groups=groups,
        )
        if memoize == "nonzero" and level - 1 > 1:
            owner = uniq[:, 0].copy()
            uniq = uniq[:, 1:]
        current = uniq
        if keep_keys:
            node_keys[level - 1] = current
    leaf_values = current[:, 0].copy()
    return Lattice(
        order=order,
        n_nonzeros=unnz,
        levels=levels,
        leaf_values=leaf_values,
        node_keys=node_keys if keep_keys else None,
        memoize=memoize,
    )
