"""Vectorized segment reductions used by the lattice kernels."""

from __future__ import annotations

import numpy as np

__all__ = ["segment_sum_by_ptr", "scatter_add_rows"]


def segment_sum_by_ptr(contrib: np.ndarray, node_ptr: np.ndarray) -> np.ndarray:
    """Sum contiguous row segments of ``contrib``.

    ``node_ptr`` is a ``(n_nodes+1,)`` CSR offset array over the rows of
    ``contrib``; returns ``(n_nodes, contrib.shape[1])``. Empty segments
    (possible only for degenerate inputs) yield zero rows.
    """
    n_nodes = node_ptr.shape[0] - 1
    if n_nodes == 0:
        return np.zeros((0,) + contrib.shape[1:], dtype=contrib.dtype)
    starts = node_ptr[:-1]
    empty = node_ptr[:-1] == node_ptr[1:]
    if not empty.any():
        return np.add.reduceat(contrib, starts, axis=0)
    # reduceat misbehaves on empty segments (it reduces the *next* slice);
    # compute on non-empty segments and fill zeros elsewhere.
    out = np.zeros((n_nodes,) + contrib.shape[1:], dtype=contrib.dtype)
    nz = ~empty
    out[nz] = np.add.reduceat(contrib, starts[nz], axis=0)
    return out


def scatter_add_rows(out: np.ndarray, rows: np.ndarray, contrib: np.ndarray) -> None:
    """``out[rows[e], :] += contrib[e, :]`` with duplicate rows allowed.

    Sort-and-reduce formulation: orders contributions by target row, sums
    runs with ``reduceat``, then does one bulk indexed add — much faster
    than ``np.add.at`` for wide rows.
    """
    if rows.shape[0] == 0:
        return
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    starts = np.ones(sorted_rows.shape[0], dtype=bool)
    starts[1:] = sorted_rows[1:] != sorted_rows[:-1]
    start_pos = np.flatnonzero(starts)
    summed = np.add.reduceat(contrib[order], start_pos, axis=0)
    out[sorted_rows[start_pos]] += summed
