"""Kernel compiler v2: fused, exec-compiled lattice kernels.

:mod:`repro.core.codegen` reproduces the paper's template-metaprogramming
idea for a *single* outer-product step; this module applies it to the
whole S³TTMc evaluation. For one ``(order, rank, layout, memoize,
chunk_edges)`` configuration — a :class:`KernelSpec` — it generates
vectorized NumPy source with one straight-line section per lattice level,
``exec``-compiles it once, and runs it against per-plan gather tables.

Three fusions distinguish the generated kernels from the generic engine
(:func:`repro.core.engine.lattice_ttmc`):

* **leaf fusion** — level 1 (``K_1`` = rows of ``U``) is folded into the
  level-2 factor gathers via a precomputed ``leaf_values[child]`` index, so
  ``K_1`` and its ``(M_1, S_2)`` expansion are never materialized;
* **expansion fusion** — for levels ≥ 3 the parent ``K`` is consumed in its
  *compact* ``S_{l-1}`` columns and re-laid-out per cache-sized edge chunk
  (``np.take(..., axis=1, out=...)``), eliminating the materialized
  ``(M_{l-1}, S_l)`` ``expanded_prev`` intermediate the generic engine's
  budget accounts for;
* **presorted scatter** — the top-level edges are stably pre-sorted by
  output row at table-build time, so the per-call scatter is a gather +
  scale + segment-aligned ``np.add.reduceat`` with no runtime argsort.

Each fusion preserves the generic engine's floating-point summation order
exactly (same degree-group reduction, same stable edge order per output
row), so compiled results are *bitwise* equal to the generic engine's —
:mod:`repro.verify` checks that on every configuration it sweeps.

Chunk boundaries never split a lattice node or an output-row segment, so
results are also bitwise invariant under ``chunk_edges`` — the autotuner
(:mod:`repro.core.autotune`) can sweep it freely.

Caching is two-level:

* the compiled *function* (pattern-independent) lives in a module-level
  LRU keyed by the full :class:`KernelSpec`, tagged with
  ``__codegen_version__`` / ``__kernel_spec__`` / ``__source__``;
* the per-plan *gather tables* live on ``ctx.plans`` keyed by the plan's
  pattern stamp ``(unnz, crc32 fingerprint)`` plus the spec axes, so a
  stale tensor can never hit stale tables — exactly the plan-reuse
  guarantee :class:`repro.core.plan.TTMcPlan` already enforces.

Inspect what the compiler produces with::

    from repro.core.compile import KernelSpec, compiled_kernel
    fn = compiled_kernel(KernelSpec(order=4, rank=8))
    print(fn.__source__)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..runtime.context import ExecContext, resolve_context
from ..symmetry.combinatorics import dense_size, sym_storage_size
from .lattice import Lattice
from .layouts import layout_for
from .plan import TTMcPlan

__all__ = [
    "KERNEL_VERSION",
    "DEFAULT_CHUNK_EDGES",
    "KernelSpec",
    "KernelTables",
    "CompiledKernel",
    "build_tables",
    "clear_kernel_cache",
    "compiled_kernel",
    "generate_kernel_source",
    "get_kernel",
    "kernel_cache_info",
]

#: Version of the v2 source generator. Bumping it invalidates every cached
#: function and every ``ctx.plans`` table entry (both cache keys embed it).
KERNEL_VERSION = 2

#: Default edges-per-chunk for the fused gather loops. Small enough that
#: the three per-chunk buffers stay cache-resident — measured 2.6× over
#: the generic engine at order 4, R = 8; larger chunks decay toward 1×.
DEFAULT_CHUNK_EDGES = 1024

_FN_CACHE_CAP = 32


def _level_size(layout: str, level: int, rank: int) -> int:
    """Entry count of a level-``level`` K tensor in the given layout."""
    if layout == "compact":
        return sym_storage_size(level, rank)
    if layout == "full":
        return dense_size(level, rank)
    if layout == "cp":
        return rank
    raise ValueError(f"unknown intermediate layout {layout!r}")


@dataclass(frozen=True)
class KernelSpec:
    """One compiled-kernel configuration (the function cache key)."""

    order: int
    rank: int
    layout: str = "compact"
    memoize: str = "global"
    chunk_edges: int = DEFAULT_CHUNK_EDGES
    version: int = field(default=KERNEL_VERSION)

    def __post_init__(self) -> None:
        if self.order < 2:
            raise ValueError("compiled kernels require order >= 2")
        if self.rank < 1:
            raise ValueError("compiled kernels require rank >= 1")
        if self.chunk_edges < 1:
            raise ValueError("chunk_edges must be >= 1")
        _level_size(self.layout, 1, self.rank)  # validates the layout name

    @property
    def function_name(self) -> str:
        return (
            f"_s3ttmc_o{self.order}_r{self.rank}_{self.layout}"
            f"_{self.memoize}_c{self.chunk_edges}"
        )


# ---------------------------------------------------------------------------
# Per-plan gather tables
# ---------------------------------------------------------------------------


class _LevelTables:
    """Flat per-level index tables, node-renumbered for contiguous writes.

    Nodes are renumbered so every degree group occupies a contiguous row
    range of the level's K matrix — the generated degree-sum writes
    straight into a slice (``np.sum(..., out=k[r0:r1])``) with no
    fancy-index scatter. The *next* level's ``child`` array is remapped
    through the inverse permutation at build time, so renumbering costs
    nothing per call.
    """

    __slots__ = (
        "value", "child", "groups", "n_nodes", "n_edges", "max_degree", "q", "p"
    )

    def __init__(self, value, child, groups, n_nodes, n_edges, max_degree, q, p):
        self.value = value
        self.child = child
        self.groups = groups  # ((degree, n_nodes, edge_offset), ...)
        self.n_nodes = n_nodes
        self.n_edges = n_edges
        self.max_degree = max_degree
        self.q = q  # layout last-index gather (factor columns)
        self.p = p  # layout parent-location gather (parent K columns)


class _TopTables:
    """Top-level scatter tables, stably pre-sorted by output row.

    The stable sort matches :func:`repro.core._segment.scatter_add_rows`'s
    ``np.argsort(rows, kind="stable")`` exactly, so per-row summation
    order — and therefore the floating-point result — is bitwise identical
    to the generic engine's.
    """

    __slots__ = ("child", "node", "urows", "ptr", "n_edges")

    def __init__(self, child, node, urows, ptr, n_edges):
        self.child = child
        self.node = node
        self.urows = urows  # unique output rows, ascending
        self.ptr = ptr  # segment start per unique row
        self.n_edges = n_edges


class KernelTables:
    """All gather tables one generated kernel needs for one lattice batch."""

    __slots__ = ("levels", "top")

    def __init__(self, levels: tuple, top: _TopTables) -> None:
        self.levels = levels
        self.top = top

    @property
    def nbytes(self) -> int:
        total = 0
        for lt in self.levels:
            total += lt.value.nbytes + lt.child.nbytes + lt.q.nbytes + lt.p.nbytes
        tt = self.top
        total += tt.child.nbytes + tt.node.nbytes + tt.urows.nbytes + tt.ptr.nbytes
        return total


def build_tables(lattice: Lattice, rank: int, layout: str) -> KernelTables:
    """Flatten one lattice batch into single-shot gather tables.

    Pattern-only (never touches factor values), built once per plan and
    cached on ``ctx.plans`` — the numeric call then runs pure gathers.
    """
    order = lattice.order
    levels: List[_LevelTables] = []
    inv: Optional[np.ndarray] = None
    for level in range(2, order):
        lay = layout_for(layout, level, rank)
        edges = lattice.levels[level]
        child = edges.child
        if level == 2:
            # Leaf fusion: compose the level-1 indirection away so the
            # generated code gathers factor rows directly.
            child = lattice.leaf_values[child]
        else:
            child = inv[child]
        if edges.groups:
            perm = np.concatenate([g.nodes for g in edges.groups])
        else:
            perm = np.empty(0, dtype=np.int64)
        inv = np.empty(edges.n_nodes, dtype=np.int64)
        inv[perm] = np.arange(edges.n_nodes, dtype=np.int64)
        levels.append(
            _LevelTables(
                value=np.ascontiguousarray(edges.value),
                child=np.ascontiguousarray(child),
                groups=tuple(
                    (g.degree, g.n_nodes, g.edge_offset) for g in edges.groups
                ),
                n_nodes=edges.n_nodes,
                n_edges=edges.n_edges,
                max_degree=max((g.degree for g in edges.groups), default=1),
                q=np.ascontiguousarray(lay.last_index),
                p=np.ascontiguousarray(lay.parent_loc),
            )
        )

    top = lattice.levels[order]
    assert top.node is not None, "top lattice level must retain parent ids"
    child = top.child
    child = lattice.leaf_values[child] if order == 2 else inv[child]
    rows = top.value
    # Stable sort by output row: identical permutation to the generic
    # scatter's argsort, preserving original edge order within each row.
    perm_t = np.argsort(rows, kind="stable")
    rows_sorted = rows[perm_t]
    urows, ptr = np.unique(rows_sorted, return_index=True)
    return KernelTables(
        levels=tuple(levels),
        top=_TopTables(
            child=np.ascontiguousarray(child[perm_t]),
            node=np.ascontiguousarray(top.node[perm_t]),
            urows=np.ascontiguousarray(urows),
            ptr=np.ascontiguousarray(ptr.astype(np.int64)),
            n_edges=top.n_edges,
        ),
    )


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------


def generate_kernel_source(spec: KernelSpec) -> str:
    """Vectorized NumPy source for one kernel configuration.

    One unrolled section per lattice level with all entry sizes baked in
    as literals, mirroring the paper's per-``(l, R)`` template
    instantiation. The emitted function signature is
    ``(tables, factor, values, out, out_row_map, ctx, stats, collector)``
    and accumulates one lattice batch into ``out``.
    """
    order, rank, layout = spec.order, spec.rank, spec.layout
    chunk = spec.chunk_edges
    sizes = {lv: _level_size(layout, lv, rank) for lv in range(1, order)}
    top_size = sizes[order - 1]

    lines: List[str] = []
    add = lines.append
    add(f"def {spec.function_name}(t, factor, values, out, out_row_map, ctx, stats, collector):")
    add(f'    """Generated S3TTMc kernel: order={order}, rank={rank}, '
        f'layout={layout!r},')
    add(f'    memoize={spec.memoize!r}, chunk_edges={chunk} '
        f'(codegen v{KERNEL_VERSION})."""')
    # Budget bookkeeping matches the generic engine: every request is
    # given back on *any* exit path so OOM-retry logic sees a drained
    # budget.
    add("    held = []")
    add("    def _req(n, label):")
    add("        ctx.request_bytes(n, label)")
    add("        held.append((n, label))")
    add("    def _rel(n, label):")
    add("        ctx.release_bytes(n, label)")
    add("        held.remove((n, label))")
    add("    try:")

    for level in range(2, order):
        s_cur = sizes[level]
        i = level - 2
        if level == 2:
            add(f"        # -- level 2 (S={s_cur}): leaf level fused into the factor gathers")
            add(f"        lt = t.levels[{i}]")
            add(f'        with ctx.span("lattice.level", level=2, nodes=lt.n_nodes, edges=lt.n_edges, entry_size={s_cur}):')
            add(f'            _req(2 * factor.shape[0] * {s_cur * 8}, "compiled U tables")')
            add("            Uq = _np.ascontiguousarray(factor[:, lt.q])")
            add("            Up = _np.ascontiguousarray(factor[:, lt.p])")
            add(f'            _req(lt.n_nodes * {s_cur * 8}, "K level 2")')
            add(f"            k_prev = _np.empty((lt.n_nodes, {s_cur}), dtype=_np.float64)")
            add(f"            rows = min(max({chunk}, lt.max_degree), max(lt.n_edges, 1))")
            add(f'            _req(2 * rows * {s_cur * 8}, "compiled chunk buffers")')
            add(f"            A = _np.empty((rows, {s_cur}), dtype=_np.float64)")
            add(f"            B = _np.empty((rows, {s_cur}), dtype=_np.float64)")
            add("            r0 = 0")
            add("            for d, gn, goff in lt.groups:")
            add(f"                npc = max(1, {chunk} // d)")
            add("                for a in range(0, gn, npc):")
            add("                    b = min(a + npc, gn)")
            add("                    ne = (b - a) * d")
            add("                    sl = slice(goff + a * d, goff + b * d)")
            add("                    Ab = A[:ne]")
            add("                    _np.take(Uq, lt.value[sl], axis=0, out=Ab)")
            add("                    _np.take(Up, lt.child[sl], axis=0, out=B[:ne])")
            add("                    Ab *= B[:ne]")
            add("                    if d == 1:")
            add("                        k_prev[r0 + a : r0 + b] = Ab")
            add("                    else:")
            add(f"                        _np.sum(Ab.reshape(b - a, d, {s_cur}), axis=1, out=k_prev[r0 + a : r0 + b])")
            add("                r0 += gn")
            add(f'            _rel(2 * rows * {s_cur * 8}, "compiled chunk buffers")')
            add(f'            _rel(2 * factor.shape[0] * {s_cur * 8}, "compiled U tables")')
        else:
            s_prev = sizes[level - 1]
            add(f"        # -- level {level} (S={s_cur}): parent consumed compact, re-laid-out per chunk")
            add(f"        lt = t.levels[{i}]")
            add(f'        with ctx.span("lattice.level", level={level}, nodes=lt.n_nodes, edges=lt.n_edges, entry_size={s_cur}):')
            add(f'            _req(factor.shape[0] * {s_cur * 8}, "compiled U tables")')
            add("            Uq = _np.ascontiguousarray(factor[:, lt.q])")
            add(f'            _req(lt.n_nodes * {s_cur * 8}, "K level {level}")')
            add(f"            k_cur = _np.empty((lt.n_nodes, {s_cur}), dtype=_np.float64)")
            add(f"            rows = min(max({chunk}, lt.max_degree), max(lt.n_edges, 1))")
            add(f'            _req(rows * {(s_prev + 2 * s_cur) * 8}, "compiled chunk buffers")')
            add(f"            Cp = _np.empty((rows, {s_prev}), dtype=_np.float64)")
            add(f"            C = _np.empty((rows, {s_cur}), dtype=_np.float64)")
            add(f"            D = _np.empty((rows, {s_cur}), dtype=_np.float64)")
            add("            r0 = 0")
            add("            for d, gn, goff in lt.groups:")
            add(f"                npc = max(1, {chunk} // d)")
            add("                for a in range(0, gn, npc):")
            add("                    b = min(a + npc, gn)")
            add("                    ne = (b - a) * d")
            add("                    sl = slice(goff + a * d, goff + b * d)")
            add("                    Cb = C[:ne]")
            add("                    _np.take(k_prev, lt.child[sl], axis=0, out=Cp[:ne])")
            add("                    _np.take(Cp[:ne], lt.p, axis=1, out=Cb)")
            add("                    _np.take(Uq, lt.value[sl], axis=0, out=D[:ne])")
            add("                    Cb *= D[:ne]")
            add("                    if d == 1:")
            add("                        k_cur[r0 + a : r0 + b] = Cb")
            add("                    else:")
            add(f"                        _np.sum(Cb.reshape(b - a, d, {s_cur}), axis=1, out=k_cur[r0 + a : r0 + b])")
            add("                r0 += gn")
            add(f'            _rel(rows * {(s_prev + 2 * s_cur) * 8}, "compiled chunk buffers")')
            add(f'            _rel(factor.shape[0] * {s_cur * 8}, "compiled U tables")')
        add("        if stats is not None:")
        add(f"            stats.add_level({level}, lt.n_nodes, lt.n_edges, {s_cur})")
        add("        if collector is not None:")
        add(f'            collector.metrics.counter("lattice.flops.level_{level}").inc((2 * lt.n_edges - lt.n_nodes) * {s_cur})')
        add(f'            collector.metrics.histogram("lattice.level_entries").observe(lt.n_nodes * {s_cur})')
        if level > 2:
            add(f'        _rel(t.levels[{i - 1}].n_nodes * {sizes[level - 1] * 8}, "K level {level - 1}")')
            add("        k_prev = k_cur")

    ksrc = "factor" if order == 2 else "k_prev"
    add(f"        # -- top level (S={top_size}): presorted scale + segment reduceat")
    add("        tt = t.top")
    add(f'        with ctx.span("lattice.scatter", edges=tt.n_edges, entry_size={top_size}):')
    add("            if out_row_map is None:")
    add("                lrows = tt.urows")
    add("            else:")
    add("                lrows = out_row_map[tt.urows]")
    add("                if lrows.size and lrows.min() < 0:")
    add("                    bad = tt.urows[lrows < 0]")
    add('                    raise ValueError(')
    add('                        "out_row_map has no local row for scatter target rows "')
    add('                        + str(bad[:8].tolist())')
    add('                        + ("..." if bad.size > 8 else "")')
    add('                        + " - the row block does not cover this chunk\'s non-zeros"')
    add("                    )")
    add("            vscale = values[tt.node]")
    add("            nseg = tt.urows.shape[0]")
    add(f"            rows = min({chunk}, max(tt.n_edges, 1))")
    add(f'            _req(rows * {top_size * 8}, "compiled chunk buffers")')
    add(f"            E = _np.empty((rows, {top_size}), dtype=_np.float64)")
    add(f"            spc = max(1, {chunk} // max(1, tt.n_edges // max(1, nseg)))")
    add("            ptr = tt.ptr")
    add("            for a in range(0, nseg, spc):")
    add("                b = min(a + spc, nseg)")
    add("                e0 = ptr[a]")
    add("                e1 = ptr[b] if b < nseg else tt.n_edges")
    add("                ne = e1 - e0")
    add("                if ne <= rows:")
    add("                    Eb = E[:ne]")
    add("                else:")
    add(f"                    Eb = _np.empty((ne, {top_size}), dtype=_np.float64)")
    add(f"                _np.take({ksrc}, tt.child[e0:e1], axis=0, out=Eb)")
    add("                Eb *= vscale[e0:e1, None]")
    add("                out[lrows[a:b]] += _np.add.reduceat(Eb, ptr[a:b] - e0, axis=0)")
    add(f'            _rel(rows * {top_size * 8}, "compiled chunk buffers")')
    add("        if stats is not None:")
    add(f"            stats.add_scatter(tt.n_edges, {top_size})")
    add("        if collector is not None:")
    add(f'            collector.metrics.counter("lattice.scatter_flops").inc(2 * tt.n_edges * {top_size})')
    if order > 2:
        add(f'        _rel(k_prev.shape[0] * {top_size * 8}, "K level {order - 1}")')
    add("    except BaseException:")
    add("        for n, label in held:")
    add("            ctx.release_bytes(n, label)")
    add("        raise")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Compilation cache (module-level LRU, version-tagged)
# ---------------------------------------------------------------------------

_FN_CACHE: "OrderedDict[KernelSpec, Callable]" = OrderedDict()
_FN_LOCK = threading.Lock()


def compiled_kernel(spec: KernelSpec) -> Callable:
    """Exec-compiled kernel for ``spec``, LRU-cached (cap ``32``).

    The returned function is tagged: ``__kernel_spec__`` (the spec),
    ``__codegen_version__`` (:data:`KERNEL_VERSION`) and ``__source__``
    (the generated text, for inspection).
    """
    with _FN_LOCK:
        fn = _FN_CACHE.get(spec)
        if fn is not None:
            _FN_CACHE.move_to_end(spec)
            return fn
    source = generate_kernel_source(spec)
    namespace: dict = {"_np": np}
    exec(
        compile(source, f"<repro.core.compile {spec.function_name}>", "exec"),
        namespace,
    )
    fn = namespace[spec.function_name]
    fn.__kernel_spec__ = spec
    fn.__codegen_version__ = KERNEL_VERSION
    fn.__source__ = source
    with _FN_LOCK:
        existing = _FN_CACHE.get(spec)
        if existing is not None:
            return existing
        _FN_CACHE[spec] = fn
        while len(_FN_CACHE) > _FN_CACHE_CAP:
            _FN_CACHE.popitem(last=False)
    return fn


def kernel_cache_info() -> dict:
    """Size/cap/contents of the compiled-function LRU (for tests/tools)."""
    with _FN_LOCK:
        return {
            "size": len(_FN_CACHE),
            "cap": _FN_CACHE_CAP,
            "specs": list(_FN_CACHE),
        }


def clear_kernel_cache() -> None:
    """Drop every cached compiled kernel (tests, version bumps)."""
    with _FN_LOCK:
        _FN_CACHE.clear()


# ---------------------------------------------------------------------------
# Engine entry
# ---------------------------------------------------------------------------


@dataclass
class CompiledKernel:
    """A ready-to-run kernel: compiled function + per-batch tables."""

    spec: KernelSpec
    fn: Callable
    tables: Tuple[KernelTables, ...]


def get_kernel(
    plan: TTMcPlan,
    rank: int,
    intermediate: str,
    chunk_edges: Optional[int],
    ctx: Optional[ExecContext] = None,
) -> CompiledKernel:
    """Resolve (compile + build/fetch tables for) one plan's kernel.

    Tables are cached on ``ctx.plans`` keyed by the plan's pattern stamp
    ``(unnz, fingerprint)`` plus every axis that changes their content —
    so a rebuilt/changed tensor misses, and a version bump invalidates.
    Legacy unstamped plans (``unnz < 0``) are never cached.
    """
    ctx = resolve_context(ctx)
    chunk = DEFAULT_CHUNK_EDGES if chunk_edges is None else int(chunk_edges)
    spec = KernelSpec(
        order=plan.order,
        rank=rank,
        layout=intermediate,
        memoize=plan.memoize,
        chunk_edges=chunk,
    )
    fn = compiled_kernel(spec)
    metrics = ctx.metrics
    tables: Optional[Tuple[KernelTables, ...]] = None
    key = None
    if plan.unnz >= 0:
        key = (
            plan.unnz,
            plan.fingerprint,
            plan.order,
            plan.memoize,
            plan.nz_batch_size,
            rank,
            intermediate,
            KERNEL_VERSION,
        )
        tables = ctx.plans.compiled_get(key)
    if tables is None:
        tables = tuple(
            build_tables(lattice, rank, intermediate)
            for _start, _stop, lattice in plan.batches
        )
        if key is not None:
            ctx.plans.compiled_put(key, tables)
        if metrics is not None:
            metrics.counter("compile.tables.misses").inc()
    else:
        if metrics is not None:
            metrics.counter("compile.tables.hits").inc()
    return CompiledKernel(spec=spec, fn=fn, tables=tables)
