"""Trace-driven autotuner: calibrated kernel/backend configs per workload.

The compiled kernels (:mod:`repro.core.compile`) expose knobs — engine
mode, fused chunk size, nz-batch size, memoization scope, layout, hoist
threshold (``block_bytes``) and execution backend — whose best settings
depend on workload *shape* (order, dim, unnz, rank), not on values. This
module runs short calibration probes over a candidate list, picks the
fastest configuration, and persists the decision as a versioned learned
profile so repeat workloads start tuned and skip calibration entirely.

Profile location: pass ``profile_path=``, or set ``REPRO_TUNE_PROFILE=
path.json``. The file is ``{"version": N, "entries": {key: config}}``;
a version mismatch rejects the whole file (:class:`TuneProfileError`)
and — inside :func:`autotune` — falls back to re-calibration, never to
silently applying stale knobs.

Observability: every decision is measurable. ``autotune.profile.hits`` /
``autotune.profile.misses`` counters say whether calibration ran;
``autotune.probe`` spans time each candidate; the chosen config is
attached to an ``autotune.selected`` event. Since probes run the real
kernels, their spans also feed ``python -m repro.obs report``'s
per-kernel-mode attribution rows.

Determinism: candidate order is fixed, the winner is the lowest median
probe time with ties broken by candidate index, and the probe runner is
injectable (``prober=``) — tests drive selection with synthetic timings.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.context import ExecContext, resolve_context
from .compile import DEFAULT_CHUNK_EDGES
from .engine import DEFAULT_BLOCK_BYTES
from .s3ttmc import SymmetricInput, _as_ucoo, s3ttmc

__all__ = [
    "PROFILE_VERSION",
    "PROFILE_ENV",
    "TuneProfileError",
    "TunedConfig",
    "autotune",
    "candidates_from_attribution",
    "default_candidates",
    "load_profile",
    "save_profile",
    "tuned_s3ttmc",
    "workload_key",
]

#: Learned-profile schema version. Bump on any change to the config
#: fields or their semantics; old files are rejected, not reinterpreted.
PROFILE_VERSION = 1

PROFILE_ENV = "REPRO_TUNE_PROFILE"


class TuneProfileError(RuntimeError):
    """A learned profile could not be used (version mismatch/corrupt)."""


@dataclass(frozen=True)
class TunedConfig:
    """One tuned kernel/backend configuration (a profile entry)."""

    kernel: str = "generic"
    chunk_edges: Optional[int] = None
    nz_batch_size: Optional[int] = None
    memoize: str = "global"
    intermediate: str = "compact"
    block_bytes: Optional[int] = None
    backend: str = "serial"
    n_workers: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, spec: dict) -> "TunedConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(spec) - known
        if unknown:
            raise TuneProfileError(
                f"unknown profile config fields {sorted(unknown)}"
            )
        return cls(**spec)

    def kernel_kwargs(self) -> dict:
        """Keyword arguments for :func:`repro.core.s3ttmc.s3ttmc`."""
        kwargs = dict(
            kernel=self.kernel,
            chunk_edges=self.chunk_edges,
            nz_batch_size=self.nz_batch_size,
            memoize=self.memoize,
        )
        if self.block_bytes is not None:
            kwargs["block_bytes"] = self.block_bytes
        return kwargs


def _bucket(n: int) -> int:
    """Smallest power of two >= n (workload shapes bucket geometrically)."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())


def workload_key(order: int, dim: int, unnz: int, rank: int) -> str:
    """Profile key for a workload shape.

    ``dim`` and ``unnz`` are bucketed to powers of two so nearby sizes
    share a tuning; ``order`` and ``rank`` enter exactly (they change the
    generated kernel).
    """
    return f"o{order}.r{rank}.d{_bucket(dim)}.n{_bucket(unnz)}"


# ---------------------------------------------------------------------------
# Profile persistence
# ---------------------------------------------------------------------------


def load_profile(path) -> Dict[str, TunedConfig]:
    """Read a learned profile; raise :class:`TuneProfileError` when unusable.

    A missing file is an empty profile (first run); a file with the wrong
    version or shape is an *error* — the caller decides whether that
    means re-tune (:func:`autotune` does) or abort.
    """
    path = Path(path)
    if not path.exists():
        return {}
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise TuneProfileError(f"unreadable tune profile {path}: {exc}") from exc
    if not isinstance(payload, dict) or "version" not in payload:
        raise TuneProfileError(f"malformed tune profile {path}: no version")
    if payload["version"] != PROFILE_VERSION:
        raise TuneProfileError(
            f"tune profile {path} has version {payload['version']!r}, "
            f"expected {PROFILE_VERSION} — re-tune instead of applying "
            f"stale knobs"
        )
    entries = payload.get("entries", {})
    if not isinstance(entries, dict):
        raise TuneProfileError(f"malformed tune profile {path}: bad entries")
    out = {}
    for key, spec in entries.items():
        if not isinstance(spec, dict):
            raise TuneProfileError(
                f"malformed tune profile {path}: entry {key!r} is not a dict"
            )
        spec = dict(spec)
        spec.pop("probe_seconds", None)  # informational, not a config field
        out[key] = TunedConfig.from_dict(spec)
    return out


def save_profile(
    path,
    entries: Dict[str, TunedConfig],
    probe_seconds: Optional[Dict[str, float]] = None,
) -> None:
    """Atomically write a learned profile (tmp + rename)."""
    path = Path(path)
    payload_entries = {}
    for key, config in sorted(entries.items()):
        spec = config.to_dict()
        if probe_seconds and key in probe_seconds:
            spec["probe_seconds"] = round(float(probe_seconds[key]), 6)
        payload_entries[key] = spec
    payload = {"version": PROFILE_VERSION, "entries": payload_entries}
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def _profile_path(explicit) -> Optional[Path]:
    if explicit is not None:
        return Path(explicit)
    env = os.environ.get(PROFILE_ENV, "")
    return Path(env) if env else None


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------


def default_candidates(n_workers: Optional[int] = None) -> List[TunedConfig]:
    """Fixed candidate list: generic vs compiled at several chunk sizes,
    plus thread-backend variants when more than one worker is available.

    The process backend is deliberately not probed — its cold-start cost
    dwarfs a short calibration and would always lose; opt in by passing
    an explicit candidate list.
    """
    candidates = [
        TunedConfig(kernel="generic"),
        TunedConfig(kernel="compiled", chunk_edges=512),
        TunedConfig(kernel="compiled", chunk_edges=DEFAULT_CHUNK_EDGES),
        TunedConfig(kernel="compiled", chunk_edges=2048),
        TunedConfig(kernel="compiled", chunk_edges=4096),
    ]
    workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
    if workers > 1:
        candidates.append(
            TunedConfig(kernel="generic", backend="thread", n_workers=workers)
        )
        candidates.append(
            TunedConfig(
                kernel="compiled",
                chunk_edges=DEFAULT_CHUNK_EDGES,
                backend="thread",
                n_workers=workers,
            )
        )
    return candidates


def candidates_from_attribution(
    report, n_workers: Optional[int] = None
) -> List[TunedConfig]:
    """Candidate list seeded from an attribution report's deviation rows.

    ``report`` is an :class:`repro.obs.attrib.AttributionReport` (duck-
    typed: only ``levels`` / ``parallel`` are read, so the core layer
    stays decoupled from ``obs``). The default candidates are reordered
    so engine modes the report measured *closest to* the perfmodel's
    prediction (lowest mean :attr:`~repro.obs.attrib.LevelRow.deviation`)
    are probed first — underperforming modes are demoted, not dropped,
    since probes still measure everything. Thread-backend rollups the
    report observed contribute matching parallel candidates, so a
    workload that already ran well at ``n_workers=k`` gets that exact
    configuration probed.
    """
    base = default_candidates(n_workers)
    for rollup in getattr(report, "parallel", []):
        if getattr(rollup, "backend", "") != "thread":
            continue
        workers = int(getattr(rollup, "n_workers", 0))
        if workers <= 1:
            continue
        for cand in (
            TunedConfig(kernel="generic", backend="thread", n_workers=workers),
            TunedConfig(
                kernel="compiled",
                chunk_edges=DEFAULT_CHUNK_EDGES,
                backend="thread",
                n_workers=workers,
            ),
        ):
            if cand not in base:
                base.append(cand)
    deviations: Dict[str, List[float]] = {}
    for row in getattr(report, "levels", []):
        deviations.setdefault(row.kernel, []).append(float(row.deviation))
    mean_dev = {k: sum(v) / len(v) for k, v in deviations.items() if v}
    if not mean_dev:
        return base
    # Stable sort: measured-better modes first, original index breaks ties
    # — candidate order stays deterministic for the probe tie-break.
    return [
        cand
        for _, cand in sorted(
            enumerate(base), key=lambda ic: (mean_dev.get(ic[1].kernel, 0.0), ic[0])
        )
    ]


def _default_prober(
    tensor: SymmetricInput,
    factor: np.ndarray,
    config: TunedConfig,
    ctx: ExecContext,
    repeats: int,
) -> float:
    """Median wall time of ``config`` on the real kernels (1 warmup)."""
    kwargs = config.kernel_kwargs()
    if config.backend == "serial":
        def run() -> None:
            s3ttmc(tensor, factor, ctx=ctx, **kwargs)
    else:
        # Lazy upward import (core -> parallel), sanctioned in
        # tools/check_layering.py: calibration optionally probes the
        # execution backends without coupling the core layer to them.
        from ..parallel.executor import parallel_s3ttmc

        block_bytes = kwargs.pop("block_bytes", DEFAULT_BLOCK_BYTES)
        del block_bytes  # parallel path owns its block sizing
        kwargs.pop("nz_batch_size", None)  # chunking already batches
        def run() -> None:
            parallel_s3ttmc(
                tensor,
                factor,
                config.n_workers,
                backend=config.backend,
                ctx=ctx,
                **kwargs,
            )
    run()  # warm plan/table/backend caches: probe the steady state
    samples = []
    for _ in range(max(1, repeats)):
        tick = time.perf_counter()
        run()
        samples.append(time.perf_counter() - tick)
    samples.sort()
    return samples[len(samples) // 2]


def autotune(
    tensor: SymmetricInput,
    factor: np.ndarray,
    *,
    profile_path=None,
    candidates: Optional[Sequence[TunedConfig]] = None,
    attrib_report=None,
    repeats: int = 2,
    prober: Optional[Callable] = None,
    persist: bool = True,
    ctx: Optional[ExecContext] = None,
) -> TunedConfig:
    """Tuned configuration for this workload shape — cached in the profile.

    On a profile hit, returns the stored config without running any probe
    (``autotune.profile.hits`` increments — the observable "calibration
    skipped" signal). On a miss, probes every candidate, records the
    winner in the profile (when ``persist`` and a path is configured) and
    increments ``autotune.profile.misses``.

    ``attrib_report`` optionally seeds the candidate list from an
    :class:`repro.obs.attrib.AttributionReport` (ignored when an explicit
    ``candidates`` sequence is given): modes the report measured closest
    to the perfmodel prediction are probed first, and observed
    thread-backend configurations join the pool — see
    :func:`candidates_from_attribution`.
    """
    ctx = resolve_context(ctx)
    ucoo = _as_ucoo(tensor)
    factor = np.asarray(factor, dtype=np.float64)
    key = workload_key(ucoo.order, ucoo.dim, ucoo.unnz, factor.shape[1])
    metrics = ctx.metrics

    path = _profile_path(profile_path)
    entries: Dict[str, TunedConfig] = {}
    if path is not None:
        try:
            entries = load_profile(path)
        except TuneProfileError:
            if metrics is not None:
                metrics.counter("autotune.profile.rejected").inc()
            entries = {}
    hit = entries.get(key)
    if hit is not None:
        if metrics is not None:
            metrics.counter("autotune.profile.hits").inc()
        ctx.event("autotune.profile.hit", key=key, **hit.to_dict())
        return hit
    if metrics is not None:
        metrics.counter("autotune.profile.misses").inc()

    if candidates is None:
        if attrib_report is not None:
            candidates = candidates_from_attribution(attrib_report, ctx.n_workers)
        else:
            candidates = default_candidates(ctx.n_workers)
    if not candidates:
        raise ValueError("autotune needs at least one candidate")
    probe = prober if prober is not None else _default_prober

    best: Optional[Tuple[float, int]] = None
    best_config = candidates[0]
    for i, config in enumerate(candidates):
        with ctx.span(
            "autotune.probe", key=key, candidate=i, **config.to_dict()
        ):
            seconds = float(probe(tensor, factor, config, ctx, repeats))
        if metrics is not None:
            metrics.counter("autotune.probes").inc()
        # Deterministic winner: strictly better median, index breaks ties.
        if best is None or (seconds, i) < best:
            best = (seconds, i)
            best_config = config
    ctx.event(
        "autotune.selected",
        key=key,
        probe_seconds=best[0],
        **best_config.to_dict(),
    )
    if persist and path is not None:
        entries[key] = best_config
        save_profile(path, entries, {key: best[0]})
    return best_config


def tuned_s3ttmc(
    tensor: SymmetricInput,
    factor: np.ndarray,
    *,
    config: Optional[TunedConfig] = None,
    profile_path=None,
    ctx: Optional[ExecContext] = None,
    **autotune_kwargs,
):
    """Run S³TTMc under the tuned (or given) configuration.

    Returns the same :class:`~repro.formats.partial_sym.
    PartiallySymmetricTensor` as :func:`repro.core.s3ttmc.s3ttmc`.
    """
    ctx = resolve_context(ctx)
    if config is None:
        config = autotune(
            tensor, factor, profile_path=profile_path, ctx=ctx, **autotune_kwargs
        )
    if config.backend == "serial":
        return s3ttmc(tensor, factor, ctx=ctx, **config.kernel_kwargs())
    from ..parallel.executor import parallel_s3ttmc  # lazy upward (see above)

    kwargs = config.kernel_kwargs()
    kwargs.pop("block_bytes", None)
    kwargs.pop("nz_batch_size", None)
    return parallel_s3ttmc(
        tensor,
        factor,
        config.n_workers,
        backend=config.backend,
        ctx=ctx,
        **kwargs,
    )
