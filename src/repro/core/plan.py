"""Reusable S³TTMc execution plans (the CSS-tree analogue).

The sub-multiset lattice depends only on the sparsity *pattern*, never on
the factor matrix or values — just like the paper's CSS tree, which is
built once when the tensor is loaded and reused across every kernel call
and every Tucker iteration. A :class:`TTMcPlan` captures the lattice (per
non-zero batch) so repeated kernel invocations pay only the numeric work;
:func:`get_plan` memoizes plans on the tensor object.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor
from .lattice import Lattice, build_lattice

__all__ = [
    "TTMcPlan",
    "build_plan",
    "get_plan",
    "pattern_fingerprint",
    "content_fingerprint",
]

_CACHE_ATTR = "_s3ttmc_plan_cache"


def pattern_fingerprint(indices: np.ndarray) -> int:
    """Stable fingerprint of an IOU index pattern (CRC-32 of the raw bytes).

    Plans are pattern-only, so ``(unnz, order, fingerprint)`` identifies
    the pattern a plan was built for; :func:`repro.core.engine.lattice_ttmc`
    re-derives the fingerprint on use to reject stale plans. CRC-32 runs at
    multiple GB/s, far below the kernel's per-non-zero cost.
    """
    indices = np.ascontiguousarray(indices, dtype=np.int64)
    return zlib.crc32(indices)


def content_fingerprint(tensor: SparseSymmetricTensor) -> str:
    """Full content fingerprint of a tensor: dims, order, indices, values.

    :func:`pattern_fingerprint` deliberately ignores values — plans are
    pattern-only, and two tensors with identical sparsity *should* share
    a plan. A **result** cache must not make that identification: two
    tensors with the same pattern but different values are different
    inputs. This digest (BLAKE2b over the shape metadata and the raw
    index/value bytes) is the key the serve layer's result cache uses;
    collisions are cryptographically negligible, so content-identical
    submissions — and only those — alias.
    """
    indices = np.ascontiguousarray(tensor.indices, dtype=np.int64)
    values = np.ascontiguousarray(tensor.values, dtype=np.float64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(
        f"order={int(tensor.order)};dim={int(tensor.dim)};"
        f"unnz={indices.shape[0]}".encode()
    )
    digest.update(indices.tobytes())
    digest.update(values.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class TTMcPlan:
    """Lattices for each non-zero batch of one tensor pattern.

    ``unnz`` and ``fingerprint`` stamp the pattern the plan was built for
    (``-1`` on legacy instances built before stamping existed) so reuse
    against different indices fails loudly instead of producing garbage.
    """

    order: int
    memoize: str
    nz_batch_size: Optional[int]
    batches: Tuple[Tuple[int, int, Lattice], ...]  # (start, stop, lattice)
    unnz: int = -1
    fingerprint: int = -1

    @property
    def total_edges(self) -> int:
        return sum(lat.total_edges for _s, _e, lat in self.batches)

    def matches(self, indices: np.ndarray) -> bool:
        """Whether this plan was built for exactly this index pattern."""
        if indices.ndim != 2 or indices.shape[1] != self.order:
            return False
        if self.unnz < 0:  # legacy unstamped plan: order check only
            return True
        return (
            indices.shape[0] == self.unnz
            and pattern_fingerprint(indices) == self.fingerprint
        )


def build_plan(
    indices: np.ndarray,
    memoize: str = "global",
    nz_batch_size: Optional[int] = None,
) -> TTMcPlan:
    """Build lattices for every batch of the given IOU pattern."""
    indices = np.asarray(indices, dtype=np.int64)
    unnz, order = indices.shape
    batch = max(1, unnz) if not nz_batch_size else max(1, int(nz_batch_size))
    batches = []
    for start in range(0, max(unnz, 1), batch):
        stop = min(start + batch, unnz)
        if start >= stop:
            break
        batches.append((start, stop, build_lattice(indices[start:stop], memoize)))
    return TTMcPlan(
        order=order,
        memoize=memoize,
        nz_batch_size=nz_batch_size,
        batches=tuple(batches),
        unnz=unnz,
        fingerprint=pattern_fingerprint(indices),
    )


def get_plan(
    tensor: SparseSymmetricTensor,
    memoize: str = "global",
    nz_batch_size: Optional[int] = None,
) -> TTMcPlan:
    """Plan for ``tensor``, memoized on the tensor instance.

    The cache key is ``(memoize, nz_batch_size)``; the pattern of a
    :class:`SparseSymmetricTensor` is immutable by convention.
    """
    cache = getattr(tensor, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(tensor, _CACHE_ATTR, cache)
    key = (memoize, nz_batch_size)
    plan = cache.get(key)
    if plan is None:
        plan = build_plan(tensor.indices, memoize, nz_batch_size)
        cache[key] = plan
    return plan
