"""Index-iteration strategies for compact symmetric tensors.

The paper's Algorithm 1 needs, for every IOU slot of a level-``l`` tensor,
its drop-last parent location and its last index, *without* paying a
per-entry index-mapping cost. The C++ implementation generates the nested
loops with template metaprogramming; this module reproduces the idea and
its ablation with three interchangeable strategies, each computing one
symmetric outer-product step (Eq. 8):

``out[s] = u_row[last(s)] * k_prev[parent(s)]``   for all IOU slots ``s``.

* :func:`codegen_step` — **metaprogramming**: generates Python source with
  ``l`` nested ``for`` loops carrying ``loc_l`` / ``loc_{l-1}`` counters,
  compiles it once per order, and dispatches at run time. The direct analog
  of the paper's ``iterate_`` template (Section III-C3).
* :func:`mapping_step` — **index mapping** baseline ([16]-style): a single
  flat loop that maintains the multi-index with backtracking and *computes*
  the parent location per entry from a ranking table (``O(N + R)`` extra
  work per entry — the overhead the paper eliminates).
* :func:`table_step` — **gather tables**: the vectorized strategy the
  batched kernels use; included in the ablation because it is the
  NumPy-native optimum.

``benchmarks/bench_index_iteration.py`` sweeps orders 2–14 and ranks 3–8
over these, reproducing Section VI-B-4.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict

import numpy as np

from ..symmetry.combinatorics import sym_storage_size
from ..symmetry.iou import _rank_prefix_table
from ..symmetry.tables import get_tables

__all__ = [
    "CODEGEN_VERSION",
    "clear_codegen_cache",
    "codegen_cache_info",
    "generate_step_source",
    "codegen_step",
    "mapping_step",
    "table_step",
    "STRATEGIES",
]

#: Version of the step generator; compiled callables are tagged with it
#: (``fn.__codegen_version__``) so plan/profile invalidation can detect a
#: stale compile principledly instead of by identity.
CODEGEN_VERSION = 1

#: Explicit cap on cached step functions. The old cache was an unbounded
#: module dict keyed only on ``order`` and shared by every context; a
#: bounded LRU keeps the sharing (steps are pure functions of ``order``)
#: while making the growth policy explicit.
_CACHE_CAP = 32

_COMPILED: "OrderedDict[int, Callable]" = OrderedDict()
_LOCK = threading.Lock()


def generate_step_source(order: int) -> str:
    """Source of the specialized nested-loop outer-product step.

    Mirrors Algorithm 1: ``order - 1`` outer loops walk the parent tensor
    (incrementing ``loc_p`` once per completed innermost iteration) while
    the innermost loop walks the output (incrementing ``loc_o`` per entry).
    """
    if order < 2:
        raise ValueError("codegen step requires order >= 2")
    lines = [
        f"def _step_{order}(dim, u_row, k_prev, out):",
        "    loc_o = 0",
        "    loc_p = 0",
    ]
    indent = "    "
    prev = None
    for level in range(1, order):
        var = f"i{level}"
        start = "0" if prev is None else prev
        lines.append(f"{indent}for {var} in range({start}, dim):")
        indent += "    "
        prev = var
    lines.append(f"{indent}base = k_prev[loc_p]")
    lines.append(f"{indent}for i{order} in range({prev}, dim):")
    lines.append(f"{indent}    out[loc_o] = u_row[i{order}] * base")
    lines.append(f"{indent}    loc_o += 1")
    lines.append(f"{indent}loc_p += 1")
    return "\n".join(lines) + "\n"


def _compiled_step(order: int) -> Callable:
    with _LOCK:
        fn = _COMPILED.get(order)
        if fn is not None:
            _COMPILED.move_to_end(order)
            return fn
        namespace: dict = {}
        exec(compile(generate_step_source(order), f"<codegen order {order}>", "exec"), namespace)
        fn = namespace[f"_step_{order}"]
        fn.__codegen_version__ = CODEGEN_VERSION
        _COMPILED[order] = fn
        while len(_COMPILED) > _CACHE_CAP:
            _COMPILED.popitem(last=False)
        return fn


def codegen_cache_info() -> dict:
    """Size, cap and cached orders of the compiled-step LRU."""
    with _LOCK:
        return {
            "size": len(_COMPILED),
            "cap": _CACHE_CAP,
            "orders": list(_COMPILED),
            "version": CODEGEN_VERSION,
        }


def clear_codegen_cache() -> None:
    """Drop every cached compiled step (tests, version bumps)."""
    with _LOCK:
        _COMPILED.clear()


def codegen_step(u_row: np.ndarray, k_prev: np.ndarray, order: int, dim: int) -> np.ndarray:
    """One Eq.-8 term via generated nested loops (metaprogramming analog)."""
    out = np.empty(sym_storage_size(order, dim), dtype=np.float64)
    _compiled_step(order)(dim, u_row, k_prev, out)
    return out


def mapping_step(u_row: np.ndarray, k_prev: np.ndarray, order: int, dim: int) -> np.ndarray:
    """One Eq.-8 term via flat iteration with per-entry index mapping.

    Maintains the IOU multi-index with carry/backtracking (the coupled
    for/while pattern of [16]) and *recomputes* the parent location from the
    ranking table at every entry — the overhead Algorithm 1 avoids by
    carrying ``loc_{l-1}`` through the loop nest.
    """
    size = sym_storage_size(order, dim)
    out = np.empty(size, dtype=np.float64)
    table = _rank_prefix_table(order - 1, dim)
    idx = [0] * order
    for s in range(size):
        # Parent location: rank of idx[:-1] computed from scratch, O(order+dim).
        loc_p = 0
        lower = 0
        for t in range(order - 1):
            j = idx[t]
            loc_p += table[t, j] - table[t, lower]
            lower = j
        out[s] = u_row[idx[-1]] * k_prev[loc_p]
        # Advance idx to the next non-decreasing tuple (carry with backtrack).
        pos = order - 1
        idx[pos] += 1
        while pos > 0 and idx[pos] >= dim:
            pos -= 1
            idx[pos] += 1
        if idx[pos] < dim:
            for t in range(pos + 1, order):
                idx[t] = idx[pos]
    return out


def table_step(u_row: np.ndarray, k_prev: np.ndarray, order: int, dim: int) -> np.ndarray:
    """One Eq.-8 term via precomputed gather tables (vectorized)."""
    tables = get_tables(order, dim)
    return u_row[tables.last_index] * k_prev[tables.parent_loc]


STRATEGIES: Dict[str, Callable] = {
    "codegen": codegen_step,
    "mapping": mapping_step,
    "table": table_step,
}
