"""Tensor formats: dense, compact symmetric, UCOO, CSS, CSF, COO."""

from .bcss import BlockedSymmetricTensor, bcss_storage_entries
from .coo import COOTensor
from .csf import CSFTensor
from .css import CSSTensor
from .dense import frobenius_norm, refold, ttm, ttmc_all_but_one, unfold
from .dense_sym import DenseSymmetricTensor
from .hicoo import HiCOOTensor
from .partial_sym import PartiallySymmetricTensor
from .ucoo import SparseSymmetricTensor

__all__ = [
    "BlockedSymmetricTensor",
    "bcss_storage_entries",
    "COOTensor",
    "CSFTensor",
    "CSSTensor",
    "DenseSymmetricTensor",
    "HiCOOTensor",
    "PartiallySymmetricTensor",
    "SparseSymmetricTensor",
    "unfold",
    "refold",
    "ttm",
    "ttmc_all_but_one",
    "frobenius_norm",
]
