"""UCOO: coordinate sparse symmetric tensor storing IOU non-zeros only.

The canonical input format of the library (every kernel accepts it; CSS and
CSF are derived from it). A UCOO tensor is an order-``N`` hypercubical
symmetric tensor of dimension ``I`` given by ``unnz`` index-ordered-unique
coordinates and values; the full non-zero set is the union of all distinct
permutations of each row.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..runtime.budget import release_bytes, request_bytes
from ..symmetry.combinatorics import dense_size, permutation_counts_array
from ..symmetry.permutations import canonicalize, count_expanded, expand_iou

__all__ = ["SparseSymmetricTensor"]


class SparseSymmetricTensor:
    """Sparse symmetric tensor in UCOO (IOU-only COO) form.

    Parameters
    ----------
    order:
        Tensor order ``N``.
    dim:
        Dimension size ``I`` (all modes equal).
    indices:
        ``(unnz, order)`` integer coordinates. Rows may be unsorted and in
        any order; the constructor canonicalizes (sorts each row, lex-sorts
        rows) unless ``assume_canonical`` is set.
    values:
        ``(unnz,)`` float values.
    combine:
        Duplicate-coordinate policy forwarded to
        :func:`repro.symmetry.permutations.canonicalize`.
    """

    def __init__(
        self,
        order: int,
        dim: int,
        indices: np.ndarray,
        values: np.ndarray,
        *,
        combine: str = "error",
        assume_canonical: bool = False,
    ):
        if order < 1:
            raise ValueError("order must be >= 1")
        if dim < 0:
            raise ValueError("dim must be >= 0")
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.ndim != 2 or indices.shape[1] != order:
            raise ValueError(f"indices must be (unnz, {order}), got {indices.shape}")
        if values.shape != (indices.shape[0],):
            raise ValueError("values length must match indices rows")
        if indices.size and (indices.min() < 0 or indices.max() >= dim):
            raise ValueError("coordinate out of range [0, dim)")
        if not assume_canonical:
            indices, values = canonicalize(indices, values, combine=combine)
        self.order = order
        self.dim = dim
        self.indices = indices
        self.values = values

    # -- basic statistics ---------------------------------------------------
    @property
    def unnz(self) -> int:
        """Number of IOU non-zeros."""
        return self.indices.shape[0]

    @property
    def nnz(self) -> int:
        """Number of non-zeros of the expanded (general-format) tensor."""
        return count_expanded(self.indices)

    def multiplicities(self) -> np.ndarray:
        """Distinct-ordering count per IOU non-zero."""
        return permutation_counts_array(self.indices)

    def density(self) -> float:
        """Fraction of full dense entries that are non-zero."""
        total = dense_size(self.order, self.dim)
        return self.nnz / total if total else 0.0

    def norm_squared(self) -> float:
        """Full Frobenius norm squared (IOU values weighted by multiplicity)."""
        if self.unnz == 0:
            return 0.0
        return float(np.sum(self.multiplicities() * self.values**2))

    def norm(self) -> float:
        return float(np.sqrt(self.norm_squared()))

    # -- conversions ---------------------------------------------------------
    def expand(self):
        """Expand to a general :class:`~repro.formats.coo.COOTensor`.

        The expanded coordinate matrix is the ``N!``-factor blow-up that the
        general-format baselines pay; the allocation is budget-accounted, so
        under a :class:`~repro.runtime.budget.MemoryBudget` this is where
        SPLATT-style pipelines go "OOM" at high order.
        """
        from .coo import COOTensor

        nnz = self.nnz
        request_bytes(nnz * self.order * 8 + nnz * 8, "expanded COO")
        try:
            exp_idx, exp_val, _ = expand_iou(self.indices, self.values)
            return COOTensor(
                self.order, self.dim, exp_idx, exp_val, assume_unique=True
            )
        except BaseException:
            release_bytes(nnz * self.order * 8 + nnz * 8, "expanded COO")
            raise

    def to_dense(self) -> np.ndarray:
        """Full dense ndarray (tiny tensors only; budget-accounted)."""
        request_bytes(dense_size(self.order, self.dim) * 8, "dense tensor")
        out = np.zeros((self.dim,) * self.order, dtype=np.float64)
        exp_idx, exp_val, _ = expand_iou(self.indices, self.values)
        out[tuple(exp_idx.T)] = exp_val
        return out

    def permute_values(self, rng: np.random.Generator) -> "SparseSymmetricTensor":
        """Same sparsity pattern, freshly randomized values (for sweeps)."""
        return SparseSymmetricTensor(
            self.order,
            self.dim,
            self.indices.copy(),
            rng.random(self.unnz),
            assume_canonical=True,
        )

    # -- element access -------------------------------------------------------
    def value_at(self, index: Sequence[int]) -> float:
        """Value at an arbitrary (unsorted) coordinate, 0.0 if absent."""
        key = np.sort(np.asarray(index, dtype=np.int64))
        if key.shape != (self.order,):
            raise IndexError(f"expected {self.order} indices")
        # Binary search in the lex-sorted IOU rows.
        lo, hi = 0, self.unnz
        target = tuple(key)
        while lo < hi:
            mid = (lo + hi) // 2
            row = tuple(self.indices[mid])
            if row < target:
                lo = mid + 1
            else:
                hi = mid
        if lo < self.unnz and tuple(self.indices[lo]) == target:
            return float(self.values[lo])
        return 0.0

    @property
    def nbytes(self) -> int:
        return self.indices.nbytes + self.values.nbytes

    def __repr__(self) -> str:
        return (
            f"SparseSymmetricTensor(order={self.order}, dim={self.dim}, "
            f"unnz={self.unnz})"
        )
