"""General (non-symmetric) COO sparse tensor.

The substrate of the general-format baselines: SPLATT's CSF is built from a
COO tensor holding *all* permutations of the symmetric non-zeros. Stores an
``(nnz, order)`` coordinate matrix plus values; no symmetry is assumed or
exploited.
"""

from __future__ import annotations

import numpy as np

from ..runtime.budget import request_bytes
from ..symmetry.combinatorics import dense_size

__all__ = ["COOTensor"]


class COOTensor:
    """Order-``N`` hypercubical sparse tensor in coordinate form."""

    def __init__(
        self,
        order: int,
        dim: int,
        indices: np.ndarray,
        values: np.ndarray,
        *,
        assume_unique: bool = False,
    ):
        if order < 1 or dim < 0:
            raise ValueError("invalid shape parameters")
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.ndim != 2 or indices.shape[1] != order:
            raise ValueError(f"indices must be (nnz, {order})")
        if values.shape != (indices.shape[0],):
            raise ValueError("values length must match indices rows")
        if indices.size and (indices.min() < 0 or indices.max() >= dim):
            raise ValueError("coordinate out of range [0, dim)")
        if not assume_unique and indices.shape[0]:
            uniq = np.unique(indices, axis=0)
            if uniq.shape[0] != indices.shape[0]:
                raise ValueError("duplicate coordinates in COO input")
        self.order = order
        self.dim = dim
        self.indices = indices
        self.values = values

    @property
    def nnz(self) -> int:
        return self.indices.shape[0]

    def sort_by_mode_order(self, mode_order: tuple[int, ...] | None = None) -> "COOTensor":
        """Return a copy with rows lex-sorted by the given mode permutation.

        CSF construction sorts by the chosen mode ordering (root mode
        first); default is the natural order ``(0, 1, ..., N-1)``.
        """
        if mode_order is None:
            mode_order = tuple(range(self.order))
        if sorted(mode_order) != list(range(self.order)):
            raise ValueError("mode_order must be a permutation of modes")
        cols = self.indices[:, list(mode_order)]
        perm = np.lexsort(cols.T[::-1])
        return COOTensor(
            self.order,
            self.dim,
            self.indices[perm],
            self.values[perm],
            assume_unique=True,
        )

    def to_dense(self) -> np.ndarray:
        """Full dense ndarray (budget-accounted)."""
        request_bytes(dense_size(self.order, self.dim) * 8, "dense tensor")
        out = np.zeros((self.dim,) * self.order, dtype=np.float64)
        out[tuple(self.indices.T)] = self.values
        return out

    def norm_squared(self) -> float:
        return float(np.sum(self.values**2))

    @property
    def nbytes(self) -> int:
        return self.indices.nbytes + self.values.nbytes

    def __repr__(self) -> str:
        return f"COOTensor(order={self.order}, dim={self.dim}, nnz={self.nnz})"
