"""Plain dense tensors: unfolding, refolding, norms, TTM.

These are the ground-truth objects the test suite checks every sparse
kernel against. Mode numbering is 0-based throughout the library (the paper
uses 1-based; its "mode-1 unfolding" is our ``unfold(x, 0)``).

The unfolding convention matches the Kronecker flattening of Eq. (3):
``unfold(x, n)[i_n, lin(i \\ i_n)]`` with the remaining modes linearized in
row-major (C) order, *preserving their original relative order*.
"""

from __future__ import annotations

import numpy as np

__all__ = ["unfold", "refold", "ttm", "ttmc_all_but_one", "frobenius_norm"]


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` matricization ``X_(mode)``.

    Moves ``mode`` to the front and flattens the rest in C order, so column
    ``j`` corresponds to the row-major linearization of the remaining
    indices in their original relative order.
    """
    tensor = np.asarray(tensor)
    if not 0 <= mode < tensor.ndim:
        raise ValueError(f"mode {mode} out of range for order-{tensor.ndim} tensor")
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def refold(matrix: np.ndarray, mode: int, shape: tuple) -> np.ndarray:
    """Inverse of :func:`unfold` for a target tensor ``shape``."""
    shape = tuple(shape)
    moved = (shape[mode],) + shape[:mode] + shape[mode + 1 :]
    return np.moveaxis(np.asarray(matrix).reshape(moved), 0, mode)


def ttm(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Tensor-times-matrix ``Y = X ×_mode Mᵀ`` (Eq. 1): ``Y_(mode) = Mᵀ X_(mode)``.

    ``matrix`` is ``(I_mode, R)``; the result has extent ``R`` along ``mode``.
    """
    tensor = np.asarray(tensor)
    matrix = np.asarray(matrix)
    if matrix.shape[0] != tensor.shape[mode]:
        raise ValueError(
            f"matrix rows {matrix.shape[0]} != tensor extent {tensor.shape[mode]} on mode {mode}"
        )
    unfolded = unfold(tensor, mode)
    result = matrix.T @ unfolded
    new_shape = list(tensor.shape)
    new_shape[mode] = matrix.shape[1]
    return refold(result, mode, tuple(new_shape))


def ttmc_all_but_one(tensor: np.ndarray, matrix: np.ndarray, skip_mode: int = 0) -> np.ndarray:
    """TTM chain with the same matrix on every mode except ``skip_mode``.

    The dense reference for S³TTMc (Eq. 2). Returns the full order-``N``
    tensor with extent ``I`` on ``skip_mode`` and ``R`` elsewhere.
    """
    result = np.asarray(tensor)
    for mode in range(result.ndim):
        if mode == skip_mode:
            continue
        result = ttm(result, matrix, mode)
    return result


def frobenius_norm(tensor: np.ndarray) -> float:
    """Frobenius norm (root of sum of squared entries)."""
    return float(np.linalg.norm(np.asarray(tensor).ravel()))
