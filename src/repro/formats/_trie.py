"""Shared prefix-trie (CSF-style) compression of sorted index matrices.

Both the CSS format (trie over IOU non-zeros) and the CSF format (trie over
expanded non-zeros) compress a lexicographically sorted ``(n, N)`` index
matrix into per-level node arrays: level ``d`` holds one node per distinct
length-``d`` prefix, with a pointer range into level ``d+1``. This module
builds that structure once, vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["PrefixTrie", "build_trie"]


@dataclass(frozen=True)
class PrefixTrie:
    """Compressed trie over a lex-sorted index matrix.

    Attributes
    ----------
    order:
        Number of levels ``N``.
    values:
        ``values[d]`` (0-based level) is the index value of each node at
        depth ``d+1`` — one entry per distinct length-``d+1`` prefix.
    child_ptr:
        ``child_ptr[d]`` has ``len(values[d]) + 1`` entries; node ``k`` at
        depth ``d+1`` owns children ``child_ptr[d][k]:child_ptr[d][k+1]`` at
        depth ``d+2``. For the last level the "children" are rows of the
        original matrix (leaf entries).
    n_entries:
        Number of rows compressed.
    """

    order: int
    values: List[np.ndarray]
    child_ptr: List[np.ndarray]
    n_entries: int

    @property
    def node_counts(self) -> List[int]:
        """Number of trie nodes per level (prefix-compression statistic)."""
        return [int(v.shape[0]) for v in self.values]

    @property
    def total_nodes(self) -> int:
        return sum(self.node_counts)

    def storage_bytes(self, index_itemsize: int = 8) -> int:
        """Bytes of index structure (values + pointers), excluding leaf data."""
        total = 0
        for vals, ptr in zip(self.values, self.child_ptr):
            total += vals.nbytes if vals.itemsize == index_itemsize else vals.shape[0] * index_itemsize
            total += ptr.nbytes
        return total


def build_trie(indices: np.ndarray) -> PrefixTrie:
    """Build a :class:`PrefixTrie` from a lex-sorted ``(n, order)`` matrix.

    Rows must already be sorted lexicographically (duplicates allowed in
    principle but the sparse formats never produce them).
    """
    indices = np.asarray(indices)
    if indices.ndim != 2:
        raise ValueError("indices must be (n, order)")
    n, order = indices.shape
    if n > 1:
        prev = indices[:-1]
        nxt = indices[1:]
        # Verify lex order cheaply: first differing column must increase.
        diff = prev != nxt
        first_diff = np.where(diff.any(axis=1), diff.argmax(axis=1), order - 1)
        rows = np.arange(n - 1)
        bad = nxt[rows, first_diff] < prev[rows, first_diff]
        if bad.any():
            raise ValueError("indices must be lexicographically sorted")

    values: List[np.ndarray] = []
    child_ptr: List[np.ndarray] = []
    # new_prefix marks rows starting a new length-(d+1) prefix.
    new_prefix = np.ones(n, dtype=bool)
    prev_starts = None
    for d in range(order):
        if n:
            if d == 0:
                changed = np.ones(n, dtype=bool)
                changed[1:] = indices[1:, 0] != indices[:-1, 0]
            else:
                changed = new_prefix.copy()
                changed[1:] |= indices[1:, d] != indices[:-1, d]
            new_prefix = changed
            starts = np.flatnonzero(new_prefix)
        else:
            starts = np.zeros(0, dtype=np.int64)
        values.append(indices[starts, d].copy() if n else np.zeros(0, np.int64))
        if prev_starts is not None:
            # Parent k at level d-1 owns child nodes whose start row falls in
            # [prev_starts[k], prev_starts[k+1]).
            bounds = np.concatenate([prev_starts, [n]])
            ptr = np.searchsorted(starts, bounds)
            child_ptr.append(ptr.astype(np.int64))
        prev_starts = starts
    # Last level: children are leaf rows.
    if prev_starts is not None:
        bounds = np.concatenate([prev_starts, [n]])
        child_ptr.append(bounds.astype(np.int64))
    else:
        child_ptr.append(np.zeros(1, dtype=np.int64))
    # child_ptr list currently has `order` arrays: for levels 1..order.
    # Prepend nothing: align child_ptr[d] with values[d].
    return PrefixTrie(order=order, values=values, child_ptr=child_ptr, n_entries=n)
