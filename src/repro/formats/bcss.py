"""BCSS: Blocked Compact Symmetric Storage (Schatz et al. [15]).

An alternative dense symmetric layout discussed in the paper's related
work: partition every mode into blocks of size ``b`` and keep only blocks
whose *block-index* tuple is non-decreasing; each kept block is stored as
a full dense ``b^N`` brick (boundary blocks zero-padded). Block-level
symmetry removes most redundancy while keeping dense BLAS-friendly bricks
— at the cost of (a) within-block redundancy for diagonal blocks and
(b) padding, which is why "this approach could consume more storage space
for some high-order tensors" (Section VII). The storage-ratio ablation
quantifies exactly that trade-off against the entrywise compact layout.
"""

from __future__ import annotations

import numpy as np

from ..symmetry.combinatorics import dense_size, sym_storage_size
from ..symmetry.iou import enumerate_iou, rank_iou_array
from ..symmetry.tables import dim_grid

__all__ = ["BlockedSymmetricTensor", "bcss_storage_entries"]


def bcss_storage_entries(order: int, dim: int, block: int) -> int:
    """Stored entries: one ``block**order`` brick per IOU block tuple."""
    if block < 1:
        raise ValueError("block size must be >= 1")
    n_blocks = -(-dim // block)  # ceil
    return sym_storage_size(order, n_blocks) * block**order


class BlockedSymmetricTensor:
    """Dense symmetric tensor in BCSS layout.

    Bricks are stored in a ``(n_bricks, block**order)`` array whose rows
    follow the lex IOU enumeration of block tuples.
    """

    def __init__(self, order: int, dim: int, block: int):
        if order < 1 or dim < 0:
            raise ValueError("invalid shape")
        if block < 1:
            raise ValueError("block size must be >= 1")
        self.order = order
        self.dim = dim
        self.block = block
        self.n_blocks = -(-dim // block) if dim else 0
        self.block_tuples = enumerate_iou(order, self.n_blocks)
        self.bricks = np.zeros(
            (self.block_tuples.shape[0], block**order), dtype=np.float64
        )

    # -- construction --------------------------------------------------------
    @classmethod
    def from_full(
        cls, full: np.ndarray, block: int, *, check_symmetry: bool = True
    ) -> "BlockedSymmetricTensor":
        full = np.asarray(full, dtype=np.float64)
        order = full.ndim
        dim = full.shape[0] if order else 0
        if any(s != dim for s in full.shape):
            raise ValueError("tensor must be hypercubical")
        if check_symmetry and order >= 2:
            swapped = np.swapaxes(full, 0, 1)
            if not np.allclose(full, swapped, atol=1e-10):
                raise ValueError("input is not symmetric")
        out = cls(order, dim, block)
        b = block
        for row, tup in enumerate(out.block_tuples):
            brick = np.zeros((b,) * order)
            slices = tuple(
                slice(int(t) * b, min((int(t) + 1) * b, dim)) for t in tup
            )
            extents = tuple(s.stop - s.start for s in slices)
            brick[tuple(slice(0, e) for e in extents)] = full[slices]
            out.bricks[row] = brick.ravel()
        return out

    # -- access ---------------------------------------------------------------
    def __getitem__(self, index) -> float:
        idx = np.asarray(index, dtype=np.int64)
        if idx.shape != (self.order,):
            raise IndexError(f"expected {self.order} indices")
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.dim:
            raise IndexError("index out of range")
        block_ids = idx // self.block
        offsets = idx % self.block
        # Sort by block id; co-permute offsets (block-level symmetry only
        # guarantees the sorted-block brick exists; within it, the entry at
        # the co-permuted offsets equals the query by full symmetry).
        perm = np.argsort(block_ids, kind="stable")
        row = rank_iou_array(block_ids[perm][None, :], self.n_blocks)[0]
        lin = 0
        for off in offsets[perm]:
            lin = lin * self.block + int(off)
        return float(self.bricks[row, lin])

    def to_full(self) -> np.ndarray:
        """Expand back to the full ndarray (inverse of :meth:`from_full`)."""
        full = np.zeros((self.dim,) * self.order, dtype=np.float64)
        if self.dim == 0:
            return full
        grid = dim_grid(self.order, self.dim)
        values = np.array([self[tuple(row)] for row in grid])
        return values.reshape((self.dim,) * self.order)

    # -- statistics -------------------------------------------------------------
    @property
    def stored_entries(self) -> int:
        return self.bricks.size

    def storage_ratio_vs_compact(self) -> float:
        """BCSS entries / entrywise-compact entries (≥ 1; grows with order)."""
        compact = sym_storage_size(self.order, self.dim)
        return self.stored_entries / compact if compact else float("inf")

    def storage_ratio_vs_full(self) -> float:
        """BCSS entries / full entries (≤ ~1 for small blocks)."""
        full = dense_size(self.order, self.dim)
        return self.stored_entries / full if full else float("inf")

    def __repr__(self) -> str:
        return (
            f"BlockedSymmetricTensor(order={self.order}, dim={self.dim}, "
            f"block={self.block}, bricks={self.bricks.shape[0]})"
        )
