"""CSS: Compressed Sparse Symmetric format (Shivakumar et al. [11], [12]).

CSS is a prefix trie over the lex-sorted IOU non-zeros of a sparse
symmetric tensor: level ``d`` holds one node per distinct length-``d``
index prefix, so non-zeros sharing prefixes share tree ancestors — the
"between IOU non-zeros" memoization of the paper. The "within permutations"
memoization lives in the kernels' sub-multiset lattice
(:mod:`repro.core.lattice`), which both the CSS baseline kernel and the
SymProp kernel reuse; they differ only in whether intermediate ``K``
tensors are stored full (``R^l``) or compact (``S_{l,R}``).

This class is the storage object: it owns the trie, exposes compression
statistics, and hands kernels the underlying UCOO arrays.
"""

from __future__ import annotations

import numpy as np

from ._trie import PrefixTrie, build_trie
from .ucoo import SparseSymmetricTensor

__all__ = ["CSSTensor"]


class CSSTensor:
    """Tree-compressed sparse symmetric tensor.

    Construct with :meth:`from_ucoo` (or directly from arrays, which routes
    through :class:`SparseSymmetricTensor` canonicalization).
    """

    def __init__(self, ucoo: SparseSymmetricTensor):
        self.ucoo = ucoo
        self.trie: PrefixTrie = build_trie(ucoo.indices)

    @classmethod
    def from_ucoo(cls, ucoo: SparseSymmetricTensor) -> "CSSTensor":
        return cls(ucoo)

    @classmethod
    def from_arrays(
        cls, order: int, dim: int, indices: np.ndarray, values: np.ndarray
    ) -> "CSSTensor":
        return cls(SparseSymmetricTensor(order, dim, indices, values))

    # -- delegation ----------------------------------------------------------
    @property
    def order(self) -> int:
        return self.ucoo.order

    @property
    def dim(self) -> int:
        return self.ucoo.dim

    @property
    def unnz(self) -> int:
        return self.ucoo.unnz

    @property
    def indices(self) -> np.ndarray:
        return self.ucoo.indices

    @property
    def values(self) -> np.ndarray:
        return self.ucoo.values

    # -- tree statistics -------------------------------------------------------
    @property
    def node_counts(self) -> list[int]:
        """Trie nodes per level — the prefix-sharing statistic."""
        return self.trie.node_counts

    def prefix_sharing_ratio(self) -> float:
        """How much prefix compression saves vs. flat UCOO indices.

        Ratio of total UCOO index entries (``unnz * order``) to trie nodes;
        1.0 means no sharing at all.
        """
        nodes = self.trie.total_nodes
        if nodes == 0:
            return 1.0
        return (self.unnz * self.order) / nodes

    @property
    def nbytes(self) -> int:
        """Index-structure bytes plus values."""
        return self.trie.storage_bytes() + self.ucoo.values.nbytes

    def __repr__(self) -> str:
        return (
            f"CSSTensor(order={self.order}, dim={self.dim}, unnz={self.unnz}, "
            f"nodes={self.node_counts})"
        )
