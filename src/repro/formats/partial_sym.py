"""Partially symmetric tensors with symmetry ``{i₁}, {i₂…i_N}``.

This is the storage class of both the S³TTMc output ``Y`` and the core
tensor ``C`` in SymProp (Section IV): the first mode is free (``nrows``
extent — ``I`` for ``Y``, ``R`` for ``C``) and the remaining ``N-1`` modes
are jointly symmetric with dimension ``sym_dim = R``, stored compactly.

The object *is* its mode-1 unfolding: a ``(nrows, S_{N-1,R})`` matrix whose
columns follow the lex IOU enumeration — precisely ``Y_p(1)`` / ``C_p(1)``
in the paper's notation.
"""

from __future__ import annotations

import numpy as np

from ..runtime.budget import release_bytes, request_bytes
from ..symmetry.combinatorics import dense_size, sym_storage_size
from ..symmetry.expansion import expand_compact
from ..symmetry.tables import get_tables

__all__ = ["PartiallySymmetricTensor"]


class PartiallySymmetricTensor:
    """Order-``N`` tensor, symmetric in modes 2..N, compact along them.

    Parameters
    ----------
    nrows:
        Extent of the non-symmetric first mode.
    sym_order:
        Number of symmetric modes (``N - 1``).
    sym_dim:
        Dimension size of the symmetric modes (the Tucker rank ``R``).
    data:
        Optional ``(nrows, S_{sym_order, sym_dim})`` array; zeros if omitted.
    """

    def __init__(
        self,
        nrows: int,
        sym_order: int,
        sym_dim: int,
        data: np.ndarray | None = None,
    ):
        if nrows < 0 or sym_order < 1 or sym_dim < 0:
            raise ValueError("invalid shape parameters")
        self.nrows = nrows
        self.sym_order = sym_order
        self.sym_dim = sym_dim
        self.sym_size = sym_storage_size(sym_order, sym_dim)
        if data is None:
            request_bytes(nrows * self.sym_size * 8, "PartiallySymmetricTensor.data")
            try:
                data = np.zeros((nrows, self.sym_size), dtype=np.float64)
            except BaseException:
                release_bytes(
                    nrows * self.sym_size * 8, "PartiallySymmetricTensor.data"
                )
                raise
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != (nrows, self.sym_size):
                raise ValueError(
                    f"data must have shape ({nrows}, {self.sym_size}), got {data.shape}"
                )
        self.data = data

    @property
    def order(self) -> int:
        """Full tensor order ``N`` (one free mode + sym_order symmetric)."""
        return self.sym_order + 1

    @property
    def unfolding(self) -> np.ndarray:
        """The compact mode-1 unfolding ``(nrows, S_{N-1,R})`` — ``Y_p(1)``."""
        return self.data

    def multiplicities(self) -> np.ndarray:
        """The vector ``p`` (Property 3) matching this column layout."""
        return get_tables(self.sym_order, self.sym_dim).multiplicity.astype(np.float64)

    def weighted_unfolding(self) -> np.ndarray:
        """``Y_p(1) @ M`` — columns scaled by their permutation counts."""
        return self.data * self.multiplicities()[None, :]

    def to_full_unfolding(self) -> np.ndarray:
        """Expand to the full ``(nrows, sym_dim**sym_order)`` unfolding.

        This is the ``Y_(1) = Y_p(1) Eᵀ`` of Property 2 — the allocation
        that makes HOOI's SVD step blow up; it is budget-accounted.
        """
        full_cols = dense_size(self.sym_order, self.sym_dim)
        request_bytes(
            self.nrows * full_cols * 8, "PartiallySymmetricTensor.full_unfolding"
        )
        try:
            return expand_compact(self.data, self.sym_order, self.sym_dim)
        except BaseException:
            # The caller releases on the success path (it owns the returned
            # array); on failure nothing is returned, so give back here.
            release_bytes(
                self.nrows * full_cols * 8, "PartiallySymmetricTensor.full_unfolding"
            )
            raise

    def to_full_tensor(self) -> np.ndarray:
        """Full order-``N`` ndarray ``(nrows, sym_dim, ..., sym_dim)``."""
        flat = self.to_full_unfolding()
        return flat.reshape((self.nrows,) + (self.sym_dim,) * self.sym_order)

    def mode1_ttm(self, matrix: np.ndarray) -> "PartiallySymmetricTensor":
        """``self ×₁ matrixᵀ`` on the non-symmetric mode (Property 2).

        ``matrix`` is ``(nrows, R')``; the result keeps the symmetric-mode
        layout and has ``R'`` rows — this is exactly Line 2 of Algorithm 2,
        ``C_p(1) = Uᵀ Y_p(1)``, when called with ``U``.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] != self.nrows:
            raise ValueError(
                f"matrix rows {matrix.shape[0]} != non-symmetric extent {self.nrows}"
            )
        product = matrix.T @ self.data
        return PartiallySymmetricTensor(
            matrix.shape[1], self.sym_order, self.sym_dim, product
        )

    def norm_squared(self) -> float:
        """Frobenius norm squared of the full tensor, from compact storage."""
        return float(np.sum(self.weighted_unfolding() * self.data))

    def norm(self) -> float:
        return float(np.sqrt(max(self.norm_squared(), 0.0)))

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def full_unfolding_bytes(self) -> int:
        """Closed-form size of the expanded unfolding (for OOM prediction)."""
        return self.nrows * dense_size(self.sym_order, self.sym_dim) * 8

    def __repr__(self) -> str:
        return (
            f"PartiallySymmetricTensor(nrows={self.nrows}, sym_order={self.sym_order}, "
            f"sym_dim={self.sym_dim}, compact_cols={self.sym_size})"
        )
