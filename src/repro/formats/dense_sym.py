"""Compact dense symmetric tensor: lex-ordered IOU storage (Section II-B).

An order-``N`` symmetric tensor with dimension ``R`` is stored as a flat
``(S_{N,R},)`` array over the lexicographic IOU enumeration — the layout of
[16] that SymProp's intermediate ``K`` tensors use. Provides round-trips to
full arrays, multiplicity-weighted norms, and element access by arbitrary
(unsorted) index.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..runtime.budget import request_bytes
from ..symmetry.combinatorics import dense_size, sym_storage_size
from ..symmetry.expansion import compact_from_full, expand_compact
from ..symmetry.iou import rank_iou_array
from ..symmetry.tables import get_tables

__all__ = ["DenseSymmetricTensor"]


class DenseSymmetricTensor:
    """Dense fully symmetric tensor in compact IOU storage.

    Parameters
    ----------
    order, dim:
        Tensor order ``N`` and dimension size ``R``.
    data:
        Optional ``(S_{N,R},)`` float array in lex IOU order; zeros if
        omitted.
    """

    def __init__(self, order: int, dim: int, data: np.ndarray | None = None):
        if order < 1:
            raise ValueError("order must be >= 1")
        if dim < 0:
            raise ValueError("dim must be >= 0")
        self.order = order
        self.dim = dim
        self.size = sym_storage_size(order, dim)
        if data is None:
            request_bytes(self.size * 8, "DenseSymmetricTensor.data")
            data = np.zeros(self.size, dtype=np.float64)
        else:
            data = np.asarray(data, dtype=np.float64)
            if data.shape != (self.size,):
                raise ValueError(f"data must have shape ({self.size},), got {data.shape}")
        self.data = data

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_full(cls, full: np.ndarray, *, check_symmetry: bool = True) -> "DenseSymmetricTensor":
        """Compact a full symmetric ndarray (all extents equal)."""
        full = np.asarray(full, dtype=np.float64)
        order = full.ndim
        dim = full.shape[0] if order else 0
        if any(s != dim for s in full.shape):
            raise ValueError("symmetric tensor must be hypercubical")
        data = compact_from_full(full.reshape(-1), order, dim, check_symmetry=check_symmetry)
        return cls(order, dim, data)

    @classmethod
    def random(cls, order: int, dim: int, rng: np.random.Generator | None = None) -> "DenseSymmetricTensor":
        """Random symmetric tensor (uniform IOU entries in [0, 1))."""
        rng = rng or np.random.default_rng()
        size = sym_storage_size(order, dim)
        return cls(order, dim, rng.random(size))

    # -- conversions -------------------------------------------------------
    def to_full(self) -> np.ndarray:
        """Expand to the full ``(dim,)*order`` ndarray (accounted allocation)."""
        request_bytes(dense_size(self.order, self.dim) * 8, "DenseSymmetricTensor.full")
        flat = expand_compact(self.data, self.order, self.dim)
        return flat.reshape((self.dim,) * self.order)

    # -- access ------------------------------------------------------------
    def __getitem__(self, index: Sequence[int]) -> float:
        idx = np.sort(np.asarray(index, dtype=np.int64)).reshape(1, -1)
        if idx.shape[1] != self.order:
            raise IndexError(f"expected {self.order} indices, got {idx.shape[1]}")
        loc = rank_iou_array(idx, self.dim)[0]
        return float(self.data[loc])

    def __setitem__(self, index: Sequence[int], value: float) -> None:
        idx = np.sort(np.asarray(index, dtype=np.int64)).reshape(1, -1)
        if idx.shape[1] != self.order:
            raise IndexError(f"expected {self.order} indices, got {idx.shape[1]}")
        loc = rank_iou_array(idx, self.dim)[0]
        self.data[loc] = value

    # -- reductions --------------------------------------------------------
    def norm_squared(self) -> float:
        """Frobenius norm squared of the *full* tensor, from compact data.

        Each IOU entry contributes its squared value times its permutation
        multiplicity (Property 3 applied to the norm).
        """
        mult = get_tables(self.order, self.dim).multiplicity
        return float(np.sum(mult * self.data**2))

    def norm(self) -> float:
        return float(np.sqrt(self.norm_squared()))

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:
        return (
            f"DenseSymmetricTensor(order={self.order}, dim={self.dim}, "
            f"size={self.size})"
        )
