"""CSF: Compressed Sparse Fiber format (SPLATT's format, Smith & Karypis).

A prefix trie over the *expanded* non-zero set of a general sparse tensor —
no symmetry awareness. Building one from a symmetric tensor pays the full
distinct-permutation expansion (up to ``N!`` per IOU non-zero); that
allocation is budget-accounted, which is what makes the SPLATT baseline
"OOM" first in the reproduction, as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..runtime.budget import release_bytes, request_bytes
from ._trie import PrefixTrie, build_trie
from .coo import COOTensor
from .ucoo import SparseSymmetricTensor

__all__ = ["CSFTensor"]


class CSFTensor:
    """General compressed sparse fiber tensor (one mode ordering).

    Parameters
    ----------
    coo:
        Source tensor; rows are sorted by ``mode_order`` during build.
    mode_order:
        Mode permutation; the first entry is the root level. Defaults to
        the natural order, which is the mode-1 (0-based mode-0) TTMc tree.
    """

    def __init__(self, coo: COOTensor, mode_order: tuple[int, ...] | None = None):
        if mode_order is None:
            mode_order = tuple(range(coo.order))
        sorted_coo = coo.sort_by_mode_order(mode_order)
        self.order = coo.order
        self.dim = coo.dim
        self.mode_order = tuple(mode_order)
        self.values = sorted_coo.values
        self.permuted_indices = sorted_coo.indices[:, list(mode_order)]
        request_bytes(self.permuted_indices.nbytes, "CSF permuted indices")
        try:
            self.trie: PrefixTrie = build_trie(self.permuted_indices)
            request_bytes(self.trie.storage_bytes(), "CSF trie")
        except BaseException:
            # A half-built CSF is garbage; give its index bytes back so an
            # over-budget construction leaves the accounting untouched.
            release_bytes(self.permuted_indices.nbytes, "CSF permuted indices")
            raise

    def release_structure(self) -> None:
        """Release the budget bytes requested at construction.

        For throwaway CSF builds (e.g. the SPLATT baseline rebuilds one per
        call); long-lived cached CSFs keep their bytes accounted instead.
        """
        release_bytes(self.permuted_indices.nbytes, "CSF permuted indices")
        release_bytes(self.trie.storage_bytes(), "CSF trie")

    @classmethod
    def from_symmetric(
        cls, tensor: SparseSymmetricTensor, mode_order: tuple[int, ...] | None = None
    ) -> "CSFTensor":
        """Build by expanding all permutations of a symmetric tensor.

        This is how the paper feeds SPLATT: IOU input, expansion inside the
        general pipeline.
        """
        return cls(tensor.expand(), mode_order)

    @property
    def nnz(self) -> int:
        return self.values.shape[0]

    @property
    def node_counts(self) -> list[int]:
        return self.trie.node_counts

    @property
    def nbytes(self) -> int:
        return self.trie.storage_bytes() + self.values.nbytes

    def __repr__(self) -> str:
        return (
            f"CSFTensor(order={self.order}, dim={self.dim}, nnz={self.nnz}, "
            f"mode_order={self.mode_order})"
        )
