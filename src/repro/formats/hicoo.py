"""HiCOO: hierarchical blocked COO storage (Li et al. [17]).

A general sparse format from the paper's background section: coordinates
are split into block indices (shared by all non-zeros in a ``2^b``-wide
block, stored once per non-empty block) and small per-entry offsets
(``uint8``/``uint16``), cutting index memory versus flat COO on tensors
with spatial locality. Included as part of the general-format substrate;
the storage-savings model is tested against flat COO.
"""

from __future__ import annotations

import numpy as np

from .coo import COOTensor

__all__ = ["HiCOOTensor"]


class HiCOOTensor:
    """Blocked COO with per-block pointer compression.

    Parameters
    ----------
    coo:
        Source tensor (duplicates assumed already handled).
    block_bits:
        ``b``; blocks are ``2^b`` wide per mode. Offsets must fit the
        offset dtype: ``b <= 8`` uses ``uint8``, ``b <= 16`` ``uint16``.
    """

    def __init__(self, coo: COOTensor, block_bits: int = 7):
        if not 1 <= block_bits <= 16:
            raise ValueError("block_bits must be in [1, 16]")
        self.order = coo.order
        self.dim = coo.dim
        self.block_bits = block_bits
        offset_dtype = np.uint8 if block_bits <= 8 else np.uint16

        block_ids = coo.indices >> block_bits
        offsets = (coo.indices & ((1 << block_bits) - 1)).astype(offset_dtype)
        # Sort entries by block (lex over block ids), then store each
        # distinct block once with a CSR-style pointer.
        perm = np.lexsort(block_ids.T[::-1])
        block_ids = block_ids[perm]
        self.offsets = offsets[perm]
        self.values = coo.values[perm]
        if block_ids.shape[0]:
            new_block = np.ones(block_ids.shape[0], dtype=bool)
            new_block[1:] = np.any(block_ids[1:] != block_ids[:-1], axis=1)
            starts = np.flatnonzero(new_block)
            self.blocks = block_ids[starts].astype(np.int64)
            self.block_ptr = np.concatenate(
                [starts, [block_ids.shape[0]]]
            ).astype(np.int64)
        else:
            self.blocks = np.zeros((0, self.order), dtype=np.int64)
            self.block_ptr = np.zeros(1, dtype=np.int64)

    @property
    def nnz(self) -> int:
        return self.values.shape[0]

    @property
    def n_blocks(self) -> int:
        return self.blocks.shape[0]

    def to_coo(self) -> COOTensor:
        """Reconstruct the flat COO tensor (entry order is block-sorted)."""
        indices = np.empty((self.nnz, self.order), dtype=np.int64)
        for b in range(self.n_blocks):
            lo, hi = self.block_ptr[b], self.block_ptr[b + 1]
            indices[lo:hi] = (self.blocks[b] << self.block_bits) + self.offsets[
                lo:hi
            ].astype(np.int64)
        return COOTensor(self.order, self.dim, indices, self.values.copy(),
                         assume_unique=True)

    @property
    def index_bytes(self) -> int:
        """Index-structure bytes: blocks + pointers + offsets."""
        return self.blocks.nbytes + self.block_ptr.nbytes + self.offsets.nbytes

    def coo_index_bytes(self) -> int:
        """Flat COO index bytes for the same non-zeros (int64)."""
        return self.nnz * self.order * 8

    def compression_ratio(self) -> float:
        """COO index bytes / HiCOO index bytes (> 1 when blocking helps)."""
        if self.index_bytes == 0:
            return 1.0
        return self.coo_index_bytes() / self.index_bytes

    def __repr__(self) -> str:
        return (
            f"HiCOOTensor(order={self.order}, dim={self.dim}, nnz={self.nnz}, "
            f"blocks={self.n_blocks}, b={self.block_bits})"
        )
