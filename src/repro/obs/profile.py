"""Sampling profiler: wall-time attribution to open span stacks.

The span tracer records what the code *declared* it was doing; this
module adds a statistical view of where wall-clock time actually went,
by periodically snapshotting every thread's open-span stack (see
:func:`repro.obs.trace.snapshot_open_stacks`) from a background thread.
Each sample folds into a ``thread;span;span;...`` stack key, so the
aggregate is directly renderable as collapsed-stack ("folded") text —
the format speedscope, FlameGraph and friends consume.

Design constraints:

1. **Low overhead.** One sample costs a ``threading.enumerate()``, one
   list copy per thread with open spans, and a dict update — a few
   microseconds. At the default 5 ms interval the profiled run pays well
   under 1 % (the CI ``perf-smoke`` job demonstrates <5 % on the tiny
   bench via the regression comparator).
2. **Deterministic under test.** The clock and the stack source are
   injectable, and :meth:`SamplingProfiler.sample_once` exposes a single
   sampling step, so tests drive the profiler with a fake clock and
   fabricated stacks and assert byte-identical folded output.
3. **Run ownership.** An :class:`~repro.runtime.context.ExecContext`
   constructed with ``profiler=`` starts it on activation and stops (and
   flushes) it in ``close()`` — profiler lifetime matches the run, like
   the budget and collector. The ``REPRO_PROFILE=path`` environment hook
   (:func:`profiler_from_env`, honoured by the bench harness and
   ``python -m repro.verify``) covers unmodified scripts.

Usage::

    from repro.obs.profile import SamplingProfiler

    prof = SamplingProfiler(interval=0.005)
    prof.start()
    ...                      # traced work on any threads
    prof.stop()
    print(prof.folded())     # "MainThread;hooi.iteration;phase:s3ttmc 37"
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .trace import snapshot_open_stacks

__all__ = [
    "PROFILE_ENV_VAR",
    "SamplingProfiler",
    "profiler_from_env",
]

#: Environment variable naming a file to write folded-stack output to.
PROFILE_ENV_VAR = "REPRO_PROFILE"

#: Default sampling interval: 5 ms ≈ 200 Hz, low overhead but enough
#: resolution for the millisecond-scale lattice levels.
DEFAULT_INTERVAL = 0.005


class SamplingProfiler:
    """Background-thread wall-time sampler over open span stacks.

    Parameters
    ----------
    interval:
        Seconds between samples (default 5 ms).
    path:
        Optional output file; :meth:`stop` appends the folded-stack text
        there (appending lets several measurements accumulate in one
        file — collapsed-stack consumers sum duplicate keys).
    clock:
        Injectable monotonic clock (tests use a fake).
    stacks:
        Injectable stack source returning ``{thread: [span names]}``
        (defaults to the live tracer registry).

    Thread-safe: ``start``/``stop`` are idempotent, and ``sample_once``
    may be called concurrently with the background sampler (tests drive
    it directly instead of starting the thread).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        *,
        path: Union[str, Path, None] = None,
        clock: Callable[[], float] = time.perf_counter,
        stacks: Callable[[], Dict[str, List[str]]] = snapshot_open_stacks,
    ) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = float(interval)
        self.path = Path(path) if path is not None else None
        self._clock = clock
        self._stacks = stacks
        self._lock = threading.Lock()
        self._stop_evt = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples: Dict[Tuple[str, ...], int] = {}
        self.n_samples = 0
        self.idle_samples = 0
        self.started_at: Optional[float] = None
        self.stopped_at: Optional[float] = None

    # -- sampling ----------------------------------------------------------

    def sample_once(self) -> None:
        """Take one sample: fold every thread's current open-span stack."""
        stacks = self._stacks()
        with self._lock:
            self.n_samples += 1
            if not stacks:
                self.idle_samples += 1
                return
            for thread in sorted(stacks):
                key = (thread, *stacks[thread])
                self.samples[key] = self.samples.get(key, 0) + 1

    def _run(self) -> None:
        while not self._stop_evt.wait(self.interval):
            self.sample_once()

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        """``True`` while the background sampler thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the background sampler (idempotent)."""
        if self.running:
            return self
        self._stop_evt.clear()
        self.started_at = self._clock()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop sampling and flush to ``path`` if one was given (idempotent).

        A flush failure warns instead of raising — profiling must never
        take down the run it observed.
        """
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop_evt.set()
            thread.join()
            self.stopped_at = self._clock()
        if self.path is not None and thread is not None:
            try:
                self.write(self.path)
            except OSError as exc:
                warnings.warn(
                    f"could not write profile to {self.path}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- output ------------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Sampled wall-clock interval (0 until started)."""
        if self.started_at is None:
            return 0.0
        end = self.stopped_at if self.stopped_at is not None else self._clock()
        return max(0.0, end - self.started_at)

    def seconds_for(self, key: Tuple[str, ...]) -> float:
        """Estimated wall seconds attributed to one folded stack."""
        with self._lock:
            count = self.samples.get(key, 0)
            total = self.n_samples
        if not count or not total:
            return 0.0
        return self.wall_seconds * count / total

    def folded(self) -> str:
        """Collapsed-stack text: one ``thread;span;... count`` per line.

        Lines are sorted by key, so identical sample multisets produce
        byte-identical output regardless of sampling order (the
        determinism the export tests pin down).
        """
        with self._lock:
            items = sorted(self.samples.items())
        return "\n".join(";".join(key) + f" {count}" for key, count in items)

    def write(self, path: Union[str, Path], *, append: bool = True) -> Path:
        """Write the folded-stack text to ``path`` (append by default)."""
        path = Path(path)
        text = self.folded()
        mode = "a" if append else "w"
        with path.open(mode, encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return path


def profiler_from_env(environ=os.environ) -> Optional[SamplingProfiler]:
    """A :class:`SamplingProfiler` targeting ``$REPRO_PROFILE``, or ``None``.

    ``REPRO_PROFILE=path[:interval_ms]`` — e.g. ``prof.folded`` or
    ``prof.folded:2`` for 2 ms sampling. The caller owns start/stop
    (usually by handing the profiler to an ``ExecContext``).
    """
    spec = environ.get(PROFILE_ENV_VAR)
    if not spec:
        return None
    path, interval = spec, DEFAULT_INTERVAL
    if ":" in spec:
        head, _, tail = spec.rpartition(":")
        try:
            interval = float(tail) / 1000.0
        except ValueError:
            pass
        else:
            path = head
    if interval <= 0:
        interval = DEFAULT_INTERVAL
    return SamplingProfiler(interval, path=path)
