"""Noise-aware performance-regression comparison.

A perf gate that fails on every wobble gets disabled within a week; one
that averages away real 2× regressions is worse. The middle ground this
module implements: benchmark phases are summarized as **median +
dispersion** (median absolute deviation) over N repeats, and a phase
only counts as regressed when its median moved by more than
``max(threshold, noise_mult × relative dispersion)`` — i.e. the allowed
delta *scales with the observed noise* of that phase on that host, with
a hard floor so a dead-quiet phase still gets some slack.

Two baseline schemas are readable:

* **v2** (current): ``{"schema": 2, "phases": {name: {"median", "mad",
  "repeats", "samples"?}}, ...}`` — written by
  ``benchmarks/bench_parallel_baseline.py``.
* **v1** (legacy): the original ``BENCH_parallel.json`` layout
  (``plain_kernel_seconds`` + per-backend ``cold/warm/plan_build``
  scalars). Mapped onto phases with zero dispersion, so old baselines
  keep gating (with only the threshold floor).

Driven by ``tools/bench_regress.py`` (CI runs it in ``--report-only``
mode; ``--fail`` makes it a hard local gate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "PhaseStats",
    "BaselineRun",
    "RegressionFinding",
    "phase_stats",
    "load_baseline",
    "compare_runs",
    "render_findings",
    "has_regressions",
]

#: Phases whose medians sit below this are pure timer noise; they are
#: reported but never flagged.
NOISE_FLOOR_SECONDS = 1e-4

#: Default hard floor on the allowed relative delta.
DEFAULT_THRESHOLD = 0.25

#: Default multiplier on the observed relative dispersion.
DEFAULT_NOISE_MULT = 4.0


@dataclass(frozen=True)
class PhaseStats:
    """Median + dispersion summary of one benchmark phase."""

    median: float
    mad: float = 0.0
    repeats: int = 1

    @property
    def relative_dispersion(self) -> float:
        """MAD as a fraction of the median (0 when unmeasurable)."""
        return self.mad / self.median if self.median > 0 else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "median": round(self.median, 6),
            "mad": round(self.mad, 6),
            "repeats": self.repeats,
        }


def phase_stats(samples: Sequence[float]) -> PhaseStats:
    """Summarize repeat timings as median + median absolute deviation.

    Median/MAD rather than mean/stddev: one preempted repeat on a busy
    CI runner must not define the phase.
    """
    vals = sorted(float(v) for v in samples)
    if not vals:
        raise ValueError("phase_stats needs at least one sample")
    median = _median(vals)
    mad = _median(sorted(abs(v - median) for v in vals))
    return PhaseStats(median=median, mad=mad, repeats=len(vals))


def _median(ordered: Sequence[float]) -> float:
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class BaselineRun:
    """A parsed benchmark snapshot: named phase stats plus identity."""

    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    schema: int = 2
    workload: Dict[str, object] = field(default_factory=dict)
    host: Dict[str, object] = field(default_factory=dict)
    path: Optional[str] = None

    def compatible_with(self, other: "BaselineRun") -> bool:
        """Same workload shape? Comparing different workloads is
        meaningless, not merely noisy."""
        keys = ("order", "dim", "unnz", "rank", "tiny")
        mine = {k: self.workload.get(k) for k in keys}
        theirs = {k: other.workload.get(k) for k in keys}
        return mine == theirs


def load_baseline(source: Union[str, Path, dict]) -> BaselineRun:
    """Parse a baseline JSON file (or already-loaded dict), v1 or v2."""
    path = None
    if isinstance(source, (str, Path)):
        path = str(source)
        payload = json.loads(Path(source).read_text(encoding="utf-8"))
    else:
        payload = source
    run = BaselineRun(
        schema=int(payload.get("schema", 1)),
        workload=dict(payload.get("workload") or {}),
        host=dict(payload.get("host") or {}),
        path=path,
    )
    raw_phases = payload.get("phases")
    if raw_phases:  # v2
        for name, spec in raw_phases.items():
            samples = spec.get("samples")
            if samples:
                run.phases[name] = phase_stats(samples)
            else:
                run.phases[name] = PhaseStats(
                    median=float(spec.get("median", 0.0)),
                    mad=float(spec.get("mad", 0.0)),
                    repeats=int(spec.get("repeats", 1)),
                )
        return run
    # v1: scalar fields, no dispersion.
    run.schema = 1
    plain = payload.get("plain_kernel_seconds")
    if plain is not None:
        run.phases["plain_kernel"] = PhaseStats(median=float(plain))
    for backend, spec in (payload.get("backends") or {}).items():
        for old, suffix in (
            ("cold_seconds", "cold"),
            ("warm_seconds", "warm"),
            ("plan_build_seconds", "plan_build"),
        ):
            if old in spec:
                run.phases[f"{backend}.{suffix}"] = PhaseStats(
                    median=float(spec[old])
                )
    return run


@dataclass
class RegressionFinding:
    """Verdict for one phase of a baseline-vs-fresh comparison."""

    phase: str
    base: Optional[PhaseStats]
    fresh: Optional[PhaseStats]
    delta: float = 0.0
    allowed: float = 0.0
    status: str = "ok"  # ok | regressed | improved | added | removed | noise

    @property
    def regressed(self) -> bool:
        return self.status == "regressed"


def compare_runs(
    base: BaselineRun,
    fresh: BaselineRun,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    noise_mult: float = DEFAULT_NOISE_MULT,
    noise_floor: float = NOISE_FLOOR_SECONDS,
) -> List[RegressionFinding]:
    """Phase-by-phase comparison; one finding per phase in either run.

    ``delta`` is the fresh median relative to the baseline median;
    ``allowed`` is ``max(threshold, noise_mult × max(rel dispersion of
    either side))``. Phases beyond ``+allowed`` are ``regressed``, beyond
    ``-allowed`` are ``improved`` (informational, never a failure).
    Sub-``noise_floor`` medians are tagged ``noise`` and never flagged.
    """
    findings: List[RegressionFinding] = []
    names = list(base.phases) + [
        n for n in fresh.phases if n not in base.phases
    ]
    for name in names:
        b = base.phases.get(name)
        f = fresh.phases.get(name)
        if b is None or f is None:
            findings.append(
                RegressionFinding(
                    name, b, f, status="added" if b is None else "removed"
                )
            )
            continue
        if b.median <= noise_floor or f.median <= noise_floor:
            findings.append(RegressionFinding(name, b, f, status="noise"))
            continue
        delta = f.median / b.median - 1.0
        allowed = max(
            threshold,
            noise_mult * max(b.relative_dispersion, f.relative_dispersion),
        )
        if delta > allowed:
            status = "regressed"
        elif delta < -allowed:
            status = "improved"
        else:
            status = "ok"
        findings.append(
            RegressionFinding(name, b, f, delta=delta, allowed=allowed, status=status)
        )
    return findings


def has_regressions(findings: Sequence[RegressionFinding]) -> bool:
    """``True`` when any phase regressed beyond its allowance."""
    return any(f.regressed for f in findings)


def render_findings(
    findings: Sequence[RegressionFinding], title: str = "perf regression check"
) -> str:
    """Render findings as a harness-style table plus a one-line verdict."""
    # Lazy: bench sits above obs in the layer order (see check_layering).
    from ..bench.records import SeriesTable, format_seconds

    table = SeriesTable(title, "phase")
    for f in findings:
        table.set(
            "baseline",
            f.phase,
            format_seconds(f.base.median) if f.base is not None else "-",
        )
        table.set(
            "fresh",
            f.phase,
            format_seconds(f.fresh.median) if f.fresh is not None else "-",
        )
        both = f.base is not None and f.fresh is not None
        table.set(
            "Δ %", f.phase, f"{f.delta * 100.0:+.1f}" if both and f.status not in ("noise",) else "-"
        )
        table.set(
            "allowed %",
            f.phase,
            f"±{f.allowed * 100.0:.1f}" if both and f.allowed else "-",
        )
        table.set("verdict", f.phase, f.status)
    regressed = [f.phase for f in findings if f.regressed]
    verdict = (
        f"REGRESSED: {', '.join(regressed)}"
        if regressed
        else "no regressions beyond noise allowance"
    )
    return table.render() + "\n\n" + verdict
