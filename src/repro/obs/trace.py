"""Span-based tracing with an ambient collector.

The tracer answers the question the paper's whole evaluation revolves
around — *where did the time and memory go?* — with hierarchical spans:
a ``hooi`` run contains iteration spans, iterations contain phase spans,
phases contain per-lattice-level spans, levels carry node/edge/entry
attributes. Point-in-time ``event`` records (budget requests/releases)
interleave with spans.

Design constraints, in order:

1. **Near-zero overhead when disabled.** Kernels call :func:`span` on hot
   paths (once per lattice level per batch). With no active collector the
   call is one module-global load, one ``is None`` test and the return of
   a shared no-op singleton — no allocation, no clock read.
2. **Thread-correct nesting.** The *collector* is process-wide by default
   (worker threads report into the measurement installed by the driving
   thread) but the *open-span stack* is thread-local, so concurrent
   workers never corrupt each other's parent chains. Cross-thread
   parentage is explicit: the submitting thread captures
   :func:`current_span_id` and passes it as ``parent_id`` (see
   :mod:`repro.parallel.executor`).
3. **Nestable scopes.** Collectors stack like ``MemoryBudget``; the
   innermost one receives the records.
4. **Per-thread isolation on demand.** :func:`collector_scope` installs a
   *thread-local* collector override that shadows the process-wide one —
   this is how :class:`repro.runtime.context.ExecContext` keeps two
   concurrent runs (each with its own collector) from cross-contaminating
   each other's traces while sharing one process.

Usage::

    from repro.obs import TraceCollector, span

    with TraceCollector() as col:
        with span("s3ttmc", kernel="symprop"):
            ...
    col.spans   # finished Span records, tree via span_id/parent_id
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import MetricsRegistry

__all__ = [
    "Span",
    "TraceEvent",
    "TraceCollector",
    "active_collector",
    "collector_scope",
    "tracing_enabled",
    "span",
    "begin_span",
    "finish_span",
    "event",
    "current_span_id",
    "open_span_depth",
    "snapshot_open_stacks",
]


@dataclass(eq=False)  # identity semantics: attrs may hold non-comparable values
class Span:
    """One finished (or open) span: a named, attributed time interval."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float = 0.0
    thread: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value


@dataclass
class TraceEvent:
    """A point-in-time record (e.g. one budget request)."""

    name: str
    timestamp: float
    parent_id: Optional[int]
    thread: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)


class TraceCollector:
    """Receives spans/events; install with ``with`` to make it ambient.

    Attributes
    ----------
    spans:
        Finished spans in completion order (children precede parents).
    events:
        Point events in emission order.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` scoped to this
        collector's lifetime (per-level flop counters, budget gauges, …).
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        self._next_id = 0

    # -- record sinks (called by the span machinery) ----------------------
    def allocate_id(self) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            return span_id

    def record_span(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def record_event(self, evt: TraceEvent) -> None:
        with self._lock:
            self.events.append(evt)

    # -- queries ----------------------------------------------------------
    def check_consistency(self) -> List[str]:
        """Structural invariants of the recorded trace; returns problems.

        Checks that span ids are unique, every span finished after it
        started, and every span/event parent id refers to a recorded span.
        An empty list means the trace is structurally sound. Intended for
        *post-run* validation (``repro.verify`` runs it after every case);
        mid-run, parents may still be open and legitimately unrecorded.
        """
        with self._lock:
            spans = list(self.spans)
            events = list(self.events)
        problems: List[str] = []
        ids = [s.span_id for s in spans]
        id_set = set(ids)
        if len(id_set) != len(ids):
            problems.append("duplicate span ids recorded")
        for s in spans:
            if s.end < s.start:
                problems.append(f"span {s.name!r} (id {s.span_id}) ends before it starts")
            if s.parent_id is not None and s.parent_id not in id_set:
                problems.append(
                    f"span {s.name!r} (id {s.span_id}) has unrecorded "
                    f"parent {s.parent_id}"
                )
        for e in events:
            if e.parent_id is not None and e.parent_id not in id_set:
                problems.append(
                    f"event {e.name!r} has unrecorded parent {e.parent_id}"
                )
        return problems

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span_id]

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    # -- scope management --------------------------------------------------
    def __enter__(self) -> "TraceCollector":
        global _ACTIVE
        with _INSTALL_LOCK:
            _COLLECTORS.append(self)
            _ACTIVE = self
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE
        with _INSTALL_LOCK:
            if self in _COLLECTORS:
                _COLLECTORS.remove(self)
            _ACTIVE = _COLLECTORS[-1] if _COLLECTORS else None


_INSTALL_LOCK = threading.Lock()
_COLLECTORS: List[TraceCollector] = []
#: Fast-path cache of the innermost collector (``None`` = tracing off).
_ACTIVE: Optional[TraceCollector] = None

_STACKS = threading.local()

#: Registry of every thread's open-span stack, keyed by thread ident —
#: the view the sampling profiler (:mod:`repro.obs.profile`) reads from
#: its own thread. Entries are the *same list objects* the owner threads
#: mutate; readers must copy under the GIL (``list(stack)``) and tolerate
#: momentary inconsistency. Registered once per thread (first ``_stack()``
#: call), so the hot path pays nothing.
_STACK_REGISTRY: Dict[int, List[Span]] = {}
_REGISTRY_LOCK = threading.Lock()


def _stack() -> List[Span]:
    stack = getattr(_STACKS, "stack", None)
    if stack is None:
        stack = []
        _STACKS.stack = stack
        with _REGISTRY_LOCK:
            _STACK_REGISTRY[threading.get_ident()] = stack
    return stack


def snapshot_open_stacks() -> Dict[str, List[str]]:
    """Open-span names per live thread, outermost first.

    A racy-but-safe snapshot for the sampling profiler: each stack is
    copied in one ``list()`` call (atomic under the GIL), so a sample
    taken mid-push/pop sees the stack either before or after the
    mutation, never a torn state. Threads with no open spans are omitted;
    registry entries of dead threads are pruned as they are discovered.
    """
    alive = {t.ident: t.name for t in threading.enumerate()}
    with _REGISTRY_LOCK:
        items = list(_STACK_REGISTRY.items())
    out: Dict[str, List[str]] = {}
    dead = []
    for ident, stack in items:
        name = alive.get(ident)
        if name is None:
            dead.append(ident)
            continue
        names = [s.name for s in list(stack)]
        if names:
            out[name] = names
    if dead:
        with _REGISTRY_LOCK:
            for ident in dead:
                _STACK_REGISTRY.pop(ident, None)
    return out


def active_collector() -> Optional[TraceCollector]:
    """Collector receiving this thread's records, or ``None``.

    A thread-local override (see :func:`collector_scope`) shadows the
    process-wide installed collector; with neither, tracing is off.
    """
    override = getattr(_STACKS, "collector", None)
    return override if override is not None else _ACTIVE


def tracing_enabled() -> bool:
    """``True`` when a collector is reachable from this thread (one TLS
    read plus one global load — hot-path safe as a guard before building
    attribute dicts)."""
    return getattr(_STACKS, "collector", None) is not None or _ACTIVE is not None


@contextmanager
def collector_scope(collector: TraceCollector):
    """Route this thread's ambient span/event emission to ``collector``.

    Unlike ``with collector:`` (which installs process-wide), the override
    is strictly thread-local: other threads keep whatever collector they
    see, so two runs on two threads can each trace into their own
    collector. Used by :meth:`repro.runtime.context.ExecContext.scope` and
    by parallel workers adopting their job's context.
    """
    prev = getattr(_STACKS, "collector", None)
    _STACKS.collector = collector
    try:
        yield collector
    finally:
        _STACKS.collector = prev


def current_span_id() -> Optional[int]:
    """Id of the innermost open span on *this* thread (for explicit
    cross-thread parenting), or ``None``."""
    stack = _stack()
    return stack[-1].span_id if stack else None


def open_span_depth() -> int:
    """Number of spans still open on *this* thread's stack.

    Zero after any balanced run — a non-zero value after a kernel call
    returned (or raised) means a span was opened without being finished,
    which corrupts the parentage of everything recorded afterwards. Used
    by the ``repro.verify`` span-balance invariant.
    """
    return len(_stack())


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


def begin_span(
    name: str,
    attrs: Optional[Dict[str, Any]] = None,
    *,
    parent_id: Optional[int] = None,
    collector: Optional[TraceCollector] = None,
) -> Optional[Span]:
    """Open a span imperatively; returns ``None`` when tracing is off.

    For callers that need the span's exact clock readings (e.g.
    :class:`repro.runtime.timer.PhaseTimer`, whose totals must agree with
    the trace rollup to the clock tick). Pair with :func:`finish_span`.
    ``collector`` routes the span explicitly (execution-context path),
    bypassing the ambient lookup.
    """
    if collector is None:
        collector = active_collector()
    if collector is None:
        return None
    stack = _stack()
    parent = parent_id
    if parent is None and stack:
        parent = stack[-1].span_id
    s = Span(
        name=name,
        span_id=collector.allocate_id(),
        parent_id=parent,
        start=time.perf_counter(),
        thread=threading.current_thread().name,
        attrs=attrs if attrs is not None else {},
    )
    s._collector = collector  # type: ignore[attr-defined]
    stack.append(s)
    return s


def finish_span(s: Span, end: Optional[float] = None) -> None:
    """Close a span from :func:`begin_span`, optionally at a caller-read
    ``perf_counter`` timestamp (shared-clock agreement)."""
    s.end = end if end is not None else time.perf_counter()
    stack = _stack()
    if stack and stack[-1] is s:
        stack.pop()
    elif s in stack:  # tolerate misnested exits rather than corrupting
        stack.remove(s)
    collector = getattr(s, "_collector", None) or active_collector()
    if collector is not None:
        collector.record_span(s)


class _LiveSpan:
    """Context manager materializing one :class:`Span` into a collector."""

    __slots__ = ("_collector", "_parent_id", "span", "_name", "_attrs")

    def __init__(
        self,
        collector: TraceCollector,
        name: str,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self._collector = collector
        self._name = name
        self._parent_id = parent_id
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        # Pinning the collector captured at span() creation keeps the span
        # routed even if the ambient collector changes before __enter__.
        s = begin_span(
            self._name, self._attrs, parent_id=self._parent_id,
            collector=self._collector,
        )
        assert s is not None  # explicit collector: begin_span never bails
        self.span = s
        return s

    def __exit__(self, *exc) -> bool:
        s = self.span
        assert s is not None
        finish_span(s)
        return False


def span(
    name: str,
    *,
    parent_id: Optional[int] = None,
    collector: Optional[TraceCollector] = None,
    **attrs: Any,
):
    """Open a span under the ambient collector (no-op when tracing is off).

    ``parent_id`` overrides the thread-local parent — pass the submitting
    thread's :func:`current_span_id` when crossing into a worker thread.
    ``collector`` routes the span into that collector explicitly instead
    of the ambient one (the :class:`~repro.runtime.context.ExecContext`
    path).
    """
    if collector is None:
        collector = active_collector()
    if collector is None:
        return _NULL_SPAN
    return _LiveSpan(collector, name, parent_id, attrs)


def event(
    name: str,
    *,
    parent_id: Optional[int] = None,
    collector: Optional[TraceCollector] = None,
    **attrs: Any,
) -> None:
    """Record a point-in-time event (no-op when tracing is off).

    ``collector`` routes the event explicitly, as for :func:`span`.
    """
    if collector is None:
        collector = active_collector()
    if collector is None:
        return
    stack = _stack()
    if parent_id is None and stack:
        parent_id = stack[-1].span_id
    collector.record_event(
        TraceEvent(
            name=name,
            timestamp=time.perf_counter(),
            parent_id=parent_id,
            thread=threading.current_thread().name,
            attrs=attrs,
        )
    )
