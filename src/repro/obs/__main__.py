"""Trace-file tooling.

Usage::

    python -m repro.obs summarize trace.jsonl
    python -m repro.obs summarize trace.jsonl --title "hooi run"
    python -m repro.obs report trace.jsonl
    python -m repro.obs export-chrome trace.jsonl [--out trace.chrome.json]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .attrib import attribute, render_attribution
from .export import (
    read_trace,
    render_summary,
    summarize,
    write_chrome_trace,
)


class _LoadError(Exception):
    """Carries the exit code for an unreadable/empty trace file."""

    def __init__(self, code: int) -> None:
        super().__init__(code)
        self.code = code


def _load(path_str: str):
    path = Path(path_str)
    if not path.is_file():
        print(f"trace file not found: {path}", file=sys.stderr)
        raise _LoadError(2)
    records = read_trace(path)
    if not records.spans and not records.events:
        print(f"no trace records in {path}", file=sys.stderr)
        raise _LoadError(1)
    return path, records


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect JSONL traces written by repro.obs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser(
        "summarize", help="per-phase / per-lattice-level rollup of a trace"
    )
    p_sum.add_argument("trace", help="path to a JSONL trace file")
    p_sum.add_argument("--title", default=None, help="table title override")

    p_rep = sub.add_parser(
        "report",
        help="performance attribution: per-level predicted-vs-measured "
        "efficiency, critical path and worker utilization",
    )
    p_rep.add_argument("trace", help="path to a JSONL trace file")
    p_rep.add_argument("--title", default=None, help="table title override")

    p_chrome = sub.add_parser(
        "export-chrome",
        help="convert a trace to Chrome Trace Event JSON "
        "(open in Perfetto / chrome://tracing / speedscope)",
    )
    p_chrome.add_argument("trace", help="path to a JSONL trace file")
    p_chrome.add_argument(
        "--out",
        default=None,
        help="output path (default: <trace>.chrome.json)",
    )
    args = parser.parse_args(argv)

    try:
        path, records = _load(args.trace)
    except _LoadError as exc:
        return exc.code
    if args.command == "summarize":
        title = args.title if args.title is not None else path.name
        print(render_summary(summarize(records), title=title))
        return 0
    if args.command == "report":
        title = args.title if args.title is not None else path.name
        print(render_attribution(attribute(records), title=title))
        return 0
    if args.command == "export-chrome":
        out = (
            Path(args.out)
            if args.out is not None
            else path.with_suffix(path.suffix + ".chrome.json")
        )
        write_chrome_trace(records, out)
        print(f"wrote {out}")
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    raise SystemExit(main())
