"""Trace-file tooling.

Usage::

    python -m repro.obs summarize trace.jsonl
    python -m repro.obs summarize trace.jsonl --title "hooi run"
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .export import read_trace, render_summary, summarize


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect JSONL traces written by repro.obs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_sum = sub.add_parser(
        "summarize", help="per-phase / per-lattice-level rollup of a trace"
    )
    p_sum.add_argument("trace", help="path to a JSONL trace file")
    p_sum.add_argument("--title", default=None, help="table title override")
    args = parser.parse_args(argv)

    if args.command == "summarize":
        path = Path(args.trace)
        if not path.is_file():
            print(f"trace file not found: {path}", file=sys.stderr)
            return 2
        records = read_trace(path)
        if not records.spans and not records.events:
            print(f"no trace records in {path}", file=sys.stderr)
            return 1
        title = args.title if args.title is not None else path.name
        print(render_summary(summarize(records), title=title))
        return 0
    return 2  # pragma: no cover - argparse enforces the subcommand


if __name__ == "__main__":
    raise SystemExit(main())
