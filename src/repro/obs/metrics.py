"""Metrics registry: counters, gauges and fixed-bucket histograms.

Complements the span tracer with cheap aggregates that don't need one
record per occurrence — per-level flop counters, segment-sum size
histograms, budget high-water-mark gauges. Every metric is thread-safe
(worker threads bump the same registry the driving thread installed) and
the whole registry flattens to a plain ``dict`` for JSONL export.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value plus its observed maximum (high-water mark)."""

    __slots__ = ("name", "value", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.max: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def add(self, delta: Number) -> None:
        """Apply a delta under the gauge's own lock.

        The safe form of ``g.set(g.value + delta)``: that read-modify-write
        races when several threads track a shared quantity (e.g. budget
        bytes in use across worker threads) — two concurrent adds would
        both read the same old value and one delta would vanish.
        """
        with self._lock:
            self.value += delta
            if self.value > self.max:
                self.max = self.value

    def update_max(self, value: Number) -> None:
        """Raise the high-water mark without moving the current value."""
        with self._lock:
            if value > self.max:
                self.max = value


#: Default bucket boundaries: powers of 4 cover sizes from "a cacheline"
#: to "a big intermediate" in 16 buckets.
DEFAULT_BUCKETS = tuple(4**k for k in range(1, 17))


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets like Prometheus).

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the implicit ``+Inf`` bucket. Bucket *counts* here are
    per-bucket (not cumulative); the exporter can derive either form.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "total", "count", "_lock")

    def __init__(self, name: str, buckets: Optional[Sequence[Number]] = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.buckets: tuple = bounds
        self.counts: List[int] = [0] * len(bounds)
        self.overflow = 0
        self.total: Number = 0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        with self._lock:
            slot = bisect_left(self.buckets, value)
            if slot >= len(self.buckets):
                self.overflow += 1
            else:
                self.counts[slot] += 1
            self.total += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics, created on first touch.

    A name is owned by the first kind that claims it; re-requesting it as
    a different kind raises — silent cross-kind aliasing hides bugs.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: type, *args) -> object:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Optional[Sequence[Number]] = None
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, buckets)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, requested Histogram"
                )
            return metric

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def as_dict(self) -> Dict[str, Number]:
        """Flatten to ``{name: value}`` (histograms expand to sub-keys)."""
        out: Dict[str, Number] = {}
        with self._lock:
            items = list(self._metrics.items())
        for name, metric in items:
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
                out[f"{name}.max"] = metric.max
            elif isinstance(metric, Histogram):
                out[f"{name}.count"] = metric.count
                out[f"{name}.sum"] = metric.total
                cumulative = 0
                for bound, bucket_count in zip(metric.buckets, metric.counts):
                    cumulative += bucket_count
                    out[f"{name}.le_{bound}"] = cumulative
                out[f"{name}.le_inf"] = cumulative + metric.overflow
        return out
