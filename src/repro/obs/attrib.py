"""Performance attribution: predicted-vs-measured reports from traces.

The spans (:mod:`repro.obs.trace`) say where time *went*; the perfmodel
(:mod:`repro.perfmodel`) says where it *should have gone*. This module
joins the two: every ``lattice.level`` / ``lattice.scatter`` span carries
the structural quantities (nodes, edges, entry size) from which its exact
flop count follows — the same arithmetic as
:meth:`repro.core.stats.KernelStats.add_level` — and the enclosing
``lattice_ttmc`` span carries the workload ``(layout, order, rank,
unnz)`` the closed-form Eq.-9 models speak about. Feeding the measured
``(flops, seconds)`` pairs into
:class:`repro.perfmodel.predict.RateCalibration` and predicting each
row back via the calibrated family rate yields an efficiency table: rows
whose measured time exceeds their prediction are the ones running below
the machine's demonstrated flop rate — exactly the signal an autotuner
(or a human) needs to decide which ``(level, layout, backend)`` to
specialize next.

For parallel runs the report adds critical-path and worker-utilization
rollups from ``parallel.s3ttmc`` spans: thread/serial backends nest
worker-tagged ``parallel.chunk`` spans, the process backend reports
slot-tagged ``parallel.chunk.done`` events (the worker-side seconds are
in the event attrs — worker processes never ship spans).

Surfaced as ``python -m repro.obs report trace.jsonl`` and as the
``worker_busy`` / ``utilization()`` / ``critical_path_seconds()``
extension of :class:`repro.parallel.executor.ParallelRunReport`.

The perfmodel import is lazy (``obs`` sits below ``perfmodel`` in the
layer order — see ``tools/check_layering.py``'s ``LAZY_ALLOWED``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .export import TraceRecords
from .trace import TraceCollector

__all__ = [
    "LevelRow",
    "KernelRow",
    "WorkerRollup",
    "AttributionReport",
    "attribute",
    "render_attribution",
]

#: Span-name → intermediate-layout → kernel family for rate calibration.
LAYOUT_FAMILIES = {"compact": "symprop", "full": "css", "cp": "cp"}


def _family(layout: str, kernel: str) -> str:
    """Calibration family for a layout under an engine mode.

    The fused exec-compiled kernels run the same arithmetic at a
    different achieved rate, so they calibrate as their own family
    (``symprop+compiled`` vs ``symprop``) — the compiled-vs-generic
    comparison then falls straight out of the report tables.
    """
    base = LAYOUT_FAMILIES.get(layout, layout)
    return f"{base}+compiled" if kernel == "compiled" else base


@dataclass
class LevelRow:
    """One ``(level, layout, kernel, backend)`` cell of the efficiency table."""

    level: str
    layout: str
    backend: str
    kernel: str = "generic"
    seconds: float = 0.0
    count: int = 0
    flops: float = 0.0
    predicted_seconds: float = 0.0

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.level, self.layout, self.backend, self.kernel)

    @property
    def label(self) -> str:
        layout = (
            f"{self.layout}+compiled" if self.kernel == "compiled" else self.layout
        )
        return f"{self.level}/{layout}/{self.backend}"

    @property
    def rate(self) -> float:
        """Achieved flop rate (flop/s; 0 when unmeasurable)."""
        return self.flops / self.seconds if self.seconds > 0 else 0.0

    @property
    def deviation(self) -> float:
        """``measured / predicted - 1`` — positive = slower than the model."""
        if self.predicted_seconds <= 0:
            return 0.0
        return self.seconds / self.predicted_seconds - 1.0


@dataclass
class KernelRow:
    """Whole-kernel predicted-vs-measured for one workload shape."""

    family: str
    order: int
    rank: int
    unnz: int
    calls: int = 0
    seconds: float = 0.0
    predicted_seconds: Optional[float] = None

    @property
    def label(self) -> str:
        return f"{self.family} N={self.order} R={self.rank} unnz={self.unnz}"


@dataclass
class WorkerRollup:
    """Critical-path / utilization aggregate for one backend's runs."""

    backend: str
    n_workers: int = 0
    runs: int = 0
    elapsed: float = 0.0
    critical_path_seconds: float = 0.0
    busy: Dict[str, float] = field(default_factory=dict)

    @property
    def busy_seconds(self) -> float:
        return sum(self.busy.values())

    @property
    def utilization(self) -> float:
        """Fraction of the worker-second capacity actually spent busy."""
        capacity = self.n_workers * self.elapsed
        return self.busy_seconds / capacity if capacity > 0 else 0.0


@dataclass
class AttributionReport:
    """Everything :func:`render_attribution` needs, as plain aggregates."""

    levels: List[LevelRow] = field(default_factory=list)
    kernels: List[KernelRow] = field(default_factory=list)
    parallel: List[WorkerRollup] = field(default_factory=list)
    rates: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0

    def level_share(self, row: LevelRow) -> float:
        """Fraction of total traced root time spent in ``row``."""
        return row.seconds / self.total_seconds if self.total_seconds > 0 else 0.0


def _as_span_dicts(records: Union[TraceRecords, TraceCollector]):
    if isinstance(records, TraceCollector):
        spans = [
            {
                "name": s.name,
                "id": s.span_id,
                "parent": s.parent_id,
                "seconds": s.seconds,
                "thread": s.thread,
                "attrs": s.attrs,
            }
            for s in records.spans
        ]
        events = [
            {
                "name": e.name,
                "parent": e.parent_id,
                "thread": e.thread,
                "attrs": e.attrs,
            }
            for e in records.events
        ]
        return spans, events
    return records.spans, records.events


def _structural_flops(name: str, attrs: dict) -> float:
    """Exact flops of one level/scatter span from its recorded shape.

    Level: each edge contributes a multiply+add per entry, minus one add
    per node (the first term) — matching ``KernelStats.add_level``.
    Scatter: value-scale plus accumulate per entry per top edge.
    """
    entry = float(attrs.get("entry_size", 0))
    edges = float(attrs.get("edges", 0))
    if name == "lattice.scatter":
        return 2.0 * edges * entry
    nodes = float(attrs.get("nodes", 0))
    return (2.0 * edges - nodes) * entry


def attribute(records: Union[TraceRecords, TraceCollector]) -> AttributionReport:
    """Join a trace's spans against the perfmodel into an
    :class:`AttributionReport`.

    Works on live collectors and parsed JSONL alike. Traces without
    lattice spans produce an empty (but renderable) report.
    """
    from ..perfmodel.predict import RateCalibration, predict_seconds

    spans, events = _as_span_dicts(records)
    by_id = {s.get("id"): s for s in spans}

    def ancestor(span: dict, *names: str) -> Optional[dict]:
        parent = span.get("parent")
        seen = 0
        while parent is not None and seen < 10_000:  # cycle guard
            node = by_id.get(parent)
            if node is None:
                return None
            if node.get("name") in names:
                return node
            parent = node.get("parent")
            seen += 1
        return None

    report = AttributionReport()
    report.total_seconds = sum(
        float(s.get("seconds") or 0.0)
        for s in spans
        if s.get("parent") is None
    )

    # -- per-level rows + per-kernel-call calibration samples --------------
    levels: Dict[Tuple[str, str, str], LevelRow] = {}
    calls: Dict[int, dict] = {}  # lattice_ttmc span id -> accumulators
    for s in spans:
        name = s.get("name", "")
        if name not in ("lattice.level", "lattice.scatter"):
            continue
        attrs = s.get("attrs") or {}
        kernel = ancestor(s, "lattice_ttmc")
        kattrs = (kernel or {}).get("attrs") or {}
        layout = str(kattrs.get("intermediate", "?"))
        mode = str(kattrs.get("kernel", "generic"))
        run = ancestor(s, "parallel.s3ttmc")
        backend = (
            str((run.get("attrs") or {}).get("backend", "?"))
            if run is not None
            else "serial"
        )
        level = "scatter" if name == "lattice.scatter" else str(
            attrs.get("level", "?")
        )
        flops = _structural_flops(name, attrs)
        row = levels.setdefault(
            (level, layout, backend, mode),
            LevelRow(level, layout, backend, mode),
        )
        row.seconds += float(s.get("seconds") or 0.0)
        row.count += 1
        row.flops += flops
        if kernel is not None:
            acc = calls.setdefault(
                kernel.get("id"),
                {
                    "layout": layout,
                    "kernel": mode,
                    "order": int(kattrs.get("order", 0)),
                    "rank": int(kattrs.get("rank", 0)),
                    "unnz": int(kattrs.get("unnz", 0)),
                    "seconds": float(kernel.get("seconds") or 0.0),
                    "flops": 0.0,
                },
            )
            acc["flops"] += flops

    # -- calibrate family rates from the trace's own kernel calls ----------
    calibration = RateCalibration()
    for acc in calls.values():
        calibration.record(
            _family(acc["layout"], acc["kernel"]), acc["flops"], acc["seconds"]
        )
    report.rates = {
        family: rate
        for family in sorted(
            {_family(a["layout"], a["kernel"]) for a in calls.values()}
        )
        if (rate := calibration.rate(family)) is not None
    }

    # -- per-kernel-shape predicted vs measured ----------------------------
    kernels: Dict[Tuple[str, int, int, int], KernelRow] = {}
    for acc in calls.values():
        family = _family(acc["layout"], acc["kernel"])
        key = (family, acc["order"], acc["rank"], acc["unnz"])
        row = kernels.setdefault(key, KernelRow(*key))
        row.calls += 1
        row.seconds += acc["seconds"]
    for row in kernels.values():
        per_call = predict_seconds(
            calibration, row.family, row.order, row.rank, row.unnz
        )
        if per_call is not None:
            row.predicted_seconds = per_call * row.calls
    report.kernels = sorted(kernels.values(), key=lambda r: -r.seconds)

    # -- per-level predictions from the calibrated rates -------------------
    for row in levels.values():
        rate = report.rates.get(_family(row.layout, row.kernel))
        if rate:
            # Rate-predict the *measured* structural flops: chunked
            # parallel runs never match the closed-form per-call shapes
            # (each chunk sees a slice of unnz), but the structural count
            # is exact in every regime.
            row.predicted_seconds = row.flops / rate
    report.levels = sorted(
        levels.values(),
        key=lambda r: (r.layout, r.kernel, r.backend, _level_sort(r.level)),
    )

    # -- parallel rollups: critical path + worker utilization --------------
    children: Dict[Optional[int], List[dict]] = {}
    for s in spans:
        children.setdefault(s.get("parent"), []).append(s)
    events_by_parent: Dict[Optional[int], List[dict]] = {}
    for e in events:
        events_by_parent.setdefault(e.get("parent"), []).append(e)

    rollups: Dict[str, WorkerRollup] = {}
    for s in spans:
        if s.get("name") != "parallel.s3ttmc":
            continue
        attrs = s.get("attrs") or {}
        backend = str(attrs.get("backend", "?"))
        rollup = rollups.setdefault(backend, WorkerRollup(backend))
        rollup.runs += 1
        rollup.n_workers = max(rollup.n_workers, int(attrs.get("n_workers", 0)))
        rollup.elapsed += float(s.get("seconds") or 0.0)
        run_busy: Dict[str, float] = {}
        for child in children.get(s.get("id"), ()):
            if child.get("name") != "parallel.chunk":
                continue
            cattrs = child.get("attrs") or {}
            worker = str(
                cattrs.get("worker") or child.get("thread") or "worker"
            )
            run_busy[worker] = run_busy.get(worker, 0.0) + float(
                child.get("seconds") or 0.0
            )
        for evt in events_by_parent.get(s.get("id"), ()):
            if evt.get("name") != "parallel.chunk.done":
                continue
            eattrs = evt.get("attrs") or {}
            worker = f"w{eattrs.get('worker', '?')}"
            run_busy[worker] = run_busy.get(worker, 0.0) + float(
                eattrs.get("numeric_seconds") or 0.0
            )
        rollup.critical_path_seconds += max(run_busy.values(), default=0.0)
        for worker, busy in run_busy.items():
            rollup.busy[worker] = rollup.busy.get(worker, 0.0) + busy
    report.parallel = sorted(rollups.values(), key=lambda r: r.backend)
    return report


def _level_sort(level: str) -> Tuple[int, int]:
    try:
        return (0, int(level))
    except ValueError:
        return (1, 0)


def render_attribution(
    report: AttributionReport, title: str = "attribution"
) -> str:
    """Render an :class:`AttributionReport` as harness-style tables."""
    # Lazy for the same reason as render_summary: bench sits above obs.
    from ..bench.records import SeriesTable, format_seconds

    blocks: List[str] = []

    if report.levels:
        table = SeriesTable(
            f"{title}: per-level predicted vs measured", "level/layout/backend"
        )
        for row in report.levels:
            label = row.label
            table.set("measured", label, format_seconds(row.seconds))
            table.set(
                "predicted",
                label,
                format_seconds(row.predicted_seconds)
                if row.predicted_seconds > 0
                else "-",
            )
            table.set(
                "dev %",
                label,
                f"{row.deviation * 100.0:+.1f}"
                if row.predicted_seconds > 0
                else "-",
            )
            table.set("Gflop/s", label, f"{row.rate / 1e9:.3f}")
            table.set("% run", label, f"{report.level_share(row) * 100.0:.1f}")
            table.set("calls", label, str(row.count))
        blocks.append(table.render())

    if report.kernels:
        table = SeriesTable(f"{title}: kernel calls", "workload")
        for row in report.kernels:
            table.set("measured", row.label, format_seconds(row.seconds))
            table.set(
                "predicted",
                row.label,
                format_seconds(row.predicted_seconds)
                if row.predicted_seconds is not None
                else "-",
            )
            table.set("calls", row.label, str(row.calls))
        blocks.append(table.render())

    if report.parallel:
        table = SeriesTable(f"{title}: parallel runs", "backend")
        for rollup in report.parallel:
            table.set("runs", rollup.backend, str(rollup.runs))
            table.set("workers", rollup.backend, str(rollup.n_workers))
            table.set(
                "elapsed", rollup.backend, format_seconds(rollup.elapsed)
            )
            table.set(
                "busy", rollup.backend, format_seconds(rollup.busy_seconds)
            )
            table.set(
                "critical path",
                rollup.backend,
                format_seconds(rollup.critical_path_seconds),
            )
            table.set(
                "util %", rollup.backend, f"{rollup.utilization * 100.0:.1f}"
            )
        blocks.append(table.render())

    footer = []
    if report.rates:
        rates = "  ".join(
            f"{family}: {rate / 1e9:.3f} Gflop/s"
            for family, rate in sorted(report.rates.items())
        )
        footer.append(f"calibrated rates — {rates}")
    if report.total_seconds > 0:
        footer.append(f"traced root time: {format_seconds(report.total_seconds)}")
    if not blocks:
        blocks.append("no lattice or parallel spans in this trace")
    if footer:
        blocks.append("  ".join(footer))
    return "\n\n".join(blocks)
