"""Trace/metrics exporters and the summarize rollup.

One JSONL line per record, self-describing via ``kind``:

* ``{"kind": "span", "name", "id", "parent", "start", "end", "seconds",
  "thread", "attrs"}``
* ``{"kind": "event", "name", "ts", "parent", "thread", "attrs"}``
* ``{"kind": "metrics", "values": {...}}`` — one flat dict per collector
  flush (appended last, so a file accumulating several measurements has
  one metrics line per measurement).

The rollup (:func:`summarize` / :func:`render_summary`) reconstructs the
per-phase and per-lattice-level structure the paper's Figures 8 and 4
are built from, reusing :class:`repro.bench.records.SeriesTable` so trace
summaries render exactly like the benchmark harness's tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .trace import TraceCollector

__all__ = [
    "write_trace",
    "read_trace",
    "TraceRecords",
    "PhaseRollup",
    "LevelRollup",
    "TraceSummary",
    "summarize",
    "render_summary",
    "chrome_trace",
    "write_chrome_trace",
]

#: Span-name prefix the :class:`repro.runtime.timer.PhaseTimer` consumer
#: emits; the rollup groups on the suffix.
PHASE_PREFIX = "phase:"
LEVEL_SPAN = "lattice.level"


def write_trace(
    collector: TraceCollector,
    path: Union[str, Path],
    *,
    append: bool = False,
) -> Path:
    """Serialize a collector's spans, events and metrics to JSONL."""
    path = Path(path)
    mode = "a" if append else "w"
    with path.open(mode, encoding="utf-8") as fh:
        for s in collector.spans:
            fh.write(
                json.dumps(
                    {
                        "kind": "span",
                        "name": s.name,
                        "id": s.span_id,
                        "parent": s.parent_id,
                        "start": s.start,
                        "end": s.end,
                        "seconds": s.seconds,
                        "thread": s.thread,
                        "attrs": s.attrs,
                    },
                    default=str,
                )
                + "\n"
            )
        for e in collector.events:
            fh.write(
                json.dumps(
                    {
                        "kind": "event",
                        "name": e.name,
                        "ts": e.timestamp,
                        "parent": e.parent_id,
                        "thread": e.thread,
                        "attrs": e.attrs,
                    },
                    default=str,
                )
                + "\n"
            )
        values = collector.metrics.as_dict()
        if values:
            fh.write(json.dumps({"kind": "metrics", "values": values}) + "\n")
    return path


@dataclass
class TraceRecords:
    """Parsed JSONL trace: plain dicts, grouped by kind."""

    spans: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    metrics: List[Dict[str, float]] = field(default_factory=list)

    def span_children(self, span_id: Optional[int]) -> List[dict]:
        return [s for s in self.spans if s.get("parent") == span_id]


def read_trace(path: Union[str, Path]) -> TraceRecords:
    """Parse a JSONL trace file.

    Blank and undecodable lines are skipped — a run killed mid-append
    leaves a truncated final line, and that must not make the rest of
    the trace unreadable.
    """
    records = TraceRecords()
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = obj.get("kind")
            if kind == "span":
                records.spans.append(obj)
            elif kind == "event":
                records.events.append(obj)
            elif kind == "metrics":
                records.metrics.append(obj.get("values", {}))
    return records


@dataclass
class PhaseRollup:
    """Aggregate of one named phase across all iterations."""

    phase: str
    seconds: float = 0.0
    count: int = 0


@dataclass
class LevelRollup:
    """Aggregate of one lattice level across all kernel invocations."""

    level: int
    seconds: float = 0.0
    count: int = 0
    nodes: int = 0
    edges: int = 0
    entries: int = 0


@dataclass
class TraceSummary:
    """Everything :func:`render_summary` needs, as plain aggregates."""

    phases: Dict[str, PhaseRollup] = field(default_factory=dict)
    levels: Dict[int, LevelRollup] = field(default_factory=dict)
    iterations: int = 0
    span_count: int = 0
    event_count: int = 0
    budget_peak: Optional[float] = None
    total_seconds: float = 0.0

    def phase_seconds(self) -> Dict[str, float]:
        return {name: r.seconds for name, r in self.phases.items()}


def summarize(records: Union[TraceRecords, TraceCollector]) -> TraceSummary:
    """Roll a trace up into per-phase and per-level aggregates."""
    if isinstance(records, TraceCollector):
        spans = [
            {
                "name": s.name,
                "seconds": s.seconds,
                "attrs": s.attrs,
                "parent": s.parent_id,
                "id": s.span_id,
            }
            for s in records.spans
        ]
        events = [{"name": e.name, "attrs": e.attrs} for e in records.events]
        metrics = [records.metrics.as_dict()]
    else:
        spans = records.spans
        events = records.events
        metrics = records.metrics

    summary = TraceSummary(span_count=len(spans), event_count=len(events))
    for s in spans:
        name = s.get("name", "")
        seconds = float(s.get("seconds") or 0.0)
        attrs = s.get("attrs") or {}
        if name.startswith(PHASE_PREFIX):
            phase = attrs.get("phase", name[len(PHASE_PREFIX):])
            rollup = summary.phases.setdefault(phase, PhaseRollup(phase))
            rollup.seconds += seconds
            rollup.count += 1
        elif name == LEVEL_SPAN:
            level = int(attrs.get("level", -1))
            lr = summary.levels.setdefault(level, LevelRollup(level))
            lr.seconds += seconds
            lr.count += 1
            lr.nodes += int(attrs.get("nodes", 0))
            lr.edges += int(attrs.get("edges", 0))
            lr.entries += int(attrs.get("nodes", 0)) * int(attrs.get("entry_size", 0))
        elif ".iteration" in name:
            summary.iterations += 1
        if s.get("parent") is None:
            summary.total_seconds += seconds
    for flat in metrics:
        peak = flat.get("budget.peak_bytes.max", flat.get("budget.peak_bytes"))
        if peak is not None:
            summary.budget_peak = max(summary.budget_peak or 0.0, float(peak))
    return summary


def render_summary(summary: TraceSummary, title: str = "trace summary") -> str:
    """Render rollups as harness-style tables (``SeriesTable``)."""
    # Imported lazily: bench pulls in the perfmodel/runtime stack, and the
    # runtime imports the tracer — keep repro.obs importable standalone.
    from ..bench.records import SeriesTable, format_seconds

    blocks: List[str] = []
    total = sum(r.seconds for r in summary.phases.values())
    phase_table = SeriesTable(f"{title}: per-phase rollup", "phase")
    for name, rollup in sorted(
        summary.phases.items(), key=lambda kv: -kv[1].seconds
    ):
        phase_table.set("total", name, format_seconds(rollup.seconds))
        phase_table.set("count", name, str(rollup.count))
        share = 100.0 * rollup.seconds / total if total > 0 else 0.0
        phase_table.set("%", name, f"{share:.1f}")
    if summary.phases:
        blocks.append(phase_table.render())

    if summary.levels:
        level_table = SeriesTable(f"{title}: lattice levels", "level")
        for level in sorted(summary.levels):
            lr = summary.levels[level]
            level_table.set("seconds", str(level), format_seconds(lr.seconds))
            level_table.set("nodes", str(level), str(lr.nodes))
            level_table.set("edges", str(level), str(lr.edges))
            level_table.set("entries", str(level), str(lr.entries))
        blocks.append(level_table.render())

    footer = [
        f"spans: {summary.span_count}   events: {summary.event_count}"
        f"   iterations: {summary.iterations}"
    ]
    if summary.budget_peak is not None:
        footer.append(f"budget peak: {summary.budget_peak / 2**20:.2f} MiB")
    if total > 0:
        footer.append(f"phase total: {format_seconds(total)}")
    blocks.append("  ".join(footer))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Chrome Trace Event export
# ---------------------------------------------------------------------------

#: Event name the process backend emits when a worker's chunk lands; its
#: attrs carry the worker id and the worker-side numeric seconds, which
#: is all the parent process ever sees of the worker's timeline.
CHUNK_DONE_EVENT = "parallel.chunk.done"


def chrome_trace(records: Union[TraceRecords, TraceCollector]) -> dict:
    """Convert a trace to Chrome Trace Event JSON (Perfetto/speedscope).

    Spans become complete (``"ph": "X"``) events on one track per thread;
    point events become instants. Process-backend workers never ship
    their spans across the process boundary, but every finished chunk
    reports a slot-tagged ``parallel.chunk.done`` event with its
    worker-side numeric seconds — those are synthesized into ``X`` events
    on per-worker tracks (``worker <id> (proc)``), so multi-process runs
    still render a per-worker timeline. Timestamps are rebased to the
    earliest record (``perf_counter`` origins are arbitrary) and
    expressed in microseconds, as the format requires.
    """
    if isinstance(records, TraceCollector):
        spans = [
            {
                "name": s.name,
                "id": s.span_id,
                "parent": s.parent_id,
                "start": s.start,
                "end": s.end,
                "seconds": s.seconds,
                "thread": s.thread,
                "attrs": s.attrs,
            }
            for s in records.spans
        ]
        events = [
            {
                "name": e.name,
                "ts": e.timestamp,
                "parent": e.parent_id,
                "thread": e.thread,
                "attrs": e.attrs,
            }
            for e in records.events
        ]
    else:
        spans = records.spans
        events = records.events

    stamps = [float(s.get("start") or 0.0) for s in spans]
    stamps += [float(e.get("ts") or 0.0) for e in events]
    base = min(stamps) if stamps else 0.0

    def us(ts: float) -> float:
        return round((ts - base) * 1e6, 3)

    tids: Dict[str, int] = {}

    def tid(track: str) -> int:
        if track not in tids:
            tids[track] = len(tids) + 1
        return tids[track]

    out: List[dict] = []
    for s in spans:
        attrs = dict(s.get("attrs") or {})
        attrs["span_id"] = s.get("id")
        if s.get("parent") is not None:
            attrs["parent_id"] = s.get("parent")
        out.append(
            {
                "name": s.get("name", ""),
                "ph": "X",
                "cat": "span",
                "ts": us(float(s.get("start") or 0.0)),
                "dur": round(float(s.get("seconds") or 0.0) * 1e6, 3),
                "pid": 1,
                "tid": tid(s.get("thread") or "main"),
                "args": attrs,
            }
        )
    for e in events:
        attrs = dict(e.get("attrs") or {})
        ts = float(e.get("ts") or 0.0)
        out.append(
            {
                "name": e.get("name", ""),
                "ph": "i",
                "cat": "event",
                "s": "t",
                "ts": us(ts),
                "pid": 1,
                "tid": tid(e.get("thread") or "main"),
                "args": attrs,
            }
        )
        if e.get("name") == CHUNK_DONE_EVENT and "numeric_seconds" in attrs:
            seconds = float(attrs.get("numeric_seconds") or 0.0)
            track = f"worker {attrs.get('worker', '?')} (proc)"
            out.append(
                {
                    "name": f"parallel.chunk[{attrs.get('chunk', '?')}]",
                    "ph": "X",
                    "cat": "span",
                    # The done event fires when the parent receives the
                    # result, so the chunk's execution window *ends* here.
                    "ts": us(ts - seconds),
                    "dur": round(seconds * 1e6, 3),
                    "pid": 1,
                    "tid": tid(track),
                    "args": attrs,
                }
            )
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": n,
            "args": {"name": track},
        }
        for track, n in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    records: Union[TraceRecords, TraceCollector], path: Union[str, Path]
) -> Path:
    """Serialize :func:`chrome_trace` output to ``path`` (JSON)."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(records), default=str) + "\n", encoding="utf-8"
    )
    return path
