"""Unified observability: span tracing, metrics, JSONL export, rollups.

The measurement substrate behind every "where did the time/memory go?"
question in this reproduction. Three pieces:

* :mod:`repro.obs.trace` — hierarchical spans with an ambient collector
  (near-zero overhead when disabled; thread-local span stacks).
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
* :mod:`repro.obs.export` — JSONL writer/reader and the per-phase /
  per-lattice-level rollup (``python -m repro.obs summarize``).

Wired in end-to-end: the lattice engine emits per-level spans, the
decomposition loops emit per-iteration spans, ``PhaseTimer`` phases are
spans, the memory budget emits request/release events, the parallel
executor tags spans with worker/chunk ids, and the bench harness honours
``REPRO_TRACE=path.jsonl``. See ``docs/observability.md``.
"""

from .export import (
    TraceRecords,
    TraceSummary,
    read_trace,
    render_summary,
    summarize,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    Span,
    TraceCollector,
    TraceEvent,
    active_collector,
    current_span_id,
    event,
    open_span_depth,
    span,
    tracing_enabled,
)

__all__ = [
    "Span",
    "TraceEvent",
    "TraceCollector",
    "active_collector",
    "current_span_id",
    "open_span_depth",
    "event",
    "span",
    "tracing_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRecords",
    "TraceSummary",
    "read_trace",
    "render_summary",
    "summarize",
    "write_trace",
]
