"""Unified observability: span tracing, metrics, JSONL export, rollups.

The measurement substrate behind every "where did the time/memory go?"
question in this reproduction. Three pieces:

* :mod:`repro.obs.trace` — hierarchical spans with an ambient collector
  (near-zero overhead when disabled; thread-local span stacks).
* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
* :mod:`repro.obs.export` — JSONL writer/reader, the per-phase /
  per-lattice-level rollup (``python -m repro.obs summarize``) and the
  Chrome Trace Event exporter (``python -m repro.obs export-chrome``).
* :mod:`repro.obs.profile` — background sampling profiler attributing
  wall time to open span stacks; folded-stack output
  (``REPRO_PROFILE=path``).
* :mod:`repro.obs.attrib` — predicted-vs-measured attribution joining
  spans against the perfmodel (``python -m repro.obs report``).
* :mod:`repro.obs.regress` — noise-aware benchmark comparison behind
  ``tools/bench_regress.py``.

Wired in end-to-end: the lattice engine emits per-level spans, the
decomposition loops emit per-iteration spans, ``PhaseTimer`` phases are
spans, the memory budget emits request/release events, the parallel
executor tags spans with worker/chunk ids, and the bench harness honours
``REPRO_TRACE=path.jsonl`` / ``REPRO_PROFILE=path``. See
``docs/observability.md``.
"""

from .attrib import AttributionReport, attribute, render_attribution
from .export import (
    TraceRecords,
    TraceSummary,
    chrome_trace,
    read_trace,
    render_summary,
    summarize,
    write_chrome_trace,
    write_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import SamplingProfiler, profiler_from_env
from .trace import (
    Span,
    TraceCollector,
    TraceEvent,
    active_collector,
    current_span_id,
    event,
    open_span_depth,
    snapshot_open_stacks,
    span,
    tracing_enabled,
)

__all__ = [
    "Span",
    "TraceEvent",
    "TraceCollector",
    "active_collector",
    "current_span_id",
    "open_span_depth",
    "snapshot_open_stacks",
    "event",
    "span",
    "tracing_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SamplingProfiler",
    "profiler_from_env",
    "AttributionReport",
    "attribute",
    "render_attribution",
    "TraceRecords",
    "TraceSummary",
    "chrome_trace",
    "read_trace",
    "render_summary",
    "summarize",
    "write_chrome_trace",
    "write_trace",
]
