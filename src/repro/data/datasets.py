"""Table III dataset registry with offline synthetic stand-ins.

Each entry records the paper's dataset statistics (order, dimension, UNNZ,
Tucker rank) and a *scaled profile* used by the benchmark harness: tensor
order and structure are kept faithful (they determine the algorithmic
shape — who OOMs, who wins), while dimension / non-zero counts / ranks are
scaled to pure-Python-tractable sizes. The memory budget of the harness is
scaled correspondingly (256 GB node → 1.5 GiB default), so OOM crossovers
land in the same relative places.

Real datasets (hypergraphs from [33]) are replaced by planted-community
hypergraphs with matching cardinality structure, built through the same
dummy-node adjacency construction the paper uses; synthetic L/H tensors
([12]) are uniform random IOU patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..formats.ucoo import SparseSymmetricTensor
from ..hypergraph.adjacency import adjacency_tensor
from ..hypergraph.generators import planted_partition_hypergraph
from .synthetic import random_sparse_symmetric

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table III row plus its scaled reproduction profile.

    ``paper_*`` fields are reporting-only; ``load()`` realizes the scaled
    profile.
    """

    name: str
    category: str  # "synthetic" | "real"
    paper_order: int
    paper_dim: int
    paper_unnz: int
    paper_rank: int
    order: int
    dim: int
    unnz: int
    rank: int
    max_cardinality: Optional[int] = None  # real data: hyperedge size cap
    n_communities: int = 8

    def load(self, seed: int = 0) -> SparseSymmetricTensor:
        """Generate the scaled stand-in tensor deterministically."""
        if self.category == "synthetic":
            return random_sparse_symmetric(
                self.order, self.dim, self.unnz, seed=seed
            )
        # Real stand-in: planted hypergraph, dummy-node padded adjacency.
        max_card = self.max_cardinality or self.order
        n_dummy = max(0, self.order - 2)
        n_nodes = self.dim - n_dummy
        hg, _labels = planted_partition_hypergraph(
            n_nodes,
            # Oversample: duplicate hyperedges merge during construction.
            int(self.unnz * 1.15),
            self.n_communities,
            min_cardinality=2,
            max_cardinality=min(max_card, self.order),
            seed=seed,
        )
        tensor = adjacency_tensor(hg, self.order)
        if tensor.dim < self.dim:
            # Pad the dimension with unused trailing ids so dim matches the
            # profile exactly (kernel cost is dim-insensitive; memory
            # footprints are not).
            tensor = SparseSymmetricTensor(
                self.order,
                self.dim,
                tensor.indices,
                tensor.values,
                assume_canonical=True,
            )
        return tensor


_SPECS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("L6", "synthetic", 6, 100, 10_000, 2, 6, 100, 5_000, 2),
    DatasetSpec("L7", "synthetic", 7, 400, 1_000_000, 3, 7, 400, 20_000, 3),
    DatasetSpec("L10", "synthetic", 10, 400, 1_000, 5, 10, 400, 400, 5),
    DatasetSpec("H12", "synthetic", 12, 400, 10_000, 3, 12, 400, 400, 3),
    DatasetSpec(
        "contact-school", "real", 5, 245, 12_704, 12, 5, 245, 8_000, 8,
        max_cardinality=5, n_communities=10,
    ),
    DatasetSpec(
        "trivago-clicks", "real", 6, 154_987, 208_076, 4, 6, 8_000, 20_000, 4,
        max_cardinality=6, n_communities=16,
    ),
    DatasetSpec(
        "walmart-trips", "real", 8, 62_240, 47_560, 10, 8, 4_000, 1_500, 6,
        max_cardinality=8, n_communities=12,
    ),
    DatasetSpec(
        "stackoverflow", "real", 9, 2_549_043, 740_857, 4, 9, 8_000, 3_000, 4,
        max_cardinality=9, n_communities=16,
    ),
    DatasetSpec(
        "amazon-reviews", "real", 12, 701_429, 136_407, 3, 12, 4_000, 600, 3,
        max_cardinality=12, n_communities=16,
    ),
)

DATASETS: Dict[str, DatasetSpec] = {spec.name: spec for spec in _SPECS}


def dataset_names() -> Tuple[str, ...]:
    """Registry order matches Table III."""
    return tuple(spec.name for spec in _SPECS)


def load_dataset(name: str, seed: int = 0) -> SparseSymmetricTensor:
    """Load a scaled stand-in by Table III name."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(dataset_names())}"
        ) from None
    return spec.load(seed)
