"""Dataset statistics: the numbers that drive kernel cost.

``describe`` computes the structural statistics the performance model
needs (and Table III reports): sizes, expansion factor, index multiplicity
histogram, per-mode density, and the compression the IOU representation
achieves. Used by the Table III bench and handy when bringing new data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor
from ..symmetry.combinatorics import dense_size, sym_storage_size

__all__ = ["TensorSummary", "describe"]


@dataclass
class TensorSummary:
    """Structural statistics of one sparse symmetric tensor."""

    order: int
    dim: int
    unnz: int
    nnz: int
    density: float
    iou_density: float
    expansion_factor: float
    distinct_values_histogram: Dict[int, int] = field(default_factory=dict)
    touched_indices: int = 0
    max_index_degree: int = 0
    value_min: float = 0.0
    value_max: float = 0.0

    def lines(self) -> list:
        out = [
            f"order={self.order} dim={self.dim} unnz={self.unnz} nnz={self.nnz}",
            f"density={self.density:.3e} (IOU {self.iou_density:.3e}), "
            f"expansion x{self.expansion_factor:.1f}",
            f"touched indices: {self.touched_indices}/{self.dim}, "
            f"max index degree {self.max_index_degree}",
            f"values in [{self.value_min:.4g}, {self.value_max:.4g}]",
            "distinct values per non-zero: "
            + ", ".join(
                f"{k}:{v}" for k, v in sorted(self.distinct_values_histogram.items())
            ),
        ]
        return out

    def __str__(self) -> str:
        return "\n".join(self.lines())


def describe(tensor: SparseSymmetricTensor) -> TensorSummary:
    """Compute a :class:`TensorSummary`."""
    unnz = tensor.unnz
    nnz = tensor.nnz
    total = dense_size(tensor.order, tensor.dim)
    iou_total = sym_storage_size(tensor.order, tensor.dim)
    if unnz:
        distinct = np.ones(unnz, dtype=np.int64)
        if tensor.order > 1:
            distinct += (tensor.indices[:, 1:] != tensor.indices[:, :-1]).sum(axis=1)
        histogram = dict(Counter(distinct.tolist()))
        touched = np.unique(tensor.indices)
        degrees = np.bincount(tensor.indices.ravel(), minlength=tensor.dim)
        vmin, vmax = float(tensor.values.min()), float(tensor.values.max())
    else:
        histogram = {}
        touched = np.zeros(0, dtype=np.int64)
        degrees = np.zeros(tensor.dim, dtype=np.int64)
        vmin = vmax = 0.0
    return TensorSummary(
        order=tensor.order,
        dim=tensor.dim,
        unnz=unnz,
        nnz=nnz,
        density=nnz / total if total else 0.0,
        iou_density=unnz / iou_total if iou_total else 0.0,
        expansion_factor=nnz / unnz if unnz else 0.0,
        distinct_values_histogram=histogram,
        touched_indices=int(touched.shape[0]),
        max_index_degree=int(degrees.max(initial=0)),
        value_min=vmin,
        value_max=vmax,
    )
