"""Text I/O for sparse symmetric tensors (FROSTT-style ``.tns``).

Format: optional ``#`` comment lines, then a header line
``order dim unnz``, then one line per IOU non-zero with 1-based indices
followed by the value — compatible in spirit with the FROSTT ``.tns``
convention the paper's SPLATT I/O patch reads (IOU entries only, no
permutation expansion on disk).
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor

__all__ = ["write_tns", "read_tns"]

PathLike = Union[str, Path, TextIO]


def _open(target: PathLike, mode: str):
    if isinstance(target, (str, Path)):
        return open(target, mode, encoding="utf-8"), True
    return target, False


def write_tns(tensor: SparseSymmetricTensor, target: PathLike) -> None:
    """Write IOU non-zeros with 1-based indices."""
    handle, owned = _open(target, "w")
    try:
        handle.write("# repro sparse symmetric tensor (IOU entries, 1-based)\n")
        handle.write(f"{tensor.order} {tensor.dim} {tensor.unnz}\n")
        for row, value in zip(tensor.indices, tensor.values):
            coords = " ".join(str(int(c) + 1) for c in row)
            handle.write(f"{coords} {float(value)!r}\n")
    finally:
        if owned:
            handle.close()


def read_tns(source: PathLike) -> SparseSymmetricTensor:
    """Read a tensor written by :func:`write_tns`."""
    handle, owned = _open(source, "r")
    try:
        header = None
        rows = []
        vals = []
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if header is None:
                if len(parts) != 3:
                    raise ValueError(f"line {lineno}: header must be 'order dim unnz'")
                header = tuple(int(p) for p in parts)
                continue
            order = header[0]
            if len(parts) != order + 1:
                raise ValueError(
                    f"line {lineno}: expected {order} indices + value, got {len(parts)} fields"
                )
            rows.append([int(p) - 1 for p in parts[:order]])
            vals.append(float(parts[order]))
        if header is None:
            raise ValueError("missing header line")
        order, dim, unnz = header
        if len(rows) != unnz:
            raise ValueError(f"header claims {unnz} non-zeros, file has {len(rows)}")
        indices = np.array(rows, dtype=np.int64).reshape(len(rows), order)
        values = np.array(vals, dtype=np.float64)
        return SparseSymmetricTensor(order, dim, indices, values)
    finally:
        if owned:
            handle.close()


def tns_roundtrip(tensor: SparseSymmetricTensor) -> SparseSymmetricTensor:
    """In-memory write/read cycle (used by tests)."""
    buffer = io.StringIO()
    write_tns(tensor, buffer)
    buffer.seek(0)
    return read_tns(buffer)
