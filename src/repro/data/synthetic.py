"""Synthetic sparse symmetric tensor generators.

Two families:

* :func:`random_sparse_symmetric` — uniform random IOU patterns, the
  analogue of the L6/L7/L10/H12 tensors of [12] used throughout the
  paper's operation benchmarks (kernel cost depends only on the pattern
  statistics, not values);
* :func:`planted_lowrank` — a symmetric Tucker model ``C ×[U₀ᵀ]`` sampled
  at random IOU positions plus noise, so convergence experiments (Fig. 9)
  have actual low-rank structure to find.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..decomp.hosvd import random_init
from ..formats.dense_sym import DenseSymmetricTensor
from ..formats.ucoo import SparseSymmetricTensor
from ..symmetry.combinatorics import sym_storage_size
from ..symmetry.expansion import expand_compact

__all__ = ["random_iou_pattern", "random_sparse_symmetric", "planted_lowrank"]


def random_iou_pattern(
    order: int,
    dim: int,
    unnz: int,
    rng: np.random.Generator,
    *,
    max_tries: int = 64,
) -> np.ndarray:
    """``unnz`` distinct IOU index tuples, uniformly over sorted draws.

    Draws random tuples, sorts each, deduplicates, and repeats with an
    increasing oversampling factor until enough distinct patterns exist.
    """
    capacity = sym_storage_size(order, dim)
    if unnz > capacity:
        raise ValueError(f"cannot place {unnz} IOU non-zeros in S={capacity} slots")
    if unnz == 0:
        return np.zeros((0, order), dtype=np.int64)
    collected = np.zeros((0, order), dtype=np.int64)
    factor = 2
    for _ in range(max_tries):
        need = unnz - collected.shape[0]
        draw = rng.integers(0, dim, size=(max(need * factor, 16), order))
        draw.sort(axis=1)
        pool = np.concatenate([collected, draw], axis=0)
        collected = np.unique(pool, axis=0)
        if collected.shape[0] >= unnz:
            pick = rng.choice(collected.shape[0], size=unnz, replace=False)
            chosen = collected[pick]
            perm = np.lexsort(chosen.T[::-1])
            return chosen[perm]
        factor *= 2
    raise RuntimeError(
        f"failed to sample {unnz} distinct IOU tuples for order={order}, dim={dim}"
    )


def random_sparse_symmetric(
    order: int,
    dim: int,
    unnz: int,
    *,
    seed: Optional[int] = None,
    value_low: float = 0.1,
    value_high: float = 1.0,
) -> SparseSymmetricTensor:
    """Uniform random sparse symmetric tensor with ``unnz`` IOU non-zeros.

    Values are uniform in ``[value_low, value_high)`` (bounded away from
    zero so the pattern is exact).
    """
    rng = np.random.default_rng(seed)
    indices = random_iou_pattern(order, dim, unnz, rng)
    values = rng.uniform(value_low, value_high, size=unnz)
    return SparseSymmetricTensor(order, dim, indices, values, assume_canonical=True)


def planted_lowrank(
    order: int,
    dim: int,
    rank: int,
    unnz: Optional[int] = None,
    *,
    noise: float = 0.01,
    seed: Optional[int] = None,
) -> SparseSymmetricTensor:
    """Sampling of a rank-``rank`` symmetric Tucker model.

    Builds ``X̂ = C ×₁ U₀ᵀ … ×_N U₀ᵀ`` with orthonormal ``U₀`` and a random
    symmetric core, evaluates it at ``unnz`` random IOU positions (or at
    *every* IOU position when ``unnz`` is ``None``), and adds Gaussian noise
    scaled by ``noise`` times the entry RMS.

    Note that a *sparsely* sampled low-rank model is itself no longer
    low-rank (the implicit zeros are inconsistent with the model), so only
    part of its energy is recoverable; with ``unnz=None`` the tensor is
    exactly rank-``rank`` up to noise and decompositions should drive the
    relative error to ~``noise``. Evaluation materializes the full core
    unfolding (``rank**order`` entries) — intended for convergence studies
    at moderate sizes.
    """
    from ..symmetry.iou import enumerate_iou

    rng = np.random.default_rng(seed)
    if unnz is None:
        indices = enumerate_iou(order, dim)
        unnz = indices.shape[0]
    else:
        indices = random_iou_pattern(order, dim, unnz, rng)
    u0 = random_init(dim, rank, rng)
    core = DenseSymmetricTensor.random(order, rank, rng)
    core_full = expand_compact(core.data, order, rank)  # (rank**order,)

    values = np.empty(unnz, dtype=np.float64)
    chunk = max(1, 65536 // max(rank ** (order - 1), 1))
    for start in range(0, unnz, chunk):
        stop = min(start + chunk, unnz)
        block = indices[start:stop]
        w = u0[block[:, 0]]
        for t in range(1, order):
            w = (w[:, :, None] * u0[block[:, t]][:, None, :]).reshape(
                block.shape[0], -1
            )
        values[start:stop] = w @ core_full
    rms = float(np.sqrt(np.mean(values**2))) or 1.0
    values = values + noise * rms * rng.standard_normal(unnz)
    return SparseSymmetricTensor(order, dim, indices, values, assume_canonical=True)
