"""Datasets: synthetic generators, Table III registry, tensor I/O."""

from .datasets import DATASETS, DatasetSpec, dataset_names, load_dataset
from .describe import TensorSummary, describe
from .io import read_tns, write_tns
from .synthetic import planted_lowrank, random_iou_pattern, random_sparse_symmetric

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "describe",
    "TensorSummary",
    "random_sparse_symmetric",
    "random_iou_pattern",
    "planted_lowrank",
    "read_tns",
    "write_tns",
]
