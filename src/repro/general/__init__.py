"""General (non-symmetric) sparse tensor substrate: per-mode TTMc and HOOI."""

from .hooi import GeneralTuckerResult, general_hooi
from .ttmc import csf_ttmc_multi, general_ttmc

__all__ = ["general_ttmc", "csf_ttmc_multi", "general_hooi", "GeneralTuckerResult"]
