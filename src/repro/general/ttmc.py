"""General sparse TTMc: mode-n chains with per-mode factors.

The SPLATT baseline in :mod:`repro.baselines.splatt` is the symmetric
special case (same factor everywhere, mode-0 output). This module is the
full general substrate — the operation SPLATT actually implements for
arbitrary sparse tensors: ``Y_(n) = X ×_{m≠n} U_mᵀ`` with a *different*
factor per mode, computed over a CSF tree whose root is mode ``n``.

It exists for two reasons: (1) the reproduction's baselines should be
honest instances of general tools, and (2) it lets the test suite verify
the symmetric specialization against the general machinery (same factors
→ same result, any root mode).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core._segment import segment_sum_by_ptr
from ..core.stats import KernelStats
from ..formats.coo import COOTensor
from ..formats.csf import CSFTensor
from ..runtime.budget import release_bytes, request_bytes

__all__ = ["general_ttmc", "csf_ttmc_multi"]


def csf_ttmc_multi(
    csf: CSFTensor,
    factors: Sequence[np.ndarray],
    *,
    stats: Optional[KernelStats] = None,
) -> np.ndarray:
    """TTMc over all modes except the CSF root mode, per-mode factors.

    ``factors`` is indexed by *original* mode id; ``factors[root]`` is
    ignored. Returns the matricized result
    ``(dim, Π_{m≠root} R_m)`` with columns ordered by the CSF mode order
    (second CSF level slowest), matching the Kronecker flattening of the
    chain evaluated in that order.
    """
    order = csf.order
    if len(factors) != order:
        raise ValueError(f"need {order} factors, got {len(factors)}")
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    for mode, mat in enumerate(mats):
        if mat.ndim != 2 or mat.shape[0] != csf.dim:
            raise ValueError(f"factor {mode} must be ({csf.dim}, R_m)")
    trie = csf.trie
    # Budget requests currently held; all given back if a later request
    # raises, so an over-limit chain leaves the budget exactly as found.
    held: list[tuple[int, str]] = []

    def _request(nbytes: int, label: str) -> None:
        request_bytes(nbytes, label)
        held.append((nbytes, label))

    def _release(nbytes: int, label: str) -> None:
        release_bytes(nbytes, label)
        held.remove((nbytes, label))

    try:
        # CSF level d (0-based) carries original mode csf.mode_order[d].
        payload = segment_sum_by_ptr(csf.values[:, None], trie.child_ptr[order - 1])
        label = f"general CSF payload depth {order}"
        _request(payload.nbytes, label)
        for depth in range(order - 1, 0, -1):
            mode = csf.mode_order[depth]
            factor = mats[mode]
            rank = factor.shape[1]
            child_values = trie.values[depth]
            n_children = child_values.shape[0]
            width = payload.shape[1]
            contrib = (factor[child_values][:, :, None] * payload[:, None, :]).reshape(
                n_children, rank * width
            )
            if stats is not None:
                stats.add_level(order - depth + 1, n_children, n_children, rank * width)
            _release(payload.nbytes, label)
            payload = segment_sum_by_ptr(contrib, trie.child_ptr[depth - 1])
            label = f"general CSF payload depth {depth}"
            _request(payload.nbytes, label)

        out_cols = payload.shape[1]
        _request(csf.dim * out_cols * 8, "general Y full")
        out = np.zeros((csf.dim, out_cols), dtype=np.float64)
        out[trie.values[0]] = payload
        _release(payload.nbytes, label)
        # Release-on-handoff: ownership of the returned Y transfers to the
        # caller, so repeated calls under one budget don't drift.
        _release(csf.dim * out_cols * 8, "general Y full")
    except BaseException:
        for nbytes, label in held:
            release_bytes(nbytes, label)
        raise
    if stats is not None:
        stats.output_bytes = out.nbytes
    return out


def general_ttmc(
    tensor: COOTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    stats: Optional[KernelStats] = None,
) -> np.ndarray:
    """``Y_(mode) = X ×_{m≠mode} U_mᵀ`` for a general COO sparse tensor.

    Builds (or reuses via the tensor-attached cache) the CSF tree rooted at
    ``mode``. The returned matrix has columns linearized over the remaining
    modes *in ascending original-mode order* (row-major), independent of
    the internal CSF ordering, so it matches
    :func:`repro.formats.dense.unfold` of the dense chain.
    """
    order = tensor.order
    if not 0 <= mode < order:
        raise ValueError(f"mode {mode} out of range")
    cache = getattr(tensor, "_csf_cache", None)
    if cache is None:
        cache = {}
        setattr(tensor, "_csf_cache", cache)
    csf = cache.get(mode)
    if csf is None:
        rest = tuple(m for m in range(order) if m != mode)
        csf = CSFTensor(tensor, (mode,) + rest)
        cache[mode] = csf
    result = csf_ttmc_multi(csf, factors, stats=stats)
    # CSF mode order after the root is ascending already; nothing to permute.
    return result
