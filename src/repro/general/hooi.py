"""General (per-mode-factor) HOOI for sparse COO tensors.

The textbook HOOI of De Lathauwer et al. [13] with a distinct factor per
mode, running on the general CSF TTMc substrate. The symmetric algorithms
of :mod:`repro.decomp` are the specialization this library optimizes; the
general version exists as the substrate baseline and lets tests confirm
that feeding a symmetric tensor through the general machinery reproduces
the symmetric objective.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np
import scipy.linalg

from ..core.stats import KernelStats
from ..formats.coo import COOTensor
from ..runtime.context import ExecContext, resolve_context
from ..runtime.timer import PhaseTimer
from .ttmc import general_ttmc

__all__ = ["GeneralTuckerResult", "general_hooi"]


class GeneralTuckerResult:
    """Factors, core (full ndarray) and objective trace of general HOOI."""

    def __init__(
        self,
        factors: List[np.ndarray],
        core: np.ndarray,
        objective_trace: List[float],
        converged: bool,
        timer: PhaseTimer,
        stats: KernelStats,
        norm_x_squared: float,
    ):
        self.factors = factors
        self.core = core
        self.objective_trace = objective_trace
        self.converged = converged
        self.timer = timer
        self.stats = stats
        self.norm_x_squared = norm_x_squared

    @property
    def iterations(self) -> int:
        return len(self.objective_trace)

    @property
    def relative_error(self) -> float:
        if self.norm_x_squared <= 0:
            return 0.0
        f = max(self.objective_trace[-1], 0.0)
        return float(np.sqrt(f / self.norm_x_squared))


def _init_factors(
    tensor: COOTensor,
    ranks: Sequence[int],
    init: Union[str, Sequence[np.ndarray]],
    rng: np.random.Generator,
) -> List[np.ndarray]:
    if not isinstance(init, str):
        factors = [np.asarray(f, dtype=np.float64).copy() for f in init]
        if len(factors) != tensor.order:
            raise ValueError("need one init factor per mode")
        return factors
    if init != "random":
        raise ValueError(f"unknown init {init!r} (general HOOI supports 'random')")
    factors = []
    for _mode, rank in enumerate(ranks):
        gauss = rng.standard_normal((tensor.dim, rank))
        q, _ = np.linalg.qr(gauss)
        factors.append(q)
    return factors


def general_hooi(
    tensor: COOTensor,
    ranks: Union[int, Sequence[int]],
    *,
    max_iters: int = 50,
    tol: float = 1e-8,
    init: Union[str, Sequence[np.ndarray]] = "random",
    seed: Optional[int] = None,
    timer: Optional[PhaseTimer] = None,
    ctx: Optional[ExecContext] = None,
) -> GeneralTuckerResult:
    """Alternating least squares Tucker for a general sparse tensor.

    ``ranks`` may be one integer (same rank per mode) or a per-mode list.
    Each sweep updates every mode via the leading left singular vectors of
    the corresponding TTMc unfolding; the objective is
    ``‖X‖² − ‖C‖²`` with the core from the final mode of the sweep.
    ``ctx`` supplies the run's budget/collector/seed (ambient when
    ``None``) — same entry contract as the symmetric drivers, so bench
    comparisons are apples-to-apples.
    """
    ctx = resolve_context(ctx)
    order = tensor.order
    if isinstance(ranks, int):
        ranks = [ranks] * order
    ranks = list(ranks)
    if len(ranks) != order:
        raise ValueError(f"need {order} ranks")
    if any(not 1 <= r <= tensor.dim for r in ranks):
        raise ValueError("each rank must be in [1, dim]")
    if seed is None:
        seed = ctx.seed
    rng = np.random.default_rng(seed)
    timer = timer if timer is not None else PhaseTimer()
    stats = KernelStats()

    trace: List[float] = []
    converged = False
    prev = np.inf
    core: Optional[np.ndarray] = None
    with ctx.scope():
        with timer.phase("init"):
            factors = _init_factors(tensor, ranks, init, rng)
            norm_x_squared = tensor.norm_squared()

        for _sweep in range(max_iters):
            for mode in range(order):
                with timer.phase("ttmc"):
                    y = general_ttmc(tensor, factors, mode, stats=stats)
                with timer.phase("svd"):
                    u, _s, _vt = scipy.linalg.svd(y, full_matrices=False)
                    factors[mode] = u[:, : ranks[mode]].copy()
                if mode == order - 1:
                    with timer.phase("core"):
                        c_unfold = factors[mode].T @ y
                        core = c_unfold
            assert core is not None
            objective = norm_x_squared - float(np.sum(core**2))
            trace.append(objective)
            if prev - objective <= tol * max(norm_x_squared, 1e-300):
                converged = True
                break
            prev = objective

    # Reshape the final core unfolding (mode N-1 rooted) to the full core:
    # columns of c_unfold are modes 0..N-2 in row-major order.
    last = order - 1
    core_shape = tuple(ranks[m] for m in range(order) if m != last) + (ranks[last],)
    core_tensor = np.moveaxis(
        core.T.reshape(core_shape), -1, last
    )
    return GeneralTuckerResult(
        factors=factors,
        core=core_tensor,
        objective_trace=trace,
        converged=converged,
        timer=timer,
        stats=stats,
        norm_x_squared=norm_x_squared,
    )
