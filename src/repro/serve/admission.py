"""Memory-wall-aware admission control (decide before allocating).

The service refuses work it can *prove* will not fit, using the same
closed-form :mod:`repro.perfmodel.memory` accounting the paper uses to
explain its OOM columns — most importantly the SVD-side expansion of
``Y_p`` to the full ``I x R^{N-1}`` unfolding that walls HOOI under
``svd_method="expand"``. Prediction happens on the spec alone: a
rejected job never allocates a byte, never touches a backend, and the
caller gets a typed :class:`~repro.serve.jobs.QuotaExceededError`
carrying the exact predicted/limit numbers.
"""

from __future__ import annotations

from typing import Optional

from ..perfmodel.memory import kernel_footprint, worker_footprint
from .jobs import JobSpec, QuotaExceededError, TenantQuota

__all__ = ["predict_job_peak_bytes", "check_admission"]

_FLOAT = 8
_INT = 8

#: Kernel names whose lattice kernels share SymProp's compact-footprint
#: model (the exec-compiled kernels evaluate the same plan).
_COMPACT_KERNELS = {None, "generic", "symprop", "compiled", "compiled-v2"}


def predict_job_peak_bytes(
    spec: JobSpec,
    *,
    execution: str = "serial",
    n_workers: Optional[int] = None,
    sharding: str = "broadcast",
    nz_batch: int = 512,
) -> int:
    """Predicted peak resident bytes of running ``spec``.

    The sum of the operands the driver must hold (tensor + factor) and
    the dominant transient of the algorithm:

    * every kind pays the S3TTMc kernel footprint (compact output +
      per-batch lattice intermediates);
    * ``hooi`` with ``svd_method="expand"`` additionally pays the
      ``hooi-svd`` expansion — the full ``Y_(1)`` unfolding — which is
      the memory wall this admission gate exists to refuse;
    * parallel executions add each worker's resident footprint
      (broadcast: whole tensor per worker; owned: one shard per worker).

    This is a *model*, deliberately conservative and cheap (closed-form,
    no allocation): the enforced per-job budget catches anything the
    model missed at run time.
    """
    tensor = spec.tensor
    dim, order, unnz = int(tensor.dim), int(tensor.order), int(tensor.unnz)
    rank = spec.effective_rank
    operands = unnz * (order * _INT + _FLOAT) + dim * rank * _FLOAT

    family = "symprop" if spec.kernel in _COMPACT_KERNELS else "css"
    peak = kernel_footprint(
        family, dim, order, rank, unnz, nz_batch=nz_batch
    ).total
    if spec.kind == "hooi" and spec.svd_method == "expand":
        svd = kernel_footprint(
            "hooi-svd", dim, order, rank, unnz, nz_batch=nz_batch
        ).total
        peak = max(peak, svd)
    if execution in ("thread", "process") and (n_workers or 0) > 1:
        workers = int(n_workers)
        per_worker = worker_footprint(
            dim,
            order,
            rank,
            unnz,
            n_workers=workers,
            sharding=sharding,
            nz_batch=nz_batch,
        ).total
        peak = max(peak, workers * per_worker)
    return int(operands + peak)


def check_admission(
    spec: JobSpec,
    quota: TenantQuota,
    *,
    execution: str = "serial",
    n_workers: Optional[int] = None,
    sharding: str = "broadcast",
) -> int:
    """Admit ``spec`` under ``quota`` or raise a typed admission error.

    Returns the predicted peak bytes (recorded on the job for
    predicted-vs-measured reporting). Queue-depth limits are enforced by
    the service itself, which owns the queues.
    """
    predicted = predict_job_peak_bytes(
        spec, execution=execution, n_workers=n_workers, sharding=sharding
    )
    if quota.memory_bytes is not None and predicted > int(quota.memory_bytes):
        raise QuotaExceededError(spec.tenant, predicted, int(quota.memory_bytes))
    return predicted
