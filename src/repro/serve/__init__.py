"""Decomposition service front door (layer 9).

The multi-tenant job runtime over everything below it: submit
:class:`JobSpec`\\ s, get typed admission decisions before any
allocation, content-addressed cache hits for duplicate work, per-job
budget/deadline/cancel/trace isolation, and checkpointed
preemption/resume — in-process via :class:`DecompositionService`, or
over a socket via ``python -m repro.serve`` and :class:`ServeClient`.
See ``docs/serve.md``.
"""

from .admission import check_admission, predict_job_peak_bytes
from .cache import ResultCache, TensorInterner
from .client import ServeClient
from .jobs import (
    JOB_KINDS,
    AdmissionError,
    InvalidJobError,
    JobSpec,
    JobStatus,
    QueueFullError,
    QuotaExceededError,
    ServeError,
    ServiceClosedError,
    TenantQuota,
    UnknownJobError,
)
from .service import DecompositionService

__all__ = [
    "JOB_KINDS",
    "JobSpec",
    "JobStatus",
    "TenantQuota",
    "ServeError",
    "AdmissionError",
    "QuotaExceededError",
    "QueueFullError",
    "InvalidJobError",
    "UnknownJobError",
    "ServiceClosedError",
    "DecompositionService",
    "ServeClient",
    "ResultCache",
    "TensorInterner",
    "check_admission",
    "predict_job_peak_bytes",
]
