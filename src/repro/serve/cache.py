"""Content-addressed caches: finished results and interned tensors.

Both caches key on :func:`repro.core.plan.content_fingerprint` — the
full (dims, order, indices, values) digest — never on the pattern-only
plan stamp, so same-pattern/different-values tensors can never alias
(the bug the serve layer's admission of arbitrary tenant data exposed).

Two layers of reuse, in the spirit of SySTeC's compile-once-per-structure
model:

* :class:`TensorInterner` maps a content fingerprint to a canonical
  tensor *object*. Content-identical submissions resolve to the same
  object, so everything keyed on object identity or generation — the
  per-tensor plan memo, the shared :class:`~repro.runtime.context.PlanCache`,
  the process backend's shipped-tensor token — hits warm. A duplicate
  submission pays zero symbolic cost and zero re-shipping.
* :class:`ResultCache` maps ``(content fingerprint, driver config)`` to
  a finished result. Only deterministic specs participate (see
  :meth:`~repro.serve.jobs.JobSpec.deterministic`), so a cached answer
  is bit-identical to what rerunning the job would produce.

Both are bounded LRU and thread-safe (the service's worker threads
touch them from ``asyncio.to_thread``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple

from ..core.plan import content_fingerprint
from ..formats.ucoo import SparseSymmetricTensor

__all__ = ["TensorInterner", "ResultCache"]


class TensorInterner:
    """Canonicalize content-identical tensors to one object (bounded LRU)."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, SparseSymmetricTensor]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def intern(self, tensor: SparseSymmetricTensor) -> Tuple[str, SparseSymmetricTensor]:
        """Return ``(fingerprint, canonical tensor)`` for ``tensor``."""
        fingerprint = content_fingerprint(tensor)
        with self._lock:
            canonical = self._entries.get(fingerprint)
            if canonical is not None:
                self._entries.move_to_end(fingerprint)
                self.hits += 1
                return fingerprint, canonical
            self.misses += 1
            self._entries[fingerprint] = tensor
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return fingerprint, tensor

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class ResultCache:
    """Finished-result cache keyed on full content + config (bounded LRU)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: tuple, result: Any) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
