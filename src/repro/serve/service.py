"""The decomposition service: an asyncio job runtime over the runtime stack.

:class:`DecompositionService` is the front door ROADMAP item 1 asks for:
callers submit :class:`~repro.serve.jobs.JobSpec`\\ s and get job ids;
a fixed pool of scheduler slots executes them — each slot lending one
persistent :mod:`repro.parallel` backend to job after job, so process
workers (and their shipped operands and warmed plan caches) survive
across submissions instead of being rebuilt per call.

Isolation is the per-job derived :class:`~repro.runtime.context.ExecContext`:
every job runs under its **own** :class:`~repro.runtime.budget.MemoryBudget`
(limit = tenant quota), its own :class:`~repro.obs.trace.TraceCollector`,
its own cancel token (derived from a service root, so shutdown cascades),
its own deadline, and its own shm run token — a tenant tripping any of
those cannot disturb a sibling. Shared, deliberately: the
:class:`~repro.runtime.context.PlanCache` and the content-addressed
caches (:mod:`repro.serve.cache`), because plans and finished results
are pure functions of tensor content.

Admission (:mod:`repro.serve.admission`) runs at ``submit`` time, before
any allocation. Preemption reuses the checkpoint machinery: a preempted
decomposition saves its sweep state, goes back to the queue, and resumes
bit-for-bit — the same guarantee a killed run has.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.s3ttmc import s3ttmc
from ..decomp import hooi, hoqri
from ..obs.trace import TraceCollector
from ..parallel import shm as _shm
from ..parallel.backends import make_backend
from ..parallel.executor import parallel_s3ttmc
from ..runtime.budget import MemoryBudget
from ..runtime.context import ExecContext
from ..runtime.health import CancelToken, RunCancelledError
from .admission import check_admission
from .cache import ResultCache, TensorInterner
from .jobs import (
    JobSpec,
    JobStatus,
    QueueFullError,
    ServiceClosedError,
    TenantQuota,
    UnknownJobError,
)

__all__ = ["DecompositionService", "JobRecord"]

_SHUTDOWN = object()  # slot-loop sentinel


@dataclass
class JobRecord:
    """Internal per-job state (the public view is :class:`JobStatus`)."""

    job_id: str
    spec: JobSpec
    quota: TenantQuota
    fingerprint: str
    cache_key: Optional[tuple]
    predicted_peak_bytes: int
    state: str = "queued"
    cache_hit: bool = False
    preemptions: int = 0
    preempt_requested: bool = False
    result: Any = None
    error: Optional[BaseException] = None
    budget: Optional[MemoryBudget] = None
    collector: Optional[TraceCollector] = None
    cancel: Optional[CancelToken] = None
    attempt_cancel: Optional[CancelToken] = None
    checkpoint_dir: Optional[Path] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    followers: List["JobRecord"] = field(default_factory=list)

    def status(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            tenant=self.spec.tenant,
            kind=self.spec.kind,
            state=self.state,
            cache_hit=self.cache_hit,
            predicted_peak_bytes=self.predicted_peak_bytes,
            measured_peak_bytes=(
                int(self.budget.peak) if self.budget is not None else 0
            ),
            preemptions=self.preemptions,
            error_type=type(self.error).__name__ if self.error else None,
            error_message=str(self.error) if self.error else None,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
        )


class _PoolSlot:
    """One scheduler slot owning (at most) one persistent backend."""

    def __init__(self, slot_id: int) -> None:
        self.slot_id = slot_id
        self.backend = None
        self.task: Optional[asyncio.Task] = None

    def ensure_backend(self, execution: str, n_workers: Optional[int]):
        if execution == "serial":
            return None
        if self.backend is None:
            self.backend = make_backend(execution, n_workers)
        return self.backend

    def close_backend(self) -> None:
        backend, self.backend = self.backend, None
        if backend is not None:
            backend.close()


class DecompositionService:
    """Multi-tenant submit/status/result/cancel runtime for decompositions.

    Parameters
    ----------
    execution, n_workers:
        Execution mode every job runs under (``"serial"`` / ``"thread"``
        / ``"process"``) and the worker count per backend. One mode for
        the whole service keeps the result cache honest: all entries
        were produced by the same execution configuration.
    pool_size:
        Number of concurrently running jobs (scheduler slots). Each
        non-serial slot owns one persistent backend reused across jobs.
    quotas, default_quota:
        Per-tenant :class:`~repro.serve.jobs.TenantQuota` map and the
        quota applied to tenants not in it.
    cache_capacity:
        Bound on the finished-result LRU.
    spool_dir:
        Directory for per-job checkpoint spools (preemption/resume).
        Created lazily (a temp dir by default) and removed on close.
    """

    def __init__(
        self,
        *,
        execution: str = "serial",
        n_workers: Optional[int] = None,
        pool_size: int = 2,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        default_quota: Optional[TenantQuota] = None,
        cache_capacity: int = 128,
        spool_dir: Optional[str] = None,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if execution == "serial":
            n_workers = None
        self.execution = execution
        self.n_workers = n_workers
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.results = ResultCache(cache_capacity)
        self.interner = TensorInterner()
        self._base_ctx = ExecContext(execution=execution, n_workers=n_workers)
        self._root_cancel = CancelToken()
        self._slots = [_PoolSlot(i) for i in range(pool_size)]
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._records: Dict[str, JobRecord] = {}
        self._inflight: Dict[tuple, JobRecord] = {}
        self._seq = 0
        self._started = False
        self._closed = False
        self._spool_dir = Path(spool_dir) if spool_dir else None
        self._spool_is_temp = spool_dir is None
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "rejected": 0,
            "failed": 0,
            "cancelled": 0,
            "preemptions": 0,
            "budgets_undrained": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "DecompositionService":
        if self._started:
            return self
        self._started = True
        for slot in self._slots:
            slot.task = asyncio.create_task(
                self._slot_loop(slot), name=f"serve-slot-{slot.slot_id}"
            )
        return self

    async def __aenter__(self) -> "DecompositionService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self, *, drain: bool = True) -> Dict[str, int]:
        """Stop the service; returns the final counters.

        ``drain=True`` lets queued and running jobs finish first;
        ``drain=False`` cancels everything via the root cancel token.
        Either way the pool backends are closed, the spool removed, and
        hygiene counters (undrained budgets) finalized — the end-to-end
        tests assert zero leaked segments and drained budgets after this
        returns.
        """
        if self._closed:
            return dict(self.counters)
        self._closed = True
        if not drain:
            self._root_cancel.cancel("service shutdown")
            for record in self._records.values():
                if record.state == "queued":
                    self.counters["cancelled"] += 1
                    self._finish(record, "cancelled")
        if self._started:
            for _ in self._slots:
                self._queue.put_nowait(_SHUTDOWN)
            await asyncio.gather(
                *(slot.task for slot in self._slots if slot.task is not None)
            )
        for slot in self._slots:
            slot.close_backend()
        self._base_ctx.close()
        if self._spool_dir is not None and self._spool_is_temp:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
        return dict(self.counters)

    def hygiene(self) -> Dict[str, int]:
        """Post-hoc cleanliness counters (shutdown assertions live here)."""
        return {
            "budgets_undrained": self.counters["budgets_undrained"],
            "live_segments": len(_shm.live_segments()),
        }

    # -- submission --------------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    async def submit(self, spec: JobSpec) -> str:
        """Admit and enqueue ``spec``; returns the job id.

        Raises a typed :class:`~repro.serve.jobs.AdmissionError` —
        before any allocation — when the tenant's quota refuses the job
        (predicted peak too large, or queue full). Content-identical
        deterministic submissions are served from the result cache
        (``done`` immediately, ``cache_hit=True``) or coalesced onto an
        identical in-flight job.
        """
        if self._closed:
            raise ServiceClosedError("service is closed")
        spec.validate()
        quota = self.quota_for(spec.tenant)
        # Admission first: prediction is closed-form on the spec alone,
        # so a rejected job allocates nothing and touches no backend.
        try:
            predicted = check_admission(
                spec,
                quota,
                execution=self.execution,
                n_workers=self.n_workers,
            )
            queued = sum(
                1
                for r in self._records.values()
                if r.spec.tenant == spec.tenant and r.state == "queued"
            )
            if queued >= quota.max_queued:
                raise QueueFullError(spec.tenant, queued, quota.max_queued)
        except Exception:
            self.counters["rejected"] += 1
            raise
        # Intern the tensor: duplicates collapse to one object, so plan
        # memos, the shared PlanCache, and the process backend's
        # shipped-tensor generation all hit warm.
        fingerprint, tensor = self.interner.intern(spec.tensor)
        spec.tensor = tensor
        cacheable = spec.use_cache and spec.deterministic()
        cache_key = (fingerprint, spec.config_key()) if cacheable else None

        self._seq += 1
        record = JobRecord(
            job_id=f"job-{self._seq:06d}",
            spec=spec,
            quota=quota,
            fingerprint=fingerprint,
            cache_key=cache_key,
            predicted_peak_bytes=predicted,
        )
        self._records[record.job_id] = record
        self.counters["submitted"] += 1

        if cache_key is not None:
            cached = self.results.get(cache_key)
            if cached is not None:
                record.cache_hit = True
                record.result = cached
                self.counters["cache_hits"] += 1
                self._finish(record, "done")
                return record.job_id
            primary = self._inflight.get(cache_key)
            if primary is not None:
                # Identical job already queued/running: ride its result.
                primary.followers.append(record)
                self.counters["coalesced"] += 1
                return record.job_id
            self._inflight[cache_key] = record
        record.cancel = self._root_cancel.derive()
        self._queue.put_nowait(record)
        return record.job_id

    # -- job control -------------------------------------------------------

    def _record(self, job_id: str) -> JobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise UnknownJobError(job_id) from None

    def status(self, job_id: str) -> JobStatus:
        return self._record(job_id).status()

    async def result(self, job_id: str) -> Any:
        """Wait for the job and return its result (or raise its error)."""
        record = self._record(job_id)
        await record.done.wait()
        if record.state == "done":
            return record.result
        if record.error is not None:
            raise record.error
        raise RunCancelledError("job cancelled", site=f"serve.{job_id}")

    def cancel(self, job_id: str, reason: str = "cancelled by caller") -> bool:
        """Cancel a queued or running job; ``False`` if already finished."""
        record = self._record(job_id)
        if record.state == "queued":
            self._finish(record, "cancelled")
            self.counters["cancelled"] += 1
            return True
        if record.state == "running":
            record.preempt_requested = False
            if record.cancel is not None:
                record.cancel.cancel(reason)
            if record.attempt_cancel is not None:
                record.attempt_cancel.cancel(reason)
            return True
        return False

    def preempt(self, job_id: str) -> bool:
        """Checkpoint-preempt a running decomposition; it requeues and
        resumes bit-for-bit. Kernel jobs (no checkpoint state) are not
        preemptible. ``False`` if the job is not running."""
        record = self._record(job_id)
        if record.state != "running" or record.spec.kind == "s3ttmc":
            return False
        record.preempt_requested = True
        if record.attempt_cancel is not None:
            record.attempt_cancel.cancel("preempted by service")
        return True

    # -- execution ---------------------------------------------------------

    def _finish(self, record: JobRecord, state: str) -> None:
        record.state = state
        record.finished_at = time.time()
        if record.cache_key is not None:
            if self._inflight.get(record.cache_key) is record:
                del self._inflight[record.cache_key]
        if record.checkpoint_dir is not None:
            shutil.rmtree(record.checkpoint_dir, ignore_errors=True)
            record.checkpoint_dir = None
        record.done.set()
        self._fulfill_followers(record)

    def _fulfill_followers(self, record: JobRecord) -> None:
        followers, record.followers = record.followers, []
        for follower in followers:
            if follower.state != "queued":
                continue
            if record.state == "done":
                follower.cache_hit = True
                follower.result = record.result
                self.counters["cache_hits"] += 1
                self._finish(follower, "done")
            else:
                # The primary failed or was cancelled; run the duplicate
                # on its own (its spec was independently admitted).
                if follower.cache_key is not None:
                    self._inflight.setdefault(follower.cache_key, follower)
                follower.cancel = self._root_cancel.derive()
                self._queue.put_nowait(follower)

    def _spool_for(self, record: JobRecord) -> Optional[Path]:
        if record.spec.kind == "s3ttmc":
            return None
        if self._spool_dir is None:
            self._spool_dir = Path(
                tempfile.mkdtemp(prefix="repro-serve-spool-")
            )
        path = self._spool_dir / record.job_id
        path.mkdir(parents=True, exist_ok=True)
        return path

    async def _slot_loop(self, slot: _PoolSlot) -> None:
        while True:
            record = await self._queue.get()
            if record is _SHUTDOWN:
                return
            if record.state != "queued":  # cancelled while waiting
                continue
            await self._run_record(record, slot)

    async def _run_record(self, record: JobRecord, slot: _PoolSlot) -> None:
        spec = record.spec
        record.state = "running"
        record.started_at = record.started_at or time.time()
        # Fresh isolation per attempt, shared plans via the base context.
        record.budget = MemoryBudget(limit_bytes=record.quota.memory_bytes)
        record.collector = TraceCollector()
        record.attempt_cancel = (record.cancel or self._root_cancel).derive()
        deadline = spec.deadline_seconds or record.quota.deadline_seconds
        ctx = self._base_ctx.derive(
            budget=record.budget,
            collector=record.collector,
            seed=spec.seed,
            deadline_seconds=deadline,
            cancel=record.attempt_cancel,
        )
        record.checkpoint_dir = record.checkpoint_dir or self._spool_for(record)
        backend = slot.ensure_backend(self.execution, self.n_workers)
        if backend is not None:
            ctx.adopt_backend(backend)
        try:
            result = await asyncio.to_thread(self._execute_sync, record, ctx)
        except RunCancelledError as exc:
            if record.preempt_requested:
                record.preempt_requested = False
                record.preemptions += 1
                self.counters["preemptions"] += 1
                record.state = "queued"
                self._queue.put_nowait(record)  # resumes from checkpoint
            else:
                record.error = exc
                self.counters["cancelled"] += 1
                self._finish(record, "cancelled")
        except BaseException as exc:
            record.error = exc
            self.counters["failed"] += 1
            self._finish(record, "failed")
        else:
            record.result = result
            self.counters["completed"] += 1
            if record.cache_key is not None:
                self.results.put(record.cache_key, result)
            self._finish(record, "done")
        finally:
            # The backend belongs to the slot, not the job: detach it so
            # nothing tears down a pool backend mid-service.
            ctx.release_backend()
            if record.budget is not None:
                # Plan-cache lattice bytes are tensor-lifetime by design
                # (memoized on the tensor, shared across jobs) — the same
                # convention the chaos harness uses; anything else still
                # held is a real drain failure.
                residual = {
                    label: nbytes
                    for label, nbytes in record.budget.allocations.items()
                    if not label.startswith("lattice level")
                }
                if residual:
                    self.counters["budgets_undrained"] += 1

    def _execute_sync(self, record: JobRecord, ctx: ExecContext) -> Any:
        """Run one job on the worker thread (the only non-loop code)."""
        spec = record.spec
        if spec.kind == "s3ttmc":
            factor = np.ascontiguousarray(spec.factor, dtype=np.float64)
            if ctx.execution == "serial":
                return s3ttmc(spec.tensor, factor, ctx=ctx, **spec.driver_kwargs())
            return parallel_s3ttmc(
                spec.tensor, factor, ctx=ctx, **spec.driver_kwargs()
            )
        driver = hooi if spec.kind == "hooi" else hoqri
        kwargs = spec.driver_kwargs()
        if record.checkpoint_dir is not None:
            kwargs.update(
                checkpoint_dir=record.checkpoint_dir,
                checkpoint_every=1,
                resume=record.preemptions > 0,
            )
        return driver(spec.tensor, int(spec.rank), ctx=ctx, **kwargs)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        states: Dict[str, int] = {}
        for record in self._records.values():
            states[record.state] = states.get(record.state, 0) + 1
        return {
            "counters": dict(self.counters),
            "states": states,
            "result_cache": {
                "size": len(self.results),
                "hits": self.results.hits,
                "misses": self.results.misses,
            },
            "interner": {
                "size": len(self.interner),
                "hits": self.interner.hits,
                "misses": self.interner.misses,
            },
            "pool": {
                "size": len(self._slots),
                "execution": self.execution,
                "n_workers": self.n_workers,
            },
            "hygiene": self.hygiene(),
        }
