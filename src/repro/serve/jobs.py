"""Job specifications, tenant quotas, and the serve error taxonomy.

A :class:`JobSpec` is everything the service needs to run one unit of
work — a full decomposition (``hooi`` / ``hoqri``) or a single kernel
invocation (``s3ttmc``) — on behalf of one tenant. Specs are plain data:
they carry the tensor and the exact driver configuration, so a completed
job is reproducible by calling the underlying driver directly with the
same arguments (the end-to-end tests assert bitwise equality).

Errors follow the runtime's typed-taxonomy convention
(:mod:`repro.runtime.health`): everything the service raises derives
from :class:`ServeError`, and admission refusals — the decisions made
*before* any allocation — derive from :class:`AdmissionError` so callers
can distinguish "never started" from "started and failed".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor

__all__ = [
    "JOB_KINDS",
    "JobSpec",
    "JobStatus",
    "TenantQuota",
    "ServeError",
    "AdmissionError",
    "QuotaExceededError",
    "QueueFullError",
    "InvalidJobError",
    "UnknownJobError",
    "ServiceClosedError",
]

#: Job kinds the service knows how to execute.
JOB_KINDS = ("s3ttmc", "hooi", "hoqri")


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class ServeError(RuntimeError):
    """Base class for every error the serve layer raises."""


class AdmissionError(ServeError):
    """A job was refused at submission time, before any allocation."""


class QuotaExceededError(AdmissionError):
    """Predicted peak memory exceeds the tenant's quota.

    Raised by :func:`repro.serve.admission.check_admission` from the
    closed-form :mod:`repro.perfmodel` footprints — the job never
    allocates a byte.
    """

    def __init__(self, tenant: str, predicted_bytes: int, limit_bytes: int) -> None:
        self.tenant = tenant
        self.predicted_bytes = int(predicted_bytes)
        self.limit_bytes = int(limit_bytes)
        super().__init__(
            f"tenant {tenant!r}: predicted peak {self.predicted_bytes} B "
            f"exceeds quota {self.limit_bytes} B"
        )


class QueueFullError(AdmissionError):
    """The tenant already has ``max_queued`` jobs waiting."""

    def __init__(self, tenant: str, queued: int, limit: int) -> None:
        self.tenant = tenant
        self.queued = int(queued)
        self.limit = int(limit)
        super().__init__(
            f"tenant {tenant!r}: {queued} jobs queued (limit {limit})"
        )


class InvalidJobError(ServeError, ValueError):
    """The spec is malformed (unknown kind, missing rank/factor, ...)."""


class UnknownJobError(ServeError, KeyError):
    """No job with that id (never submitted, or already evicted)."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"unknown job {job_id!r}")


class ServiceClosedError(ServeError):
    """The service is shutting down and accepts no new work."""


# ---------------------------------------------------------------------------
# Quotas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``memory_bytes`` caps the *predicted* peak of any single job (and
    becomes the job's enforced :class:`~repro.runtime.budget.MemoryBudget`
    limit); ``None`` admits anything and runs accounting-only.
    ``max_queued`` bounds the tenant's waiting jobs.
    ``deadline_seconds`` is the default wall-clock deadline applied to
    the tenant's jobs when the spec carries none.
    """

    memory_bytes: Optional[int] = None
    max_queued: int = 32
    deadline_seconds: Optional[float] = None


# ---------------------------------------------------------------------------
# Job specification
# ---------------------------------------------------------------------------


@dataclass
class JobSpec:
    """One unit of work: a decomposition or a kernel call for a tenant.

    ``kind`` selects the driver: ``"hooi"`` / ``"hoqri"`` need ``rank``;
    ``"s3ttmc"`` needs ``factor``. Remaining fields mirror the driver
    keyword arguments one-for-one, so a spec is exactly reproducible by
    a direct call. ``use_cache=False`` opts a submission out of the
    content-addressed result cache (it still populates neither).
    """

    kind: str
    tensor: SparseSymmetricTensor
    rank: Optional[int] = None
    factor: Optional[np.ndarray] = None
    tenant: str = "default"
    kernel: Optional[str] = None  # driver default when None
    memoize: str = "global"
    max_iters: Optional[int] = None  # driver default when None
    tol: float = 1e-8
    init: str = "random"
    seed: Optional[int] = None
    svd_method: str = "expand"  # hooi only
    deadline_seconds: Optional[float] = None
    use_cache: bool = True

    def validate(self) -> None:
        if self.kind not in JOB_KINDS:
            raise InvalidJobError(
                f"unknown job kind {self.kind!r}; expected one of {JOB_KINDS}"
            )
        if not isinstance(self.tensor, SparseSymmetricTensor):
            raise InvalidJobError(
                "tensor must be a SparseSymmetricTensor, got "
                f"{type(self.tensor).__name__}"
            )
        if self.kind == "s3ttmc":
            if self.factor is None:
                raise InvalidJobError("s3ttmc jobs require a factor matrix")
            factor = np.asarray(self.factor)
            if factor.ndim != 2 or factor.shape[0] != self.tensor.dim:
                raise InvalidJobError(
                    f"factor shape {factor.shape} does not match tensor dim "
                    f"{self.tensor.dim}"
                )
        else:
            if self.rank is None or int(self.rank) < 1:
                raise InvalidJobError(f"{self.kind} jobs require rank >= 1")

    @property
    def effective_rank(self) -> int:
        """Target rank (the factor's column count for kernel jobs)."""
        if self.kind == "s3ttmc":
            return int(np.asarray(self.factor).shape[1])
        return int(self.rank)

    def deterministic(self) -> bool:
        """Whether two runs of this spec are guaranteed bit-identical.

        Kernel jobs always are (no randomness); decomposition jobs are
        once the initialization is pinned — an explicit seed, or a
        deterministic init like ``"hosvd"``. Non-deterministic jobs are
        never served from (nor stored into) the result cache: two
        seedless submissions are *allowed* to differ, so aliasing them
        would silently change semantics.
        """
        if self.kind == "s3ttmc":
            return True
        return self.seed is not None or self.init != "random"

    def config_key(self) -> Tuple:
        """Hashable driver configuration (everything but the tensor)."""
        factor_part: Optional[bytes] = None
        if self.factor is not None:
            factor_part = np.ascontiguousarray(
                self.factor, dtype=np.float64
            ).tobytes()
        return (
            self.kind,
            self.rank,
            factor_part,
            self.kernel,
            self.memoize,
            self.max_iters,
            float(self.tol),
            self.init,
            self.seed,
            self.svd_method if self.kind == "hooi" else None,
        )

    def driver_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for the underlying driver call."""
        if self.kind == "s3ttmc":
            kwargs: Dict[str, Any] = {"memoize": self.memoize}
            if self.kernel is not None:
                kwargs["kernel"] = self.kernel
            return kwargs
        kwargs = {
            "tol": float(self.tol),
            "init": self.init,
            "seed": self.seed,
            "memoize": self.memoize,
        }
        if self.kernel is not None:
            kwargs["kernel"] = self.kernel
        if self.max_iters is not None:
            kwargs["max_iters"] = int(self.max_iters)
        if self.kind == "hooi":
            kwargs["svd_method"] = self.svd_method
        return kwargs


# ---------------------------------------------------------------------------
# Job status snapshots
# ---------------------------------------------------------------------------

#: Job lifecycle states. ``queued → running → done|failed|cancelled``;
#: a preempted job transits ``running → queued`` and counts a preemption.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass
class JobStatus:
    """Point-in-time public view of one job (safe to serialize)."""

    job_id: str
    tenant: str
    kind: str
    state: str
    cache_hit: bool = False
    predicted_peak_bytes: int = 0
    measured_peak_bytes: int = 0
    preemptions: int = 0
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "state": self.state,
            "cache_hit": self.cache_hit,
            "predicted_peak_bytes": self.predicted_peak_bytes,
            "measured_peak_bytes": self.measured_peak_bytes,
            "preemptions": self.preemptions,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
