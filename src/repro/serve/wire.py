"""JSON wire codecs for the serve daemon protocol.

The daemon speaks JSON-lines over TCP: one request object per line, one
response object per line. These helpers convert between
:class:`~repro.serve.jobs.JobSpec` / driver results and plain
JSON-serializable dicts. Tensors cross the wire as explicit
``{order, dim, indices, values}`` payloads — fine for the service's
interactive/smoke uses; bulk ingest should go through the in-process
API.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor
from .jobs import JobSpec

__all__ = ["spec_to_wire", "spec_from_wire", "result_to_wire"]

_SPEC_SCALARS = (
    "kind",
    "rank",
    "tenant",
    "kernel",
    "memoize",
    "max_iters",
    "tol",
    "init",
    "seed",
    "svd_method",
    "deadline_seconds",
    "use_cache",
)


def spec_to_wire(spec: JobSpec) -> Dict[str, Any]:
    """Encode a :class:`JobSpec` (tensor included) as a JSON-safe dict."""
    payload: Dict[str, Any] = {
        name: getattr(spec, name) for name in _SPEC_SCALARS
    }
    payload["tensor"] = {
        "order": int(spec.tensor.order),
        "dim": int(spec.tensor.dim),
        "indices": np.asarray(spec.tensor.indices).tolist(),
        "values": np.asarray(spec.tensor.values).tolist(),
    }
    if spec.factor is not None:
        payload["factor"] = np.asarray(spec.factor).tolist()
    return payload


def spec_from_wire(payload: Dict[str, Any]) -> JobSpec:
    """Decode a :func:`spec_to_wire` payload back into a :class:`JobSpec`."""
    tensor_payload = payload["tensor"]
    tensor = SparseSymmetricTensor(
        int(tensor_payload["order"]),
        int(tensor_payload["dim"]),
        np.asarray(tensor_payload["indices"], dtype=np.int64),
        np.asarray(tensor_payload["values"], dtype=np.float64),
        assume_canonical=True,
    )
    kwargs: Dict[str, Any] = {
        name: payload[name] for name in _SPEC_SCALARS if name in payload
    }
    factor = payload.get("factor")
    if factor is not None:
        factor = np.asarray(factor, dtype=np.float64)
    return JobSpec(tensor=tensor, factor=factor, **kwargs)


def result_to_wire(kind: str, result: Any) -> Dict[str, Any]:
    """Serialize a driver result for the daemon's ``result`` reply."""
    if kind == "s3ttmc":
        data = np.asarray(result.data)
        return {
            "kind": kind,
            "data": data.tolist(),
            "shape": list(data.shape),
            "checksum": float(data.sum()),
        }
    return {
        "kind": kind,
        "factor": np.asarray(result.factor).tolist(),
        "relative_error": float(result.relative_error),
        "converged": bool(result.converged),
        "algorithm": result.algorithm,
    }
