"""Small blocking client for the serve daemon (JSON-lines over TCP).

One request per connection: simple, stateless, and safe to use from
multiple threads or processes at once — exactly what the CI smoke
driver and tests need. For high-rate use, talk to
:class:`~repro.serve.service.DecompositionService` in-process instead.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional

from .jobs import JobSpec
from .wire import spec_to_wire

__all__ = ["ServeClient", "RemoteServeError"]


class RemoteServeError(RuntimeError):
    """A daemon-side error reply. ``error`` is the remote class name."""

    def __init__(self, error: str, message: str) -> None:
        self.error = error
        super().__init__(f"{error}: {message}")


class ServeClient:
    """Blocking client for the serve daemon: one TCP connection per
    request, one JSON line each way. Methods mirror the daemon ops
    (``ping`` … ``shutdown``); an ``ok=False`` reply raises
    :class:`RemoteServeError` carrying the remote error class name."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and return the daemon's reply (raises
        :class:`RemoteServeError` on an ``ok=False`` reply)."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            sock.sendall(json.dumps(payload).encode() + b"\n")
            with sock.makefile("rb") as stream:
                line = stream.readline()
        if not line:
            raise RemoteServeError("ConnectionClosed", "no reply from daemon")
        reply = json.loads(line)
        if not reply.get("ok"):
            raise RemoteServeError(
                reply.get("error", "UnknownError"), reply.get("message", "")
            )
        return reply

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        return self.request({"op": "submit", "spec": spec_to_wire(spec)})

    def status(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "status", "job_id": job_id})["status"]

    def result(self, job_id: str) -> Dict[str, Any]:
        return self.request({"op": "result", "job_id": job_id})

    def cancel(self, job_id: str) -> bool:
        return bool(self.request({"op": "cancel", "job_id": job_id})["cancelled"])

    def preempt(self, job_id: str) -> bool:
        return bool(self.request({"op": "preempt", "job_id": job_id})["preempted"])

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self, *, drain: bool = True) -> Dict[str, Any]:
        return self.request({"op": "shutdown", "drain": drain})


def connect_from_banner(banner: str, *, timeout: float = 60.0) -> Optional[ServeClient]:
    """Parse ``serve: listening on HOST:PORT`` into a client."""
    marker = "serve: listening on "
    if marker not in banner:
        return None
    address = banner.split(marker, 1)[1].strip()
    host, _, port = address.rpartition(":")
    return ServeClient(host, int(port), timeout=timeout)
