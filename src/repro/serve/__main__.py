"""The serve daemon: ``python -m repro.serve`` (JSON-lines over TCP).

Boots a :class:`~repro.serve.service.DecompositionService`, binds a TCP
listener, and prints ``serve: listening on HOST:PORT`` once ready (with
``--port 0`` the OS picks the port — parse it from that line, as
``tools/serve_smoke.py`` does). Each connection may send any number of
newline-delimited JSON requests; every request gets exactly one
newline-delimited JSON response with an ``ok`` flag. Typed failures
carry the error class name, so clients can distinguish a
``QuotaExceededError`` admission refusal from a runtime failure.

Ops: ``ping``, ``submit`` (spec payload; see
:mod:`repro.serve.wire`), ``status``, ``result`` (blocks until the job
finishes), ``cancel``, ``preempt``, ``stats``, ``shutdown`` (drains,
closes the pool, replies with final counters + hygiene, exits).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, Optional

from .jobs import ServeError, TenantQuota
from .service import DecompositionService
from .wire import result_to_wire, spec_from_wire


def _parse_quota(text: str) -> tuple:
    # "tenant=BYTES" (admission + budget limit for that tenant)
    tenant, _, raw = text.partition("=")
    if not tenant or not raw:
        raise argparse.ArgumentTypeError(
            f"expected TENANT=BYTES, got {text!r}"
        )
    return tenant, TenantQuota(memory_bytes=int(raw))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Decomposition service daemon (JSON-lines over TCP).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = OS-assigned")
    parser.add_argument(
        "--execution", default="serial", choices=["serial", "thread", "process"]
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--pool", type=int, default=2, help="scheduler slots")
    parser.add_argument(
        "--quota",
        action="append",
        type=_parse_quota,
        default=[],
        metavar="TENANT=BYTES",
        help="per-tenant memory quota (repeatable)",
    )
    parser.add_argument(
        "--default-quota-bytes",
        type=int,
        default=None,
        help="memory quota for tenants without an explicit --quota",
    )
    parser.add_argument("--cache-capacity", type=int, default=128)
    parser.add_argument("--spool-dir", default=None)
    return parser


class _Daemon:
    def __init__(self, service: DecompositionService) -> None:
        self.service = service
        self.shutdown = asyncio.Event()
        self.final: Optional[Dict[str, Any]] = None

    async def handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        service = self.service
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "submit":
            spec = spec_from_wire(request["spec"])
            job_id = await service.submit(spec)
            status = service.status(job_id)
            return {"ok": True, "job_id": job_id, "state": status.state,
                    "cache_hit": status.cache_hit}
        if op == "status":
            return {"ok": True, "status": service.status(request["job_id"]).to_dict()}
        if op == "result":
            job_id = request["job_id"]
            result = await service.result(job_id)
            status = service.status(job_id)
            return {
                "ok": True,
                "status": status.to_dict(),
                "result": result_to_wire(status.kind, result),
            }
        if op == "cancel":
            return {"ok": True, "cancelled": service.cancel(request["job_id"])}
        if op == "preempt":
            return {"ok": True, "preempted": service.preempt(request["job_id"])}
        if op == "stats":
            return {"ok": True, "stats": service.stats()}
        if op == "shutdown":
            counters = await service.close(drain=request.get("drain", True))
            reply = {
                "ok": True,
                "counters": counters,
                "hygiene": service.hygiene(),
            }
            self.final = reply
            self.shutdown.set()
            return reply
        return {"ok": False, "error": "ProtocolError", "message": f"unknown op {op!r}"}

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    response = await self.handle_request(request)
                except ServeError as exc:
                    response = {
                        "ok": False,
                        "error": type(exc).__name__,
                        "message": str(exc),
                    }
                except Exception as exc:  # malformed request / job failure
                    response = {
                        "ok": False,
                        "error": type(exc).__name__,
                        "message": str(exc),
                    }
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if self.shutdown.is_set():
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


async def amain(argv=None) -> int:
    args = build_parser().parse_args(argv)
    service = DecompositionService(
        execution=args.execution,
        n_workers=args.workers,
        pool_size=args.pool,
        quotas=dict(args.quota),
        default_quota=TenantQuota(memory_bytes=args.default_quota_bytes),
        cache_capacity=args.cache_capacity,
        spool_dir=args.spool_dir,
    )
    await service.start()
    daemon = _Daemon(service)
    server = await asyncio.start_server(
        daemon.handle_connection, host=args.host, port=args.port
    )
    host, port = server.sockets[0].getsockname()[:2]
    print(f"serve: listening on {host}:{port}", flush=True)
    try:
        await daemon.shutdown.wait()
    finally:
        server.close()
        await server.wait_closed()
        if not service._closed:
            await service.close()
    hygiene = daemon.final["hygiene"] if daemon.final else service.hygiene()
    print(
        "serve: shutdown clean "
        f"(budgets_undrained={hygiene['budgets_undrained']}, "
        f"live_segments={hygiene['live_segments']})",
        flush=True,
    )
    return 0 if hygiene["budgets_undrained"] == 0 else 1


def main(argv=None) -> int:
    try:
        return asyncio.run(amain(argv))
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 130


if __name__ == "__main__":
    sys.exit(main())
