"""TTMc-SPLATT baseline: general CSF tensor-times-matrix-chain.

Smith & Karypis's CSF TTMc, symmetry-blind: operates on the *expanded*
non-zero set (all distinct permutations), memoizing partial Kronecker
products on the CSF fiber tree. For a symmetric input this pays the full
``N!``-factor expansion in both time and memory — which is why SPLATT wins
on low orders (tight tree, BLAS-friendly) but is the first to go OOM as
order grows (Figs. 4–5).

Mode-0 output only: for a symmetric tensor the product over all modes but
one is the same for any mode (Eq. 2), so HOOI needs just one unfolding.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core._segment import segment_sum_by_ptr
from ..core.stats import KernelStats
from ..formats.csf import CSFTensor
from ..formats.ucoo import SparseSymmetricTensor
from ..runtime.context import ExecContext, resolve_context

__all__ = ["splatt_ttmc", "csf_ttmc"]


def csf_ttmc(
    csf: CSFTensor,
    factor: np.ndarray,
    *,
    stats: Optional[KernelStats] = None,
    ctx: Optional[ExecContext] = None,
) -> np.ndarray:
    """TTMc over all modes except the CSF root mode.

    Bottom-up over the fiber tree: the payload of a depth-``d`` node is the
    accumulated Kronecker product over modes below it; combining a child at
    depth ``d+1`` with index value ``v`` contributes
    ``kron(U[v, :], payload(child))``. Root payloads are the rows of the
    full ``Y_(root mode) ∈ R^{I × R^{N-1}}``.
    """
    ctx = resolve_context(ctx)
    factor = np.asarray(factor, dtype=np.float64)
    if factor.ndim != 2 or factor.shape[0] != csf.dim:
        raise ValueError(f"factor must be ({csf.dim}, R), got {factor.shape}")
    rank = factor.shape[1]
    order = csf.order
    trie = csf.trie

    # Budget requests currently held; released wholesale if any later,
    # larger request trips the limit so callers never see stranded bytes.
    held: list[tuple[int, str]] = []

    def _request(nbytes: int, label: str) -> None:
        ctx.request_bytes(nbytes, label)
        held.append((nbytes, label))

    def _release(nbytes: int, label: str) -> None:
        ctx.release_bytes(nbytes, label)
        held.remove((nbytes, label))

    try:
        # Deepest level: one node per expanded non-zero (coords are unique);
        # payload = scalar value.
        payload = segment_sum_by_ptr(csf.values[:, None], trie.child_ptr[order - 1])
        payload_label = f"CSF payload depth {order}"
        _request(payload.nbytes, payload_label)
        for depth in range(order - 1, 0, -1):
            child_values = trie.values[depth]  # nodes at depth+1 (0-based list)
            n_children = child_values.shape[0]
            width = payload.shape[1]
            contrib_label = f"CSF contrib depth {depth}"
            _request(n_children * rank * width * 8, contrib_label)
            contrib = (factor[child_values][:, :, None] * payload[:, None, :]).reshape(
                n_children, rank * width
            )
            if stats is not None:
                stats.add_level(order - depth + 1, n_children, n_children, rank * width)
            _release(payload.nbytes, payload_label)
            payload = segment_sum_by_ptr(contrib, trie.child_ptr[depth - 1])
            payload_label = f"CSF payload depth {depth}"
            _request(payload.nbytes, payload_label)
            _release(contrib.nbytes, contrib_label)

        root_values = trie.values[0]
        out_cols = rank ** (order - 1)
        _request(csf.dim * out_cols * 8, "Y (SPLATT full)")
        out = np.zeros((csf.dim, out_cols), dtype=np.float64)
        out[root_values] = payload
        _release(payload.nbytes, payload_label)
        # Release-on-handoff (same convention as lattice_ttmc): ownership
        # of the returned Y transfers to the caller, so repeated calls
        # under one budget don't drift the accounting.
        _release(csf.dim * out_cols * 8, "Y (SPLATT full)")
    except BaseException:
        for nbytes, label in held:
            ctx.release_bytes(nbytes, label)
        raise
    if stats is not None:
        stats.output_bytes = out.nbytes
    return out


def splatt_ttmc(
    tensor: SparseSymmetricTensor,
    factor: np.ndarray,
    *,
    stats: Optional[KernelStats] = None,
    ctx: Optional[ExecContext] = None,
) -> np.ndarray:
    """End-to-end SPLATT pipeline from a symmetric tensor.

    Expands permutations, builds CSF, runs TTMc — accounting every
    allocation, so the expansion is where this baseline hits the memory
    budget first.
    """
    ctx = resolve_context(ctx)
    with ctx.scope():
        expanded = tensor.expand()
        exp_bytes = expanded.indices.nbytes + expanded.values.nbytes
        try:
            csf = CSFTensor(expanded)
        except BaseException:
            ctx.release_bytes(exp_bytes, "expanded COO")
            raise
        try:
            return csf_ttmc(csf, factor, stats=stats, ctx=ctx)
        finally:
            # The CSF (and the expansion feeding it) is rebuilt per call;
            # releasing here keeps repeated calls — and OOM-aborted ones —
            # from drifting the budget.
            csf.release_structure()
            ctx.release_bytes(exp_bytes, "expanded COO")
