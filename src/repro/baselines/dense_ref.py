"""Dense einsum reference implementations (ground truth for tests).

Materializes the full tensor and applies textbook definitions. Only viable
for tiny problems; every sparse kernel in the library is validated against
these on small random inputs.
"""

from __future__ import annotations

import numpy as np

from ..formats.dense import ttm, ttmc_all_but_one, unfold
from ..formats.ucoo import SparseSymmetricTensor

__all__ = [
    "dense_s3ttmc",
    "dense_s3ttmc_matrix",
    "dense_core",
    "dense_s3ttmc_tc",
]


def dense_s3ttmc(tensor: SparseSymmetricTensor, factor: np.ndarray) -> np.ndarray:
    """Full order-``N`` result of ``X ×₂ Uᵀ … ×_N Uᵀ`` (Eq. 2)."""
    return ttmc_all_but_one(tensor.to_dense(), np.asarray(factor, dtype=np.float64), 0)


def dense_s3ttmc_matrix(tensor: SparseSymmetricTensor, factor: np.ndarray) -> np.ndarray:
    """Matricized ``Y_(1) ∈ R^{I × R^{N-1}}``."""
    return unfold(dense_s3ttmc(tensor, factor), 0)


def dense_core(tensor: SparseSymmetricTensor, factor: np.ndarray) -> np.ndarray:
    """Full core ``C = X ×₁ Uᵀ … ×_N Uᵀ`` as an order-``N`` ndarray."""
    y = dense_s3ttmc(tensor, factor)
    return ttm(y, np.asarray(factor, dtype=np.float64), 0)


def dense_s3ttmc_tc(tensor: SparseSymmetricTensor, factor: np.ndarray) -> np.ndarray:
    """Reference ``A = Y_(1) C_(1)ᵀ ∈ R^{I × R}``."""
    y1 = dense_s3ttmc_matrix(tensor, factor)
    c1 = unfold(dense_core(tensor, factor), 0)
    return y1 @ c1.T
