"""Original HOQRI n-ary contraction baseline (Sun & Huang [14]).

Computes the HOQRI update ``A = Y_(1) C_(1)ᵀ`` directly from the expanded
non-zero set, one entry at a time, with *no* intermediate tensors and no
memoization: for each expanded non-zero ``(i_1, …, i_N)`` with value ``x``,

``A(i_1, :) += x · C_(1) · (U(i_2,:) ⊗ … ⊗ U(i_N,:))``.

Cost ``O(R^N · nnz) = O(R^N · N! · unnz)`` — asymptotically the worst of the
kernel family (Table II), but with the smallest working set. We vectorize
over chunks of expanded non-zeros while preserving the per-entry flop count.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core._segment import scatter_add_rows
from ..core.stats import KernelStats
from ..formats.partial_sym import PartiallySymmetricTensor
from ..formats.ucoo import SparseSymmetricTensor
from ..runtime.context import ExecContext, resolve_context
from ..symmetry.permutations import expand_iou

__all__ = ["nary_ttmc_tc", "nary_hoqri_step"]

_DEFAULT_CHUNK = 8192


def nary_ttmc_tc(
    tensor: SparseSymmetricTensor,
    factor: np.ndarray,
    core: PartiallySymmetricTensor,
    *,
    stats: Optional[KernelStats] = None,
    chunk: int = _DEFAULT_CHUNK,
    ctx: Optional[ExecContext] = None,
) -> np.ndarray:
    """``A ∈ R^{I×R}`` via per-non-zero n-ary contraction.

    Parameters
    ----------
    tensor:
        Sparse symmetric input.
    factor:
        ``U`` of shape ``(I, R)``.
    core:
        Core tensor in compact partially symmetric form; expanded to the
        full ``C_(1) ∈ R^{R × R^{N-1}}`` internally (the original algorithm
        stores the full core).
    chunk:
        Number of expanded non-zeros processed per vectorized block.
    """
    ctx = resolve_context(ctx)
    factor = np.asarray(factor, dtype=np.float64)
    order = tensor.order
    rank = factor.shape[1]
    if factor.shape[0] != tensor.dim:
        raise ValueError(f"factor must be ({tensor.dim}, R)")
    if core.sym_dim != rank or core.nrows != rank or core.sym_order != order - 1:
        raise ValueError("core shape does not match tensor/factor")

    with ctx.scope():
        c1 = core.to_full_unfolding()  # (R, R^{N-1}); budget-accounted
    exp_idx, exp_val, _ = expand_iou(tensor.indices, tensor.values)
    ctx.request_bytes(exp_idx.nbytes + exp_val.nbytes, "n-ary expanded nonzeros")
    nnz = exp_val.shape[0]

    a = np.zeros((tensor.dim, rank), dtype=np.float64)
    width = rank ** (order - 1)
    try:
        for start in range(0, nnz, max(1, chunk)):
            stop = min(start + chunk, nnz)
            block = exp_idx[start:stop]
            vals = exp_val[start:stop]
            n = block.shape[0]
            # Kronecker chain over modes 2..N (row-major, mode 2 slowest).
            w = factor[block[:, 1]]
            ctx.request_bytes(n * width * 8, "n-ary kron chain")
            try:
                for t in range(2, order):
                    w = (w[:, :, None] * factor[block[:, t]][:, None, :]).reshape(n, -1)
                contrib = (w @ c1.T) * vals[:, None]
                scatter_add_rows(a, block[:, 0], contrib)
            finally:
                ctx.release_bytes(n * width * 8, "n-ary kron chain")
            if stats is not None:
                # Kron chain: sum_{t=2..N-1} n * R^t multiplies.
                for t in range(2, order):
                    stats.level_flops[t] = stats.level_flops.get(t, 0) + n * rank**t
                stats.add_gemm(n, rank, width)
                stats.add_scatter(n, rank)
    finally:
        ctx.release_bytes(exp_idx.nbytes + exp_val.nbytes, "n-ary expanded nonzeros")
    if stats is not None:
        stats.output_bytes = a.nbytes
    return a


def nary_hoqri_step(
    tensor: SparseSymmetricTensor,
    factor: np.ndarray,
    *,
    stats: Optional[KernelStats] = None,
    chunk: int = _DEFAULT_CHUNK,
    ctx: Optional[ExecContext] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One full HOQRI iteration body in the original intermediate-free style.

    Two passes over the expanded non-zeros, each rebuilding the per-entry
    Kronecker chains (no memoization, as in [14]):

    1. ``C_(1) = Σ x · U(i_1,:)ᵀ ⊗ (⊗_{t≥2} U(i_t,:))`` — the full core;
    2. ``A(i_1,:) += x · C_(1) · (⊗_{t≥2} U(i_t,:))``.

    Returns ``(A, C_(1))`` with ``A ∈ R^{I×R}`` and ``C_(1) ∈ R^{R×R^{N-1}}``.
    """
    ctx = resolve_context(ctx)
    factor = np.asarray(factor, dtype=np.float64)
    order = tensor.order
    rank = factor.shape[1]
    if factor.shape[0] != tensor.dim:
        raise ValueError(f"factor must be ({tensor.dim}, R)")
    width = rank ** (order - 1)
    exp_idx, exp_val, _ = expand_iou(tensor.indices, tensor.values)
    ctx.request_bytes(exp_idx.nbytes + exp_val.nbytes, "n-ary expanded nonzeros")
    try:
        ctx.request_bytes(rank * width * 8, "n-ary full core")
    except BaseException:
        ctx.release_bytes(exp_idx.nbytes + exp_val.nbytes, "n-ary expanded nonzeros")
        raise
    nnz = exp_val.shape[0]

    def chains(start: int, stop: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        block = exp_idx[start:stop]
        vals = exp_val[start:stop]
        w = factor[block[:, 1]]
        for t in range(2, order):
            w = (w[:, :, None] * factor[block[:, t]][:, None, :]).reshape(
                block.shape[0], -1
            )
        if stats is not None:
            for t in range(2, order):
                stats.level_flops[t] = stats.level_flops.get(t, 0) + block.shape[0] * rank**t
        return block, vals, w

    try:
        c1 = np.zeros((rank, width), dtype=np.float64)
        step = max(1, chunk)
        for start in range(0, nnz, step):
            stop = min(start + step, nnz)
            block, vals, w = chains(start, stop)
            c1 += factor[block[:, 0]].T @ (w * vals[:, None])
            if stats is not None:
                stats.add_gemm(rank, width, stop - start)

        a = np.zeros((tensor.dim, rank), dtype=np.float64)
        for start in range(0, nnz, step):
            stop = min(start + step, nnz)
            block, vals, w = chains(start, stop)
            contrib = (w @ c1.T) * vals[:, None]
            scatter_add_rows(a, block[:, 0], contrib)
            if stats is not None:
                stats.add_gemm(stop - start, rank, width)
    finally:
        # The full-core bytes are released here too: the returned ``c1`` is
        # immediately compacted by the HOQRI driver, so keeping the request
        # open would leak one core's worth of budget per iteration.
        ctx.release_bytes(rank * width * 8, "n-ary full core")
        ctx.release_bytes(exp_idx.nbytes + exp_val.nbytes, "n-ary expanded nonzeros")
    if stats is not None:
        stats.output_bytes = a.nbytes
    return a, c1
