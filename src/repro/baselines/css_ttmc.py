"""S³TTMc-CSS baseline: IOU input, *full* dense intermediates.

The state of the art before SymProp (Shivakumar et al. [11], [12]): the
sparse input's symmetry is exploited (IOU non-zeros, sub-multiset
memoization), but every intermediate ``K`` tensor and the output ``Y`` are
stored fully — ``R**l`` and ``I × R**(N-1)`` entries. Identical lattice,
identical recurrence, different layout; the runtime and memory gap to
:func:`repro.core.s3ttmc.s3ttmc` *is* the paper's contribution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.engine import DEFAULT_BLOCK_BYTES, lattice_ttmc
from ..core.plan import TTMcPlan, get_plan
from ..core.s3ttmc import SymmetricInput, _as_ucoo
from ..core.stats import KernelStats
from ..runtime.context import ExecContext, resolve_context

__all__ = ["css_s3ttmc", "css_s3ttmc_tc"]


def css_s3ttmc(
    tensor: SymmetricInput,
    factor: np.ndarray,
    *,
    memoize: str = "global",
    stats: Optional[KernelStats] = None,
    nz_batch_size: Optional[int] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    plan: Optional[TTMcPlan] = None,
    ctx: Optional[ExecContext] = None,
) -> np.ndarray:
    """CSS-format S³TTMc with full intermediates.

    Returns the full matricized ``Y_(1) ∈ R^{I × R^{N-1}}`` (row-major
    column layout matching Eq. 3's Kronecker flattening).
    """
    ctx = resolve_context(ctx)
    ucoo = _as_ucoo(tensor)
    factor = np.asarray(factor, dtype=np.float64)
    if plan is None:
        plan = get_plan(ucoo, memoize, nz_batch_size)
    return lattice_ttmc(
        ucoo.indices,
        ucoo.values,
        ucoo.dim,
        factor,
        intermediate="full",
        memoize=memoize,
        stats=stats,
        nz_batch_size=nz_batch_size,
        block_bytes=block_bytes,
        plan=plan,
        ctx=ctx,
    )


def css_s3ttmc_tc(
    tensor: SymmetricInput,
    factor: np.ndarray,
    *,
    memoize: str = "global",
    stats: Optional[KernelStats] = None,
    nz_batch_size: Optional[int] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    ctx: Optional[ExecContext] = None,
) -> np.ndarray:
    """TTMcTC on the CSS baseline: full ``Y_(1)``, full core, two GEMMs.

    Provided for completeness of the baseline family; the paper's
    S³TTMcTC comparison is against the symmetry-aware Algorithm 2.
    Returns ``A ∈ R^{I × R}``.
    """
    factor = np.asarray(factor, dtype=np.float64)
    y1 = css_s3ttmc(
        tensor,
        factor,
        memoize=memoize,
        stats=stats,
        nz_batch_size=nz_batch_size,
        block_bytes=block_bytes,
        ctx=ctx,
    )
    c1 = factor.T @ y1
    if stats is not None:
        stats.add_gemm(factor.shape[1], y1.shape[1], y1.shape[0])
        stats.add_gemm(y1.shape[0], factor.shape[1], y1.shape[1])
    return y1 @ c1.T
