"""Baselines the paper compares against, implemented from scratch."""

from .css_ttmc import css_s3ttmc, css_s3ttmc_tc
from .dense_ref import dense_core, dense_s3ttmc, dense_s3ttmc_matrix, dense_s3ttmc_tc
from .hoqri_nary import nary_ttmc_tc
from .splatt import csf_ttmc, splatt_ttmc

__all__ = [
    "css_s3ttmc",
    "css_s3ttmc_tc",
    "splatt_ttmc",
    "csf_ttmc",
    "nary_ttmc_tc",
    "dense_s3ttmc",
    "dense_s3ttmc_matrix",
    "dense_s3ttmc_tc",
    "dense_core",
]
