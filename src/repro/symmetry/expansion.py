"""Expansion matrix ``E`` and multiplicity matrix ``M = EᵀE`` (Properties 2–3).

``E ∈ {0,1}^{R^l × S_{l,R}}`` maps compact symmetric storage to the full
row-major layout: ``full = E @ compact``. Property 3 shows ``EᵀE`` is
diagonal with the permutation multiplicities on the diagonal; SymProp never
materializes ``M``, only the vector ``p`` (available from
:class:`~repro.symmetry.tables.IndexTables`). We build ``E`` explicitly
(as ``scipy.sparse``) for the faithful HOOI SVD path and for tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .combinatorics import dense_size
from .tables import IndexTables, get_tables

__all__ = [
    "expansion_matrix",
    "multiplicity_vector",
    "expand_compact",
    "compact_from_full",
]


def expansion_matrix(order: int, dim: int) -> sp.csr_matrix:
    """The sparse 0/1 expansion matrix ``E`` of shape ``(dim**order, S_{order,dim})``.

    Row ``j`` (a full row-major linear index) has a single 1 in the column of
    the IOU obtained by sorting ``j``'s tuple.
    """
    tables = get_tables(order, dim)
    locs = tables.expansion_locs()
    n_full = dense_size(order, dim)
    data = np.ones(n_full, dtype=np.float64)
    rows = np.arange(n_full, dtype=np.int64)
    return sp.csr_matrix((data, (rows, locs)), shape=(n_full, tables.size))


def multiplicity_vector(order: int, dim: int) -> np.ndarray:
    """Diagonal of ``M = EᵀE`` — permutation counts per IOU (the vector ``p``)."""
    return get_tables(order, dim).multiplicity.astype(np.float64)


def expand_compact(compact: np.ndarray, order: int, dim: int) -> np.ndarray:
    """Expand compact symmetric storage to the full row-major array.

    ``compact`` may be 1-D (``(S,)`` — one symmetric tensor) or 2-D
    (``(rows, S)`` — e.g. ``Y_p(1)``, expanded row-wise to
    ``(rows, dim**order)``).
    """
    tables = get_tables(order, dim)
    locs = tables.expansion_locs()
    compact = np.asarray(compact)
    if compact.shape[-1] != tables.size:
        raise ValueError(
            f"last axis must be S_{{{order},{dim}}}={tables.size}, got {compact.shape}"
        )
    return compact[..., locs]


def compact_from_full(
    full: np.ndarray, order: int, dim: int, *, check_symmetry: bool = True, atol: float = 1e-10
) -> np.ndarray:
    """Inverse of :func:`expand_compact` for symmetric input.

    ``full`` has last axis ``dim**order`` (row-major). If ``check_symmetry``
    is set, verifies that all permutations of each IOU agree within ``atol``.
    """
    tables = get_tables(order, dim)
    locs = tables.expansion_locs()
    full = np.asarray(full)
    if full.shape[-1] != dense_size(order, dim):
        raise ValueError("last axis must be dim**order")
    # Representative position of each IOU: first occurrence in `locs`.
    first = _first_occurrence(locs, tables)
    compact = full[..., first]
    if check_symmetry:
        recon = compact[..., locs]
        if not np.allclose(recon, full, atol=atol, rtol=0.0):
            raise ValueError("input is not symmetric within tolerance")
    return compact


def _first_occurrence(locs: np.ndarray, tables: IndexTables) -> np.ndarray:
    order = np.argsort(locs, kind="stable")
    sorted_locs = locs[order]
    starts = np.ones(sorted_locs.shape[0], dtype=bool)
    starts[1:] = sorted_locs[1:] != sorted_locs[:-1]
    first = order[starts]
    if first.shape[0] != tables.size:
        raise AssertionError("expansion map does not cover all IOU locations")
    return first
