"""Index-ordered-unique (IOU) index enumeration and linearization.

Compact storage of a dense symmetric tensor (Section II-B of the paper)
keeps only the IOU entries — indices ``j_1 <= j_2 <= ... <= j_N`` — laid out
consecutively in lexicographical order. This module provides:

* :func:`enumerate_iou` — all IOU tuples of a given order/dim in lex order,
  together with the *drop-last parent* location and *last index* arrays that
  drive the symmetric outer-product kernels (Algorithm 1);
* :func:`rank_iou` / :func:`unrank_iou` — O(N)-per-tuple bijections between
  IOU tuples and their lex positions (the "index mapping" the paper's
  metaprogramming avoids; we need it for scattered access and as the
  baseline of the index-iteration ablation);
* :func:`full_linear_index` — row-major linearization of full (expanded)
  indices, matching the Kronecker-product flattening of Eq. (3).

The enumeration order produced here is the single source of truth for every
compact layout in the library; all other modules must agree with it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .combinatorics import sym_storage_size

__all__ = [
    "enumerate_iou",
    "iou_layout",
    "rank_iou",
    "rank_iou_array",
    "unrank_iou",
    "unrank_iou_array",
    "full_linear_index",
    "is_iou",
]

_INDEX_DTYPE = np.int64


def enumerate_iou(order: int, dim: int) -> np.ndarray:
    """All IOU index tuples of an order-``order`` dim-``dim`` symmetric tensor.

    Returns an ``(S_{order,dim}, order)`` int64 array whose rows are the
    non-decreasing tuples in lexicographical order — exactly the layout of
    compact symmetric storage.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    if order == 0:
        return np.zeros((1, 0), dtype=_INDEX_DTYPE)
    rows, _, _ = iou_layout(order, dim)
    return rows


def iou_layout(order: int, dim: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """IOU enumeration plus the kernel index tables.

    Returns ``(indices, parent_loc, last_index)`` where

    * ``indices`` is the ``(S, order)`` lex-ordered IOU array;
    * ``parent_loc[s]`` is the lex position of ``indices[s, :-1]`` in the
      order-``order-1`` enumeration (the *drop-last parent*);
    * ``last_index[s] = indices[s, -1]``.

    These two tables turn the level-``l`` symmetric outer product
    ``K_l[s] = U[v, last_index[s]] * K_{l-1}[parent_loc[s]]`` (Eq. 8 /
    Algorithm 1) into a pair of vectorized gathers.

    The construction is itself the inductive proof of the layout property:
    extending each order-``l-1`` IOU tuple, in lex order, by every feasible
    last index produces the order-``l`` lex enumeration.
    """
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if dim < 0:
        raise ValueError(f"dim must be >= 0, got {dim}")
    indices = np.arange(dim, dtype=_INDEX_DTYPE).reshape(dim, 1)
    parent_loc = np.zeros(dim, dtype=_INDEX_DTYPE)
    last_index = indices[:, 0].copy()
    for _ in range(2, order + 1):
        prev = indices
        n_prev, _ = prev.shape
        # Row s of `prev` extends with last ∈ [prev[s, -1], dim); the number
        # of extensions per row is dim - prev[:, -1].
        counts = dim - prev[:, -1]
        parent_loc = np.repeat(np.arange(n_prev, dtype=_INDEX_DTYPE), counts)
        # last index within each parent group runs prev[s,-1] .. dim-1.
        offsets = np.concatenate(([0], np.cumsum(counts)))
        total = int(offsets[-1])
        pos_in_group = np.arange(total, dtype=_INDEX_DTYPE) - offsets[parent_loc]
        last_index = prev[parent_loc, -1] + pos_in_group
        indices = np.concatenate(
            [prev[parent_loc], last_index.reshape(-1, 1)], axis=1
        )
    return indices, parent_loc, last_index


def _rank_prefix_table(order: int, dim: int) -> np.ndarray:
    """Cumulative counting table for IOU ranking.

    ``table[t, v] = sum_{u < v} S_{order-t-1, dim-u}`` for position
    ``t in [0, order)`` and value bound ``v in [0, dim]``: the number of IOU
    tuples that agree with a query on the first ``t`` coordinates and take a
    value ``u < v`` at position ``t`` (given non-decreasing feasibility).
    """
    table = np.zeros((order, dim + 1), dtype=_INDEX_DTYPE)
    for t in range(order):
        remaining = order - t - 1
        counts = np.array(
            [sym_storage_size(remaining, dim - u) for u in range(dim)],
            dtype=_INDEX_DTYPE,
        )
        table[t, 1:] = np.cumsum(counts)
    return table


def rank_iou(index: Tuple[int, ...] | np.ndarray, dim: int) -> int:
    """Lex position of one non-decreasing tuple in the IOU enumeration."""
    arr = np.asarray(index, dtype=_INDEX_DTYPE).reshape(1, -1)
    return int(rank_iou_array(arr, dim)[0])


def rank_iou_array(indices: np.ndarray, dim: int) -> np.ndarray:
    """Vectorized lex ranks of non-decreasing tuples.

    Parameters
    ----------
    indices:
        ``(n, order)`` array of non-decreasing rows with values in
        ``[0, dim)``.
    dim:
        Dimension size.

    Returns
    -------
    ``(n,)`` int64 array of positions in the lex IOU enumeration.
    """
    indices = np.asarray(indices, dtype=_INDEX_DTYPE)
    if indices.ndim != 2:
        raise ValueError(f"expected (n, order) array, got shape {indices.shape}")
    n, order = indices.shape
    if order == 0:
        return np.zeros(n, dtype=_INDEX_DTYPE)
    if n == 0:
        return np.zeros(0, dtype=_INDEX_DTYPE)
    if indices.min(initial=0) < 0 or indices.max(initial=0) >= dim:
        raise ValueError("index value out of range")
    if np.any(indices[:, 1:] < indices[:, :-1]):
        raise ValueError("rows must be non-decreasing (IOU)")
    table = _rank_prefix_table(order, dim)
    ranks = np.zeros(n, dtype=_INDEX_DTYPE)
    lower = np.zeros(n, dtype=_INDEX_DTYPE)
    for t in range(order):
        j = indices[:, t]
        ranks += table[t, j] - table[t, lower]
        lower = j
    return ranks


def unrank_iou(rank: int, order: int, dim: int) -> np.ndarray:
    """Inverse of :func:`rank_iou` for a single position."""
    return unrank_iou_array(np.array([rank], dtype=_INDEX_DTYPE), order, dim)[0]


def unrank_iou_array(ranks: np.ndarray, order: int, dim: int) -> np.ndarray:
    """Vectorized inverse ranking: positions → IOU tuples.

    Returns an ``(n, order)`` int64 array.
    """
    ranks = np.asarray(ranks, dtype=_INDEX_DTYPE)
    if ranks.ndim != 1:
        raise ValueError("ranks must be 1-D")
    total = sym_storage_size(order, dim)
    if ranks.size and (ranks.min() < 0 or ranks.max() >= total):
        raise ValueError("rank out of range")
    table = _rank_prefix_table(order, dim)
    n = ranks.shape[0]
    out = np.zeros((n, order), dtype=_INDEX_DTYPE)
    remaining = ranks.copy()
    lower = np.zeros(n, dtype=_INDEX_DTYPE)
    for t in range(order):
        # Find largest v with table[t, v] - table[t, lower] <= remaining.
        target = remaining + table[t, lower]
        v = np.searchsorted(table[t], target, side="right") - 1
        # searchsorted can land past duplicate plateau values at the tail
        # (zero remaining counts when remaining order is 0); clamp.
        v = np.minimum(v, dim - 1)
        out[:, t] = v
        remaining = target - table[t, v]
        lower = v
    return out


def full_linear_index(indices: np.ndarray, dim: int) -> np.ndarray:
    """Row-major linearization of full index tuples.

    ``lin(j_1..j_N) = ((j_1*dim + j_2)*dim + ...)*dim + j_N`` — the layout
    produced by flattening chained Kronecker products (Eq. 3) in C order.
    Accepts an ``(n, order)`` array; returns ``(n,)`` int64.
    """
    indices = np.asarray(indices, dtype=_INDEX_DTYPE)
    if indices.ndim == 1:
        indices = indices.reshape(1, -1)
    n, order = indices.shape
    out = np.zeros(n, dtype=_INDEX_DTYPE)
    for t in range(order):
        out = out * dim + indices[:, t]
    return out


def is_iou(indices: np.ndarray) -> np.ndarray:
    """Boolean mask of rows that are non-decreasing (index-ordered unique)."""
    indices = np.asarray(indices)
    if indices.ndim != 2:
        raise ValueError("expected (n, order) array")
    if indices.shape[1] <= 1:
        return np.ones(indices.shape[0], dtype=bool)
    return np.all(indices[:, 1:] >= indices[:, :-1], axis=1)
