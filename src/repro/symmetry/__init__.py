"""Symmetric-tensor combinatorics substrate.

Everything in this package is exact integer/index machinery: compact IOU
layouts, rank/unrank bijections, multiset permutation expansion, and the
expansion/multiplicity operators of Properties 2–3.
"""

from .combinatorics import (
    binomial,
    dense_size,
    multinomial,
    permutation_count,
    permutation_counts_array,
    storage_compression_ratio,
    sym_storage_size,
)
from .expansion import (
    compact_from_full,
    expand_compact,
    expansion_matrix,
    multiplicity_vector,
)
from .iou import (
    enumerate_iou,
    full_linear_index,
    iou_layout,
    is_iou,
    rank_iou,
    rank_iou_array,
    unrank_iou,
    unrank_iou_array,
)
from .permutations import canonicalize, count_expanded, distinct_permutations, expand_iou
from .tables import IndexTables, clear_table_cache, get_tables, table_cache_info

__all__ = [
    "binomial",
    "multinomial",
    "sym_storage_size",
    "dense_size",
    "permutation_count",
    "permutation_counts_array",
    "storage_compression_ratio",
    "enumerate_iou",
    "iou_layout",
    "rank_iou",
    "rank_iou_array",
    "unrank_iou",
    "unrank_iou_array",
    "full_linear_index",
    "is_iou",
    "distinct_permutations",
    "count_expanded",
    "expand_iou",
    "canonicalize",
    "IndexTables",
    "get_tables",
    "clear_table_cache",
    "table_cache_info",
    "expansion_matrix",
    "multiplicity_vector",
    "expand_compact",
    "compact_from_full",
]
