"""Combinatorial primitives for symmetric tensor storage and counting.

This module provides exact integer combinatorics used throughout SymProp:
binomial/multinomial coefficients, the compact symmetric storage size
``S_{N,I} = C(N+I-1, N)`` (Table I of the paper), and permutation counts of
index multisets (the entries of the diagonal multiplicity matrix ``M`` of
Property 3).

All functions operate on Python ints (exact) or NumPy integer arrays
(vectorized, ``int64``); overflow-prone sizes such as ``I**N`` are computed
as Python ints when exactness matters.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "binomial",
    "multinomial",
    "sym_storage_size",
    "dense_size",
    "permutation_count",
    "permutation_counts_array",
    "falling_factorial",
    "storage_compression_ratio",
]


def binomial(n: int, k: int) -> int:
    """Exact binomial coefficient ``C(n, k)``; zero outside the triangle."""
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def multinomial(counts: Iterable[int]) -> int:
    """Exact multinomial coefficient ``(sum counts)! / prod(counts!)``.

    ``counts`` are the value frequencies of an index multiset; the result is
    the number of distinct orderings (permutations) of that multiset. This is
    the quantity Section IV-C uses to build the multiplicity vector ``p``.
    """
    counts = list(counts)
    if any(c < 0 for c in counts):
        raise ValueError(f"negative multiplicity in {counts!r}")
    total = sum(counts)
    result = math.factorial(total)
    for c in counts:
        result //= math.factorial(c)
    return result


def sym_storage_size(order: int, dim: int) -> int:
    """Compact storage size ``S_{N,I} = C(N+I-1, N)`` of a symmetric tensor.

    This is the number of index-ordered-unique (IOU) entries of an order-
    ``order`` symmetric tensor with dimension size ``dim`` — the multiset
    coefficient "dim multichoose order".

    An order-0 tensor is a scalar (size 1). ``dim == 0`` gives size 0 for
    any positive order.
    """
    if order < 0:
        raise ValueError(f"order must be >= 0, got {order}")
    if dim < 0:
        raise ValueError(f"dim must be >= 0, got {dim}")
    if order == 0:
        return 1
    return binomial(order + dim - 1, order)


def dense_size(order: int, dim: int) -> int:
    """Full (redundant) entry count ``I**N`` of a dense hypercubical tensor."""
    if order < 0 or dim < 0:
        raise ValueError("order and dim must be >= 0")
    return dim**order


def permutation_count(index: Sequence[int]) -> int:
    """Number of distinct orderings of the index tuple ``index``.

    For an IOU index ``(i_1 <= ... <= i_N)`` with value frequencies
    ``k_1..k_m`` this is the multinomial ``N! / (k_1! ... k_m!)`` — the
    per-entry diagonal of ``M = EᵀE`` in Property 3.
    """
    return multinomial(Counter(index).values())


def permutation_counts_array(indices: np.ndarray) -> np.ndarray:
    """Vectorized :func:`permutation_count` over rows of ``indices``.

    Parameters
    ----------
    indices:
        ``(n, order)`` integer array; rows need not be sorted (permutation
        count is ordering-invariant).

    Returns
    -------
    ``(n,)`` int64 array of distinct-ordering counts.
    """
    indices = np.asarray(indices)
    if indices.ndim != 2:
        raise ValueError(f"expected 2-D (n, order) array, got shape {indices.shape}")
    n, order = indices.shape
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    srt = np.sort(indices, axis=1)
    # Run-length encode each sorted row: positions where the value changes.
    change = np.ones((n, order), dtype=bool)
    change[:, 1:] = srt[:, 1:] != srt[:, :-1]
    # Every row starts a run (change[:, 0] is True), so flattened run
    # boundaries never straddle rows and diff gives in-row run lengths.
    starts = np.flatnonzero(change.ravel())
    lengths = np.diff(starts, append=indices.size)
    factorials = np.array([math.factorial(k) for k in range(order + 1)], dtype=np.int64)
    runs_per_row = change.sum(axis=1)
    row_offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(runs_per_row[:-1], out=row_offsets[1:])
    denom = np.multiply.reduceat(factorials[lengths], row_offsets)
    return math.factorial(order) // denom


def falling_factorial(n: int, k: int) -> int:
    """Exact falling factorial ``n (n-1) ... (n-k+1)``."""
    if k < 0:
        raise ValueError("k must be >= 0")
    result = 1
    for t in range(k):
        result *= n - t
    return result


def storage_compression_ratio(order: int, dim: int) -> float:
    """Ratio ``I**N / S_{N,I}`` — how much compact storage saves.

    Approaches ``N!`` as ``I → ∞`` (Section II-B).
    """
    s = sym_storage_size(order, dim)
    if s == 0:
        raise ValueError("empty tensor has no compression ratio")
    return dense_size(order, dim) / s
