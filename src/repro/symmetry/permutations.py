"""Multiset permutation utilities: IOU ↔ expanded non-zero sets.

A sparse symmetric tensor is fully described by its IOU non-zeros; general
sparse formats (COO, CSF/SPLATT) need *all distinct permutations* expanded.
This module provides the expansion (the source of the baselines' ``N!``
memory blow-up), its inverse (canonicalization), and a lazy distinct-
permutation generator (Knuth's Algorithm L restricted to multisets).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

import numpy as np

from .combinatorics import permutation_counts_array

__all__ = [
    "distinct_permutations",
    "count_expanded",
    "expand_iou",
    "canonicalize",
]


def distinct_permutations(index: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """Yield the distinct orderings of ``index`` in lexicographic order.

    Uses the classic next-permutation sweep, which visits each distinct
    ordering of a multiset exactly once.
    """
    arr = sorted(index)
    n = len(arr)
    if n == 0:
        yield ()
        return
    while True:
        yield tuple(arr)
        # Find rightmost ascent.
        i = n - 2
        while i >= 0 and arr[i] >= arr[i + 1]:
            i -= 1
        if i < 0:
            return
        j = n - 1
        while arr[j] <= arr[i]:
            j -= 1
        arr[i], arr[j] = arr[j], arr[i]
        arr[i + 1 :] = reversed(arr[i + 1 :])


def count_expanded(indices: np.ndarray) -> int:
    """Total number of distinct permutations across all IOU rows.

    This is the ``nnz`` of the expanded tensor — the quantity that makes
    general-format baselines run out of memory at high order.
    """
    indices = np.asarray(indices)
    if indices.shape[0] == 0:
        return 0
    return int(permutation_counts_array(indices).sum())


def expand_iou(
    indices: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand IOU non-zeros to all distinct permutations.

    Parameters
    ----------
    indices:
        ``(unnz, order)`` non-decreasing rows.
    values:
        ``(unnz,)`` values.

    Returns
    -------
    ``(expanded_indices, expanded_values, owner)`` where ``owner[e]`` is the
    IOU row each expanded entry came from. Output rows are grouped by owner;
    within an owner they are in lexicographic order.
    """
    indices = np.asarray(indices)
    values = np.asarray(values)
    unnz, order = indices.shape
    if values.shape != (unnz,):
        raise ValueError("values must be (unnz,)")
    counts = permutation_counts_array(indices) if unnz else np.zeros(0, np.int64)
    total = int(counts.sum())
    out = np.empty((total, order), dtype=np.int64)
    owner = np.repeat(np.arange(unnz, dtype=np.int64), counts)
    pos = 0
    for row in range(unnz):
        for perm in distinct_permutations(indices[row]):
            out[pos] = perm
            pos += 1
    return out, values[owner], owner


def canonicalize(
    indices: np.ndarray,
    values: np.ndarray,
    *,
    combine: str = "error",
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort each row, deduplicate, and lex-sort rows — produce IOU form.

    ``combine`` controls duplicate coordinates: ``"error"`` raises,
    ``"sum"`` accumulates values, ``"first"``/``"last"`` keep one.
    """
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if indices.ndim != 2:
        raise ValueError("indices must be (n, order)")
    if values.shape != (indices.shape[0],):
        raise ValueError("values length mismatch")
    if indices.shape[0] == 0:
        return indices.copy(), values.copy()
    srt = np.sort(indices, axis=1)
    perm = np.lexsort(srt.T[::-1])
    srt = srt[perm]
    vals = values[perm]
    dup = np.zeros(srt.shape[0], dtype=bool)
    dup[1:] = np.all(srt[1:] == srt[:-1], axis=1)
    if not dup.any():
        return srt, vals
    if combine == "error":
        raise ValueError("duplicate coordinates (up to permutation) in input")
    group_start = np.flatnonzero(~dup)
    if combine == "sum":
        out_vals = np.add.reduceat(vals, group_start)
    elif combine == "first":
        out_vals = vals[group_start]
    elif combine == "last":
        ends = np.concatenate([group_start[1:], [srt.shape[0]]]) - 1
        out_vals = vals[ends]
    else:
        raise ValueError(f"unknown combine mode {combine!r}")
    return srt[group_start], out_vals
