"""Cached per-(order, dim) index tables for the SymProp kernels.

The symmetric outer-product kernels need, at every lattice level ``l``, the
same three arrays: the IOU enumeration, the drop-last parent locations, and
the last indices (plus, at the top level, the permutation-multiplicity
vector ``p`` of Property 3). Building them costs ``O(S_{l,R} * l)`` — cheap,
but worth doing exactly once per Tucker decomposition. This module caches
them per ``(order, dim)`` pair, mirroring how the paper's C++ implementation
instantiates one template per level at compile time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from .combinatorics import permutation_counts_array, sym_storage_size
from .iou import full_linear_index, iou_layout

__all__ = ["IndexTables", "get_tables", "clear_table_cache", "table_cache_info"]


@dataclass(frozen=True)
class IndexTables:
    """Immutable index tables of one compact symmetric layout.

    Attributes
    ----------
    order, dim:
        Tensor order ``l`` and dimension size ``R`` of the layout.
    size:
        ``S_{l,R}`` — number of IOU entries.
    indices:
        ``(size, order)`` lex-ordered IOU tuples.
    parent_loc:
        ``(size,)`` — lex position of each tuple with its last coordinate
        dropped, in the order-``l-1`` layout (``order >= 1``).
    last_index:
        ``(size,)`` — last coordinate of each tuple.
    multiplicity:
        ``(size,)`` int64 — number of distinct orderings of each tuple; the
        diagonal of ``M = EᵀE`` (Property 3), a.k.a. the vector ``p``.
    """

    order: int
    dim: int
    size: int
    indices: np.ndarray
    parent_loc: np.ndarray
    last_index: np.ndarray
    multiplicity: np.ndarray
    _expansion_cache: dict = field(default_factory=dict, compare=False, repr=False)

    def expansion_locs(self) -> np.ndarray:
        """Map full row-major linear index → compact IOU location.

        Returns a ``(dim**order,)`` int64 array ``locs`` such that for any
        full index tuple ``j``, ``compact[locs[lin(j)]]`` is the entry value
        — i.e. the column index of the 1 in each row of the expansion matrix
        ``E`` of Property 2. Materializes ``dim**order`` integers; callers
        must keep that within their memory budget.
        """
        cached = self._expansion_cache.get("locs")
        if cached is not None:
            return cached
        full = dim_grid(self.order, self.dim)
        sorted_full = np.sort(full, axis=1)
        # Rank each sorted tuple by searching the lex-ordered IOU table via
        # its own linearization (monotone in lex order).
        keys = full_linear_index(self.indices, self.dim)
        query = full_linear_index(sorted_full, self.dim)
        locs = np.searchsorted(keys, query)
        self._expansion_cache["locs"] = locs
        return locs


def dim_grid(order: int, dim: int) -> np.ndarray:
    """All full index tuples of shape ``(dim**order, order)`` in row-major order."""
    if order == 0:
        return np.zeros((1, 0), dtype=np.int64)
    grids = np.meshgrid(*([np.arange(dim, dtype=np.int64)] * order), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


_CACHE: Dict[Tuple[int, int], IndexTables] = {}
_CACHE_LOCK = threading.Lock()


def get_tables(order: int, dim: int) -> IndexTables:
    """Return (building and caching if needed) the tables for ``(order, dim)``."""
    key = (order, dim)
    tables = _CACHE.get(key)
    if tables is not None:
        return tables
    with _CACHE_LOCK:
        tables = _CACHE.get(key)
        if tables is not None:
            return tables
        indices, parent_loc, last_index = iou_layout(order, dim)
        multiplicity = permutation_counts_array(indices)
        tables = IndexTables(
            order=order,
            dim=dim,
            size=sym_storage_size(order, dim),
            indices=indices,
            parent_loc=parent_loc,
            last_index=last_index,
            multiplicity=multiplicity,
        )
        _CACHE[key] = tables
        return tables


def clear_table_cache() -> None:
    """Drop all cached tables (used by memory-sensitive benchmarks)."""
    with _CACHE_LOCK:
        _CACHE.clear()


def table_cache_info() -> Dict[Tuple[int, int], int]:
    """Cached layouts and their sizes, for diagnostics."""
    with _CACHE_LOCK:
        return {key: tables.size for key, tables in _CACHE.items()}
