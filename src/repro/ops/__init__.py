"""Sparse symmetric tensor operations: algebra and marginalization."""

from .algebra import add, hadamard, scale, subtract
from .marginal import degree_vector, marginalize

__all__ = ["add", "subtract", "scale", "hadamard", "marginalize", "degree_vector"]
