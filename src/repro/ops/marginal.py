"""Mode marginalization of sparse symmetric tensors.

``marginalize(X)`` sums one mode out: ``M(t_1..t_{N-1}) = Σ_v X(t, v)`` —
still symmetric, one order lower. In IOU terms, each non-zero ``i``
contributes its value to the sub-multiset ``i∖v`` for every *distinct*
value ``v ∈ i`` (the top level of the S³TTMc lattice, reused here).

Marginalizing an adjacency tensor down to order 1 yields exactly the
hyperedge-degree vector, which doubles as a cross-check between the
hypergraph and tensor substrates.
"""

from __future__ import annotations

import numpy as np

from ..core.lattice import _delete_one_per_run
from ..formats.ucoo import SparseSymmetricTensor
from ..symmetry.permutations import canonicalize

__all__ = ["marginalize", "degree_vector"]


def marginalize(tensor: SparseSymmetricTensor, modes: int = 1) -> SparseSymmetricTensor:
    """Sum out ``modes`` modes (applied one mode at a time)."""
    if not 0 <= modes < tensor.order:
        raise ValueError(f"modes must be in [0, {tensor.order - 1}]")
    current = tensor
    for _ in range(modes):
        current = _marginalize_once(current)
    return current


def _marginalize_once(tensor: SparseSymmetricTensor) -> SparseSymmetricTensor:
    if tensor.unnz == 0:
        return SparseSymmetricTensor(
            tensor.order - 1,
            tensor.dim,
            np.zeros((0, tensor.order - 1), dtype=np.int64),
            np.zeros(0),
        )
    parent_row, _deleted, child, _counts = _delete_one_per_run(tensor.indices)
    values = tensor.values[parent_row]
    out_idx, out_vals = canonicalize(child, values, combine="sum")
    return SparseSymmetricTensor(
        tensor.order - 1, tensor.dim, out_idx, out_vals, assume_canonical=True
    )


def degree_vector(tensor: SparseSymmetricTensor) -> np.ndarray:
    """Full marginal down to order 1, as a dense length-``dim`` vector.

    Equals ``X.to_dense().sum(over all modes but one)``. For a 0/1
    adjacency tensor built from all-distinct hyperedges, entry ``v`` is
    ``(N−1)!`` times the hypergraph degree of ``v`` (each incident edge is
    counted once per ordering of its other members).
    """
    marginal = marginalize(tensor, tensor.order - 1)
    out = np.zeros(tensor.dim, dtype=np.float64)
    if marginal.unnz:
        out[marginal.indices[:, 0]] = marginal.values
    return out
