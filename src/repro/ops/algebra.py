"""Elementwise algebra on sparse symmetric tensors.

Linear-algebraic building blocks the decomposition workflows need around
the kernels: addition (union of IOU patterns), scaling, Hadamard product
(intersection), and subtraction — all closed over
:class:`SparseSymmetricTensor` and exact.
"""

from __future__ import annotations

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor
from ..symmetry.permutations import canonicalize

__all__ = ["add", "subtract", "scale", "hadamard"]


def _check_compatible(a: SparseSymmetricTensor, b: SparseSymmetricTensor) -> None:
    if a.order != b.order or a.dim != b.dim:
        raise ValueError(
            f"incompatible tensors: order {a.order} dim {a.dim} vs "
            f"order {b.order} dim {b.dim}"
        )


def add(
    a: SparseSymmetricTensor,
    b: SparseSymmetricTensor,
    *,
    prune_zeros: bool = True,
    atol: float = 0.0,
) -> SparseSymmetricTensor:
    """``a + b`` — union of patterns, values summed on overlaps.

    ``prune_zeros`` drops entries whose summed magnitude is ``<= atol``
    (exact cancellations by default).
    """
    _check_compatible(a, b)
    indices = np.concatenate([a.indices, b.indices], axis=0)
    values = np.concatenate([a.values, b.values])
    out_idx, out_vals = canonicalize(indices, values, combine="sum")
    if prune_zeros and out_vals.size:
        keep = np.abs(out_vals) > atol
        out_idx, out_vals = out_idx[keep], out_vals[keep]
    return SparseSymmetricTensor(a.order, a.dim, out_idx, out_vals, assume_canonical=True)


def scale(a: SparseSymmetricTensor, alpha: float) -> SparseSymmetricTensor:
    """``alpha · a`` (the zero scalar yields an empty tensor)."""
    if alpha == 0.0:
        return SparseSymmetricTensor(
            a.order, a.dim, np.zeros((0, a.order), dtype=np.int64), np.zeros(0)
        )
    return SparseSymmetricTensor(
        a.order, a.dim, a.indices.copy(), alpha * a.values, assume_canonical=True
    )


def subtract(
    a: SparseSymmetricTensor, b: SparseSymmetricTensor, **kwargs
) -> SparseSymmetricTensor:
    """``a − b``."""
    return add(a, scale(b, -1.0), **kwargs)


def hadamard(
    a: SparseSymmetricTensor, b: SparseSymmetricTensor
) -> SparseSymmetricTensor:
    """Elementwise product — intersection of the IOU patterns."""
    _check_compatible(a, b)
    if a.unnz == 0 or b.unnz == 0:
        return SparseSymmetricTensor(
            a.order, a.dim, np.zeros((0, a.order), dtype=np.int64), np.zeros(0)
        )
    # Both index sets are lex-sorted: merge-intersect via searchsorted on a
    # shared linearization key.
    def keys(idx, dim, order):
        out = np.zeros(idx.shape[0], dtype=object)
        acc = np.zeros(idx.shape[0], dtype=object)
        for t in range(order):
            acc = acc * int(dim) + idx[:, t].astype(object)
        return acc

    ka = keys(a.indices, a.dim, a.order)
    kb = keys(b.indices, b.dim, b.order)
    pos = np.searchsorted(kb, ka)
    pos = np.minimum(pos, kb.shape[0] - 1)
    match = kb[pos] == ka
    out_idx = a.indices[match]
    out_vals = a.values[match] * b.values[pos[match]]
    return SparseSymmetricTensor(
        a.order, a.dim, out_idx, out_vals, assume_canonical=True
    )
