"""Execution-environment substrate: memory budgets and phase timers."""

from .budget import (
    MemoryBudget,
    MemoryLimitError,
    current_budget,
    release_bytes,
    request_bytes,
    track_array,
)
from .profile import HotSpot, ProfileReport, profile_call
from .timer import PhaseTimer, Stopwatch

__all__ = [
    "MemoryBudget",
    "MemoryLimitError",
    "current_budget",
    "request_bytes",
    "release_bytes",
    "track_array",
    "PhaseTimer",
    "profile_call",
    "ProfileReport",
    "HotSpot",
    "Stopwatch",
]
