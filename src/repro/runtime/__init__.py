"""Execution-environment substrate: contexts, budgets, faults, checkpoints."""

from .budget import (
    MemoryBudget,
    MemoryLimitError,
    current_budget,
    release_bytes,
    request_bytes,
    track_array,
)
from .checkpoint import (
    CheckpointState,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from .context import (
    EXECUTIONS,
    ExecContext,
    PlanCache,
    current_context,
    resolve_context,
    tensor_generation,
)
from .faults import (
    DEFAULT_FALLBACK,
    BackendUnhealthyError,
    CorruptPartialError,
    FallbackPolicy,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    WorkerCrashError,
    faults_from_env,
    parse_fault_specs,
)
from .profile import HotSpot, ProfileReport, profile_call
from .timer import PhaseTimer, Stopwatch

__all__ = [
    "ExecContext",
    "PlanCache",
    "EXECUTIONS",
    "current_context",
    "resolve_context",
    "tensor_generation",
    "MemoryBudget",
    "MemoryLimitError",
    "current_budget",
    "request_bytes",
    "release_bytes",
    "track_array",
    "FaultSpec",
    "FaultInjector",
    "FallbackPolicy",
    "DEFAULT_FALLBACK",
    "InjectedFault",
    "WorkerCrashError",
    "CorruptPartialError",
    "BackendUnhealthyError",
    "faults_from_env",
    "parse_fault_specs",
    "CheckpointState",
    "checkpoint_path",
    "save_checkpoint",
    "load_checkpoint",
    "PhaseTimer",
    "profile_call",
    "ProfileReport",
    "HotSpot",
    "Stopwatch",
]
