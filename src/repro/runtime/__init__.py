"""Execution-environment substrate: contexts, memory budgets, phase timers."""

from .budget import (
    MemoryBudget,
    MemoryLimitError,
    current_budget,
    release_bytes,
    request_bytes,
    track_array,
)
from .context import (
    EXECUTIONS,
    ExecContext,
    PlanCache,
    current_context,
    resolve_context,
    tensor_generation,
)
from .profile import HotSpot, ProfileReport, profile_call
from .timer import PhaseTimer, Stopwatch

__all__ = [
    "ExecContext",
    "PlanCache",
    "EXECUTIONS",
    "current_context",
    "resolve_context",
    "tensor_generation",
    "MemoryBudget",
    "MemoryLimitError",
    "current_budget",
    "request_bytes",
    "release_bytes",
    "track_array",
    "PhaseTimer",
    "profile_call",
    "ProfileReport",
    "HotSpot",
    "Stopwatch",
]
