"""Per-run execution context: the object every layer threads explicitly.

Before this module existed, every cross-cutting concern was ambient
process/thread state: the :class:`~repro.runtime.budget.MemoryBudget`
lived in a ``threading.local`` stack, the trace collector was installed
process-wide, execution backends were created ad hoc per decomposition
call, and chunk-plan caches hung off tensor objects. Two decompositions
running concurrently in one process therefore shared (or silently missed)
budgets, traces and caches.

:class:`ExecContext` makes the run's environment explicit — one object
owning

* the **memory budget** (``ctx.budget`` — the paper's OOM-reproduction
  device; Section VI's 256 GB node as a first-class per-run limit),
* the **trace collector and metrics registry** (``ctx.collector`` /
  ``ctx.metrics``),
* the **execution backend** (``serial`` / ``thread`` / ``process``,
  created lazily and kept alive until :meth:`ExecContext.close`),
* the **plan cache** (chunk plans and partitions, weakly keyed by tensor
  — no longer attributes stapled onto tensor objects), and
* the **RNG seed** (deterministic replay: seed + budget + backend travel
  together and serialize via :meth:`ExecContext.to_dict`).

Backward compatibility is preserved through the *ambient default
context*: :func:`current_context` returns the innermost explicitly
scoped context on this thread, falling back to a process-wide singleton
whose budget/collector properties delegate to the pre-existing ambient
mechanisms. Code that never mentions contexts behaves exactly as before;
code that passes ``ctx=`` gets isolation.

Usage::

    from repro.runtime import ExecContext, MemoryBudget
    from repro.obs import TraceCollector

    ctx = ExecContext(
        budget=MemoryBudget(gigabytes=4),
        collector=TraceCollector(),
        execution="thread",
        n_workers=8,
        seed=42,
    )
    with ctx:                       # activate + close backend on exit
        result = hooi(x, rank=8, ctx=ctx)
    ctx.collector.spans             # only this run's spans
    ctx.budget.peak                 # only this run's peak
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import OrderedDict
from contextlib import ExitStack, contextmanager
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..obs import trace as _trace
from ..obs.profile import SamplingProfiler
from . import budget as _budget
from .budget import MemoryBudget
from .faults import DEFAULT_FALLBACK, FallbackPolicy, FaultInjector
from .health import CancelToken, DeadlineExceededError, RunCancelledError

__all__ = [
    "COMPILED_TABLE_CACHE_CAP",
    "EXECUTIONS",
    "SHARDINGS",
    "ExecContext",
    "PlanCache",
    "current_context",
    "reset_thread_runtime_state",
    "resolve_context",
    "tensor_generation",
]

#: Recognized execution strategies (see :mod:`repro.parallel.backends`).
EXECUTIONS = ("serial", "thread", "process")

#: Recognized tensor-distribution strategies for parallel runs:
#: ``"broadcast"`` ships the whole tensor to every worker (the legacy
#: byte-compatible layout); ``"owned"`` gives each worker a disjoint
#: :class:`~repro.parallel.sharding.TensorShard` plus a private row-block
#: of ``Y``, merged by a hierarchical blocked reduction.
SHARDINGS = ("broadcast", "owned")

#: Cap on cached compiled-kernel table sets per :class:`PlanCache` — the
#: keys are pattern stamps (not weakly referenceable), so the store is
#: bounded by eviction instead of garbage collection.
COMPILED_TABLE_CACHE_CAP = 64


# ---------------------------------------------------------------------------
# Tensor generations
# ---------------------------------------------------------------------------

_GEN_LOCK = threading.Lock()
_GEN_IDS: "weakref.WeakKeyDictionary[object, int]" = weakref.WeakKeyDictionary()
_NEXT_GEN = [0]


def tensor_generation(tensor: object) -> int:
    """Process-unique, monotonically assigned generation id for ``tensor``.

    Unlike ``id()``, a generation is never reused after the tensor dies,
    so it is a safe cache/invalidation key across process boundaries —
    the process backend keys its worker-side plan caches on it.
    """
    with _GEN_LOCK:
        gen = _GEN_IDS.get(tensor)
        if gen is None:
            _NEXT_GEN[0] += 1
            gen = _NEXT_GEN[0]
            _GEN_IDS[tensor] = gen
        return gen


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Per-context store for chunk plans and non-zero partitions.

    Entries are weakly keyed by the tensor object, so plans die with their
    tensor instead of leaking; within one tensor the inner dicts are keyed
    by ``(partition, memoize)`` (chunk plans) and ``(n_chunks, rank)``
    (partitions) exactly as the old tensor-attribute caches were. Plans
    are pattern-only (they never depend on factor values), so sharing a
    cache between contexts is always *correct* — separate caches are
    about lifecycle isolation, not numerics.

    Compiled-kernel gather tables (:mod:`repro.core.compile`) are stored
    separately in a bounded LRU keyed by the plan's pattern stamp plus the
    kernel-spec axes — stamp keys cannot be weakly held, so an explicit
    cap (:data:`COMPILED_TABLE_CACHE_CAP`) bounds the store instead.
    """

    def __init__(self) -> None:
        self._chunk_plans: "weakref.WeakKeyDictionary[object, dict]" = (
            weakref.WeakKeyDictionary()
        )
        self._partitions: "weakref.WeakKeyDictionary[object, dict]" = (
            weakref.WeakKeyDictionary()
        )
        self._compiled: "OrderedDict[tuple, object]" = OrderedDict()
        self.compiled_hits = 0
        self.compiled_misses = 0

    def chunk_plans(self, tensor: object) -> dict:
        """The (mutable) chunk-plan dict for ``tensor``."""
        return self._per_tensor(self._chunk_plans, tensor)

    def partitions(self, tensor: object) -> dict:
        """The (mutable) balanced-partition dict for ``tensor``."""
        return self._per_tensor(self._partitions, tensor)

    @staticmethod
    def _per_tensor(store: "weakref.WeakKeyDictionary", tensor: object) -> dict:
        try:
            cache = store.get(tensor)
        except TypeError:  # un-weakref-able / unhashable: no caching
            return {}
        if cache is None:
            cache = {}
            try:
                store[tensor] = cache
            except TypeError:
                return {}
        return cache

    def compiled_get(self, key: tuple):
        """Cached compiled-kernel tables for ``key``, or ``None`` (LRU)."""
        entry = self._compiled.get(key)
        if entry is None:
            self.compiled_misses += 1
            return None
        self._compiled.move_to_end(key)
        self.compiled_hits += 1
        return entry

    def compiled_put(self, key: tuple, tables: object) -> None:
        """Store compiled-kernel tables, evicting least-recently-used."""
        self._compiled[key] = tables
        self._compiled.move_to_end(key)
        while len(self._compiled) > COMPILED_TABLE_CACHE_CAP:
            self._compiled.popitem(last=False)

    @property
    def n_compiled(self) -> int:
        """Number of cached compiled-kernel table sets."""
        return len(self._compiled)

    @property
    def n_tensors(self) -> int:
        """Number of tensors with live cached state (either kind)."""
        return len(set(self._chunk_plans) | set(self._partitions))

    def clear(self) -> None:
        """Drop all cached plans, partitions and compiled tables."""
        self._chunk_plans.clear()
        self._partitions.clear()
        self._compiled.clear()


# ---------------------------------------------------------------------------
# The context
# ---------------------------------------------------------------------------


class ExecContext:
    """One run's execution environment, threaded explicitly through layers.

    Parameters
    ----------
    budget:
        The run's :class:`~repro.runtime.budget.MemoryBudget`. ``None``
        delegates to the ambient (thread-local) budget stack, preserving
        legacy ``with MemoryBudget(...):`` call sites.
    collector:
        The run's :class:`~repro.obs.trace.TraceCollector`. ``None``
        delegates to the ambient collector.
    execution:
        ``"serial"`` (plain kernel), ``"thread"`` or ``"process"``
        (parallel backend, owned by this context once adopted).
    n_workers:
        Worker count for parallel executions (``None`` = core count).
    reduction:
        Partial-reduction strategy for parallel runs (``"blocked"`` /
        ``"tree"``).
    sharding:
        Tensor-distribution strategy for parallel runs: ``"broadcast"``
        (whole tensor to every worker — the legacy, byte-compatible
        default) or ``"owned"`` (disjoint per-worker tensor shards with
        a hierarchical cross-shard reduction; see
        :mod:`repro.parallel.sharding`).
    seed:
        Default RNG seed for drivers invoked with ``seed=None`` —
        deterministic replay travels with the context.
    plans:
        Plan cache; defaults to a fresh private :class:`PlanCache`.
        :meth:`derive` shares the parent's.
    faults:
        Optional :class:`~repro.runtime.faults.FaultInjector` — the
        run's deterministic fault plan; backends arm it at named sites.
        ``None`` (the default) injects nothing.
    fallback:
        Optional :class:`~repro.runtime.faults.FallbackPolicy` governing
        retries, respawns, deadlines, OOM bisection and backend
        degradation. ``None`` uses the shared
        :data:`~repro.runtime.faults.DEFAULT_FALLBACK`.
    profiler:
        Optional :class:`~repro.obs.profile.SamplingProfiler`. The
        context *owns* it like the backend: started when the context is
        entered, stopped (and flushed to its path) in :meth:`close`.
        Not inherited by :meth:`derive`/:meth:`snapshot` children — the
        sampler observes every thread of the process already, and a
        child's ``close()`` must not stop the parent's profiler.
    deadline_seconds:
        Optional wall-clock budget for the whole run, measured from
        context construction. Backends and decomposition loops call
        :meth:`check_health` at chunk/iteration boundaries; past the
        deadline it raises
        :class:`~repro.runtime.health.DeadlineExceededError`. Children
        from :meth:`derive`/:meth:`snapshot` inherit the parent's
        *absolute* deadline, not a fresh budget.
    cancel:
        Optional :class:`~repro.runtime.health.CancelToken` for
        cooperative cancellation — cancelling it (from any thread)
        makes :meth:`check_health` raise
        :class:`~repro.runtime.health.RunCancelledError` at the next
        boundary. Children share the parent's token by default.

    The context is a context manager: ``with ctx:`` activates it on the
    current thread (budget pushed, collector installed thread-locally,
    :func:`current_context` returns it) and closes the owned backend on
    exit. For activation without lifecycle teardown use :meth:`scope`.
    """

    def __init__(
        self,
        *,
        budget: Optional[MemoryBudget] = None,
        collector: Optional["_trace.TraceCollector"] = None,
        execution: str = "serial",
        n_workers: Optional[int] = None,
        reduction: str = "blocked",
        sharding: str = "broadcast",
        seed: Optional[int] = None,
        plans: Optional[PlanCache] = None,
        faults: Optional[FaultInjector] = None,
        fallback: Optional[FallbackPolicy] = None,
        profiler: Optional["SamplingProfiler"] = None,
        deadline_seconds: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        self.budget = budget
        self.collector = collector
        self.execution = execution
        self.n_workers = None if n_workers is None else int(n_workers)
        self.reduction = reduction
        self.sharding = sharding
        self.seed = seed
        self.plans = plans if plans is not None else PlanCache()
        self.faults = faults
        self.fallback = fallback
        self.profiler = profiler
        if deadline_seconds is not None:
            deadline_seconds = float(deadline_seconds)
            if deadline_seconds <= 0:
                raise ValueError("deadline_seconds must be positive")
        self.deadline_seconds = deadline_seconds
        #: Absolute monotonic-clock instant the deadline trips at; the
        #: clock starts at construction and children inherit it as-is.
        self._deadline_at = (
            None
            if deadline_seconds is None
            else time.monotonic() + deadline_seconds
        )
        self.cancel_token = cancel
        #: Unique token naming this run. Namespaces the run's shared-memory
        #: segments (see :mod:`repro.parallel.shm`) and seeds health-driven
        #: reseeds of seedless runs (see
        #: :func:`repro.decomp.restarts.reseed_seed`), so concurrent runs in
        #: one process can never collide or correlate. :meth:`derive` mints
        #: a fresh token (a child job is a new run); :meth:`snapshot` keeps
        #: it (same run, materialized ambient state).
        self.run_token = os.urandom(4).hex()
        self._health_tripped = False
        self._backend = None
        self._ambient = False
        self._entered: List[Any] = []

    # -- identity ----------------------------------------------------------

    @property
    def is_ambient(self) -> bool:
        """``True`` only for the process-wide ambient default context."""
        return self._ambient

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = [f"execution={self.execution!r}"]
        if self.n_workers is not None:
            bits.append(f"n_workers={self.n_workers}")
        if self.budget is not None:
            bits.append(f"budget={self.budget.limit_bytes}")
        if self.collector is not None:
            bits.append("traced")
        if self.seed is not None:
            bits.append(f"seed={self.seed}")
        if self._ambient:
            bits.append("ambient")
        return f"ExecContext({', '.join(bits)})"

    # -- budget ------------------------------------------------------------

    def effective_budget(self) -> Optional[MemoryBudget]:
        """This context's budget, else the ambient one on this thread."""
        return self.budget if self.budget is not None else _budget.current_budget()

    def request_bytes(self, nbytes: int, label: str = "array") -> None:
        """Declare ``nbytes`` against this run's budget (see
        :func:`repro.runtime.budget.request_bytes`)."""
        budget = self.effective_budget()
        if budget is not None:
            budget.request(nbytes, label, collector=self.collector)
        else:
            collector = self.effective_collector()
            if collector is not None:
                _trace.event(
                    "budget.request",
                    collector=collector,
                    label=label,
                    nbytes=int(nbytes),
                )

    def release_bytes(self, nbytes: int, label: str = "array") -> None:
        """Release ``nbytes`` from this run's budget."""
        budget = self.effective_budget()
        if budget is not None:
            budget.release(nbytes, label, collector=self.collector)
        else:
            collector = self.effective_collector()
            if collector is not None:
                _trace.event(
                    "budget.release",
                    collector=collector,
                    label=label,
                    nbytes=int(nbytes),
                )

    @contextmanager
    def track_array(self, shape, label: str, itemsize: int = 8) -> Iterator[int]:
        """Context-scoped transient-array declaration (yields the bytes)."""
        nbytes = itemsize
        for extent in shape:
            nbytes *= int(extent)
        self.request_bytes(nbytes, label)
        try:
            yield nbytes
        finally:
            self.release_bytes(nbytes, label)

    # -- tracing -----------------------------------------------------------

    def effective_collector(self) -> Optional["_trace.TraceCollector"]:
        """This context's collector, else the ambient one on this thread."""
        return (
            self.collector
            if self.collector is not None
            else _trace.active_collector()
        )

    @property
    def metrics(self):
        """Metrics registry of the effective collector, or ``None``."""
        collector = self.effective_collector()
        return collector.metrics if collector is not None else None

    def span(self, name: str, *, parent_id: Optional[int] = None, **attrs: Any):
        """Open a span routed into this run's collector (no-op if none)."""
        return _trace.span(
            name, parent_id=parent_id, collector=self.collector, **attrs
        )

    def event(self, name: str, *, parent_id: Optional[int] = None, **attrs: Any):
        """Record a point event routed into this run's collector."""
        _trace.event(name, parent_id=parent_id, collector=self.collector, **attrs)

    # -- RNG ---------------------------------------------------------------

    def rng(self) -> np.random.Generator:
        """Fresh generator from this context's seed (entropy if unset)."""
        return np.random.default_rng(self.seed)

    # -- resilience --------------------------------------------------------

    def effective_fallback(self) -> FallbackPolicy:
        """This context's fallback policy, else the shared default."""
        return self.fallback if self.fallback is not None else DEFAULT_FALLBACK

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock seconds left before the run deadline (may be
        negative once expired), or ``None`` when no deadline is set."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    def _health_trip(self, kind: str, site: str) -> None:
        """Emit the ``health.<kind>`` event/counter once per context.

        ``check_health`` keeps raising on every later call, but only the
        first trip is an observable event — retries of the same trip
        would inflate counters.
        """
        if self._health_tripped:
            return
        self._health_tripped = True
        self.event(f"health.{kind}", site=site)
        metrics = self.metrics
        if metrics is not None:
            metrics.counter(f"health.{kind}").inc()

    def check_health(self, site: str = "") -> None:
        """Cooperative cancellation / deadline checkpoint.

        Called between chunks (all backends), between decomposition
        iterations, and inside the process-backend supervisor loop.
        Raises :class:`~repro.runtime.health.RunCancelledError` when the
        run's :class:`~repro.runtime.health.CancelToken` (or any of its
        ancestors) is cancelled, and
        :class:`~repro.runtime.health.DeadlineExceededError` once the
        run's wall-clock budget is spent. Cheap when neither is
        configured — two attribute reads, no clock call.
        """
        token = self.cancel_token
        if token is not None and token.cancelled:
            self._health_trip("cancelled", site)
            raise RunCancelledError(token.reason, site)
        if self._deadline_at is not None and time.monotonic() >= self._deadline_at:
            self._health_trip("deadline", site)
            raise DeadlineExceededError(self.deadline_seconds, site)

    # -- validation --------------------------------------------------------

    def validate(
        self, *, kernel: str = "symprop", intermediate: str = "compact"
    ) -> None:
        """Check that this context's execution settings suit a run.

        Single home for constraints previously scattered across
        ``resolve_backend`` and deep engine failures: unknown execution
        names, ``n_workers`` without a parallel execution, and parallel
        runs of kernels/layouts that have no chunked form (only the
        symprop kernel with compact intermediates does).
        """
        if self.execution not in EXECUTIONS:
            raise ValueError(
                f"unknown execution {self.execution!r}; "
                f"expected one of {EXECUTIONS}"
            )
        if self.sharding not in SHARDINGS:
            raise ValueError(
                f"unknown sharding {self.sharding!r}; "
                f"expected one of {SHARDINGS}"
            )
        if self.sharding == "owned" and self.reduction != "blocked":
            raise ValueError(
                "sharding='owned' requires reduction='blocked' (shard "
                "row-blocks are what the hierarchical reduction exchanges)"
            )
        if self.execution == "serial":
            if self.n_workers is not None:
                raise ValueError("n_workers requires execution='thread'|'process'")
            return
        if kernel != "symprop":
            raise ValueError(
                f"execution={self.execution!r} requires kernel='symprop', "
                f"got {kernel!r}"
            )
        if intermediate != "compact":
            raise ValueError(
                f"execution={self.execution!r} requires intermediate='compact' "
                f"(the full {intermediate!r} layout has no chunked parallel "
                f"form), got intermediate={intermediate!r}"
            )

    # -- backend lifecycle -------------------------------------------------

    @property
    def backend(self):
        """The owned :class:`~repro.parallel.backends.Backend`, if any."""
        return self._backend

    def adopt_backend(self, backend):
        """Take ownership of ``backend``: reused until :meth:`close`.

        The context deliberately does not *create* backends (that would
        invert the layering — ``runtime`` sits below ``parallel``);
        creation lives in :func:`repro.decomp._execution.acquire_backend`
        and :func:`repro.parallel.executor.parallel_s3ttmc`, which adopt
        what they make.
        """
        if self._backend is not None and self._backend is not backend:
            raise RuntimeError(
                "context already owns a backend; close() it before adopting "
                "another"
            )
        self._backend = backend
        return backend

    def release_backend(self):
        """Detach and return the owned backend without closing it.

        The inverse of :meth:`adopt_backend`, for pool owners (the serve
        layer) that lend a persistent backend to a per-job context: the
        job releases it on completion so :meth:`close` cannot tear down
        a backend the pool still owns. Returns ``None`` if nothing was
        adopted.
        """
        backend, self._backend = self._backend, None
        return backend

    def close(self) -> None:
        """Close the owned backend and stop the owned profiler
        (idempotent); the context stays usable — the next parallel run
        lazily recreates a backend."""
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.close()
        if self.profiler is not None:
            self.profiler.stop()

    # -- derivation / snapshot ---------------------------------------------

    def derive(
        self,
        *,
        budget: Optional[MemoryBudget] = None,
        collector: Optional["_trace.TraceCollector"] = None,
        execution: Optional[str] = None,
        n_workers: Optional[int] = None,
        reduction: Optional[str] = None,
        sharding: Optional[str] = None,
        seed: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
    ) -> "ExecContext":
        """Child context sharing budget/collector/plan cache, with its own
        backend slot and (optionally) overridden execution settings.

        This is how the legacy ``hooi(..., execution="thread")`` call
        sites keep working: the driver derives an ephemeral child from the
        ambient context, runs on it, and closes it — while plans persist
        in the shared cache across calls.

        Resilience state is inherited: the child shares the parent's
        :class:`~repro.runtime.health.CancelToken` (cancelling the run
        cancels derived work) and the parent's *absolute* deadline —
        deriving does not restart the clock. Pass ``deadline_seconds=``
        to arm a fresh budget or ``cancel=`` for an independent token
        (e.g. ``parent.cancel_token.derive()``).

        Multi-tenant isolation: pass ``budget=`` / ``collector=`` to give
        the child its *own* accounting instead of sharing the parent's —
        the serve layer derives one such child per job so a tenant
        tripping its limit or deadline cannot disturb a sibling's budget
        or trace. The child always gets a fresh ``run_token``.
        """
        child = ExecContext(
            budget=budget if budget is not None else self.budget,
            collector=collector if collector is not None else self.collector,
            execution=execution if execution is not None else self.execution,
            n_workers=n_workers if n_workers is not None else self.n_workers,
            reduction=reduction if reduction is not None else self.reduction,
            sharding=sharding if sharding is not None else self.sharding,
            seed=seed if seed is not None else self.seed,
            plans=self.plans,
            faults=self.faults,
            fallback=self.fallback,
            deadline_seconds=(
                deadline_seconds
                if deadline_seconds is not None
                else self.deadline_seconds
            ),
            cancel=cancel if cancel is not None else self.cancel_token,
        )
        if deadline_seconds is None:
            child._deadline_at = self._deadline_at
        return child

    def snapshot(self) -> "ExecContext":
        """Materialize ambient delegation into explicit fields.

        Resolves the effective budget/collector *on the calling thread* so
        the result can travel to worker threads (whose own ambient state
        would differ). Returns ``self`` when nothing is delegated.
        """
        budget = self.effective_budget()
        collector = self.effective_collector()
        if budget is self.budget and collector is self.collector:
            return self
        snap = ExecContext(
            budget=budget,
            collector=collector,
            execution=self.execution,
            n_workers=self.n_workers,
            reduction=self.reduction,
            sharding=self.sharding,
            seed=self.seed,
            plans=self.plans,
            faults=self.faults,
            fallback=self.fallback,
            deadline_seconds=self.deadline_seconds,
            cancel=self.cancel_token,
        )
        snap._deadline_at = self._deadline_at
        snap.run_token = self.run_token  # same run, materialized
        return snap

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable run configuration (deterministic replay)."""
        from dataclasses import asdict

        fallback = None
        if self.fallback is not None:
            fallback = asdict(self.fallback)
            fallback["degrade"] = list(fallback["degrade"])
        return {
            "execution": self.execution,
            "n_workers": self.n_workers,
            "reduction": self.reduction,
            "sharding": self.sharding,
            "seed": self.seed,
            "budget_limit_bytes": (
                self.budget.limit_bytes if self.budget is not None else None
            ),
            "traced": self.collector is not None,
            "fallback": fallback,
            "deadline_seconds": self.deadline_seconds,
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "ExecContext":
        """Rebuild a context from :meth:`to_dict` output.

        The budget is recreated fresh (zero ``in_use``); ``traced`` spawns
        a new empty collector.
        """
        from ..obs.trace import TraceCollector

        limit = spec.get("budget_limit_bytes")
        fallback_spec = spec.get("fallback")
        fallback = None
        if fallback_spec is not None:
            fallback_spec = dict(fallback_spec)
            fallback_spec["degrade"] = tuple(fallback_spec.get("degrade", ()))
            fallback = FallbackPolicy(**fallback_spec)
        return cls(
            budget=MemoryBudget(limit_bytes=limit) if limit is not None else None,
            collector=TraceCollector() if spec.get("traced") else None,
            execution=spec.get("execution", "serial"),
            n_workers=spec.get("n_workers"),
            reduction=spec.get("reduction", "blocked"),
            sharding=spec.get("sharding", "broadcast"),
            seed=spec.get("seed"),
            fallback=fallback,
            deadline_seconds=spec.get("deadline_seconds"),
        )

    # -- activation --------------------------------------------------------

    @contextmanager
    def scope(self) -> Iterator["ExecContext"]:
        """Activate on the current thread, without lifecycle teardown.

        Installs the budget on the thread-local budget stack, the
        collector as this thread's trace override, and the context itself
        as :func:`current_context`'s answer. Reentrant and cheap when
        already active; the ambient default context installs nothing.
        """
        with ExitStack() as stack:
            if (
                self.budget is not None
                and _budget.current_budget() is not self.budget
            ):
                stack.enter_context(self.budget)
            if (
                self.collector is not None
                and _trace.active_collector() is not self.collector
            ):
                stack.enter_context(_trace.collector_scope(self.collector))
            ctx_stack = _context_stack()
            pushed = not (ctx_stack and ctx_stack[-1] is self)
            if pushed:
                ctx_stack.append(self)
            try:
                yield self
            finally:
                if pushed and ctx_stack and ctx_stack[-1] is self:
                    ctx_stack.pop()

    def __enter__(self) -> "ExecContext":
        cm = self.scope()
        cm.__enter__()
        self._entered.append(cm)
        if self.profiler is not None:
            self.profiler.start()
        return self

    def __exit__(self, *exc) -> None:
        if self._entered:
            cm = self._entered.pop()
            cm.__exit__(*exc)
        if not self._entered:
            self.close()


# ---------------------------------------------------------------------------
# Ambient default
# ---------------------------------------------------------------------------

_TLS = threading.local()


def _context_stack() -> List[ExecContext]:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


#: Process-wide fallback: delegates budget/trace to the ambient
#: mechanisms; its plan cache is the process-wide one (the successor of
#: the old tensor-attribute caches).
_AMBIENT = ExecContext()
_AMBIENT._ambient = True


def current_context() -> ExecContext:
    """Innermost active context on this thread, else the ambient default.

    Never returns ``None`` — code can always thread the result.
    """
    stack = _context_stack()
    return stack[-1] if stack else _AMBIENT


def resolve_context(ctx: Optional[ExecContext]) -> ExecContext:
    """``ctx`` itself, or :func:`current_context` when ``None``.

    The one-line idiom every ``ctx:``-accepting entry point starts with.
    """
    return ctx if ctx is not None else current_context()


def reset_thread_runtime_state() -> None:
    """Forget all inherited ambient runtime state (fork safety).

    A ``fork``-started process clones the parent's thread-local context
    stack, budget stack, span stack and the process-wide collectors.
    Accounting or tracing against those clones is silently invisible to
    the parent — worse, a cloned budget can spuriously refuse worker
    allocations. Process workers call this once at startup so they run
    against their own (empty) ambient state; explicit state still arrives
    via the job's serialized budget/context.
    """
    _TLS.__dict__.clear()
    _budget._LOCAL.__dict__.clear()
    _trace._STACKS.__dict__.clear()
    with _trace._INSTALL_LOCK:
        _trace._COLLECTORS.clear()
        _trace._ACTIVE = None
