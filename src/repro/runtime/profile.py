"""Lightweight profiling helpers (the guides' "no optimization without
measuring").

Wraps :mod:`cProfile` to answer the only question that usually matters —
*where did the time go?* — programmatically, without dumping pstats noise.
Used by the development workflow and exposed for users tuning their own
workloads.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Callable, List, Tuple

__all__ = ["HotSpot", "ProfileReport", "profile_call"]


@dataclass(frozen=True)
class HotSpot:
    """One profile line: where, how often, how long."""

    function: str
    calls: int
    total_seconds: float
    cumulative_seconds: float


@dataclass
class ProfileReport:
    """Result of :func:`profile_call`."""

    result: object
    elapsed: float
    hotspots: List[HotSpot]

    def top(self, n: int = 5) -> List[HotSpot]:
        return self.hotspots[:n]

    def fraction_in(self, substring: str) -> float:
        """Fraction of total time in functions whose name matches."""
        if self.elapsed <= 0:
            return 0.0
        matched = sum(
            h.total_seconds for h in self.hotspots if substring in h.function
        )
        return min(matched / self.elapsed, 1.0)

    def render(self, n: int = 10) -> str:
        lines = [f"total {self.elapsed:.4f} s"]
        for h in self.top(n):
            lines.append(
                f"  {h.total_seconds:8.4f}s ({h.calls:>7} calls) {h.function}"
            )
        return "\n".join(lines)


def profile_call(fn: Callable[[], object], *, top: int = 25) -> ProfileReport:
    """Run ``fn`` under cProfile; return its result plus ranked hotspots."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    entries: List[Tuple[str, int, float, float]] = []
    total = 0.0
    for (filename, lineno, name), (cc, _nc, tt, ct, _callers) in stats.stats.items():
        short = f"{filename.rsplit('/', 1)[-1]}:{lineno}({name})"
        entries.append((short, cc, tt, ct))
        total += tt
    entries.sort(key=lambda e: e[2], reverse=True)
    hotspots = [
        HotSpot(function=e[0], calls=e[1], total_seconds=e[2], cumulative_seconds=e[3])
        for e in entries[:top]
    ]
    return ProfileReport(result=result, elapsed=total, hotspots=hotspots)
