"""Phase timers for runtime breakdowns (Figure 8).

A :class:`PhaseTimer` accumulates wall-clock time per named phase across
repeated entries — e.g. "s3ttmc", "svd", "qr", "core", "objective" inside a
Tucker iteration loop — and reports totals and percentage breakdowns.

Since the :mod:`repro.obs` layer landed, the timer is a thin *consumer*
of the tracer: every ``phase(name)`` scope also opens a ``phase:<name>``
span under the ambient collector (a no-op when tracing is off), so the
``repro.obs summarize`` rollup and the timer report the same numbers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from ..obs import trace as _trace

__all__ = ["PhaseTimer", "Stopwatch"]


@dataclass
class PhaseTimer:
    """Accumulates per-phase wall time.

    Example::

        timer = PhaseTimer()
        with timer.phase("s3ttmc"):
            ...
        timer.breakdown()   # {"s3ttmc": 100.0}
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        # Timer and trace span share the same two clock readings, so the
        # `repro.obs summarize` rollup agrees with breakdown() exactly.
        live = _trace.begin_span("phase:" + name, {"phase": name})
        start = live.start if live is not None else time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self.totals[name] = self.totals.get(name, 0.0) + (end - start)
            self.counts[name] = self.counts.get(name, 0) + 1
            if live is not None:
                _trace.finish_span(live, end)

    def add(self, name: str, seconds: float) -> None:
        """Record externally measured time under ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def breakdown(self) -> Dict[str, float]:
        """Percentage of total time per phase (sums to 100 when non-empty)."""
        total = self.total
        if total <= 0.0:
            return {name: 0.0 for name in self.totals}
        return {name: 100.0 * t / total for name, t in self.totals.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Fold ``other``'s totals *and* counts into this timer.

        Totals and counts merge independently: a phase present in
        ``other.totals`` but absent from ``other.counts`` (external
        ``totals`` mutation) contributes time but no entries, instead of
        the phantom ``+1`` the old implementation invented.
        """
        for name, t in other.totals.items():
            self.totals[name] = self.totals.get(name, 0.0) + t
        for name, c in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + c


class Stopwatch:
    """Minimal restartable stopwatch for harness timing loops."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None
