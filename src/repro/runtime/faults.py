"""Fault model: deterministic fault injection and degradation policies.

The paper's headline runs are long multi-iteration HOOI/HOQRI sweeps —
exactly the regime where a single worker crash, hang, out-of-memory
chunk, or corrupted partial would otherwise kill hours of work. This
module is the *policy* half of the fault-tolerance layer (the
*mechanism* half — supervision, retry, OOM bisection — lives in
:mod:`repro.parallel.backends`):

* :class:`FaultSpec` / :class:`FaultInjector` — a seeded, deterministic
  fault-injection framework. Injectors are configured on the
  :class:`~repro.runtime.context.ExecContext` (``ctx.faults``) and fire
  at *named sites* inside backends and workers (today: ``"chunk"``, one
  arming opportunity per chunk evaluation attempt). Because arming is
  centralized in the driving process and counted per site, a fault plan
  replays identically across runs — the backbone of the equivalence
  tests that assert a faulted run converges to the exact same factors
  as a clean one.
* :class:`FallbackPolicy` — how much resilience a run wants: per-chunk
  retry ceiling and backoff, worker respawn ceiling, per-chunk deadline
  (hang detection via heartbeats), OOM bisection depth, and the
  degradation chain (``process → thread → serial``) taken when a
  backend is declared unhealthy.
* The failure taxonomy: :class:`InjectedFault` (test-only marker),
  :class:`WorkerCrashError` (a worker died or simulated dying),
  :class:`CorruptPartialError` (a partial failed checksum
  verification), and :class:`BackendUnhealthyError` (a backend
  exhausted its retry/respawn budget and should be degraded).

Usage::

    from repro.runtime import ExecContext, FaultInjector, FaultSpec

    ctx = ExecContext(
        execution="process",
        faults=FaultInjector([FaultSpec(site="chunk", kind="crash")]),
    )
    hooi(x, rank=8, ctx=ctx)   # first chunk dispatch crashes its worker;
                               # the supervisor respawns + retries it

Fault kinds
-----------
``crash``
    Process worker: ``os._exit`` mid-job (pipe EOF at the parent).
    Thread/serial: raise :class:`WorkerCrashError` from the chunk.
``hang``
    Sleep ``seconds`` with heartbeats suppressed — trips the
    supervisor's deadline when one is set.
``oom``
    Raise :class:`~repro.runtime.budget.MemoryLimitError` from the
    chunk, triggering recursive bisection.
``corrupt``
    Perturb the chunk's partial *after* its checksum was computed —
    detected by partial verification and recomputed.
``nan``
    Poison the chunk's partial with ``NaN`` *before* its checksum is
    computed — the non-finite value survives transport, is caught by
    the backends' finiteness sentinel (``check_finite``), and the chunk
    is recomputed; exhaustion raises
    :class:`~repro.runtime.health.NumericalHealthError`.
``slow``
    Sleep ``seconds`` with heartbeats *running* — pure latency that
    never trips the per-chunk hang detector but consumes the run's
    wall-clock budget, exercising ``deadline_seconds``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "BackendUnhealthyError",
    "CorruptPartialError",
    "DEFAULT_FALLBACK",
    "FallbackPolicy",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "WorkerCrashError",
    "faults_from_env",
    "parse_fault_specs",
    "parse_policy_spec",
    "policy_from_env",
]

#: Recognized fault kinds (see module docstring).
FAULT_KINDS = ("crash", "hang", "oom", "corrupt", "error", "nan", "slow")

#: Environment variable read by :func:`faults_from_env`.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Environment variable read by :func:`policy_from_env`.
POLICY_ENV_VAR = "REPRO_POLICY"


# ---------------------------------------------------------------------------
# Failure taxonomy
# ---------------------------------------------------------------------------


class InjectedFault(RuntimeError):
    """Marker base for failures raised by the fault-injection framework."""


class WorkerCrashError(RuntimeError):
    """A worker died (real pipe EOF / nonzero exit, or injected crash).

    Retryable: the supervisor respawns the worker (process backend) or
    simply re-runs the chunk (thread/serial) up to the policy's retry
    ceiling.
    """


class CorruptPartialError(RuntimeError):
    """A chunk partial failed checksum verification.

    Raised by the backends when the received partial's sum does not
    match the checksum computed at production time — the partial is
    discarded and the chunk recomputed.
    """


class BackendUnhealthyError(RuntimeError):
    """A backend exhausted its retry/respawn budget for this run.

    Carries the backend name; :func:`repro.parallel.executor.parallel_s3ttmc`
    catches this and degrades along :attr:`FallbackPolicy.degrade`.
    """

    def __init__(self, backend: str, reason: str):
        self.backend = backend
        self.reason = reason
        super().__init__(f"backend {backend!r} unhealthy: {reason}")


# ---------------------------------------------------------------------------
# Fault specification / injection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *where* (site + filters) and *what* (kind).

    Parameters
    ----------
    site:
        Named injection site (``"chunk"`` today; sites are plain strings
        so new ones need no registry).
    kind:
        One of :data:`FAULT_KINDS`.
    match:
        Attribute filters against the site's keyword attributes; e.g.
        ``{"slot": 2}`` fires only on chunk slot 2, ``{"backend":
        "process"}`` only under the process backend. Missing attributes
        never match.
    after:
        Skip this many *matching* occurrences before firing (fire on
        occurrence ``after``, 0-based).
    times:
        Fire at most this many times (default once — so a retried chunk
        succeeds on its second attempt).
    probability:
        Fire each matching occurrence with this probability, drawn from
        the injector's seeded generator (still deterministic per seed).
    seconds:
        Sleep duration for ``kind="hang"`` / ``kind="slow"``.
    scale:
        Perturbation magnitude for ``kind="corrupt"``.
    """

    site: str
    kind: str
    match: Dict[str, Any] = field(default_factory=dict)
    after: int = 0
    times: int = 1
    probability: float = 1.0
    seconds: float = 5.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")

    def matches(self, attrs: Dict[str, Any]) -> bool:
        """Whether this spec's filters accept the site attributes."""
        return all(attrs.get(k) == v for k, v in self.match.items())

    def payload(self) -> Tuple[str, float]:
        """Compact picklable form shipped to process workers."""
        return (
            self.kind,
            self.seconds if self.kind in ("hang", "slow") else self.scale,
        )


class FaultInjector:
    """Seeded, deterministic dispenser of planned faults.

    One injector travels with a run (``ctx.faults``). All arming
    decisions happen in the driving process — process workers never
    decide anything, they only *execute* a fault shipped with their
    chunk message — so occurrence counting has a single source of truth
    and a fault plan replays identically across runs.

    Thread-safe: thread-backend workers arm concurrently.
    """

    def __init__(
        self, specs: Sequence[FaultSpec] = (), *, seed: int = 0
    ) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._lock = threading.Lock()
        self._seen: Dict[Tuple[int, str], int] = {}  # (spec idx, site) matches
        self._fired_count: Dict[int, int] = {}
        #: Chronological log of fired faults: ``(site, kind, attrs)``.
        self.fired: List[Tuple[str, str, Dict[str, Any]]] = []

    def arm(self, site: str, **attrs: Any) -> Optional[FaultSpec]:
        """The fault to execute at this site occurrence, if any.

        Counts the occurrence against every matching spec and returns
        the first spec that elects to fire (its ``fired`` budget is
        consumed). Call exactly once per site occurrence.
        """
        with self._lock:
            chosen: Optional[FaultSpec] = None
            for idx, spec in enumerate(self.specs):
                if spec.site != site or not spec.matches(attrs):
                    continue
                seen = self._seen.get((idx, site), 0)
                self._seen[(idx, site)] = seen + 1
                if chosen is not None:
                    continue  # still count occurrences for later specs
                if seen < spec.after:
                    continue
                if self._fired_count.get(idx, 0) >= spec.times:
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                self._fired_count[idx] = self._fired_count.get(idx, 0) + 1
                self.fired.append((site, spec.kind, dict(attrs)))
                chosen = spec
            return chosen

    @property
    def n_fired(self) -> int:
        """Total faults fired so far."""
        return len(self.fired)

    def reset(self) -> None:
        """Forget all occurrence/fired state (fresh replay, same seed)."""
        with self._lock:
            self._seen.clear()
            self._fired_count.clear()
            self.fired.clear()
            self._rng = np.random.default_rng(self.seed)


def parse_fault_specs(text: str) -> List[FaultSpec]:
    """Parse a compact fault-plan string into :class:`FaultSpec` list.

    Grammar: semicolon-separated ``site:kind[:key=value,...]`` entries;
    numeric values are coerced, anything else stays a string (and lands
    in ``match``). Recognized keys: ``after``, ``times``,
    ``probability``, ``seconds``, ``scale``; all others become match
    filters. Example::

        "chunk:crash;chunk:oom:after=2;chunk:hang:seconds=5,slot=1"
    """
    specs: List[FaultSpec] = []
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2:
            raise ValueError(f"fault entry {entry!r} must be site:kind[:opts]")
        site, kind = parts[0].strip(), parts[1].strip()
        kwargs: Dict[str, Any] = {}
        match: Dict[str, Any] = {}
        if len(parts) > 2:
            for pair in ":".join(parts[2:]).split(","):
                if not pair.strip():
                    continue
                if "=" not in pair:
                    raise ValueError(f"fault option {pair!r} must be key=value")
                key, value = (s.strip() for s in pair.split("=", 1))
                coerced: Any
                try:
                    coerced = int(value)
                except ValueError:
                    try:
                        coerced = float(value)
                    except ValueError:
                        coerced = value
                if key in ("after", "times"):
                    kwargs[key] = int(coerced)
                elif key in ("probability", "seconds", "scale"):
                    kwargs[key] = float(coerced)
                else:
                    match[key] = coerced
        specs.append(FaultSpec(site=site, kind=kind, match=match, **kwargs))
    return specs


def faults_from_env() -> Optional[FaultInjector]:
    """Injector built from ``REPRO_FAULTS``, or ``None`` when unset.

    Lets the bench harness (and ad-hoc scripts) run any workload under a
    fault plan without code changes::

        REPRO_FAULTS="chunk:crash;chunk:oom:after=3" python -m repro.bench ...
    """
    text = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not text:
        return None
    return FaultInjector(parse_fault_specs(text))


# ---------------------------------------------------------------------------
# Fallback / resilience policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FallbackPolicy:
    """How much resilience a run wants, configured on the context.

    Parameters
    ----------
    max_retries:
        Retries per chunk beyond the first attempt before the backend is
        declared unhealthy (crash / hang / corrupt failures; genuine
        deterministic errors also consume these, then surface).
    backoff_seconds, backoff_multiplier:
        Exponential backoff before re-dispatching a failed chunk:
        attempt ``k`` (1-based retry) sleeps
        ``backoff_seconds * backoff_multiplier**(k-1)``.
    max_respawns:
        Worker respawns per :meth:`~repro.parallel.backends.Backend.execute`
        before the process backend is declared unhealthy.
    chunk_timeout:
        Per-chunk deadline in seconds, measured as *silence* — the time
        since the last heartbeat or reply from the worker running the
        chunk. ``None`` (default) disables hang detection, preserving
        the pre-supervision blocking behaviour.
    heartbeat_interval:
        Worker heartbeat period while a chunk is running.
    max_oom_splits:
        Recursion depth ceiling for OOM chunk bisection; past it (or at
        single-non-zero chunks) the ``MemoryLimitError`` propagates.
    degrade:
        Backend degradation chain tried, in order, when a backend is
        declared unhealthy. Only strictly weaker backends are taken
        (``process → thread → serial``); an empty tuple disables
        fallback.
    verify_partials:
        Verify each chunk partial against its production-time checksum
        and recompute on mismatch (catches shm transport corruption).
    check_finite:
        Reject chunk partials whose checksum is non-finite (a ``NaN`` or
        ``Inf`` anywhere in the partial poisons its sum, so the sentinel
        is free — both backends already compute the sum for
        ``verify_partials``). Rejected partials are recomputed up to
        ``max_retries``; persistent non-finiteness raises
        :class:`~repro.runtime.health.NumericalHealthError` instead of
        degrading the backend (a weaker backend cannot fix numerics).
    max_unhealthy_iters:
        Consecutive unhealthy decomposition iterations (non-finite or
        worsening objective) the
        :class:`~repro.runtime.health.HealthMonitor` tolerates before
        directing a recovery.
    max_health_recoveries:
        Recoveries (restore-from-checkpoint, then reseed) the watchdog
        may attempt before raising
        :class:`~repro.runtime.health.NumericalHealthError`.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_respawns: int = 3
    chunk_timeout: Optional[float] = None
    heartbeat_interval: float = 0.5
    max_oom_splits: int = 8
    degrade: Tuple[str, ...] = ("thread", "serial")
    verify_partials: bool = True
    check_finite: bool = True
    max_unhealthy_iters: int = 3
    max_health_recoveries: int = 2

    def backoff(self, retry: int) -> float:
        """Backoff delay before retry ``retry`` (1-based)."""
        if retry <= 0:
            return 0.0
        return self.backoff_seconds * self.backoff_multiplier ** (retry - 1)

    def degrade_to(self, backend_name: str) -> Optional[str]:
        """Next weaker backend to fall back to from ``backend_name``."""
        strength = {"serial": 0, "thread": 1, "process": 2}
        current = strength.get(backend_name, 99)
        for name in self.degrade:
            if strength.get(name, 99) < current:
                return name
        return None

    def with_(self, **overrides: Any) -> "FallbackPolicy":
        """Copy with the given fields replaced (frozen-dataclass helper)."""
        return replace(self, **overrides)


#: Shared default policy (used when a context has no explicit one).
DEFAULT_FALLBACK = FallbackPolicy()

_POLICY_BOOL_FIELDS = ("verify_partials", "check_finite")
_POLICY_INT_FIELDS = (
    "max_retries",
    "max_respawns",
    "max_oom_splits",
    "max_unhealthy_iters",
    "max_health_recoveries",
)
_POLICY_FLOAT_FIELDS = (
    "backoff_seconds",
    "backoff_multiplier",
    "heartbeat_interval",
)


def parse_policy_spec(text: str) -> FallbackPolicy:
    """Parse a compact policy string into a :class:`FallbackPolicy`.

    Grammar (mirroring :func:`parse_fault_specs`): comma-separated
    ``key=value`` pairs over :data:`DEFAULT_FALLBACK`. Keys are the
    policy field names; values are coerced per field — integers for the
    ceilings, floats for the timings, ``chunk_timeout`` accepts a float
    or ``none``, booleans accept ``1/0/true/false/yes/no/on/off``, and
    ``degrade`` is a ``>``-separated backend chain (empty disables
    fallback). Example::

        "max_retries=4,chunk_timeout=2.5,degrade=thread>serial"
        "check_finite=false,degrade="
    """
    overrides: Dict[str, Any] = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        if "=" not in pair:
            raise ValueError(f"policy option {pair!r} must be key=value")
        key, value = (s.strip() for s in pair.split("=", 1))
        if key in _POLICY_INT_FIELDS:
            overrides[key] = int(value)
        elif key in _POLICY_FLOAT_FIELDS:
            overrides[key] = float(value)
        elif key in _POLICY_BOOL_FIELDS:
            lowered = value.lower()
            if lowered in ("1", "true", "yes", "on"):
                overrides[key] = True
            elif lowered in ("0", "false", "no", "off"):
                overrides[key] = False
            else:
                raise ValueError(
                    f"policy option {key}={value!r} must be a boolean "
                    f"(1/0/true/false/yes/no/on/off)"
                )
        elif key == "chunk_timeout":
            overrides[key] = (
                None if value.lower() in ("", "none") else float(value)
            )
        elif key == "degrade":
            overrides[key] = tuple(
                name.strip() for name in value.split(">") if name.strip()
            )
        else:
            known = (
                _POLICY_INT_FIELDS
                + _POLICY_FLOAT_FIELDS
                + _POLICY_BOOL_FIELDS
                + ("chunk_timeout", "degrade")
            )
            raise ValueError(
                f"unknown policy field {key!r}; expected one of "
                f"{sorted(known)}"
            )
    return DEFAULT_FALLBACK.with_(**overrides)


def policy_from_env() -> Optional[FallbackPolicy]:
    """Policy built from ``REPRO_POLICY``, or ``None`` when unset.

    Lets the bench harness and CI reshape a run's resilience without
    code changes::

        REPRO_POLICY="max_retries=4,chunk_timeout=2" python -m repro.bench ...
    """
    text = os.environ.get(POLICY_ENV_VAR, "").strip()
    if not text:
        return None
    return parse_policy_spec(text)
