"""Run-level resilience: deadlines, cooperative cancellation, health watchdog.

The fault layer (:mod:`repro.runtime.faults` + the supervision machinery
in :mod:`repro.parallel.backends`) protects individual *chunks*: a
crashed worker is respawned, a hung chunk re-dispatched, an OOM chunk
bisected. This module adds the guarantees a whole *run* needs before a
multi-tenant service can admit it — and preempt or evict it safely:

* :class:`CancelToken` — a thread-safe cancellation flag, composable
  parent→child via :meth:`CancelToken.derive`: cancelling a parent
  cancels every token derived from it (the child *pulls* the parent's
  state, so there is no registration race and tokens can be derived
  after the parent was already cancelled).
* Deadlines — ``ExecContext(deadline_seconds=...)`` arms a wall-clock
  budget measured from context construction.  Both are *cooperative*:
  :meth:`~repro.runtime.context.ExecContext.check_health` is called
  between chunks in every backend, between HOOI/HOQRI iterations, and
  inside the process-backend supervisor wait loop; it raises
  :class:`RunCancelledError` / :class:`DeadlineExceededError` at the
  next checkpoint-safe boundary. When the run has a ``checkpoint_dir``
  the decomposition drivers persist the last completed iteration before
  re-raising, so a preempted run resumes bit-for-bit.
* :class:`HealthMonitor` — a divergence/stall watchdog for the
  decomposition loop. Each iteration reports its objective; non-finite
  or worsening values accumulate *strikes*, and after
  ``policy.max_unhealthy_iters`` consecutive strikes the monitor
  directs a recovery: first restore from the last healthy snapshot,
  then reseed (the :func:`repro.decomp.restarts.reseed_seed`
  convention). When ``policy.max_health_recoveries`` recoveries are
  exhausted it raises :class:`NumericalHealthError`.

Every trip is observable: ``health.cancelled`` / ``health.deadline`` /
``health.nonfinite`` / ``health.divergence`` / ``health.recovery``
events plus ``health.*`` counters land on the run's collector.

Layering: this module sits in ``runtime`` (below ``parallel`` and
``decomp``) and must not import either — backends and drivers call
*down* into it.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

__all__ = [
    "CancelToken",
    "DeadlineExceededError",
    "HealthError",
    "HealthMonitor",
    "NumericalHealthError",
    "RunCancelledError",
]


# ---------------------------------------------------------------------------
# Failure taxonomy
# ---------------------------------------------------------------------------


class HealthError(RuntimeError):
    """Base for run-level health failures (cancel / deadline / numerics).

    Deliberately *not* a subclass of
    :class:`~repro.runtime.faults.BackendUnhealthyError`: backend
    degradation cannot fix a cancelled, expired or diverging run, so
    these propagate straight through
    :func:`repro.parallel.executor.parallel_s3ttmc`'s degradation path.
    """


class RunCancelledError(HealthError):
    """The run's :class:`CancelToken` was cancelled.

    Carries the reason passed to :meth:`CancelToken.cancel`.
    """

    def __init__(self, reason: str = "", site: str = ""):
        self.reason = reason
        self.site = site
        detail = reason or "cancelled"
        if site:
            detail = f"{detail} (at {site})"
        super().__init__(f"run cancelled: {detail}")


class DeadlineExceededError(HealthError):
    """The run outlived its ``deadline_seconds`` wall-clock budget."""

    def __init__(self, deadline_seconds: float, site: str = ""):
        self.deadline_seconds = float(deadline_seconds)
        self.site = site
        detail = f"deadline of {deadline_seconds:g}s exceeded"
        if site:
            detail = f"{detail} (at {site})"
        super().__init__(detail)


class NumericalHealthError(HealthError):
    """Numerical health could not be recovered within the policy budget.

    Raised when kernel outputs stay non-finite past the retry ceiling,
    or when the decomposition watchdog exhausts
    ``FallbackPolicy.max_health_recoveries`` without the objective
    returning to a finite, non-worsening trajectory.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(f"numerical health exhausted: {reason}")


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


class CancelToken:
    """Thread-safe cooperative cancellation flag, composable parent→child.

    ``cancel()`` is idempotent and may be called from any thread (e.g. a
    service's eviction timer while the run's main thread is inside a
    kernel). Workers never poll the token directly — the supervisor in
    the driving process checks between dispatches and kills/drains
    in-flight workers on trip.

    Child tokens (:meth:`derive`) *pull* their parent's state: a child
    is cancelled when it or any ancestor is, with no registration
    handshake — deriving from an already-cancelled parent yields an
    already-cancelled child, and there is no window in which a parent's
    cancellation can be missed.
    """

    __slots__ = ("_event", "_lock", "_parent", "_reason")

    def __init__(self, *, parent: Optional["CancelToken"] = None) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._parent = parent
        self._reason = ""

    def cancel(self, reason: str = "") -> None:
        """Cancel this token (and thereby every token derived from it)."""
        with self._lock:
            if not self._event.is_set():
                self._reason = reason
                self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether this token or any ancestor has been cancelled."""
        if self._event.is_set():
            return True
        parent = self._parent
        return parent is not None and parent.cancelled

    @property
    def reason(self) -> str:
        """The first cancellation reason along the ancestor chain."""
        parent = self._parent
        if parent is not None and parent.cancelled:
            return parent.reason
        return self._reason

    def derive(self) -> "CancelToken":
        """Child token: cancelled when this token is, or independently."""
        return CancelToken(parent=self)

    def raise_if_cancelled(self, site: str = "") -> None:
        """Raise :class:`RunCancelledError` if cancelled; else return."""
        if self.cancelled:
            raise RunCancelledError(self.reason, site)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state})"


# ---------------------------------------------------------------------------
# Numerical-health watchdog
# ---------------------------------------------------------------------------

#: Relative worsening tolerance: an objective increase below
#: ``_WORSEN_RTOL * max(norm_x_squared, 1)`` is numerical noise, not a
#: divergence strike. HOOI/HOQRI objectives are theoretically
#: non-increasing, so healthy runs never accumulate strikes.
_WORSEN_RTOL = 1e-9


class HealthMonitor:
    """Divergence/stall watchdog for the decomposition iteration loop.

    The driver calls :meth:`observe` once per iteration with the fresh
    objective value. The monitor tracks *consecutive* unhealthy
    iterations (non-finite objective, or objective worsening beyond
    numerical noise) and, once ``policy.max_unhealthy_iters`` strikes
    accumulate, answers with a recovery directive:

    ``"restore"``
        First recovery: restart from the last healthy snapshot — fixes
        transient corruption (e.g. a bit-flipped partial that slipped
        through) without losing converged progress.
    ``"reseed"``
        Subsequent recoveries: deterministic divergence will re-strike
        from the same snapshot, so re-initialize with the next restart
        seed (``base_seed + attempt``, the :mod:`repro.decomp.restarts`
        convention).

    ``None`` means the iteration is healthy (or still under the strike
    ceiling). When ``policy.max_health_recoveries`` directives have been
    issued and strikes accumulate again, :meth:`observe` raises
    :class:`NumericalHealthError`. Every strike and recovery emits a
    ``health.*`` event/counter on ``ctx``.
    """

    def __init__(self, policy: Any, ctx: Any = None) -> None:
        self.policy = policy
        self.ctx = ctx
        self.strikes = 0
        self.recoveries = 0

    def _emit(self, event: str, **attrs: Any) -> None:
        ctx = self.ctx
        if ctx is None:
            return
        ctx.event(f"health.{event}", **attrs)
        metrics = ctx.metrics
        if metrics is not None:
            metrics.counter(f"health.{event}").inc()

    def observe(
        self,
        objective: float,
        prev_objective: float,
        *,
        norm_x_squared: float = 1.0,
        iteration: int = 0,
    ) -> Optional[str]:
        """Record one iteration's objective; return a recovery directive.

        Returns ``None`` (healthy / under the strike ceiling),
        ``"restore"`` or ``"reseed"``; raises
        :class:`NumericalHealthError` when the recovery budget is spent.
        """
        import math

        finite = math.isfinite(objective)
        tol = _WORSEN_RTOL * max(abs(norm_x_squared), 1.0)
        worsened = (
            finite
            and math.isfinite(prev_objective)
            and objective - prev_objective > tol
        )
        if finite and not worsened:
            self.strikes = 0
            return None

        self.strikes += 1
        kind = "nonfinite" if not finite else "divergence"
        self._emit(
            kind,
            iteration=int(iteration),
            strikes=self.strikes,
            objective=float(objective) if finite else None,
        )
        if self.strikes < max(1, int(self.policy.max_unhealthy_iters)):
            return None

        self.strikes = 0
        if self.recoveries >= int(self.policy.max_health_recoveries):
            self._emit("exhausted", iteration=int(iteration))
            raise NumericalHealthError(
                f"objective {kind} persisted through "
                f"{self.recoveries} recoveries "
                f"(max_health_recoveries={self.policy.max_health_recoveries})"
            )
        self.recoveries += 1
        directive = "restore" if self.recoveries == 1 else "reseed"
        self._emit(
            "recovery",
            iteration=int(iteration),
            directive=directive,
            attempt=self.recoveries,
        )
        return directive
