"""Memory-budget accounting: deterministic out-of-memory reproduction.

The paper's evaluation is shaped by a 256 GB node: SPLATT dies first (its
CSF stores all ``N!``-expanded non-zeros and a full ``I × R^{N-1}`` output),
CSS later (full ``R^l`` intermediates), SymProp last. To reproduce those
"OOM" entries deterministically — independent of the actual RAM of the
machine running this reproduction — kernels *declare* their major
allocations against an ambient :class:`MemoryBudget` before performing
them. Exceeding the budget raises :class:`MemoryLimitError`, which the
benchmark harness renders as "OOM", exactly like the paper's figures.

Usage::

    with MemoryBudget(gigabytes=4):
        y = s3ttmc(x, u)          # raises MemoryLimitError if too large

With no active budget, accounting still happens (peak tracking) but nothing
is ever refused.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..obs import trace as _trace

__all__ = [
    "MemoryLimitError",
    "MemoryBudget",
    "current_budget",
    "request_bytes",
    "release_bytes",
    "track_array",
]

_FLOAT64 = 8


class MemoryLimitError(MemoryError):
    """Raised when a declared allocation would exceed the active budget.

    Carries enough context for harness reporting: what was being allocated,
    how large, and against which limit.
    """

    def __init__(self, label: str, nbytes: int, limit: int, in_use: int):
        self.label = label
        self.nbytes = int(nbytes)
        self.limit = int(limit)
        self.in_use = int(in_use)
        super().__init__(
            f"allocation {label!r} of {nbytes / 2**30:.3f} GiB exceeds budget: "
            f"{in_use / 2**30:.3f} GiB in use of {limit / 2**30:.3f} GiB limit"
        )


@dataclass
class MemoryBudget:
    """A nestable, thread-local memory accounting scope.

    Parameters
    ----------
    limit_bytes:
        Hard cap; ``None`` means unlimited (accounting only).
    gigabytes:
        Convenience alternative to ``limit_bytes`` (GiB).
    """

    limit_bytes: Optional[int] = None
    gigabytes: Optional[float] = None
    in_use: int = 0
    peak: int = 0
    allocations: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.gigabytes is not None:
            if self.limit_bytes is not None:
                raise ValueError("pass either limit_bytes or gigabytes, not both")
            self.limit_bytes = int(self.gigabytes * 2**30)
        self._lock = threading.Lock()

    # -- accounting -------------------------------------------------------
    def request(self, nbytes: int, label: str = "array", *, collector=None) -> None:
        """Declare an allocation of ``nbytes``; raise if over the limit.

        ``collector`` routes the budget events/metrics into a specific
        :class:`~repro.obs.trace.TraceCollector` (the execution-context
        path) instead of the ambient one.
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._lock:
            if self.limit_bytes is not None and self.in_use + nbytes > self.limit_bytes:
                refused_collector = (
                    collector if collector is not None else _trace.active_collector()
                )
                if refused_collector is not None:
                    _trace.event(
                        "budget.refused",
                        collector=refused_collector,
                        label=label,
                        nbytes=nbytes,
                        in_use=self.in_use,
                        limit=self.limit_bytes,
                    )
                raise MemoryLimitError(label, nbytes, self.limit_bytes, self.in_use)
            self.in_use += nbytes
            self.peak = max(self.peak, self.in_use)
            self.allocations[label] = self.allocations.get(label, 0) + nbytes
            in_use, peak = self.in_use, self.peak
        if collector is None:
            collector = _trace.active_collector()
        if collector is not None:
            _trace.event(
                "budget.request",
                collector=collector,
                label=label,
                nbytes=nbytes,
                in_use=in_use,
            )
            collector.metrics.gauge("budget.peak_bytes").update_max(peak)
            # Delta update, not set(in_use): several budgets (or worker
            # threads) may report into one collector, and add() is the
            # form that stays correct without holding the budget lock.
            collector.metrics.gauge("budget.in_use_bytes").add(nbytes)
            collector.metrics.counter("budget.requests").inc()

    def release(self, nbytes: int, label: str = "array", *, collector=None) -> None:
        """Return previously requested bytes to the budget."""
        nbytes = int(nbytes)
        with self._lock:
            self.in_use = max(0, self.in_use - nbytes)
            if label in self.allocations:
                remaining = self.allocations[label] - nbytes
                if remaining <= 0:
                    del self.allocations[label]
                else:
                    self.allocations[label] = remaining
            in_use = self.in_use
        if collector is None:
            collector = _trace.active_collector()
        if collector is not None:
            _trace.event(
                "budget.release",
                collector=collector,
                label=label,
                nbytes=nbytes,
                in_use=in_use,
            )
            collector.metrics.gauge("budget.in_use_bytes").add(-nbytes)

    def assert_drained(self) -> None:
        """Raise if accounted bytes remain in use (kernel leak check).

        Every kernel pairs its requests with releases on all exit paths,
        so after any completed (or cleanly failed) run ``in_use`` must be
        back to zero. The verification suite calls this after every case;
        the error lists the labels still held, which names the leak.
        """
        with self._lock:
            if self.in_use:
                held = dict(self.allocations)
                raise RuntimeError(
                    f"memory budget not drained: {self.in_use} bytes still "
                    f"accounted after the run; held allocations: {held}"
                )

    def observe_peak(self, nbytes: int) -> None:
        """Fold an externally measured high-water mark into ``peak``.

        Used by the process execution backend: workers account against a
        mirrored budget in their own process and report their peak back,
        so the parent's ``peak`` reflects the whole run (see
        :mod:`repro.parallel.shm`).
        """
        with self._lock:
            self.peak = max(self.peak, int(nbytes))

    # -- scope management --------------------------------------------------
    def __enter__(self) -> "MemoryBudget":
        _stack().append(self)
        return self

    def __exit__(self, *exc) -> None:
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()


_LOCAL = threading.local()


def _stack() -> List[MemoryBudget]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_budget() -> Optional[MemoryBudget]:
    """Innermost active budget on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def request_bytes(nbytes: int, label: str = "array") -> None:
    """Declare ``nbytes`` against the active budget.

    Without a budget this only emits a trace event (and nothing at all
    when tracing is off), so traces still capture allocation declarations
    from budget-less runs.
    """
    budget = current_budget()
    if budget is not None:
        budget.request(nbytes, label)
    elif _trace.tracing_enabled():
        _trace.event("budget.request", label=label, nbytes=int(nbytes))


def release_bytes(nbytes: int, label: str = "array") -> None:
    """Release ``nbytes`` from the active budget (see :func:`request_bytes`)."""
    budget = current_budget()
    if budget is not None:
        budget.release(nbytes, label)
    elif _trace.tracing_enabled():
        _trace.event("budget.release", label=label, nbytes=int(nbytes))


@contextmanager
def track_array(shape, label: str, itemsize: int = _FLOAT64) -> Iterator[int]:
    """Context manager declaring an array allocation for its lifetime.

    Yields the byte count. The bytes are released when the scope exits —
    use for *transient* buffers; for arrays returned to the caller, call
    :func:`request_bytes` without release.
    """
    nbytes = itemsize
    for extent in shape:
        nbytes *= int(extent)
    request_bytes(nbytes, label)
    try:
        yield nbytes
    finally:
        release_bytes(nbytes, label)
