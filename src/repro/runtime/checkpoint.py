"""Iteration checkpointing for long decomposition runs.

HOOI/HOQRI sweeps on the paper's large datasets run for hours; a killed
process must not forfeit the iterations already paid for. Drivers pass
``checkpoint_dir=`` to persist their full per-sweep state — factor (and
HOQRI's pre-QR update matrix), core, convergence trace, objective
bookkeeping, and the run configuration — after each iteration, and
``resume=True`` to continue a killed run *bit-for-bit*: the iteration
loop restarts from the exact arrays the checkpoint holds, so the resumed
trajectory is indistinguishable from an uninterrupted one.

Format
------
One rolling ``checkpoint.npz`` per directory, written atomically:
arrays are serialized with :func:`numpy.savez` into a same-directory
temporary file, flushed and fsynced, then :func:`os.replace`d over the
previous checkpoint — a crash mid-write leaves the old checkpoint
intact, never a torn file. Scalar state and the config fingerprint
travel in an embedded JSON document (``meta``); the config records the
algorithm, rank, kernel and a tensor fingerprint
``(dim, order, unnz, values-sum)`` so a checkpoint cannot silently
resume against the wrong run.

Checkpoint I/O is observable: ``checkpoint.save`` / ``checkpoint.load``
spans plus ``checkpoint.saves`` / ``checkpoint.loads`` counters and a
``checkpoint.bytes`` gauge on the run's collector.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .context import ExecContext, resolve_context

__all__ = [
    "CHECKPOINT_FILENAME",
    "CHECKPOINT_VERSION",
    "CheckpointState",
    "checkpoint_path",
    "load_checkpoint",
    "save_checkpoint",
    "tensor_fingerprint",
]

CHECKPOINT_VERSION = 1
CHECKPOINT_FILENAME = "checkpoint.npz"


def _normalize_config_value(value: Any) -> Any:
    """JSON-shape a config value for comparison: tuples become lists,
    integer-like scalars become ``int`` — matching what a save/load
    roundtrip does to the stored side."""
    if isinstance(value, (list, tuple)):
        return [_normalize_config_value(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalize_config_value(v) for k, v in value.items()}
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    return value


def tensor_fingerprint(tensor: Any) -> Dict[str, Any]:
    """Cheap identity fingerprint binding a checkpoint to its input."""
    return {
        "dim": int(tensor.dim),
        "order": int(tensor.order),
        "unnz": int(tensor.unnz),
        "values_sum": float(np.sum(tensor.values)),
    }


@dataclass
class CheckpointState:
    """Everything needed to continue a decomposition run bit-for-bit.

    ``factor`` is the factor matrix *after* ``iteration`` completed;
    ``a`` is HOQRI's pre-QR update matrix (``None`` for HOOI);
    ``core_data`` is the compact core unfolding so a fully-converged
    checkpoint can reconstruct its result without iterating. ``config``
    carries the run fingerprint checked on resume.
    """

    algorithm: str
    iteration: int
    factor: np.ndarray
    prev_objective: float
    norm_x_squared: float
    converged: bool
    objective: List[float] = field(default_factory=list)
    relative_error: List[float] = field(default_factory=list)
    core_norm_squared: List[float] = field(default_factory=list)
    a: Optional[np.ndarray] = None
    core_data: Optional[np.ndarray] = None
    core_nrows: int = 0
    config: Dict[str, Any] = field(default_factory=dict)

    def check_config(self, expected: Dict[str, Any]) -> None:
        """Raise ``ValueError`` on any config-field mismatch.

        Sequences are compared structurally (tuples and lists equal when
        their elements are): the config travels through JSON, which turns
        every tuple into a list, and values like the sharded-run shard
        map (``"shard_ranges"``: a sequence of ``(start, stop)`` pairs)
        must roundtrip regardless of which container the driver built
        them in.
        """
        for key, want in expected.items():
            got = self.config.get(key)
            if isinstance(want, float) or isinstance(got, float):
                same = (
                    got is not None
                    and want is not None
                    and float(got) == float(want)
                )
            else:
                same = _normalize_config_value(got) == _normalize_config_value(
                    want
                )
            if not same:
                raise ValueError(
                    f"checkpoint config mismatch for {key!r}: "
                    f"checkpoint has {got!r}, run expects {want!r}"
                )


def checkpoint_path(directory: Union[str, Path]) -> Path:
    """The rolling checkpoint file inside ``directory``."""
    return Path(directory) / CHECKPOINT_FILENAME


def save_checkpoint(
    directory: Union[str, Path],
    state: CheckpointState,
    *,
    ctx: Optional[ExecContext] = None,
) -> Path:
    """Atomically persist ``state`` into ``directory`` (created if needed).

    Write-to-temp + fsync + :func:`os.replace`: at every instant the
    directory holds either the previous complete checkpoint or the new
    one, never a partial file. Returns the checkpoint path.
    """
    ctx = resolve_context(ctx)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = checkpoint_path(directory)
    meta = {
        "version": CHECKPOINT_VERSION,
        "algorithm": state.algorithm,
        "iteration": int(state.iteration),
        "prev_objective": float(state.prev_objective),
        "norm_x_squared": float(state.norm_x_squared),
        "converged": bool(state.converged),
        "core_nrows": int(state.core_nrows),
        "config": state.config,
    }
    arrays: Dict[str, np.ndarray] = {
        "factor": np.asarray(state.factor, dtype=np.float64),
        "objective": np.asarray(state.objective, dtype=np.float64),
        "relative_error": np.asarray(state.relative_error, dtype=np.float64),
        "core_norm_squared": np.asarray(
            state.core_norm_squared, dtype=np.float64
        ),
        "meta_json": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ),
    }
    if state.a is not None:
        arrays["a"] = np.asarray(state.a, dtype=np.float64)
    if state.core_data is not None:
        arrays["core_data"] = np.asarray(state.core_data, dtype=np.float64)

    with ctx.span(
        "checkpoint.save", iteration=state.iteration, algorithm=state.algorithm
    ):
        fd, tmp_name = tempfile.mkstemp(
            prefix=".checkpoint.", suffix=".npz.tmp", dir=str(directory)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    metrics = ctx.metrics
    if metrics is not None:
        metrics.counter("checkpoint.saves").inc()
        metrics.gauge("checkpoint.bytes").update_max(target.stat().st_size)
    return target


def load_checkpoint(
    directory: Union[str, Path], *, ctx: Optional[ExecContext] = None
) -> Optional[CheckpointState]:
    """Load the checkpoint in ``directory``; ``None`` when absent."""
    ctx = resolve_context(ctx)
    target = checkpoint_path(directory)
    if not target.is_file():
        return None
    with ctx.span("checkpoint.load"):
        with np.load(target) as data:
            meta = json.loads(bytes(data["meta_json"]).decode("utf-8"))
            if meta.get("version") != CHECKPOINT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint version {meta.get('version')!r} "
                    f"in {target}"
                )
            state = CheckpointState(
                algorithm=meta["algorithm"],
                iteration=int(meta["iteration"]),
                factor=np.array(data["factor"]),
                prev_objective=float(meta["prev_objective"]),
                norm_x_squared=float(meta["norm_x_squared"]),
                converged=bool(meta["converged"]),
                objective=[float(v) for v in data["objective"]],
                relative_error=[float(v) for v in data["relative_error"]],
                core_norm_squared=[float(v) for v in data["core_norm_squared"]],
                a=np.array(data["a"]) if "a" in data.files else None,
                core_data=(
                    np.array(data["core_data"])
                    if "core_data" in data.files
                    else None
                ),
                core_nrows=int(meta.get("core_nrows", 0)),
                config=dict(meta.get("config", {})),
            )
    metrics = ctx.metrics
    if metrics is not None:
        metrics.counter("checkpoint.loads").inc()
    return state
