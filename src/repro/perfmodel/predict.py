"""Runtime prediction: closed-form flops × calibrated machine rates.

Combines the Eq.-9-style flop models with empirically measured effective
flop rates to extrapolate runtimes for configurations too expensive to
measure — the mechanism behind the benchmark harness's ``~`` (estimated)
cells, exposed as a library feature for capacity planning.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from ..symmetry.combinatorics import sym_storage_size
from .complexity import total_cp, total_css, total_sp

__all__ = [
    "kernel_flops_model",
    "RateCalibration",
    "predict_seconds",
    "predict_parallel_seconds",
]


def kernel_flops_model(
    family: str, order: int, rank: int, unnz: int, dim: int = 400
) -> float:
    """Closed-form kernel flop count per invocation.

    ``family`` ∈ {"symprop", "symprop-tc", "css", "splatt", "hoqri-nary",
    "cp"}, optionally with an engine-mode suffix (``symprop+compiled``):
    the fused compiled kernels perform the same arithmetic, so a suffixed
    family shares its base family's flop count (only its calibrated
    *rate* differs).
    """
    family = family.partition("+")[0] or family
    if family in ("symprop", "symprop-tc"):
        return float(total_sp(order, rank, unnz))
    if family == "css":
        return float(total_css(order, rank, unnz))
    if family == "cp":
        return float(total_cp(order, rank, unnz))
    if family == "splatt":
        # CSF TTMc over the expanded tensor: depth-d combine costs
        # 2·n_{d+1}·R^{N-d} with n_{d+1} ≤ min(nnz, dim^{d+1}) fiber-tree
        # nodes (prefix sharing caps the shallow levels).
        nnz = math.factorial(order) * unnz
        total = 0.0
        for d in range(1, order):
            nodes = min(nnz, dim ** (d + 1))
            total += 2.0 * nodes * rank ** (order - d)
        return total
    if family == "hoqri-nary":
        return float(2 * rank**order * math.factorial(order) * unnz)
    raise ValueError(f"unknown family {family!r}")


class RateCalibration:
    """Effective flop rates per kernel family, from measured samples.

    Record ``(flops, seconds)`` pairs as you measure; query the median rate
    per family (falling back to the pooled median — the same vectorized
    engine backs every family, so rates transfer approximately).
    """

    def __init__(self) -> None:
        self.samples: Dict[str, List[float]] = {}

    def record(self, family: str, flops: float, seconds: float) -> None:
        if seconds > 1e-4 and flops > 0:
            self.samples.setdefault(family, []).append(flops / seconds)

    def rate(self, family: str) -> Optional[float]:
        rates = self.samples.get(family)
        if not rates:
            rates = [r for rs in self.samples.values() for r in rs]
        if not rates:
            return None
        return float(np.median(rates))


def predict_seconds(
    calibration: RateCalibration,
    family: str,
    order: int,
    rank: int,
    unnz: int,
    dim: int = 400,
) -> Optional[float]:
    """Extrapolated runtime, or ``None`` without any calibration sample."""
    rate = calibration.rate(family)
    if rate is None:
        return None
    return kernel_flops_model(family, order, rank, unnz, dim) / rate


def predict_parallel_seconds(
    calibration: RateCalibration,
    family: str,
    order: int,
    rank: int,
    unnz: int,
    *,
    n_workers: int,
    sharding: str = "broadcast",
    dim: int = 400,
    reduce_bandwidth_bytes: float = 4e9,
) -> Optional[float]:
    """Extrapolated parallel runtime, including the partial reduction.

    The compute term divides the serial prediction across ``n_workers``
    (balanced chunks — the executor's partitioner targets exactly that).
    The reduce term models the bytes the reduction must move, which is
    where the two distribution modes differ:

    * ``"broadcast"`` — the parent performs one indexed add per worker
      row-block in slot order: ``p · rows · S`` doubles cross memory.
    * ``"owned"`` — the hierarchical pairwise tree
      (:mod:`repro.parallel.sharding`) runs ``ceil(log2 p)`` rounds whose
      concurrent merges each move at most one ``rows · S`` block.

    ``rows`` is the structural row-block bound ``min(dim, shard_nz·order)``.
    Used for admission control: pick the mode whose predicted time fits,
    alongside :func:`repro.perfmodel.memory.worker_footprint` for the
    memory side. Returns ``None`` without any calibration sample.
    """
    if sharding not in ("broadcast", "owned"):
        raise ValueError(f"unknown sharding {sharding!r}")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    serial = predict_seconds(calibration, family, order, rank, unnz, dim)
    if serial is None:
        return None
    shard_nz = -(-unnz // n_workers)
    rows = min(dim, shard_nz * order)
    block_bytes = rows * sym_storage_size(order - 1, rank) * 8
    if sharding == "owned":
        reduce_bytes = math.ceil(math.log2(n_workers)) * block_bytes if n_workers > 1 else 0
    else:
        reduce_bytes = n_workers * block_bytes
    return serial / n_workers + reduce_bytes / reduce_bandwidth_bytes
