"""Closed-form memory footprints: who OOMs where, and why.

Every "OOM" entry in Figures 4, 5 and 7 is explained by one of four
allocations; this module computes them exactly so harnesses (and tests)
can predict budget exhaustion without running the kernels:

* SPLATT: the expanded non-zero set and the full output ``Y_(1)``;
* CSS: full intermediate ``K`` tensors plus the full output;
* SymProp: compact intermediates plus the compact output ``Y_p(1)``;
* HOOI: the SVD-side expansion of ``Y_p`` to ``I × R^{N-1}``.

:func:`worker_footprint` extends the same accounting to the parallel
backends' per-worker peak: under ``sharding="broadcast"`` every worker
holds the whole non-zero list, under ``sharding="owned"``
(:mod:`repro.parallel.sharding`) only its shard slice plus the private
row-block — ``O(shard + row-block)`` instead of ``O(tensor)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..symmetry.combinatorics import binomial, dense_size, sym_storage_size

__all__ = [
    "y_full_bytes",
    "y_compact_bytes",
    "expanded_coo_bytes",
    "lattice_level_nodes_bound",
    "intermediate_bytes_bound",
    "suggest_nz_batch",
    "KernelFootprint",
    "kernel_footprint",
    "WorkerFootprint",
    "worker_footprint",
]

_FLOAT = 8
_INT = 8


def y_full_bytes(dim: int, order: int, rank: int) -> int:
    """Full matricized output ``Y_(1) ∈ R^{I × R^{N-1}}`` (CSS / SPLATT / HOOI-SVD)."""
    return dim * dense_size(order - 1, rank) * _FLOAT


def y_compact_bytes(dim: int, order: int, rank: int) -> int:
    """Compact output ``Y_p(1) ∈ R^{I × S_{N-1,R}}`` (SymProp)."""
    return dim * sym_storage_size(order - 1, rank) * _FLOAT


def expanded_coo_bytes(order: int, unnz: int, *, all_distinct: bool = True) -> int:
    """Expanded non-zero storage (indices + values) for general formats.

    ``all_distinct`` assumes maximal ``N!`` multiplicity per IOU non-zero
    (the common case for hypergraph data with distinct nodes); otherwise
    callers should sum exact permutation counts.
    """
    per = math.factorial(order) if all_distinct else 1
    nnz = per * unnz
    return nnz * (order * _INT + _FLOAT)


def lattice_level_nodes_bound(order: int, level: int, unnz: int) -> int:
    """Upper bound on level-``level`` lattice nodes for ``unnz`` non-zeros.

    Each non-zero contributes at most ``C(N, l)`` distinct sub-multisets
    (Section III-D); global memoization only reduces this.
    """
    return binomial(order, level) * unnz


def intermediate_bytes_bound(
    order: int, rank: int, unnz: int, intermediate: str
) -> int:
    """Worst-case bytes of the largest per-level ``K`` array."""
    worst = 0
    for level in range(2, order):
        size = (
            sym_storage_size(level, rank)
            if intermediate == "compact"
            else dense_size(level, rank)
        )
        worst = max(worst, lattice_level_nodes_bound(order, level, unnz) * size * _FLOAT)
    return worst


def suggest_nz_batch(
    order: int,
    rank: int,
    intermediate: str,
    budget_bytes: int,
    *,
    fraction: float = 0.25,
    default: int = 512,
) -> Optional[int]:
    """Largest non-zero batch whose intermediates fit ``fraction`` of budget.

    Returns ``None`` (no batching needed) when even the default batch fits,
    or a smaller batch size; returns 0 when a *single* non-zero's lattice
    cannot fit — a guaranteed OOM the caller should surface.
    """
    allowance = int(budget_bytes * fraction)
    per_nz = intermediate_bytes_bound(order, rank, 1, intermediate)
    if per_nz == 0:
        return None
    if per_nz > allowance:
        return 0
    batch = max(1, allowance // per_nz)
    return min(batch, default)


@dataclass(frozen=True)
class KernelFootprint:
    """Dominant allocations of one kernel invocation (bytes)."""

    output: int
    intermediates: int
    expansion: int

    @property
    def total(self) -> int:
        return self.output + self.intermediates + self.expansion

    def fits(self, budget_bytes: int) -> bool:
        return self.total <= budget_bytes


def kernel_footprint(
    kernel: str,
    dim: int,
    order: int,
    rank: int,
    unnz: int,
    *,
    nz_batch: int = 512,
) -> KernelFootprint:
    """Footprint of one kernel family on one problem.

    ``kernel`` ∈ {"symprop", "css", "splatt", "hoqri-nary", "hooi-svd"}.
    """
    batch = max(1, min(nz_batch, unnz))
    if kernel == "symprop":
        return KernelFootprint(
            output=y_compact_bytes(dim, order, rank),
            intermediates=intermediate_bytes_bound(order, rank, batch, "compact"),
            expansion=0,
        )
    if kernel == "css":
        return KernelFootprint(
            output=y_full_bytes(dim, order, rank),
            intermediates=intermediate_bytes_bound(order, rank, batch, "full"),
            expansion=0,
        )
    if kernel == "splatt":
        return KernelFootprint(
            output=y_full_bytes(dim, order, rank),
            intermediates=0,
            expansion=expanded_coo_bytes(order, unnz),
        )
    if kernel == "hoqri-nary":
        return KernelFootprint(
            output=dim * rank * _FLOAT,
            intermediates=rank * dense_size(order - 1, rank) * _FLOAT,
            expansion=expanded_coo_bytes(order, unnz),
        )
    if kernel == "hooi-svd":
        return KernelFootprint(
            output=y_compact_bytes(dim, order, rank),
            intermediates=y_full_bytes(dim, order, rank),
            expansion=0,
        )
    raise ValueError(f"unknown kernel {kernel!r}")


@dataclass(frozen=True)
class WorkerFootprint:
    """Peak bytes one parallel worker must hold resident (SymProp kernel)."""

    tensor: int  # non-zero indices + values the worker sees
    partial: int  # its output partial (compact row-block)
    intermediates: int  # per-batch lattice K arrays

    @property
    def total(self) -> int:
        return self.tensor + self.partial + self.intermediates

    def fits(self, budget_bytes: int) -> bool:
        return self.total <= budget_bytes


def worker_footprint(
    dim: int,
    order: int,
    rank: int,
    unnz: int,
    *,
    n_workers: int,
    sharding: str = "broadcast",
    shard_nnz: Optional[int] = None,
    shard_rows: Optional[int] = None,
    nz_batch: int = 512,
) -> WorkerFootprint:
    """Per-worker peak footprint of one parallel S³TTMc invocation.

    ``sharding="broadcast"`` gives every worker the whole non-zero list
    (the legacy layout); ``sharding="owned"`` gives each worker only its
    shard — modeled as the balanced ``ceil(unnz / n_workers)`` slice
    unless the caller passes the actual ``shard_nnz`` (widest shard) from
    a real partition. ``shard_rows`` bounds the private row-block; the
    default is the structural bound ``min(dim, shard_nnz · order)``
    (a chunk cannot touch more output rows than it has index entries).
    Both modes accumulate into compact row-blocks; only the resident
    tensor bytes differ — which is exactly the broadcast-vs-owned column
    of the docs' memory table.
    """
    if sharding not in ("broadcast", "owned"):
        raise ValueError(f"unknown sharding {sharding!r}")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    per_nz = order * _INT + _FLOAT
    if sharding == "owned":
        if shard_nnz is None:
            shard_nnz = -(-unnz // n_workers)  # balanced-slice bound
        tensor_bytes = shard_nnz * per_nz
    else:
        shard_nnz = -(-unnz // n_workers) if shard_nnz is None else shard_nnz
        tensor_bytes = unnz * per_nz
    if shard_rows is None:
        shard_rows = min(dim, shard_nnz * order)
    cols = sym_storage_size(order - 1, rank)
    batch = max(1, min(nz_batch, max(shard_nnz, 1)))
    return WorkerFootprint(
        tensor=tensor_bytes,
        partial=shard_rows * cols * _FLOAT,
        intermediates=intermediate_bytes_bound(order, rank, batch, "compact"),
    )


def footprint_table(
    dim: int, order: int, rank: int, unnz: int
) -> Dict[str, KernelFootprint]:
    """Footprints of all kernel families on one problem."""
    return {
        k: kernel_footprint(k, dim, order, rank, unnz)
        for k in ("symprop", "css", "splatt", "hoqri-nary", "hooi-svd")
    }
