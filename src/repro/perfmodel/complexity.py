"""Closed-form complexity models (Section III-D, Table II, Eq. 9).

These are the paper's flop-count formulas, implemented exactly; the test
suite equates them with the instrumented kernel counters
(:class:`repro.core.stats.KernelStats`) on all-distinct-index tensors with
per-non-zero memoization — the regime the formulas describe.
"""

from __future__ import annotations

import math
from typing import Dict

from ..symmetry.combinatorics import binomial, sym_storage_size

__all__ = [
    "c_css",
    "c_sp",
    "total_css",
    "total_sp",
    "total_cp",
    "kernel_flops_for_layout",
    "level_reduction_ratio",
    "svd_cost",
    "qr_cost",
    "hoqri_nary_cost",
    "ttmc_tc_extra_cost",
    "table2_complexities",
]


def c_css(level: int, order: int, rank: int, unnz: int) -> int:
    """Level-``l`` S³TTMc cost with full intermediates:
    ``(2l−1)·C(N,l)·R^l·unnz``."""
    return (2 * level - 1) * binomial(order, level) * rank**level * unnz


def c_sp(level: int, order: int, rank: int, unnz: int) -> int:
    """Level-``l`` S³TTMc cost with compact intermediates (Eq. 9):
    ``(2l−1)·C(N,l)·S_{l,R}·unnz``."""
    return (
        (2 * level - 1)
        * binomial(order, level)
        * sym_storage_size(level, rank)
        * unnz
    )


def total_css(order: int, rank: int, unnz: int) -> int:
    """``C^CSS = Σ_{l=2}^{N-1} c_css + 2N·R^{N-1}·unnz`` (Section V-C)."""
    levels = sum(c_css(l, order, rank, unnz) for l in range(2, order))
    return levels + 2 * order * rank ** (order - 1) * unnz


def total_sp(order: int, rank: int, unnz: int) -> int:
    """``C^SP = Σ_{l=2}^{N-1} c_sp + 2N·S_{N-1,R}·unnz``."""
    levels = sum(c_sp(l, order, rank, unnz) for l in range(2, order))
    return levels + 2 * order * sym_storage_size(order - 1, rank) * unnz


def total_cp(order: int, rank: int, unnz: int) -> int:
    """MTTKRP via the elementwise (``cp``) intermediate layout:
    ``Σ_{l=2}^{N-1} (2l−1)·C(N,l)·R·unnz + 2N·R·unnz``."""
    levels = sum(
        (2 * l - 1) * binomial(order, l) * rank for l in range(2, order)
    )
    return (levels + 2 * order * rank) * unnz


def kernel_flops_for_layout(
    intermediate: str, order: int, rank: int, unnz: int
) -> int:
    """Exact kernel flops of one :func:`repro.core.engine.lattice_ttmc`
    call in the closed-form regime.

    Valid when every index tuple has ``order`` distinct values and
    memoization is per-non-zero (``memoize="nonzero"``) — exactly the
    regime Eq. 9 describes. :class:`repro.core.stats.KernelStats`
    equals these numbers there (the ``repro.verify`` flop invariant).
    """
    if intermediate == "compact":
        return total_sp(order, rank, unnz)
    if intermediate == "full":
        return total_css(order, rank, unnz)
    if intermediate == "cp":
        return total_cp(order, rank, unnz)
    raise ValueError(f"unknown intermediate layout {intermediate!r}")


def level_reduction_ratio(level: int, rank: int) -> float:
    """``R^l / S_{l,R}`` — approaches ``l!`` as ``R → ∞`` (Section III-D)."""
    return rank**level / sym_storage_size(level, rank)


def svd_cost(dim: int, order: int, rank: int) -> int:
    """HOOI SVD step: ``O(I·R^{N-1}·min(I, R^{N-1}))``."""
    cols = rank ** (order - 1)
    return dim * cols * min(dim, cols)


def qr_cost(dim: int, rank: int) -> int:
    """HOQRI QR step: ``O(I·R²)``."""
    return dim * rank**2


def hoqri_nary_cost(order: int, rank: int, unnz: int) -> int:
    """Original HOQRI n-ary contraction: ``O(R^N·N!·unnz)`` (Table II)."""
    return rank**order * math.factorial(order) * unnz


def ttmc_tc_extra_cost(dim: int, order: int, rank: int) -> int:
    """The two Algorithm-2 GEMMs: ``O(I·S_{N-1,R}·R)`` each."""
    return 2 * dim * sym_storage_size(order - 1, rank) * rank


def table2_complexities(
    dim: int, order: int, rank: int, unnz: int
) -> Dict[str, int]:
    """All four Table II algorithm complexities (per iteration)."""
    return {
        "HOOI-CSS": total_css(order, rank, unnz) + svd_cost(dim, order, rank),
        "HOOI-SymProp": total_sp(order, rank, unnz) + svd_cost(dim, order, rank),
        "HOQRI": hoqri_nary_cost(order, rank, unnz),
        "HOQRI-SymProp": total_sp(order, rank, unnz)
        + ttmc_tc_extra_cost(dim, order, rank)
        + qr_cost(dim, rank),
    }
