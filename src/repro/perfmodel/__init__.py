"""Analytic performance models: flop counts (Eq. 9, Table II) and memory."""

from .complexity import (
    c_css,
    c_sp,
    hoqri_nary_cost,
    level_reduction_ratio,
    qr_cost,
    svd_cost,
    table2_complexities,
    total_css,
    total_sp,
    ttmc_tc_extra_cost,
)
from .predict import RateCalibration, kernel_flops_model, predict_seconds
from .memory import (
    KernelFootprint,
    expanded_coo_bytes,
    footprint_table,
    intermediate_bytes_bound,
    kernel_footprint,
    lattice_level_nodes_bound,
    suggest_nz_batch,
    y_compact_bytes,
    y_full_bytes,
)

__all__ = [
    "c_css",
    "c_sp",
    "total_css",
    "total_sp",
    "level_reduction_ratio",
    "svd_cost",
    "qr_cost",
    "hoqri_nary_cost",
    "ttmc_tc_extra_cost",
    "table2_complexities",
    "y_full_bytes",
    "RateCalibration",
    "kernel_flops_model",
    "predict_seconds",
    "y_compact_bytes",
    "expanded_coo_bytes",
    "lattice_level_nodes_bound",
    "intermediate_bytes_bound",
    "suggest_nz_batch",
    "KernelFootprint",
    "kernel_footprint",
    "footprint_table",
]
