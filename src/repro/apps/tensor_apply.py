"""Symmetric tensor–vector products via rank-1 S³TTMc.

``apply(X, x) = X ×₂ xᵀ ×₃ xᵀ … ×_N xᵀ`` (a vector on every mode but one)
is the workhorse of symmetric tensor eigencomputations ([16]'s GPU
use case) and hypergraph spectral methods. For a rank-1 "factor" the
compact intermediate tensors have ``S_{l,1} = 1`` entry each, so the
SymProp kernel degenerates to exactly the right algorithm — we simply call
it with a one-column matrix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.plan import TTMcPlan
from ..core.s3ttmc import SymmetricInput, _as_ucoo, s3ttmc

__all__ = ["symmetric_apply", "rayleigh_quotient"]


def symmetric_apply(
    tensor: SymmetricInput,
    vector: np.ndarray,
    *,
    plan: Optional[TTMcPlan] = None,
) -> np.ndarray:
    """``y_i = Σ_{i∈nz} X(i, j_2..j_N) x_{j_2} ⋯ x_{j_N}`` — ``X x^{N-1}``.

    Returns a length-``I`` vector. Reuses the tensor's cached S³TTMc plan,
    so repeated applies (power iterations) cost only the numeric work.
    """
    ucoo = _as_ucoo(tensor)
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    if vector.shape[0] != ucoo.dim:
        raise ValueError(f"vector must have length {ucoo.dim}")
    y = s3ttmc(ucoo, vector[:, None], plan=plan)
    return y.unfolding[:, 0].copy()


def rayleigh_quotient(tensor: SymmetricInput, vector: np.ndarray) -> float:
    """``X x^N = xᵀ (X x^{N-1})`` — the symmetric tensor Rayleigh quotient."""
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    return float(vector @ symmetric_apply(tensor, vector))
