"""Empirical higher-order moment tensors (Sherman & Kolda, intro ref [6]).

The order-``N`` moment tensor of mean-adjusted data ``x ∈ R^I`` is
``M = E[x ⊗ … ⊗ x]`` — fully symmetric by construction. Estimating it from
samples and decomposing it symmetrically is one of the motivating
applications of sparse symmetric tensor machinery: after thresholding the
(dense but concentrated) empirical moments, the result is exactly the
sparse symmetric tensor this library decomposes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats.ucoo import SparseSymmetricTensor
from ..symmetry.iou import enumerate_iou

__all__ = ["empirical_moment_tensor"]


def empirical_moment_tensor(
    samples: np.ndarray,
    order: int,
    *,
    center: bool = True,
    threshold: float = 0.0,
    chunk: int = 2048,
    max_entries: Optional[int] = 2_000_000,
) -> SparseSymmetricTensor:
    """Estimate ``E[x^{⊗order}]`` from ``(n_samples, dim)`` data.

    Parameters
    ----------
    samples:
        Data matrix; rows are observations.
    order:
        Moment order ``N >= 1``.
    center:
        Subtract the sample mean first (central moments).
    threshold:
        Drop IOU entries with ``|value| <= threshold`` — the sparsification
        step that makes high-dimensional moment tensors tractable.
    chunk:
        IOU entries evaluated per vectorized block.
    max_entries:
        Safety cap on ``S_{N,I}`` (the full IOU count) — moment estimation
        enumerates every unique entry.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise ValueError("samples must be (n_samples, dim)")
    n, dim = samples.shape
    if n == 0:
        raise ValueError("need at least one sample")
    if order < 1:
        raise ValueError("order must be >= 1")
    if center:
        samples = samples - samples.mean(axis=0, keepdims=True)

    iou = enumerate_iou(order, dim)
    if max_entries is not None and iou.shape[0] > max_entries:
        raise ValueError(
            f"S_{{{order},{dim}}} = {iou.shape[0]} unique entries exceeds "
            f"max_entries={max_entries}; raise the cap or reduce dim/order"
        )
    values = np.empty(iou.shape[0], dtype=np.float64)
    step = max(1, chunk)
    for start in range(0, iou.shape[0], step):
        stop = min(start + step, iou.shape[0])
        block = iou[start:stop]
        prods = samples[:, block[:, 0]]
        for t in range(1, order):
            prods = prods * samples[:, block[:, t]]
        values[start:stop] = prods.mean(axis=0)
    keep = np.abs(values) > threshold
    return SparseSymmetricTensor(
        order, dim, iou[keep], values[keep], assume_canonical=True
    )
