"""SS-HOPM: symmetric tensor Z-eigenpairs (Kolda & Mayo).

The shifted symmetric higher-order power method computes Z-eigenpairs
``X x^{N-1} = λ x, ‖x‖ = 1`` of a sparse symmetric tensor — the
computation [16] accelerated on GPUs with compact symmetric storage, here
built on the rank-1 SymProp kernel. With shift
``α > (N−1)·max|entry|·…`` the iteration is monotone in the shifted
Rayleigh quotient; we default to an adaptive shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.plan import get_plan
from ..core.s3ttmc import SymmetricInput, _as_ucoo
from .tensor_apply import symmetric_apply

__all__ = ["ZEigenpair", "sshopm"]


@dataclass
class ZEigenpair:
    """A converged (or best-effort) Z-eigenpair with its iteration trace."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool
    lambda_trace: List[float]

    def residual(self, tensor: SymmetricInput) -> float:
        """``‖X x^{N-1} − λ x‖`` — zero at an exact eigenpair."""
        y = symmetric_apply(tensor, self.eigenvector)
        return float(np.linalg.norm(y - self.eigenvalue * self.eigenvector))


def sshopm(
    tensor: SymmetricInput,
    *,
    shift: Optional[float] = None,
    max_iters: int = 500,
    tol: float = 1e-10,
    x0: Optional[np.ndarray] = None,
    seed: Optional[int] = None,
    concave: bool = False,
) -> ZEigenpair:
    """Shifted symmetric higher-order power method.

    Parameters
    ----------
    tensor:
        Order-``N`` sparse symmetric tensor.
    shift:
        The SS-HOPM shift ``α``; defaults to ``1 + (N-1)·‖X‖ / √I``
        (a cheap sufficient-monotonicity heuristic). ``concave=True``
        negates the shift to seek eigenpairs at the other end of the
        spectrum.
    max_iters, tol:
        Stop when ``|λ_{k+1} − λ_k| < tol·(1+|λ_k|)``.
    x0, seed:
        Starting vector (normalized internally) or RNG seed.

    Returns
    -------
    :class:`ZEigenpair`.
    """
    ucoo = _as_ucoo(tensor)
    rng = np.random.default_rng(seed)
    if x0 is None:
        x = rng.standard_normal(ucoo.dim)
    else:
        x = np.asarray(x0, dtype=np.float64).reshape(-1).copy()
        if x.shape[0] != ucoo.dim:
            raise ValueError(f"x0 must have length {ucoo.dim}")
    norm = np.linalg.norm(x)
    if norm == 0:
        raise ValueError("starting vector must be non-zero")
    x /= norm

    if shift is None:
        shift = 1.0 + (ucoo.order - 1) * ucoo.norm() / max(np.sqrt(ucoo.dim), 1.0)
    alpha = -abs(shift) if concave else abs(shift)

    plan = get_plan(ucoo)
    trace: List[float] = []
    lam = float(x @ symmetric_apply(ucoo, x, plan=plan))
    converged = False
    iterations = 0
    for iterations in range(1, max_iters + 1):
        y = symmetric_apply(ucoo, x, plan=plan) + alpha * x
        if alpha < 0:
            y = -y
        norm = np.linalg.norm(y)
        if norm == 0:
            break  # x is in the kernel; λ = 0 with this x
        x = y / norm
        new_lam = float(x @ symmetric_apply(ucoo, x, plan=plan))
        trace.append(new_lam)
        if abs(new_lam - lam) < tol * (1.0 + abs(lam)):
            lam = new_lam
            converged = True
            break
        lam = new_lam
    return ZEigenpair(
        eigenvalue=lam,
        eigenvector=x,
        iterations=iterations,
        converged=converged,
        lambda_trace=trace,
    )
