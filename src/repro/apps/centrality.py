"""Hypergraph node centralities from the symmetric adjacency tensor.

Z-eigenvector centrality (Benson's hypergraph generalization of
eigenvector centrality): the positive vector with
``X c^{N-1} = λ c``, computed by a positivity-preserving power iteration
on the adjacency tensor (rank-1 SymProp applies). Also provides plain
degree centrality for comparison.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.plan import get_plan
from ..core.s3ttmc import SymmetricInput, _as_ucoo
from ..hypergraph.hypergraph import Hypergraph
from .tensor_apply import symmetric_apply

__all__ = ["z_eigenvector_centrality", "degree_centrality"]


def z_eigenvector_centrality(
    tensor: SymmetricInput,
    *,
    max_iters: int = 1000,
    tol: float = 1e-12,
    n_real_nodes: Optional[int] = None,
) -> np.ndarray:
    """Positive Z-eigenvector of a non-negative symmetric tensor.

    Power iteration ``c ← normalize((X c^{N-1})^{1/(N-1)})`` on the
    positive cone (the NQI-style map, which keeps iterates strictly
    positive and converges for irreducible non-negative tensors). Returns
    a unit-1-norm centrality vector; dummy-node entries are zeroed and the
    rest renormalized when ``n_real_nodes`` is given.
    """
    ucoo = _as_ucoo(tensor)
    if ucoo.values.min(initial=0.0) < 0:
        raise ValueError("centrality requires a non-negative tensor")
    plan = get_plan(ucoo)
    order = ucoo.order
    c = np.full(ucoo.dim, 1.0 / ucoo.dim)
    exponent = 1.0 / (order - 1) if order > 1 else 1.0
    for _ in range(max_iters):
        y = symmetric_apply(ucoo, c, plan=plan)
        # Keep strictly inside the cone: nodes with zero score stay zero.
        y = np.maximum(y, 0.0) ** exponent
        total = y.sum()
        if total == 0:
            break
        y /= total
        if np.linalg.norm(y - c, 1) < tol:
            c = y
            break
        c = y
    if n_real_nodes is not None:
        c = c[:n_real_nodes].copy()
        total = c.sum()
        if total > 0:
            c /= total
    return c


def degree_centrality(hypergraph: Hypergraph) -> np.ndarray:
    """Hyperedge-degree centrality, unit 1-norm."""
    deg = hypergraph.degree().astype(np.float64)
    total = deg.sum()
    return deg / total if total else deg
