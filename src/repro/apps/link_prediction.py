"""Hyperedge (link) prediction from a Tucker decomposition.

The low-rank model scores candidate hyperedges by the reconstructed
adjacency value ``X̂(i)`` — higher means more "edge-like". This turns a
SymProp decomposition into the standard hypergraph link-prediction
pipeline: decompose the observed adjacency tensor, rank unobserved
candidate tuples by reconstructed score, evaluate with AUC against held
-out edges.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..decomp.reconstruct import reconstruct_at
from ..decomp.result import DecompositionResult
from ..formats.ucoo import SparseSymmetricTensor

__all__ = ["score_candidates", "holdout_split", "auc_score", "link_prediction_auc"]


def score_candidates(
    result: DecompositionResult, candidates: np.ndarray
) -> np.ndarray:
    """Reconstructed adjacency value for each candidate index tuple."""
    return reconstruct_at(result, np.asarray(candidates, dtype=np.int64))


def holdout_split(
    tensor: SparseSymmetricTensor,
    holdout_fraction: float = 0.2,
    *,
    seed: Optional[int] = None,
) -> Tuple[SparseSymmetricTensor, np.ndarray, np.ndarray]:
    """Split non-zeros into a training tensor and held-out positives.

    Returns ``(train_tensor, held_out_indices, held_out_values)``.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError("holdout_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = tensor.unnz
    n_hold = max(1, int(round(n * holdout_fraction)))
    if n_hold >= n:
        raise ValueError("not enough non-zeros to hold out")
    held = np.sort(rng.choice(n, size=n_hold, replace=False))
    mask = np.ones(n, dtype=bool)
    mask[held] = False
    train = SparseSymmetricTensor(
        tensor.order,
        tensor.dim,
        tensor.indices[mask],
        tensor.values[mask],
        assume_canonical=True,
    )
    return train, tensor.indices[held].copy(), tensor.values[held].copy()


def _sample_negatives(
    tensor: SparseSymmetricTensor, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Random IOU tuples that are not non-zeros of ``tensor``."""
    existing = {tuple(row) for row in tensor.indices}
    out = []
    while len(out) < n:
        draw = np.sort(rng.integers(0, tensor.dim, size=(2 * n, tensor.order)), axis=1)
        for row in draw:
            key = tuple(row)
            if key not in existing:
                existing.add(key)
                out.append(row)
                if len(out) == n:
                    break
    return np.array(out, dtype=np.int64)


def auc_score(positive_scores: np.ndarray, negative_scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic (ties count ½)."""
    pos = np.asarray(positive_scores, dtype=np.float64)
    neg = np.asarray(negative_scores, dtype=np.float64)
    if pos.size == 0 or neg.size == 0:
        raise ValueError("need both positive and negative scores")
    combined = np.concatenate([pos, neg])
    order = np.argsort(combined, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, combined.size + 1)
    # midrank correction for ties
    sorted_vals = combined[order]
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            mid = 0.5 * (i + 1 + j + 1)
            ranks[order[i : j + 1]] = mid
        i = j + 1
    rank_sum = ranks[: pos.size].sum()
    n_pos, n_neg = pos.size, neg.size
    return float((rank_sum - n_pos * (n_pos + 1) / 2) / (n_pos * n_neg))


def link_prediction_auc(
    result: DecompositionResult,
    held_out: np.ndarray,
    tensor: SparseSymmetricTensor,
    *,
    n_negatives: Optional[int] = None,
    seed: Optional[int] = None,
) -> float:
    """AUC of reconstructed scores: held-out edges vs sampled non-edges."""
    rng = np.random.default_rng(seed)
    held_out = np.asarray(held_out, dtype=np.int64)
    if n_negatives is None:
        n_negatives = held_out.shape[0]
    negatives = _sample_negatives(tensor, n_negatives, rng)
    pos = score_candidates(result, held_out)
    neg = score_candidates(result, negatives)
    return auc_score(pos, neg)
