"""Applications built on the SymProp kernels.

Hypergraph analytics and symmetric tensor computations the paper's
introduction motivates: spectral methods via rank-1 kernel applies
(Z-eigenpairs, centrality) and low-rank link prediction via pointwise
reconstruction.
"""

from .centrality import degree_centrality, z_eigenvector_centrality
from .eigen import ZEigenpair, sshopm
from .moments import empirical_moment_tensor
from .link_prediction import (
    auc_score,
    holdout_split,
    link_prediction_auc,
    score_candidates,
)
from .tensor_apply import rayleigh_quotient, symmetric_apply

__all__ = [
    "symmetric_apply",
    "rayleigh_quotient",
    "sshopm",
    "ZEigenpair",
    "z_eigenvector_centrality",
    "degree_centrality",
    "empirical_moment_tensor",
    "score_candidates",
    "holdout_split",
    "auc_score",
    "link_prediction_auc",
]
