"""Symmetric CP decomposition via ALS on the SymProp MTTKRP kernel.

Approximates a sparse symmetric tensor by a symmetric rank-``R`` CP model
``X̂ = Σ_r λ_r · u_r ⊗ ... ⊗ u_r`` with unit-norm columns ``u_r``. The
fixed-point update is the symmetric adaptation of CP-ALS:

``U ← M(U) · V(U)†``, ``V = (UᵀU)^{⊙(N-1)}`` (elementwise power),
``M`` = sparse symmetric MTTKRP — then column normalization yields ``λ``.

Symmetric ALS is a heuristic (no monotonicity guarantee — see Kolda &
Mayo); in practice it converges on tensors with genuine symmetric CP
structure, and the exact objective is evaluated every sweep so stagnation
is detected honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..core.plan import get_plan
from ..core.s3ttmc import SymmetricInput, _as_ucoo
from ..core.stats import KernelStats
from ..runtime.timer import PhaseTimer
from .mttkrp import symmetric_mttkrp

__all__ = ["SymmetricCPResult", "symmetric_cp_als", "cp_inner_product"]


@dataclass
class SymmetricCPResult:
    """Weights, factor, and convergence trace of symmetric CP-ALS."""

    weights: np.ndarray  # (R,) λ values
    factor: np.ndarray  # (I, R), unit-norm columns
    error_trace: List[float]
    converged: bool
    timer: PhaseTimer
    stats: KernelStats
    norm_x_squared: float

    @property
    def iterations(self) -> int:
        return len(self.error_trace)

    @property
    def relative_error(self) -> float:
        return self.error_trace[-1] if self.error_trace else 1.0


def rank_one_inner_products(
    tensor: SymmetricInput, factor: np.ndarray
) -> np.ndarray:
    """``h_r = ⟨X, u_r^{⊗N}⟩ = Σ_{i∈nz} X(i) Π_t U(i_t, r)`` — exact, sparse."""
    ucoo = _as_ucoo(tensor)
    factor = np.asarray(factor, dtype=np.float64)
    mult = ucoo.multiplicities().astype(np.float64)
    prods = np.ones((ucoo.unnz, factor.shape[1]), dtype=np.float64)
    for t in range(ucoo.order):
        prods *= factor[ucoo.indices[:, t]]
    return (mult * ucoo.values) @ prods


def cp_inner_product(
    tensor: SymmetricInput, weights: np.ndarray, factor: np.ndarray
) -> float:
    """``⟨X, X̂⟩ = Σ_r λ_r h_r`` for the symmetric CP model."""
    h = rank_one_inner_products(tensor, factor)
    return float(h @ np.asarray(weights, dtype=np.float64))


def _model_norm_squared(weights: np.ndarray, factor: np.ndarray, order: int) -> float:
    gram = factor.T @ factor
    return float(weights @ (gram**order) @ weights)


def symmetric_cp_als(
    tensor: SymmetricInput,
    rank: int,
    *,
    max_iters: int = 100,
    tol: float = 1e-8,
    init: Union[str, np.ndarray] = "random",
    seed: Optional[int] = None,
    ridge: float = 1e-10,
    timer: Optional[PhaseTimer] = None,
) -> SymmetricCPResult:
    """Symmetric CP-ALS on the symmetry-propagated MTTKRP kernel.

    Parameters
    ----------
    tensor:
        Sparse symmetric input, order ``N >= 2``.
    rank:
        CP rank ``R``.
    max_iters, tol:
        Stop when the relative error improves by less than ``tol``.
    init, seed:
        ``"random"`` (Gaussian, column-normalized) or an explicit
        ``(I, R)`` array.
    ridge:
        Tikhonov term on the ``V`` solve (ALS normal equations can be
        near-singular when columns align).
    """
    ucoo = _as_ucoo(tensor)
    if ucoo.order < 2:
        raise ValueError("CP-ALS requires order >= 2")
    if rank < 1:
        raise ValueError("rank must be >= 1")
    rng = np.random.default_rng(seed)
    timer = timer if timer is not None else PhaseTimer()
    stats = KernelStats()
    order = ucoo.order

    with timer.phase("init"):
        if isinstance(init, np.ndarray):
            factor = np.asarray(init, dtype=np.float64).copy()
            if factor.shape != (ucoo.dim, rank):
                raise ValueError(f"init must be ({ucoo.dim}, {rank})")
        elif init == "random":
            factor = rng.standard_normal((ucoo.dim, rank))
        else:
            raise ValueError(f"unknown init {init!r}")
        norms = np.linalg.norm(factor, axis=0)
        norms[norms == 0] = 1.0
        factor /= norms
        weights = np.ones(rank)
        norm_x_squared = ucoo.norm_squared()
        plan = get_plan(ucoo)

    trace: List[float] = []
    converged = False
    prev_error = np.inf
    for _sweep in range(max_iters):
        # ALS direction: with the λ-scaled factor fixed on modes 2..N,
        # the unconstrained mode-1 optimum is A = M(B) V(B)† with
        # B = U diag(λ).
        scaled_factor = factor * weights[None, :]
        with timer.phase("mttkrp"):
            m = symmetric_mttkrp(ucoo, scaled_factor, stats=stats, plan=plan)
        with timer.phase("solve"):
            gram = scaled_factor.T @ scaled_factor
            v = gram ** (order - 1)
            a = np.linalg.solve(v + ridge * np.eye(rank), m.T).T  # (I, R)
            norms = np.linalg.norm(a, axis=0)
            norms[norms == 0] = 1.0
            factor = a / norms
            # Joint λ refit with the new directions (keeps signs correct
            # for even orders and makes the objective the exact optimum
            # over weights): λ = G† h, G_{rs} = (u_rᵀu_s)^N, h_r = <X, u_r^⊗N>.
            h = rank_one_inner_products(ucoo, factor)
            g = (factor.T @ factor) ** order
            weights = np.linalg.solve(g + ridge * np.eye(rank), h)
        with timer.phase("objective"):
            inner = cp_inner_product(ucoo, weights, factor)
            model = _model_norm_squared(weights, factor, order)
            residual_sq = max(norm_x_squared - 2.0 * inner + model, 0.0)
            error = float(np.sqrt(residual_sq / norm_x_squared)) if norm_x_squared else 0.0
            trace.append(error)
        if prev_error - error <= tol:
            converged = True
            break
        prev_error = error

    return SymmetricCPResult(
        weights=weights,
        factor=factor,
        error_trace=trace,
        converged=converged,
        timer=timer,
        stats=stats,
        norm_x_squared=norm_x_squared,
    )
