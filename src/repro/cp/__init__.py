"""Symmetric CP decomposition (future-work extension of the paper).

Symmetry propagation applied to the MTTKRP kernel: intermediate products
stay ``R``-vectors at every lattice level, and symmetric CP-ALS rides on
top — the direction the paper's conclusion proposes for "other tensor
decomposition methods".
"""

from .als import SymmetricCPResult, cp_inner_product, rank_one_inner_products, symmetric_cp_als
from .mttkrp import symmetric_mttkrp

__all__ = [
    "symmetric_mttkrp",
    "symmetric_cp_als",
    "SymmetricCPResult",
    "cp_inner_product",
    "rank_one_inner_products",
]
