"""Sparse symmetric MTTKRP via symmetry propagation.

The CP analogue of S³TTMc: for a sparse symmetric ``X`` and a shared
factor ``U``, the matricized-tensor-times-Khatri-Rao product is

``M(k, r) = Σ_{i∈nz(X), i_1=k} X(i) · Π_{t≥2} U(i_t, r)``.

Grouped by IOU non-zero, each distinct ``k ∈ i`` receives
``X(i) · (#orderings of i∖k) · Π_{t∈i∖k} U(t, r)`` — exactly the
sub-multiset lattice recurrence with the *elementwise* intermediate
layout (``K_m[r] = Σ_v U[v,r]·K_{m−v}[r]`` — ``R`` entries per level,
never ``R^l``). This is the paper's propagated-symmetry idea carried to
CP decomposition, as its conclusion suggests; level-``l`` complexity is
``(2l−1)·C(N,l)·R·unnz``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.engine import DEFAULT_BLOCK_BYTES, lattice_ttmc
from ..core.plan import TTMcPlan, get_plan
from ..core.s3ttmc import SymmetricInput, _as_ucoo
from ..core.stats import KernelStats

__all__ = ["symmetric_mttkrp"]


def symmetric_mttkrp(
    tensor: SymmetricInput,
    factor: np.ndarray,
    *,
    memoize: str = "global",
    stats: Optional[KernelStats] = None,
    nz_batch_size: Optional[int] = None,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    plan: Optional[TTMcPlan] = None,
) -> np.ndarray:
    """Symmetry-propagated sparse symmetric MTTKRP, ``(I, R)`` output.

    Parameters mirror :func:`repro.core.s3ttmc.s3ttmc`; the execution plan
    is shared with S³TTMc (same lattice, different layout), so Tucker and
    CP runs on the same tensor reuse one structure.
    """
    ucoo = _as_ucoo(tensor)
    factor = np.asarray(factor, dtype=np.float64)
    if factor.ndim != 2 or factor.shape[0] != ucoo.dim:
        raise ValueError(f"factor must be ({ucoo.dim}, R), got {factor.shape}")
    if ucoo.order < 2:
        raise ValueError("MTTKRP requires tensor order >= 2")
    if plan is None:
        plan = get_plan(ucoo, memoize, nz_batch_size)
    return lattice_ttmc(
        ucoo.indices,
        ucoo.values,
        ucoo.dim,
        factor,
        intermediate="cp",
        memoize=memoize,
        stats=stats,
        nz_batch_size=nz_batch_size,
        block_bytes=block_bytes,
        plan=plan,
    )
