"""SymProp reproduction: sparse symmetric Tucker decomposition via symmetry propagation.

A from-scratch Python implementation of

    *SymProp: Scaling Sparse Symmetric Tucker Decomposition via Symmetry
    Propagation* (Li, Shivakumar, Li, Kannan — IPDPS 2025)

including the symmetry-propagated S³TTMc and S³TTMcTC kernels, HOOI and
HOQRI decompositions, all evaluated baselines (CSS full-intermediate
TTMc, SPLATT/CSF TTMc, HOQRI n-ary contraction), and the substrates they
stand on (symmetric-tensor combinatorics and formats, hypergraph adjacency
construction, memory-budget runtime, parallel partitioning).

Quick start::

    import numpy as np
    from repro import random_sparse_symmetric, hoqri

    x = random_sparse_symmetric(order=4, dim=100, unnz=2000, seed=0)
    result = hoqri(x, rank=4, max_iters=50, seed=0)
    print(result.relative_error, result.factor.shape)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — SymProp kernels (the paper's contribution)
- :mod:`repro.formats` — UCOO / CSS / CSF / dense symmetric storage
- :mod:`repro.decomp` — HOOI (Alg. 3) and HOQRI (Alg. 4)
- :mod:`repro.baselines` — CSS, SPLATT, n-ary, dense references
- :mod:`repro.symmetry` — IOU combinatorics, Properties 1–3 machinery
- :mod:`repro.hypergraph` / :mod:`repro.data` — datasets and applications
- :mod:`repro.perfmodel` / :mod:`repro.parallel` / :mod:`repro.runtime` —
  complexity models, parallel substrate, memory budgets
- :mod:`repro.obs` — span tracing, metrics, JSONL export
  (``python -m repro.obs summarize``)
- :mod:`repro.bench` — the harness regenerating every figure/table
"""

from .core import KernelStats, s3ttmc, s3ttmc_tc
from .data import (
    DATASETS,
    dataset_names,
    load_dataset,
    planted_lowrank,
    random_sparse_symmetric,
)
from .decomp import DecompositionResult, hooi, hoqri
from .formats import (
    CSFTensor,
    CSSTensor,
    DenseSymmetricTensor,
    PartiallySymmetricTensor,
    SparseSymmetricTensor,
)
from .hypergraph import Hypergraph, adjacency_tensor
from .apps import symmetric_apply
from .cp import symmetric_cp_als, symmetric_mttkrp
from .obs import TraceCollector
from .runtime import ExecContext, MemoryBudget, MemoryLimitError, current_context
from .validation import verify_kernels

__version__ = "1.0.0"

__all__ = [
    "s3ttmc",
    "s3ttmc_tc",
    "KernelStats",
    "hooi",
    "hoqri",
    "DecompositionResult",
    "SparseSymmetricTensor",
    "CSSTensor",
    "CSFTensor",
    "DenseSymmetricTensor",
    "PartiallySymmetricTensor",
    "Hypergraph",
    "adjacency_tensor",
    "random_sparse_symmetric",
    "planted_lowrank",
    "load_dataset",
    "dataset_names",
    "DATASETS",
    "MemoryBudget",
    "ExecContext",
    "current_context",
    "TraceCollector",
    "symmetric_apply",
    "symmetric_cp_als",
    "symmetric_mttkrp",
    "verify_kernels",
    "MemoryLimitError",
    "__version__",
]
