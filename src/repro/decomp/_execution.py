"""Execution-backend plumbing shared by the decomposition drivers.

``hooi()`` and ``hoqri()`` accept ``execution="serial"|"thread"|"process"``.
The non-serial paths route every S³TTMc through one
:class:`~repro.parallel.backends.Backend` instance created *before* the
iteration loop and closed after it — keeping the backend alive across
iterations is what lets the chunk-plan cache (and, for the process
backend, the worker processes with their shared-memory operands) amortize
symbolic work down to iteration 1 only.
"""

from __future__ import annotations

from typing import Optional

from ..parallel.backends import Backend, make_backend

__all__ = ["resolve_backend"]

EXECUTIONS = ("serial", "thread", "process")


def resolve_backend(
    execution: str, n_workers: Optional[int], kernel: str
) -> Optional[Backend]:
    """Backend for ``execution``, or ``None`` for the plain serial kernel.

    ``execution="serial"`` keeps the existing direct :func:`s3ttmc` path
    byte-for-byte (no chunking, no partition). Parallel execution only
    exists for the symprop kernel — the CSS baseline has no chunked form.
    """
    if execution not in EXECUTIONS:
        raise ValueError(
            f"unknown execution {execution!r}; expected one of {EXECUTIONS}"
        )
    if execution == "serial":
        if n_workers is not None:
            raise ValueError("n_workers requires execution='thread'|'process'")
        return None
    if kernel != "symprop":
        raise ValueError(
            f"execution={execution!r} requires kernel='symprop', got {kernel!r}"
        )
    return make_backend(execution, n_workers)
